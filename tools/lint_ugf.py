#!/usr/bin/env python3
"""Repo-specific lint rules for the UGF simulator.

These are the rules a C++ compiler cannot enforce but that the
reproduction's correctness story depends on:

  rng          Every random draw must flow through the seeded
               ``ugf::util::Rng`` (src/util/rng.*): ``rand()``,
               ``srand()`` and ``std::random_device`` make a run
               irreproducible, which silently breaks the Monte-Carlo
               determinism contract and every regression baseline.
  assert       Invariants go through UGF_ASSERT/UGF_AUDIT from
               ``src/util/check.hpp`` — a naked ``assert(`` vanishes
               under NDEBUG without a trace and reports nothing useful
               when it fires.
  iostream     Library code under ``src/`` must not include
               ``<iostream>``: its static ios_base initializer taxes
               every binary, and ad-hoc console output from the library
               corrupts the CSV/JSON report streams the tools emit.
               (``<fstream>``/``<sstream>``/``<ostream>`` are fine.)
  header       Every header starts with ``#pragma once`` followed by a
               Doxygen ``\\file`` comment, so includes are idempotent
               and each header states its purpose.
  ordered      Report/analysis/observability code must not iterate an
               unordered container into its output: iteration order is
               implementation-defined, so reports and trace files would
               differ between runs/compilers. Use std::map/std::vector,
               or sort first. ``src/obs/`` is in scope because its
               exporters promise byte-determinism (golden-file tests).
  sharedptr    ``src/sim/`` and ``src/protocols/`` must not use
               ``std::shared_ptr``/``std::make_shared``: message
               payloads live in the per-run ``sim::PayloadArena``
               (``PayloadRef`` handles, ``ctx.make_payload<T>()``), and
               an atomic refcount on the delivery hot path is exactly
               the cost the arena removed. Factory plumbing that
               genuinely needs shared ownership goes on the explicit
               allowlist (``SHAREDPTR_ALLOWLIST``).
  scheduler    ``src/sim/`` must not use ``std::priority_queue`` or the
               ``std::push_heap``/``pop_heap``/``make_heap`` primitives:
               event ordering goes through ``sim::TimingWheel``
               (src/sim/timing_wheel.hpp), which is O(1) amortized and
               deterministic by construction. A comparison-based heap
               sneaking back in silently reverts the scheduler to
               O(log n) per event. The pre-wheel heap survives in
               ``bench/reference_heap.hpp`` as the benchmark baseline —
               bench/ is out of scope on purpose.

A finding can be suppressed on its line (or the line above) with:
    // ugf-lint: allow(<rule>)

Usage: lint_ugf.py [REPO_ROOT]
       lint_ugf.py --validate-trace FILE
The second form validates a campaign artifact written by the src/obs
exporters, dispatching on content: a single JSON document is checked
against its declared schema (``ugf-manifest-v1`` run manifests,
``ugf-metrics-v1`` metrics snapshots), anything else is treated as an
``ugf-trace-v1`` NDJSON trace (meta line, per-event keys, known types,
non-decreasing steps, event count).

Exits 0 when clean, 1 with findings (one ``file:line: rule: message``
per line), 2 on usage errors.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

CXX_EXTENSIONS = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}
SOURCE_DIRS = ("src", "tests", "bench", "examples", "tools")
# The analyzer's fixture tree holds *intentional* violations with their
# own golden findings; linting it would demand allow-comments that the
# fixtures' own line-number contract cannot absorb.
EXCLUDE_PREFIXES = ("tools/ugf_analyzer/fixtures/",)

ALLOW_RE = re.compile(r"ugf-lint:\s*allow\(([a-z-]+)\)")
LINE_COMMENT_RE = re.compile(r"//.*$")

RNG_RE = re.compile(r"\b(?:std::)?s?rand\s*\(|\bstd::random_device\b")
ASSERT_RE = re.compile(r"(?<![_A-Za-z0-9])assert\s*\(")
IOSTREAM_RE = re.compile(r'#\s*include\s*[<"]iostream[>"]')
UNORDERED_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b")
SHAREDPTR_RE = re.compile(r"\bstd::(?:shared_ptr|make_shared)\b")
SCHEDULER_RE = re.compile(
    r"\bstd::(?:priority_queue|push_heap|pop_heap|make_heap)\b")

# Rule applicability, by repo-relative posix path.
RNG_EXEMPT = ("src/util/rng.hpp", "src/util/rng.cpp")
ASSERT_EXEMPT = ("src/util/check.hpp",)
ORDERED_SCOPE = ("src/runner/", "src/analysis/", "src/obs/")
SHAREDPTR_SCOPE = ("src/sim/", "src/protocols/")
# Files allowed to use shared ownership despite being in scope (factory
# plumbing that outlives a single run would qualify; currently nothing).
SHAREDPTR_ALLOWLIST: tuple[str, ...] = ()
SCHEDULER_SCOPE = ("src/sim/",)


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def strip_strings(code: str) -> str:
    """Blanks out string/char literal contents (keeps column positions)."""
    out = []
    i, n = 0, len(code)
    while i < n:
        ch = code[i]
        if ch in "\"'":
            quote = ch
            out.append(ch)
            i += 1
            while i < n and code[i] != quote:
                out.append(" " if code[i] != "\\" else " ")
                i += 2 if code[i] == "\\" else 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def allowed(rule: str, lines: list[str], idx: int) -> bool:
    for look in (idx, idx - 1):
        if 0 <= look < len(lines):
            m = ALLOW_RE.search(lines[look])
            if m and m.group(1) == rule:
                return True
    return False


def lint_file(root: Path, path: Path) -> list[Finding]:
    rel = path.relative_to(root).as_posix()
    try:
        text = path.read_text(encoding="utf-8")
    except UnicodeDecodeError:
        return [Finding(rel, 1, "encoding", "file is not valid UTF-8")]
    lines = text.splitlines()
    findings: list[Finding] = []

    in_block_comment = False
    for i, raw in enumerate(lines):
        lineno = i + 1
        # Track /* */ blocks so commented-out code is not linted.
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2 :]
            in_block_comment = False
        # Remove complete /* ... */ spans, then detect an opening one.
        line = re.sub(r"/\*.*?\*/", " ", line)
        if "/*" in line:
            line = line.split("/*", 1)[0]
            in_block_comment = True
        line = LINE_COMMENT_RE.sub("", line)
        code = strip_strings(line)

        if RNG_RE.search(code) and rel not in RNG_EXEMPT:
            if not allowed("rng", lines, i):
                findings.append(
                    Finding(rel, lineno, "rng",
                            "non-deterministic randomness; draw from "
                            "ugf::util::Rng (src/util/rng.hpp) instead"))
        if (rel.startswith("src/") and rel not in ASSERT_EXEMPT
                and ASSERT_RE.search(code)):
            if not allowed("assert", lines, i):
                findings.append(
                    Finding(rel, lineno, "assert",
                            "naked assert(); use UGF_ASSERT/UGF_AUDIT from "
                            "util/check.hpp so the check survives NDEBUG "
                            "policy and reports file:line"))
        if rel.startswith("src/") and IOSTREAM_RE.search(code):
            if not allowed("iostream", lines, i):
                findings.append(
                    Finding(rel, lineno, "iostream",
                            "<iostream> in library code; use <cstdio> or "
                            "<fstream>/<sstream>"))
        if any(rel.startswith(scope) for scope in ORDERED_SCOPE):
            if UNORDERED_RE.search(code) and not allowed("ordered", lines, i):
                findings.append(
                    Finding(rel, lineno, "ordered",
                            "unordered container in report-producing code; "
                            "iteration order is not deterministic — use "
                            "std::map / sorted std::vector"))
        if (any(rel.startswith(scope) for scope in SHAREDPTR_SCOPE)
                and rel not in SHAREDPTR_ALLOWLIST
                and SHAREDPTR_RE.search(code)):
            if not allowed("sharedptr", lines, i):
                findings.append(
                    Finding(rel, lineno, "sharedptr",
                            "shared_ptr in the sim/protocol layer; payloads "
                            "are arena-owned (ctx.make_payload<T>() -> "
                            "sim::PayloadRef, see sim/payload_arena.hpp)"))
        if (any(rel.startswith(scope) for scope in SCHEDULER_SCOPE)
                and SCHEDULER_RE.search(code)):
            if not allowed("scheduler", lines, i):
                findings.append(
                    Finding(rel, lineno, "scheduler",
                            "comparison-based heap in the simulator; event "
                            "ordering goes through sim::TimingWheel "
                            "(sim/timing_wheel.hpp), O(1) amortized and "
                            "deterministic by construction"))

    if path.suffix in {".hpp", ".hh", ".h"}:
        findings.extend(lint_header_prelude(rel, lines))
    return findings


def lint_header_prelude(rel: str, lines: list[str]) -> list[Finding]:
    nonempty = [(i + 1, l.strip()) for i, l in enumerate(lines) if l.strip()]
    if not nonempty:
        return [Finding(rel, 1, "header", "empty header")]
    first_line, first = nonempty[0]
    if first != "#pragma once":
        return [Finding(rel, first_line, "header",
                        "headers must start with #pragma once")]
    for lineno, stripped in nonempty[1:4]:
        if "\\file" in stripped:
            return []
    return [Finding(rel, first_line, "header",
                    "missing Doxygen '\\file' comment after #pragma once")]


# --- Campaign artifact validation -----------------------------------------
#
# One entry point (validate_artifact) dispatches on content: whole-file
# JSON documents are validated against their declared schema (manifest /
# metrics), everything else is treated as an NDJSON trace.

TRACE_SCHEMA = "ugf-trace-v1"
TRACE_META_KEYS = {"schema", "protocol", "adversary", "n", "f", "seed",
                   "events"}
TRACE_EVENT_KEYS = {"step", "type", "p", "q", "v0", "v1"}
TRACE_EVENT_TYPES = {
    "emission", "delivery", "drop", "omission", "crash", "infection",
    "step-begin", "step-end", "sleep", "delay-change", "step-time-change",
}

LINEAGE_SCHEMA = "ugf-lineage-v1"
LINEAGE_META_KEYS = {"schema", "protocol", "adversary", "n", "f", "seed",
                     "infected", "last_process", "last_step",
                     "critical_path_len", "depth_max", "width_max", "nodes",
                     "suppressed", "actions"}
LINEAGE_RECORD_KEYS = {
    "node": {"kind", "p", "step", "depth", "parent", "cause",
             "on_critical_path"},
    "suppressed": {"kind", "action", "from", "to", "emitted_at", "step",
                   "id", "on_critical_path"},
    "action": {"kind", "action", "p", "step", "cause", "on_critical_path"},
    "attribution": {"kind", "on", "off"},
}
LINEAGE_SUPPRESSED_ACTIONS = {"omission", "drop", "wipe"}
LINEAGE_ADVERSARY_ACTIONS = {"crash", "delay-change", "step-time-change"}
LINEAGE_ATTRIBUTION_KEYS = {"omission", "drop", "wipe", "crash",
                            "delay_change", "step_time_change"}

DIGEST_SCHEMA = "ugf-digest-v1"
DIGEST_META_KEYS = {"schema", "protocol", "adversary", "n", "f", "seed",
                    "cadence", "segments", "records"}
DIGEST_RECORD_KEYS = {"step", "subsystem", "level", "lo", "hi", "digest"}

_U64 = (1 << 64) - 1


def _splitmix64(state: int) -> tuple[int, int]:
    """One splitmix64 step; returns (output, advanced state). Mirrors
    ugf::util::splitmix64 (src/util/rng.cpp) bit-for-bit."""
    state = (state + 0x9E3779B97F4A7C15) & _U64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _U64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _U64
    return (z ^ (z >> 31)), state


def mix_seed(a: int, b: int) -> int:
    """Python port of ugf::util::mix_seed — the merkle parent combiner of
    ugf-digest-v1 streams. Leaf digests are opaque (their chain-init and
    per-pid inputs are producer-private); only parent = mix_seed(left,
    right) is part of the validated format."""
    s = (a ^ ((0x9E3779B97F4A7C15 + ((b << 6) & _U64) + (b >> 2)) & _U64)) \
        & _U64
    out, s = _splitmix64(s)
    s ^= b
    out2, _ = _splitmix64(s)
    return out ^ out2


def validate_trace(path: Path) -> int:
    """Validates one NDJSON trace file; prints findings, returns count."""
    import json

    findings: list[str] = []

    def bad(lineno: int, message: str) -> None:
        findings.append(f"{path}:{lineno}: trace: {message}")

    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError) as err:
        print(f"{path}:1: trace: unreadable ({err})")
        return 1
    if not lines:
        print(f"{path}:1: trace: empty file (expected a meta line)")
        return 1

    declared_events = None
    try:
        meta = json.loads(lines[0])
    except json.JSONDecodeError as err:
        bad(1, f"meta line is not valid JSON ({err})")
        meta = None
    if isinstance(meta, dict):
        if set(meta) != TRACE_META_KEYS:
            bad(1, "meta keys are "
                f"{sorted(meta)}, expected {sorted(TRACE_META_KEYS)}")
        if meta.get("schema") != TRACE_SCHEMA:
            bad(1, f"schema is {meta.get('schema')!r}, "
                f"expected {TRACE_SCHEMA!r}")
        if isinstance(meta.get("events"), int):
            declared_events = meta["events"]
    elif meta is not None:
        bad(1, "meta line is not a JSON object")

    prev_step = -1
    event_count = 0
    for i, line in enumerate(lines[1:], start=2):
        if not line:
            bad(i, "blank line inside the trace")
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as err:
            bad(i, f"not valid JSON ({err})")
            continue
        if not isinstance(event, dict):
            bad(i, "event line is not a JSON object")
            continue
        event_count += 1
        if set(event) != TRACE_EVENT_KEYS:
            bad(i, f"event keys are {sorted(event)}, "
                f"expected {sorted(TRACE_EVENT_KEYS)}")
            continue
        if event["type"] not in TRACE_EVENT_TYPES:
            bad(i, f"unknown event type {event['type']!r}")
        step = event["step"]
        if not isinstance(step, int) or step < 0:
            bad(i, f"step {step!r} is not a non-negative integer")
        elif step < prev_step:
            bad(i, f"step went backwards ({step} after {prev_step}); the "
                "engine emits in non-decreasing step order")
        else:
            prev_step = step
        for key in ("p", "q"):
            value = event[key]
            if value is not None and (not isinstance(value, int)
                                      or value < 0):
                bad(i, f"{key} is {value!r}, expected a process id or null")

    if declared_events is not None and declared_events != event_count:
        bad(1, f"meta declares {declared_events} events "
            f"but the file has {event_count}")

    for finding in findings:
        print(finding)
    status = "valid" if not findings else f"{len(findings)} finding(s)"
    print(f"lint_ugf: {event_count} trace events checked, {status}",
          file=sys.stderr)
    return len(findings)


def validate_lineage(path: Path) -> int:
    """Validates one ugf-lineage-v1 NDJSON file; prints findings."""
    import json

    findings: list[str] = []

    def bad(lineno: int, message: str) -> None:
        findings.append(f"{path}:{lineno}: lineage: {message}")

    def uint(value: object) -> bool:
        return isinstance(value, int) and not isinstance(value, bool) \
            and value >= 0

    lines = path.read_text(encoding="utf-8").splitlines()
    if not lines:
        print(f"{path}:1: lineage: empty file (expected a meta line)")
        return 1

    try:
        meta = json.loads(lines[0])
    except json.JSONDecodeError as err:
        bad(1, f"meta line is not valid JSON ({err})")
        meta = None
    declared = {"nodes": None, "suppressed": None, "actions": None}
    if isinstance(meta, dict):
        if set(meta) != LINEAGE_META_KEYS:
            bad(1, f"meta keys are {sorted(meta)}, "
                f"expected {sorted(LINEAGE_META_KEYS)}")
        if meta.get("schema") != LINEAGE_SCHEMA:
            bad(1, f"schema is {meta.get('schema')!r}, "
                f"expected {LINEAGE_SCHEMA!r}")
        for key in declared:
            if uint(meta.get(key)):
                declared[key] = meta[key]
        if uint(meta.get("critical_path_len")) \
                and uint(meta.get("depth_max")) \
                and meta["critical_path_len"] > meta["depth_max"] + 1:
            bad(1, f"critical_path_len {meta['critical_path_len']} exceeds "
                f"depth_max {meta['depth_max']} + 1; the critical path is "
                "one root-to-leaf chain")
    elif meta is not None:
        bad(1, "meta line is not a JSON object")

    counts = {"node": 0, "suppressed": 0, "action": 0, "attribution": 0}
    critical_nodes = 0
    for i, line in enumerate(lines[1:], start=2):
        if not line:
            bad(i, "blank line inside the lineage stream")
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as err:
            bad(i, f"not valid JSON ({err})")
            continue
        if not isinstance(record, dict):
            bad(i, "record line is not a JSON object")
            continue
        kind = record.get("kind")
        expected = LINEAGE_RECORD_KEYS.get(kind)
        if expected is None:
            bad(i, f"unknown record kind {kind!r}")
            continue
        counts[kind] += 1
        if set(record) != expected:
            bad(i, f"{kind} keys are {sorted(record)}, "
                f"expected {sorted(expected)}")
            continue
        if kind == "node":
            if not uint(record["cause"]):
                bad(i, f"node cause {record['cause']!r} is not a "
                    "non-negative integer")
            if record["depth"] == 0 and record["parent"] is not None:
                bad(i, f"root node (depth 0) has parent "
                    f"{record['parent']!r}, expected null")
            if record["on_critical_path"] is True:
                critical_nodes += 1
        elif kind == "suppressed":
            if record["action"] not in LINEAGE_SUPPRESSED_ACTIONS:
                bad(i, f"suppressed action {record['action']!r} not in "
                    f"{sorted(LINEAGE_SUPPRESSED_ACTIONS)}")
        elif kind == "action":
            if record["action"] not in LINEAGE_ADVERSARY_ACTIONS:
                bad(i, f"adversary action {record['action']!r} not in "
                    f"{sorted(LINEAGE_ADVERSARY_ACTIONS)}")
        else:  # attribution
            for side in ("on", "off"):
                tallies = record[side]
                if not isinstance(tallies, dict) \
                        or set(tallies) != LINEAGE_ATTRIBUTION_KEYS \
                        or not all(uint(v) for v in tallies.values()):
                    bad(i, f"attribution.{side} must map "
                        f"{sorted(LINEAGE_ATTRIBUTION_KEYS)} to "
                        "non-negative integers")

    for key, kind in (("nodes", "node"), ("suppressed", "suppressed"),
                      ("actions", "action")):
        if declared[key] is not None and declared[key] != counts[kind]:
            bad(1, f"meta declares {declared[key]} {key} "
                f"but the file has {counts[kind]}")
    if counts["attribution"] != 1:
        bad(1, f"expected exactly one attribution record, "
            f"found {counts['attribution']}")
    # The path is counted in edges; the flagged nodes include the root,
    # so a K-edge critical path flags exactly K+1 nodes (0 when nothing
    # was infected at all).
    if isinstance(meta, dict) and uint(meta.get("critical_path_len")):
        want = meta["critical_path_len"] + 1 if counts["node"] > 0 else 0
        if critical_nodes != want:
            bad(1, f"meta declares critical_path_len "
                f"{meta['critical_path_len']} (edges) but {critical_nodes} "
                f"nodes are flagged on_critical_path, expected {want}")

    for finding in findings:
        print(finding)
    status = "valid" if not findings else f"{len(findings)} finding(s)"
    print(f"lint_ugf: {counts['node']} lineage nodes checked, {status}",
          file=sys.stderr)
    return len(findings)


def validate_digest(path: Path) -> int:
    """Validates one ugf-digest-v1 NDJSON file; prints findings.

    Checks the header and record key sets, monotone non-decreasing
    steps, and per-(step, subsystem) segment-tree consistency: level l
    holds 2^l records splitting [0, n) at floor(j*n/2^l) boundaries, and
    every parent digest equals mix_seed(left child, right child)."""
    import json
    import re

    findings: list[str] = []

    def bad(lineno: int, message: str) -> None:
        findings.append(f"{path}:{lineno}: digest: {message}")

    def uint(value: object) -> bool:
        return isinstance(value, int) and not isinstance(value, bool) \
            and value >= 0

    lines = path.read_text(encoding="utf-8").splitlines()
    if not lines:
        print(f"{path}:1: digest: empty file (expected a header line)")
        return 1

    try:
        meta = json.loads(lines[0])
    except json.JSONDecodeError as err:
        bad(1, f"header line is not valid JSON ({err})")
        meta = None
    n = segments = declared_records = None
    if isinstance(meta, dict):
        if set(meta) != DIGEST_META_KEYS:
            bad(1, f"header keys are {sorted(meta)}, "
                f"expected {sorted(DIGEST_META_KEYS)}")
        if meta.get("schema") != DIGEST_SCHEMA:
            bad(1, f"schema is {meta.get('schema')!r}, "
                f"expected {DIGEST_SCHEMA!r}")
        for key in ("n", "f", "seed", "cadence", "segments", "records"):
            if not uint(meta.get(key)):
                bad(1, f"header {key} is {meta.get(key)!r}, expected a "
                    "non-negative integer")
        if uint(meta.get("n")):
            n = meta["n"]
        if uint(meta.get("segments")):
            segments = meta["segments"]
            if segments < 1 or segments & (segments - 1):
                bad(1, f"segments {segments} is not a power of two >= 1")
                segments = None
        if uint(meta.get("records")):
            declared_records = meta["records"]
    elif meta is not None:
        bad(1, "header line is not a JSON object")

    hex16 = re.compile(r"^[0-9a-f]{16}$")
    record_count = 0
    prev_step = -1
    # Consecutive records of one (step, subsystem) form one tree, emitted
    # top-down; records[level] collects that group's digests per level.
    group_key: tuple | None = None
    group_start = 2
    group: list[list[int]] = []

    def check_group() -> None:
        if group_key is None or segments is None or n is None:
            return
        step, subsystem = group_key
        depth = segments.bit_length()  # levels 0..depth-1
        if len(group) == 1 and len(group[0]) == 1:
            return  # scalar subsystem: a single root record
        if len(group) != depth \
                or any(len(level) != 1 << l for l, level in enumerate(group)):
            bad(group_start, f"step {step} subsystem {subsystem!r}: "
                f"{sum(len(lv) for lv in group)} records do not form a "
                f"{segments}-leaf segment tree (expected 2*{segments}-1 "
                "top-down)")
            return
        for l in range(depth - 1):
            for j, parent in enumerate(group[l]):
                want = mix_seed(group[l + 1][2 * j], group[l + 1][2 * j + 1])
                if parent != want:
                    bad(group_start, f"step {step} subsystem {subsystem!r} "
                        f"level {l} segment {j}: parent digest "
                        f"{parent:016x} != mix_seed(children) {want:016x}")

    for i, line in enumerate(lines[1:], start=2):
        if not line:
            bad(i, "blank line inside the digest stream")
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as err:
            bad(i, f"not valid JSON ({err})")
            continue
        if not isinstance(record, dict):
            bad(i, "record line is not a JSON object")
            continue
        record_count += 1
        if set(record) != DIGEST_RECORD_KEYS:
            bad(i, f"record keys are {sorted(record)}, "
                f"expected {sorted(DIGEST_RECORD_KEYS)}")
            continue
        step, level = record["step"], record["level"]
        lo, hi = record["lo"], record["hi"]
        if not uint(step):
            bad(i, f"step {step!r} is not a non-negative integer")
            continue
        if step < prev_step:
            bad(i, f"step went backwards ({step} after {prev_step}); "
                "samples are emitted in increasing step order")
        prev_step = max(prev_step, step)
        if not isinstance(record["subsystem"], str):
            bad(i, f"subsystem {record['subsystem']!r} is not a string")
            continue
        if not (uint(level) and uint(lo) and uint(hi)):
            bad(i, "level/lo/hi must be non-negative integers")
            continue
        if not (isinstance(record["digest"], str)
                and hex16.match(record["digest"])):
            bad(i, f"digest {record['digest']!r} is not 16 lowercase hex "
                "digits")
            continue
        if n is not None and not lo <= hi <= n:
            bad(i, f"range [{lo}, {hi}) out of order or beyond n={n}")
        if n is not None and n > 0 and segments is not None:
            width = 1 << level
            j = (lo * width + n - 1) // n  # smallest j with j*n/width >= lo
            if level >= segments.bit_length() \
                    or lo != (j * n) // width or hi != ((j + 1) * n) // width:
                bad(i, f"range [{lo}, {hi}) at level {level} does not sit "
                    f"on the floor(j*n/{width}) segment grid")
        key = (step, record["subsystem"])
        if key != group_key:
            check_group()
            group_key, group, group_start = key, [], i
        while len(group) <= level:
            group.append([])
        group[level].append(int(record["digest"], 16))

    check_group()
    if declared_records is not None and declared_records != record_count:
        bad(1, f"header declares {declared_records} records "
            f"but the file has {record_count}")

    for finding in findings:
        print(finding)
    status = "valid" if not findings else f"{len(findings)} finding(s)"
    print(f"lint_ugf: {record_count} digest records checked, {status}",
          file=sys.stderr)
    return len(findings)


METRICS_SCHEMA = "ugf-metrics-v1"
MANIFEST_SCHEMA = "ugf-manifest-v1"
MANIFEST_KEYS = {"schema", "figure", "protocol", "adversaries", "sweep",
                 "params", "artifacts", "build", "host", "wall_time_seconds",
                 "metrics"}
MANIFEST_SWEEP_KEYS = {"grid", "f_fraction", "runs", "base_seed", "threads",
                       "max_steps", "max_events", "collect_timeseries",
                       "timeseries_samples"}
MANIFEST_BUILD_KEYS = {"git_describe", "build_type", "sanitizers", "compiler",
                       "audit_level"}
MANIFEST_HOST_KEYS = {"hostname", "hardware_threads"}


def _string_map_findings(obj: object, where: str) -> list[str]:
    if not isinstance(obj, dict):
        return [f"{where} is not a JSON object"]
    bad = [k for k, v in obj.items() if not isinstance(v, str)]
    return [f"{where}[{k!r}] is not a string" for k in bad]


def validate_metrics_object(obj: object, where: str) -> list[str]:
    """Findings for one ugf-metrics-v1 object (standalone or embedded)."""
    findings: list[str] = []
    if not isinstance(obj, dict):
        return [f"{where} is not a JSON object"]
    if set(obj) != {"schema", "counters", "gauges", "histograms"}:
        findings.append(
            f"{where} keys are {sorted(obj)}, expected "
            "['counters', 'gauges', 'histograms', 'schema']")
        return findings
    if obj["schema"] != METRICS_SCHEMA:
        findings.append(f"{where}.schema is {obj['schema']!r}, "
                        f"expected {METRICS_SCHEMA!r}")
    for section in ("counters", "gauges"):
        values = obj[section]
        if not isinstance(values, dict):
            findings.append(f"{where}.{section} is not a JSON object")
            continue
        for name, value in values.items():
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                findings.append(f"{where}.{section}[{name!r}] is {value!r}, "
                                "expected a non-negative integer")
    histograms = obj["histograms"]
    if not isinstance(histograms, dict):
        return findings + [f"{where}.histograms is not a JSON object"]
    for name, hist in histograms.items():
        spot = f"{where}.histograms[{name!r}]"
        if not isinstance(hist, dict):
            findings.append(f"{spot} is not a JSON object")
            continue
        if set(hist) != {"count", "sum", "min", "max", "buckets"}:
            findings.append(f"{spot} keys are {sorted(hist)}, expected "
                            "['buckets', 'count', 'max', 'min', 'sum']")
            continue
        buckets = hist["buckets"]
        if not isinstance(buckets, list):
            findings.append(f"{spot}.buckets is not an array")
            continue
        bucketed = 0
        prev_lower = -1
        for pair in buckets:
            if (not isinstance(pair, list) or len(pair) != 2
                    or not all(isinstance(x, int) and not isinstance(x, bool)
                               for x in pair)):
                findings.append(f"{spot}.buckets holds {pair!r}, expected "
                                "[lower, count] integer pairs")
                break
            if pair[0] <= prev_lower:
                findings.append(f"{spot}.buckets lower bounds not strictly "
                                f"increasing at {pair[0]}")
                break
            prev_lower = pair[0]
            bucketed += pair[1]
        else:
            if bucketed != hist["count"]:
                findings.append(f"{spot} bucket counts sum to {bucketed}, "
                                f"count declares {hist['count']}")
    return findings


def validate_manifest_object(obj: dict) -> list[str]:
    """Findings for one ugf-manifest-v1 document."""
    findings: list[str] = []
    if set(obj) != MANIFEST_KEYS:
        findings.append(f"manifest keys are {sorted(obj)}, "
                        f"expected {sorted(MANIFEST_KEYS)}")
        return findings
    adversaries = obj["adversaries"]
    if not isinstance(adversaries, list):
        findings.append("manifest.adversaries is not an array")
    else:
        for i, adv in enumerate(adversaries):
            spot = f"manifest.adversaries[{i}]"
            if not isinstance(adv, dict) \
                    or set(adv) != {"label", "factory", "params"}:
                findings.append(f"{spot} must have exactly "
                                "label/factory/params")
                continue
            findings.extend(
                _string_map_findings(adv["params"], f"{spot}.params"))
    sweep = obj["sweep"]
    if sweep is not None:
        if not isinstance(sweep, dict) or set(sweep) != MANIFEST_SWEEP_KEYS:
            findings.append("manifest.sweep keys are "
                            f"{sorted(sweep) if isinstance(sweep, dict) else sweep!r}, "
                            f"expected {sorted(MANIFEST_SWEEP_KEYS)} or null")
        elif not (isinstance(sweep["grid"], list)
                  and all(isinstance(n, int) and n > 0
                          for n in sweep["grid"])):
            findings.append("manifest.sweep.grid must be an array of "
                            "positive integers")
    for section in ("params", "artifacts"):
        findings.extend(
            _string_map_findings(obj[section], f"manifest.{section}"))
    build = obj["build"]
    if not isinstance(build, dict) or set(build) != MANIFEST_BUILD_KEYS:
        findings.append(f"manifest.build keys must be "
                        f"{sorted(MANIFEST_BUILD_KEYS)}")
    host = obj["host"]
    if not isinstance(host, dict) or set(host) != MANIFEST_HOST_KEYS:
        findings.append(f"manifest.host keys must be "
                        f"{sorted(MANIFEST_HOST_KEYS)}")
    if not isinstance(obj["wall_time_seconds"], (int, float)) \
            or isinstance(obj["wall_time_seconds"], bool) \
            or obj["wall_time_seconds"] < 0:
        findings.append("manifest.wall_time_seconds must be a non-negative "
                        "number")
    findings.extend(validate_metrics_object(obj["metrics"],
                                            "manifest.metrics"))
    return findings


def validate_artifact(path: Path) -> int:
    """Validates one campaign artifact; prints findings, returns count."""
    import json

    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as err:
        print(f"{path}:1: artifact: unreadable ({err})")
        return 1

    # A whole-file JSON document is a manifest or metrics snapshot;
    # anything else is NDJSON, dispatched on the schema its first line
    # declares (lineage DAG vs plain event trace).
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        try:
            first = json.loads(text.splitlines()[0]) if text else None
        except json.JSONDecodeError:
            first = None
        if isinstance(first, dict) and first.get("schema") == LINEAGE_SCHEMA:
            return validate_lineage(path)
        if isinstance(first, dict) and first.get("schema") == DIGEST_SCHEMA:
            return validate_digest(path)
        return validate_trace(path)
    if not isinstance(doc, dict):
        print(f"{path}:1: artifact: top-level JSON is not an object")
        return 1

    schema = doc.get("schema")
    if schema == MANIFEST_SCHEMA:
        findings = validate_manifest_object(doc)
        kind = "manifest"
    elif schema == METRICS_SCHEMA:
        findings = validate_metrics_object(doc, "metrics")
        kind = "metrics"
    else:
        print(f"{path}:1: artifact: unknown schema {schema!r} (expected "
              f"{MANIFEST_SCHEMA!r}, {METRICS_SCHEMA!r}, or an NDJSON "
              f"{TRACE_SCHEMA!r} / {LINEAGE_SCHEMA!r} / {DIGEST_SCHEMA!r} "
              "stream)")
        return 1

    for finding in findings:
        print(f"{path}:1: {kind}: {finding}")
    status = "valid" if not findings else f"{len(findings)} finding(s)"
    print(f"lint_ugf: {kind} checked, {status}", file=sys.stderr)
    return len(findings)


def main(argv: list[str]) -> int:
    if len(argv) == 3 and argv[1] == "--validate-trace":
        return 1 if validate_artifact(Path(argv[2])) else 0
    if len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    root = Path(argv[1]).resolve() if len(argv) == 2 else Path.cwd()
    if not (root / "src").is_dir():
        print(f"lint_ugf: no src/ under {root}", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    checked = 0
    for top in SOURCE_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in CXX_EXTENSIONS and path.is_file():
                rel = path.relative_to(root).as_posix()
                if rel.startswith(EXCLUDE_PREFIXES):
                    continue
                findings.extend(lint_file(root, path))
                checked += 1

    for f in findings:
        print(f)
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"lint_ugf: {checked} files checked, {status}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
