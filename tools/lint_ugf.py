#!/usr/bin/env python3
"""Repo-specific lint rules for the UGF simulator.

These are the rules a C++ compiler cannot enforce but that the
reproduction's correctness story depends on:

  rng          Every random draw must flow through the seeded
               ``ugf::util::Rng`` (src/util/rng.*): ``rand()``,
               ``srand()`` and ``std::random_device`` make a run
               irreproducible, which silently breaks the Monte-Carlo
               determinism contract and every regression baseline.
  assert       Invariants go through UGF_ASSERT/UGF_AUDIT from
               ``src/util/check.hpp`` — a naked ``assert(`` vanishes
               under NDEBUG without a trace and reports nothing useful
               when it fires.
  iostream     Library code under ``src/`` must not include
               ``<iostream>``: its static ios_base initializer taxes
               every binary, and ad-hoc console output from the library
               corrupts the CSV/JSON report streams the tools emit.
               (``<fstream>``/``<sstream>``/``<ostream>`` are fine.)
  header       Every header starts with ``#pragma once`` followed by a
               Doxygen ``\\file`` comment, so includes are idempotent
               and each header states its purpose.
  ordered      Report/analysis/observability code must not iterate an
               unordered container into its output: iteration order is
               implementation-defined, so reports and trace files would
               differ between runs/compilers. Use std::map/std::vector,
               or sort first. ``src/obs/`` is in scope because its
               exporters promise byte-determinism (golden-file tests).
  sharedptr    ``src/sim/`` and ``src/protocols/`` must not use
               ``std::shared_ptr``/``std::make_shared``: message
               payloads live in the per-run ``sim::PayloadArena``
               (``PayloadRef`` handles, ``ctx.make_payload<T>()``), and
               an atomic refcount on the delivery hot path is exactly
               the cost the arena removed. Factory plumbing that
               genuinely needs shared ownership goes on the explicit
               allowlist (``SHAREDPTR_ALLOWLIST``).
  scheduler    ``src/sim/`` must not use ``std::priority_queue`` or the
               ``std::push_heap``/``pop_heap``/``make_heap`` primitives:
               event ordering goes through ``sim::TimingWheel``
               (src/sim/timing_wheel.hpp), which is O(1) amortized and
               deterministic by construction. A comparison-based heap
               sneaking back in silently reverts the scheduler to
               O(log n) per event. The pre-wheel heap survives in
               ``bench/reference_heap.hpp`` as the benchmark baseline —
               bench/ is out of scope on purpose.

A finding can be suppressed on its line (or the line above) with:
    // ugf-lint: allow(<rule>)

Usage: lint_ugf.py [REPO_ROOT]
       lint_ugf.py --validate-trace FILE.ndjson
The second form validates an NDJSON trace written by the src/obs
exporters against the ``ugf-trace-v1`` schema (meta line, per-event
keys, known types, non-decreasing steps, event count).

Exits 0 when clean, 1 with findings (one ``file:line: rule: message``
per line), 2 on usage errors.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

CXX_EXTENSIONS = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}
SOURCE_DIRS = ("src", "tests", "bench", "examples", "tools")

ALLOW_RE = re.compile(r"ugf-lint:\s*allow\(([a-z-]+)\)")
LINE_COMMENT_RE = re.compile(r"//.*$")

RNG_RE = re.compile(r"\b(?:std::)?s?rand\s*\(|\bstd::random_device\b")
ASSERT_RE = re.compile(r"(?<![_A-Za-z0-9])assert\s*\(")
IOSTREAM_RE = re.compile(r'#\s*include\s*[<"]iostream[>"]')
UNORDERED_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b")
SHAREDPTR_RE = re.compile(r"\bstd::(?:shared_ptr|make_shared)\b")
SCHEDULER_RE = re.compile(
    r"\bstd::(?:priority_queue|push_heap|pop_heap|make_heap)\b")

# Rule applicability, by repo-relative posix path.
RNG_EXEMPT = ("src/util/rng.hpp", "src/util/rng.cpp")
ASSERT_EXEMPT = ("src/util/check.hpp",)
ORDERED_SCOPE = ("src/runner/", "src/analysis/", "src/obs/")
SHAREDPTR_SCOPE = ("src/sim/", "src/protocols/")
# Files allowed to use shared ownership despite being in scope (factory
# plumbing that outlives a single run would qualify; currently nothing).
SHAREDPTR_ALLOWLIST: tuple[str, ...] = ()
SCHEDULER_SCOPE = ("src/sim/",)


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def strip_strings(code: str) -> str:
    """Blanks out string/char literal contents (keeps column positions)."""
    out = []
    i, n = 0, len(code)
    while i < n:
        ch = code[i]
        if ch in "\"'":
            quote = ch
            out.append(ch)
            i += 1
            while i < n and code[i] != quote:
                out.append(" " if code[i] != "\\" else " ")
                i += 2 if code[i] == "\\" else 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def allowed(rule: str, lines: list[str], idx: int) -> bool:
    for look in (idx, idx - 1):
        if 0 <= look < len(lines):
            m = ALLOW_RE.search(lines[look])
            if m and m.group(1) == rule:
                return True
    return False


def lint_file(root: Path, path: Path) -> list[Finding]:
    rel = path.relative_to(root).as_posix()
    try:
        text = path.read_text(encoding="utf-8")
    except UnicodeDecodeError:
        return [Finding(rel, 1, "encoding", "file is not valid UTF-8")]
    lines = text.splitlines()
    findings: list[Finding] = []

    in_block_comment = False
    for i, raw in enumerate(lines):
        lineno = i + 1
        # Track /* */ blocks so commented-out code is not linted.
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2 :]
            in_block_comment = False
        # Remove complete /* ... */ spans, then detect an opening one.
        line = re.sub(r"/\*.*?\*/", " ", line)
        if "/*" in line:
            line = line.split("/*", 1)[0]
            in_block_comment = True
        line = LINE_COMMENT_RE.sub("", line)
        code = strip_strings(line)

        if RNG_RE.search(code) and rel not in RNG_EXEMPT:
            if not allowed("rng", lines, i):
                findings.append(
                    Finding(rel, lineno, "rng",
                            "non-deterministic randomness; draw from "
                            "ugf::util::Rng (src/util/rng.hpp) instead"))
        if (rel.startswith("src/") and rel not in ASSERT_EXEMPT
                and ASSERT_RE.search(code)):
            if not allowed("assert", lines, i):
                findings.append(
                    Finding(rel, lineno, "assert",
                            "naked assert(); use UGF_ASSERT/UGF_AUDIT from "
                            "util/check.hpp so the check survives NDEBUG "
                            "policy and reports file:line"))
        if rel.startswith("src/") and IOSTREAM_RE.search(code):
            if not allowed("iostream", lines, i):
                findings.append(
                    Finding(rel, lineno, "iostream",
                            "<iostream> in library code; use <cstdio> or "
                            "<fstream>/<sstream>"))
        if any(rel.startswith(scope) for scope in ORDERED_SCOPE):
            if UNORDERED_RE.search(code) and not allowed("ordered", lines, i):
                findings.append(
                    Finding(rel, lineno, "ordered",
                            "unordered container in report-producing code; "
                            "iteration order is not deterministic — use "
                            "std::map / sorted std::vector"))
        if (any(rel.startswith(scope) for scope in SHAREDPTR_SCOPE)
                and rel not in SHAREDPTR_ALLOWLIST
                and SHAREDPTR_RE.search(code)):
            if not allowed("sharedptr", lines, i):
                findings.append(
                    Finding(rel, lineno, "sharedptr",
                            "shared_ptr in the sim/protocol layer; payloads "
                            "are arena-owned (ctx.make_payload<T>() -> "
                            "sim::PayloadRef, see sim/payload_arena.hpp)"))
        if (any(rel.startswith(scope) for scope in SCHEDULER_SCOPE)
                and SCHEDULER_RE.search(code)):
            if not allowed("scheduler", lines, i):
                findings.append(
                    Finding(rel, lineno, "scheduler",
                            "comparison-based heap in the simulator; event "
                            "ordering goes through sim::TimingWheel "
                            "(sim/timing_wheel.hpp), O(1) amortized and "
                            "deterministic by construction"))

    if path.suffix in {".hpp", ".hh", ".h"}:
        findings.extend(lint_header_prelude(rel, lines))
    return findings


def lint_header_prelude(rel: str, lines: list[str]) -> list[Finding]:
    nonempty = [(i + 1, l.strip()) for i, l in enumerate(lines) if l.strip()]
    if not nonempty:
        return [Finding(rel, 1, "header", "empty header")]
    first_line, first = nonempty[0]
    if first != "#pragma once":
        return [Finding(rel, first_line, "header",
                        "headers must start with #pragma once")]
    for lineno, stripped in nonempty[1:4]:
        if "\\file" in stripped:
            return []
    return [Finding(rel, first_line, "header",
                    "missing Doxygen '\\file' comment after #pragma once")]


# --- NDJSON trace validation (ugf-trace-v1) -------------------------------

TRACE_SCHEMA = "ugf-trace-v1"
TRACE_META_KEYS = {"schema", "protocol", "adversary", "n", "f", "seed",
                   "events"}
TRACE_EVENT_KEYS = {"step", "type", "p", "q", "v0", "v1"}
TRACE_EVENT_TYPES = {
    "emission", "delivery", "drop", "omission", "crash", "infection",
    "step-begin", "step-end", "sleep", "delay-change", "step-time-change",
}


def validate_trace(path: Path) -> int:
    """Validates one NDJSON trace file; prints findings, returns count."""
    import json

    findings: list[str] = []

    def bad(lineno: int, message: str) -> None:
        findings.append(f"{path}:{lineno}: trace: {message}")

    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError) as err:
        print(f"{path}:1: trace: unreadable ({err})")
        return 1
    if not lines:
        print(f"{path}:1: trace: empty file (expected a meta line)")
        return 1

    declared_events = None
    try:
        meta = json.loads(lines[0])
    except json.JSONDecodeError as err:
        bad(1, f"meta line is not valid JSON ({err})")
        meta = None
    if isinstance(meta, dict):
        if set(meta) != TRACE_META_KEYS:
            bad(1, "meta keys are "
                f"{sorted(meta)}, expected {sorted(TRACE_META_KEYS)}")
        if meta.get("schema") != TRACE_SCHEMA:
            bad(1, f"schema is {meta.get('schema')!r}, "
                f"expected {TRACE_SCHEMA!r}")
        if isinstance(meta.get("events"), int):
            declared_events = meta["events"]
    elif meta is not None:
        bad(1, "meta line is not a JSON object")

    prev_step = -1
    event_count = 0
    for i, line in enumerate(lines[1:], start=2):
        if not line:
            bad(i, "blank line inside the trace")
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as err:
            bad(i, f"not valid JSON ({err})")
            continue
        if not isinstance(event, dict):
            bad(i, "event line is not a JSON object")
            continue
        event_count += 1
        if set(event) != TRACE_EVENT_KEYS:
            bad(i, f"event keys are {sorted(event)}, "
                f"expected {sorted(TRACE_EVENT_KEYS)}")
            continue
        if event["type"] not in TRACE_EVENT_TYPES:
            bad(i, f"unknown event type {event['type']!r}")
        step = event["step"]
        if not isinstance(step, int) or step < 0:
            bad(i, f"step {step!r} is not a non-negative integer")
        elif step < prev_step:
            bad(i, f"step went backwards ({step} after {prev_step}); the "
                "engine emits in non-decreasing step order")
        else:
            prev_step = step
        for key in ("p", "q"):
            value = event[key]
            if value is not None and (not isinstance(value, int)
                                      or value < 0):
                bad(i, f"{key} is {value!r}, expected a process id or null")

    if declared_events is not None and declared_events != event_count:
        bad(1, f"meta declares {declared_events} events "
            f"but the file has {event_count}")

    for finding in findings:
        print(finding)
    status = "valid" if not findings else f"{len(findings)} finding(s)"
    print(f"lint_ugf: {event_count} trace events checked, {status}",
          file=sys.stderr)
    return len(findings)


def main(argv: list[str]) -> int:
    if len(argv) == 3 and argv[1] == "--validate-trace":
        return 1 if validate_trace(Path(argv[2])) else 0
    if len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    root = Path(argv[1]).resolve() if len(argv) == 2 else Path.cwd()
    if not (root / "src").is_dir():
        print(f"lint_ugf: no src/ under {root}", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    checked = 0
    for top in SOURCE_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in CXX_EXTENSIONS and path.is_file():
                findings.extend(lint_file(root, path))
                checked += 1

    for f in findings:
        print(f)
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"lint_ugf: {checked} files checked, {status}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
