#!/usr/bin/env python3
"""Delta report between two ``ugf-bench-baseline-v1`` JSON files.

CI runs the micro benches on every push and compares the fresh numbers
against the committed ``BENCH_baseline.json``; the resulting delta file
is uploaded as a build artifact so perf drift is visible per commit
without gating the build on noisy shared runners.

Usage: bench_delta.py COMMITTED_BASELINE FRESH_RUN [--out=DELTA.json]
                      [--gate] [--gate-pct=10]

For every numeric field present in both files the report holds the
committed value, the fresh value and the relative delta in percent
(positive = fresh is larger). Non-numeric fields are compared for
equality. Exits 0 when both files parse and share the schema, 2 on
usage/schema errors — by default the delta itself never fails the job.

``--gate`` turns the report into a regression gate: exit 1 when any of
the hot-path cost fields (detached ns/step at both sizes, scheduler
wheel ns/op) is more than ``--gate-pct`` percent above the committed
baseline. Only increases gate; getting faster never fails.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SCHEMA = "ugf-bench-baseline-v1"

# Fields the --gate mode refuses to let regress: the costs everybody
# pays with observability detached, the scheduler kernel itself, the
# lineage tracker (the one attached sink CI smoke always exercises),
# the SoA engine-core envelope (ns/step and resident bytes per process
# at the baseline scale point), the partitioned step executor (its
# coordinator merge cost, and the speedup it buys — the one gate field
# where *down* is the regression direction), and the state-digest probe
# at its relaxed cadence-64 setting.
GATE_FIELDS = (
    "detached_pristine_ns_per_step",
    "detached_paired_ns_per_step",
    "large_n_detached_ns_per_step",
    "sched_wheel_ns_per_op",
    "lineage_tracker_ns_per_step",
    "soa_step_ns",
    "bytes_per_process",
    "parallel_merge_ns_per_step",
    "parallel_step_speedup_x",
    "digest_ns_per_step",
)

# Gate fields where larger is better: these fail when the fresh value
# drops more than --gate-pct below the committed baseline, instead of
# when it rises above it.
HIGHER_IS_BETTER = frozenset({
    "parallel_step_speedup_x",
})


def load(path: str) -> dict:
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_delta: cannot read {path}: {err}")
    if not isinstance(data, dict) or data.get("schema") != SCHEMA:
        sys.exit(f"bench_delta: {path} is not a {SCHEMA} file")
    return data


def main(argv: list[str]) -> int:
    args = [a for a in argv[1:] if not a.startswith("--")]
    out_path = None
    gate = False
    gate_pct = 10.0
    for a in argv[1:]:
        if a.startswith("--out="):
            out_path = a.split("=", 1)[1]
        elif a == "--out":
            sys.exit("bench_delta: use --out=FILE")
        elif a == "--gate":
            gate = True
        elif a.startswith("--gate-pct="):
            gate_pct = float(a.split("=", 1)[1])
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    committed = load(args[0])
    fresh = load(args[1])

    report: dict = {"schema": "ugf-bench-delta-v1",
                    "committed": args[0], "fresh": args[1],
                    "fields": {}, "mismatched": []}
    for key in sorted(set(committed) | set(fresh)):
        a, b = committed.get(key), fresh.get(key)
        if isinstance(a, (int, float)) and isinstance(b, (int, float)) \
                and not isinstance(a, bool) and not isinstance(b, bool):
            delta = (b - a) / a * 100.0 if a else float("inf") if b else 0.0
            report["fields"][key] = {
                "committed": a, "fresh": b, "delta_pct": round(delta, 2)}
            print(f"  {key:36s} {a:>14.2f} -> {b:>14.2f}  "
                  f"({delta:+.2f}%)")
        elif a != b:
            report["mismatched"].append(key)
            print(f"  {key:36s} {a!r} != {b!r}")

    if out_path:
        Path(out_path).write_text(json.dumps(report, indent=1) + "\n",
                                  encoding="utf-8")
        print(f"bench_delta: wrote {out_path}", file=sys.stderr)

    if gate:
        failed = []
        # The speedup gate only means something when both boxes had at
        # least par_threads hardware threads: an oversubscribed runner
        # measures contention, not a regression. Baselines predating
        # the hardware_threads field skip the gate too (nothing
        # trustworthy to compare against).
        def undersized(data: dict) -> bool:
            hw = data.get("hardware_threads")
            par = data.get("par_threads")
            return not isinstance(hw, int) or isinstance(hw, bool) \
                or (isinstance(par, int) and not isinstance(par, bool)
                    and hw < par)

        skip_speedup = undersized(committed) or undersized(fresh)
        if skip_speedup:
            print("bench_delta: skipping parallel_step_speedup_x gate "
                  "(hardware_threads unrecorded or below par_threads in "
                  f"committed [{committed.get('hardware_threads')!r}/"
                  f"{committed.get('par_threads')!r}] or fresh "
                  f"[{fresh.get('hardware_threads')!r}/"
                  f"{fresh.get('par_threads')!r}])", file=sys.stderr)
        for key in GATE_FIELDS:
            if key == "parallel_step_speedup_x" and skip_speedup:
                continue
            entry = report["fields"].get(key)
            if entry is None:
                # A gate field missing from either file is itself a
                # regression — someone dropped it from the emitter.
                failed.append(f"{key}: missing from baseline or fresh run")
            elif key in HIGHER_IS_BETTER:
                if entry["delta_pct"] < -gate_pct:
                    failed.append(f"{key}: {entry['committed']:.2f} -> "
                                  f"{entry['fresh']:.2f} "
                                  f"({entry['delta_pct']:+.2f}% < "
                                  f"-{gate_pct}%)")
            elif entry["delta_pct"] > gate_pct:
                failed.append(f"{key}: {entry['committed']:.1f} -> "
                              f"{entry['fresh']:.1f} "
                              f"({entry['delta_pct']:+.2f}% > {gate_pct}%)")
        if failed:
            for line in failed:
                print(f"bench_delta: GATE FAIL {line}", file=sys.stderr)
            return 1
        print(f"bench_delta: gate OK (all {len(GATE_FIELDS)} hot-path "
              f"fields within {gate_pct}%)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
