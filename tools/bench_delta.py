#!/usr/bin/env python3
"""Delta report between two ``ugf-bench-baseline-v1`` JSON files.

CI runs the micro benches on every push and compares the fresh numbers
against the committed ``BENCH_baseline.json``; the resulting delta file
is uploaded as a build artifact so perf drift is visible per commit
without gating the build on noisy shared runners.

Usage: bench_delta.py COMMITTED_BASELINE FRESH_RUN [--out DELTA.json]

For every numeric field present in both files the report holds the
committed value, the fresh value and the relative delta in percent
(positive = fresh is larger). Non-numeric fields are compared for
equality. Exits 0 when both files parse and share the schema, 2 on
usage/schema errors — the delta itself never fails the job.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SCHEMA = "ugf-bench-baseline-v1"


def load(path: str) -> dict:
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_delta: cannot read {path}: {err}")
    if not isinstance(data, dict) or data.get("schema") != SCHEMA:
        sys.exit(f"bench_delta: {path} is not a {SCHEMA} file")
    return data


def main(argv: list[str]) -> int:
    args = [a for a in argv[1:] if not a.startswith("--")]
    out_path = None
    for a in argv[1:]:
        if a.startswith("--out="):
            out_path = a.split("=", 1)[1]
        elif a == "--out":
            sys.exit("bench_delta: use --out=FILE")
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    committed = load(args[0])
    fresh = load(args[1])

    report: dict = {"schema": "ugf-bench-delta-v1",
                    "committed": args[0], "fresh": args[1],
                    "fields": {}, "mismatched": []}
    for key in sorted(set(committed) | set(fresh)):
        a, b = committed.get(key), fresh.get(key)
        if isinstance(a, (int, float)) and isinstance(b, (int, float)) \
                and not isinstance(a, bool) and not isinstance(b, bool):
            delta = (b - a) / a * 100.0 if a else float("inf") if b else 0.0
            report["fields"][key] = {
                "committed": a, "fresh": b, "delta_pct": round(delta, 2)}
            print(f"  {key:36s} {a:>14.2f} -> {b:>14.2f}  "
                  f"({delta:+.2f}%)")
        elif a != b:
            report["mismatched"].append(key)
            print(f"  {key:36s} {a!r} != {b!r}")

    if out_path:
        Path(out_path).write_text(json.dumps(report, indent=1) + "\n",
                                  encoding="utf-8")
        print(f"bench_delta: wrote {out_path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
