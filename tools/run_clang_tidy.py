#!/usr/bin/env python3
"""Runs clang-tidy over the library sources using the build tree's
compile_commands.json, in parallel, failing on any diagnostic.

Registered as the `clang_tidy` ctest test when clang-tidy is on PATH
(see the top-level CMakeLists.txt); the container's minimal toolchain
ships without it, in which case the test is simply not registered and
`scripts/check.sh` prints a skip notice instead.

Usage:
  run_clang_tidy.py --clang-tidy PATH --build-dir DIR --source-dir DIR
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import subprocess
import sys
from pathlib import Path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument("--build-dir", required=True)
    parser.add_argument("--source-dir", required=True)
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    args = parser.parse_args()

    build_dir = Path(args.build_dir)
    source_dir = Path(args.source_dir).resolve()
    compdb = build_dir / "compile_commands.json"
    if not compdb.is_file():
        print(f"run_clang_tidy: {compdb} not found; configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON (the presets do)",
              file=sys.stderr)
        return 2

    entries = json.loads(compdb.read_text())
    files = sorted({
        str(Path(e["file"]).resolve())
        for e in entries
        if str(Path(e["file"]).resolve()).startswith(str(source_dir / "src"))
    })
    if not files:
        print("run_clang_tidy: no src/ translation units in the database",
              file=sys.stderr)
        return 2

    def run_one(path: str) -> tuple[str, int, str]:
        proc = subprocess.run(
            [args.clang_tidy, "-p", str(build_dir), "--quiet", path],
            capture_output=True, text=True)
        return path, proc.returncode, proc.stdout + proc.stderr

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for path, code, output in pool.map(run_one, files):
            rel = os.path.relpath(path, source_dir)
            if code != 0 or "warning:" in output or "error:" in output:
                failures += 1
                print(f"--- {rel}")
                print(output.strip())
    print(f"run_clang_tidy: {len(files)} files, {failures} with findings",
          file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
