#!/usr/bin/env python3
"""Human-readable report from a ``ugf-lineage-v1`` NDJSON file.

Folds the lineage stream ``--lineage`` writes (see
docs/OBSERVABILITY.md) into the three summaries an attack post-mortem
wants first:

  * the propagation profile — infections per depth, max width, and how
    the critical path compares to the tree's depth;
  * the critical path itself — the root-to-last-process chain of
    infections, one hop per line, with the step each hop landed;
  * adversary attribution — for every action class (omission, drop,
    wipe, crash, delay-change, step-time-change), how much of the
    budget landed ON the critical path versus off it. Budget spent off
    the critical path did not delay termination at all.

Usage:
  lineage_report.py LINEAGE.ndjson [LINEAGE.ndjson ...]

With several files the report is printed per file, making it easy to
eyeball a budget sweep (fig. family: critical-path length vs adversary
budget). Exits 0 on success, 2 when a file is unreadable or not a
ugf-lineage-v1 stream.
"""

from __future__ import annotations

import json
import sys
from collections import Counter
from pathlib import Path

SCHEMA = "ugf-lineage-v1"

ACTION_LABELS = (
    ("omission", "omissions"),
    ("drop", "drops"),
    ("wipe", "wipes"),
    ("crash", "crashes"),
    ("delay_change", "delay changes"),
    ("step_time_change", "step-time changes"),
)


def load_stream(path: Path) -> tuple[dict, list[dict]]:
    lines = path.read_text(encoding="utf-8").splitlines()
    if not lines:
        sys.exit(f"lineage_report: {path} is empty")
    meta = json.loads(lines[0])
    if not isinstance(meta, dict) or meta.get("schema") != SCHEMA:
        sys.exit(f"lineage_report: {path} is not a {SCHEMA} stream")
    records = [json.loads(line) for line in lines[1:] if line]
    return meta, records


def report(path: Path) -> None:
    meta, records = load_stream(path)
    nodes = [r for r in records if r.get("kind") == "node"]
    suppressed = [r for r in records if r.get("kind") == "suppressed"]
    actions = [r for r in records if r.get("kind") == "action"]
    attribution = next(
        (r for r in records if r.get("kind") == "attribution"), None)

    print(f"== {path} ==")
    print(f"{meta['protocol']} vs {meta['adversary']}  "
          f"(n={meta['n']}, f={meta['f']}, seed={meta['seed']})")
    print(f"infected {meta['infected']}/{meta['n']}, last process "
          f"{meta['last_process']} at step {meta['last_step']}")

    # Propagation profile: infections per depth level.
    width = Counter(node["depth"] for node in nodes)
    print(f"\npropagation profile (depth_max {meta['depth_max']}, "
          f"width_max {meta['width_max']}):")
    peak = max(width.values(), default=1)
    for depth in sorted(width):
        bar = "#" * max(1, round(40 * width[depth] / peak))
        print(f"  depth {depth:3d}  {width[depth]:6d}  {bar}")

    # Critical path: the chain that infected the last process.
    chain = sorted((n for n in nodes if n.get("on_critical_path")),
                   key=lambda n: (n["depth"], n["step"]))
    print(f"\ncritical path ({meta['critical_path_len']} hops):")
    for node in chain:
        src = "root" if node["parent"] is None \
            else f"from p{node['parent']} (emission #{node['cause']})"
        print(f"  step {node['step']:5d}  p{node['p']:<5d} {src}")

    # Attribution: adversary budget on vs off the critical path.
    if attribution is not None:
        on, off = attribution["on"], attribution["off"]
        total_on = sum(on.values())
        total_off = sum(off.values())
        total = total_on + total_off
        print(f"\nadversary attribution ({total} actions, "
              f"{total_on} on the critical path):")
        for key, label in ACTION_LABELS:
            if on[key] == 0 and off[key] == 0:
                continue
            print(f"  {label:<18} on {on[key]:5d}   off {off[key]:5d}")
        if total:
            print(f"  budget efficiency: {100.0 * total_on / total:.1f}% "
                  "of actions touched the chain that decided termination")
    print(f"records: {len(nodes)} nodes, {len(suppressed)} suppressed "
          f"emissions, {len(actions)} adversary actions\n")


def main(argv: list[str]) -> int:
    paths = [a for a in argv[1:] if not a.startswith("-")]
    if not paths or any(a in ("-h", "--help") for a in argv[1:]):
        print(__doc__, file=sys.stderr)
        return 0 if paths or "-h" in argv[1:] or "--help" in argv[1:] else 2
    for arg in paths:
        path = Path(arg)
        if not path.is_file():
            sys.exit(f"lineage_report: no such file: {path}")
        report(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
