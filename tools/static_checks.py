#!/usr/bin/env python3
"""One front end for every static gate: lint, format, tidy, analyzer.

Runs, in order:

  lint_ugf      tools/lint_ugf.py — regex-level repo rules
  clang_format  clang-format --dry-run --Werror over tracked C++ files
                (analyzer fixtures excluded: intentional violations)
  clang_tidy    tools/run_clang_tidy.py over the compilation database
  ugf_analyzer  tools/ugf_analyzer — AST-grounded determinism rules

Every finding is re-emitted on stdout in the shared contract
``file:line: rule: message`` (clang-format and clang-tidy diagnostics
are normalized into it), so `scripts/check.sh --static` and CI grep one
stream with one shape.

A check whose tool is missing is SKIPPED, not failed — unless named in
``--require`` or the UGF_STATIC_REQUIRE environment variable (comma
separated), which is how CI pins "the analyzer must actually run".

Exit codes: 0 all ran clean (skips allowed), 1 findings, 2 a check
errored or a required check was skipped.
"""

from __future__ import annotations

import argparse
import os
import re
import shutil
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# clang-format / clang-tidy diagnostic shape -> shared contract.
DIAG_RE = re.compile(
    r"^(?P<path>[^:\s][^:]*):(?P<line>\d+)(?::\d+)?:\s*"
    r"(?:warning|error):\s*(?P<msg>.*)$")

FIXTURE_PREFIX = "tools/ugf_analyzer/fixtures/"


@dataclass
class CheckResult:
    name: str
    status: str              # clean | findings | skipped | error
    findings: int = 0
    detail: str = ""


def _rel(path_str: str) -> str:
    try:
        return Path(path_str).resolve().relative_to(ROOT).as_posix()
    except ValueError:
        return path_str


def _normalize_diags(text: str, rule: str) -> list[str]:
    out = []
    for line in text.splitlines():
        m = DIAG_RE.match(line.strip())
        if m:
            out.append(f"{_rel(m.group('path'))}:{m.group('line')}: "
                       f"{rule}: {m.group('msg')}")
    return out


def check_lint_ugf(args: argparse.Namespace) -> CheckResult:
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools/lint_ugf.py"), str(ROOT)],
        capture_output=True, text=True)
    sys.stdout.write(proc.stdout)
    if proc.returncode == 0:
        return CheckResult("lint_ugf", "clean")
    if proc.returncode == 1:
        return CheckResult("lint_ugf", "findings",
                           len(proc.stdout.splitlines()))
    return CheckResult("lint_ugf", "error", detail=proc.stderr.strip())


def check_clang_format(args: argparse.Namespace) -> CheckResult:
    tool = shutil.which("clang-format")
    if tool is None:
        return CheckResult("clang_format", "skipped",
                           detail="clang-format not installed")
    ls = subprocess.run(
        ["git", "ls-files", "*.cpp", "*.hpp"],
        cwd=ROOT, capture_output=True, text=True)
    if ls.returncode != 0:
        return CheckResult("clang_format", "error",
                           detail="git ls-files failed")
    files = [f for f in ls.stdout.splitlines()
             if f and not f.startswith(FIXTURE_PREFIX)]
    if not files:
        return CheckResult("clang_format", "skipped",
                           detail="no tracked C++ files")
    proc = subprocess.run(
        [tool, "--dry-run", "--Werror"] + files,
        cwd=ROOT, capture_output=True, text=True)
    findings = _normalize_diags(proc.stderr + proc.stdout, "clang-format")
    for line in findings:
        print(line)
    if proc.returncode == 0 and not findings:
        return CheckResult("clang_format", "clean")
    return CheckResult("clang_format", "findings", len(findings))


def check_clang_tidy(args: argparse.Namespace) -> CheckResult:
    tool = shutil.which("clang-tidy")
    if tool is None:
        return CheckResult("clang_tidy", "skipped",
                           detail="clang-tidy not installed")
    compdb = args.build_dir / "compile_commands.json"
    if not compdb.is_file():
        return CheckResult("clang_tidy", "skipped",
                           detail=f"{compdb} not found (configure first)")
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools/run_clang_tidy.py"),
         "--clang-tidy", tool, "--build-dir", str(args.build_dir),
         "--source-dir", str(ROOT)],
        capture_output=True, text=True)
    findings = _normalize_diags(proc.stdout, "clang-tidy")
    for line in findings:
        print(line)
    if proc.returncode == 0:
        return CheckResult("clang_tidy", "clean")
    if proc.returncode == 1:
        # Diagnostics that defeated normalization still count.
        return CheckResult("clang_tidy", "findings",
                           max(len(findings), 1))
    return CheckResult("clang_tidy", "error", detail=proc.stderr.strip())


def check_ugf_analyzer(args: argparse.Namespace,
                       required: bool) -> CheckResult:
    compdb = args.build_dir / "compile_commands.json"
    cmd = [sys.executable, str(ROOT / "tools/ugf_analyzer"),
           "--compdb", str(compdb), "--root", str(ROOT),
           "--shared-state-out", str(args.build_dir / "shared_state.json")]
    if required:
        cmd.append("--require-libclang")
    if not compdb.is_file() and not required:
        return CheckResult("ugf_analyzer", "skipped",
                           detail=f"{compdb} not found (configure first)")
    proc = subprocess.run(cmd, capture_output=True, text=True)
    sys.stdout.write(proc.stdout)
    if proc.returncode == 0:
        return CheckResult("ugf_analyzer", "clean")
    if proc.returncode == 1:
        return CheckResult("ugf_analyzer", "findings",
                           len(proc.stdout.splitlines()))
    if proc.returncode == 4:
        return CheckResult("ugf_analyzer", "skipped",
                           detail="libclang unavailable")
    return CheckResult("ugf_analyzer", "error", detail=proc.stderr.strip())


CHECK_NAMES = ("lint_ugf", "clang_format", "clang_tidy", "ugf_analyzer")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="static_checks", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--build-dir", type=Path,
                        default=ROOT / "build",
                        help="build tree holding compile_commands.json")
    parser.add_argument("--only", default="",
                        help="comma-separated subset of checks to run")
    parser.add_argument("--require", default="",
                        help="checks that must not be skipped "
                             "(also read from $UGF_STATIC_REQUIRE)")
    parser.add_argument("--list", action="store_true",
                        help="list check names and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in CHECK_NAMES:
            print(name)
        return 0

    required = {r.strip()
                for r in (args.require + ","
                          + os.environ.get("UGF_STATIC_REQUIRE", "")
                          ).split(",") if r.strip()}
    only = {o.strip() for o in args.only.split(",") if o.strip()}
    for name in required | only:
        if name not in CHECK_NAMES:
            print(f"static_checks: unknown check {name!r} "
                  f"(have: {', '.join(CHECK_NAMES)})", file=sys.stderr)
            return 2

    selected = [n for n in CHECK_NAMES if not only or n in only]
    results: list[CheckResult] = []
    for name in selected:
        print(f"static_checks: running {name}", file=sys.stderr)
        if name == "lint_ugf":
            results.append(check_lint_ugf(args))
        elif name == "clang_format":
            results.append(check_clang_format(args))
        elif name == "clang_tidy":
            results.append(check_clang_tidy(args))
        else:
            results.append(check_ugf_analyzer(args, "ugf_analyzer"
                                              in required))

    exit_code = 0
    for result in results:
        line = f"static_checks: {result.name}: {result.status}"
        if result.findings:
            line += f" ({result.findings} finding(s))"
        if result.detail:
            line += f" — {result.detail}"
        print(line, file=sys.stderr)
        if result.status == "error":
            exit_code = 2
        elif result.status == "skipped" and result.name in required:
            print(f"static_checks: {result.name} is required here but was "
                  "skipped", file=sys.stderr)
            exit_code = 2
        elif result.status == "findings" and exit_code == 0:
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
