"""Fixture self-test: parse the fixture tree, byte-compare the golden.

The tree under ``fixtures/tree/src`` mirrors the repo's src/ layout so
every scope rule fires exactly as it would in production; the stub
headers pin down the qualified names the rules match on, so the parse
is identical under any libclang version. Beyond the findings golden,
structural census assertions pin shared_state.json semantics: const /
atomic exemptions, inline-allow justifications, thread_local and
class-static detection, and the Engine field census.

Run via ``python3 tools/ugf_analyzer --selftest`` (add
``--update-golden`` after a deliberate rule/message change).
"""

from __future__ import annotations

import difflib
import sys
from pathlib import Path

FIXTURES = Path(__file__).resolve().parent / "fixtures"
TREE = FIXTURES / "tree"
STUBS = FIXTURES / "stubs"
GOLDEN = FIXTURES / "expected_findings.txt"

PARSE_ARGS = ["-x", "c++", "-std=c++17", "-I", str(STUBS),
              "-Wno-everything"]

# (file, line, rule) triples that must be caught by inline allows.
EXPECTED_SUPPRESSED = {
    ("src/runner/thread_cases.cpp", 21, "thread-discipline"),
    ("src/sim/parallel_executor.cpp", 19, "wallclock"),
    ("src/sim/wallclock_cases.cpp", 26, "wallclock"),
    ("src/util/shared_state_cases.cpp", 22, "shared-state"),
}


def _fail(msg: str) -> int:
    print(f"ugf_analyzer: selftest: FAIL: {msg}", file=sys.stderr)
    return 1


def _census_errors(census) -> list[str]:
    statics = {e.name: e for e in census.statics.values()}
    errors: list[str] = []

    def expect(name: str, **attrs) -> None:
        entry = statics.get(name)
        if entry is None:
            errors.append(f"census is missing static '{name}' "
                          f"(have: {sorted(statics)})")
            return
        for attr, want in attrs.items():
            got = getattr(entry, attr)
            if got != want:
                errors.append(
                    f"census '{name}': {attr} is {got!r}, want {want!r}")

    expect("fx::kTable", verdict="exempt-const", is_const=True)
    expect("fx::g_dropped_events", verdict="exempt-atomic", is_atomic=True)
    expect("fx::g_cache_epoch", verdict="allowed",
           justification="fixture cache guarded elsewhere",
           storage="namespace-scope")
    expect("fx::t_scratch", verdict="flagged", thread_local=True)
    expect("fx::Gauge::live_instances", verdict="flagged",
           storage="class-static")
    expect("fx::bump::calls", verdict="flagged", storage="local-static")
    expect("ugf::sim::Engine::kMaxProcs", verdict="exempt-const",
           storage="class-static")

    fields = census.engine_fields
    for name in ("steps_", "current_", "n_"):
        if name not in fields:
            errors.append(f"engine field census is missing '{name}' "
                          f"(have: {sorted(fields)})")
    if "n_" in fields and not fields["n_"].is_const:
        errors.append("engine field 'n_' should be censused as const")
    return errors


def run_selftest(cindex, update_golden: bool = False) -> int:
    # Local import: cli imports this module lazily, never the reverse
    # at module scope, or the two would form a cycle.
    from ugf_analyzer.cli import EXIT_CLEAN, run_analysis

    sources = sorted(TREE.rglob("*.cpp"))
    if not sources:
        return _fail(f"no fixture sources under {TREE}")
    units = [(path, list(PARSE_ARGS)) for path in sources]

    code, reporter, census, stats = run_analysis(
        cindex, units, TREE, strict_parse=True, warn_stale=False)
    if code != EXIT_CLEAN:
        return _fail("fixture parse failed (see diagnostics above); the "
                     "stub headers must parse clean on every libclang")

    active, suppressed = reporter.finalize()
    census.apply_suppressions(suppressed)
    actual = "".join(f.render() + "\n" for f in active)

    if update_golden:
        GOLDEN.write_text(actual, encoding="utf-8")
        print(f"ugf_analyzer: selftest: wrote {len(active)} findings to "
              f"{GOLDEN}", file=sys.stderr)
    else:
        expected = GOLDEN.read_text(encoding="utf-8") if GOLDEN.is_file() \
            else ""
        if actual != expected:
            scratch = GOLDEN.with_suffix(".actual")
            scratch.write_text(actual, encoding="utf-8")
            diff = difflib.unified_diff(
                expected.splitlines(keepends=True),
                actual.splitlines(keepends=True),
                fromfile=str(GOLDEN), tofile=str(scratch))
            sys.stderr.writelines(diff)
            return _fail(f"findings diverge from the golden; wrote "
                         f"{scratch} (use --update-golden after a "
                         "deliberate change)")

    got_suppressed = {(f.file, f.line, f.rule) for f, _ in suppressed}
    if got_suppressed != EXPECTED_SUPPRESSED:
        return _fail(
            "inline suppressions mismatch: "
            f"unexpected={sorted(got_suppressed - EXPECTED_SUPPRESSED)} "
            f"missing={sorted(EXPECTED_SUPPRESSED - got_suppressed)}")

    errors = _census_errors(census)
    if errors:
        for err in errors:
            print(f"ugf_analyzer: selftest: census: {err}", file=sys.stderr)
        return _fail(f"{len(errors)} census assertion(s) failed")

    print(f"ugf_analyzer: selftest: OK — {stats['units']} fixture TUs, "
          f"{len(active)} golden findings, {len(suppressed)} suppressed, "
          f"{len(census.statics)} censused statics", file=sys.stderr)
    return 0
