"""ugf_analyzer: AST-grounded determinism & concurrency rules for UGF.

A libclang (clang.cindex) semantic analysis pass over the build tree's
compile_commands.json. It enforces the determinism-contract rules the
regex linter (tools/lint_ugf.py) cannot see — types, scopes, storage
duration, data flow into containers — with the same output contract
(``file:line: rule: message``) and the same per-line suppression idiom
(``// ugf-analyzer: allow(<rule>)``).

Only ``frontend`` imports clang.cindex; every rule works against the
duck-typed cursor surface documented in ``astutil``, so the rule logic
is unit-testable (tools/ugf_analyzer/tests) on machines without
libclang, and the full pass is gated — skipped locally, required in CI.
"""

__version__ = "1.0.0"

OUTPUT_SCHEMA = "file:line: rule: message"
SHARED_STATE_SCHEMA = "ugf-shared-state-v1"
