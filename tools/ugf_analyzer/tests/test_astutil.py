import unittest

from ugf_analyzer.astutil import (
    binary_operator_spelling,
    has_leading_token,
    is_atomic_type,
    is_const_type,
    qualified_name,
    split_template_args,
)
from ugf_analyzer.tests.fakes import (
    STD,
    TU,
    FakeCursor,
    FakeToken,
    FakeType,
    namespace,
)


class QualifiedNameTest(unittest.TestCase):
    def test_walks_semantic_parents(self):
        fn = FakeCursor("FUNCTION_DECL", "bump", parent=namespace("fx"))
        var = FakeCursor("VAR_DECL", "calls", parent=fn)
        self.assertEqual(qualified_name(var), "fx::bump::calls")

    def test_anonymous_scope(self):
        anon = FakeCursor("NAMESPACE", "", parent=TU)
        var = FakeCursor("VAR_DECL", "v", parent=anon)
        self.assertEqual(qualified_name(var), "(anonymous)::v")

    def test_linkage_spec_is_transparent(self):
        # extern "C" { long time(long*); } must yield "time", not
        # "(anonymous)::time" — the banned-name sets depend on it.
        linkage = FakeCursor("LINKAGE_SPEC", "", parent=TU)
        fn = FakeCursor("FUNCTION_DECL", "time", parent=linkage)
        self.assertEqual(qualified_name(fn), "time")

    def test_broken_parent_chain_truncates(self):
        orphan = FakeCursor("VAR_DECL", "v", parent=None)
        self.assertEqual(qualified_name(orphan), "v")


class TypePredicatesTest(unittest.TestCase):
    def test_const_through_array(self):
        elem = FakeType("const int", kind="INT", const=True)
        arr = FakeType("const int[4]", kind="CONSTANTARRAY", element=elem)
        self.assertTrue(is_const_type(arr))
        self.assertFalse(is_const_type(FakeType("int", kind="INT")))

    def test_atomic_by_kind_and_spelling(self):
        self.assertTrue(is_atomic_type(FakeType("_Atomic(int)",
                                                kind="ATOMIC")))
        self.assertTrue(is_atomic_type(FakeType("std::atomic<unsigned>")))
        self.assertTrue(is_atomic_type(FakeType("std::atomic_flag")))
        self.assertFalse(is_atomic_type(FakeType("std::vector<int>")))

    def test_atomic_sees_through_canonical(self):
        canon = FakeType("std::atomic<int>")
        alias = FakeType("Counter", canonical=canon)
        self.assertTrue(is_atomic_type(alias))


class LeadingTokenTest(unittest.TestCase):
    def test_finds_specifier(self):
        cur = FakeCursor("VAR_DECL", "v", tokens=[
            FakeToken("thread_local"), FakeToken("int"), FakeToken("v")])
        self.assertTrue(has_leading_token(cur, "thread_local"))

    def test_stops_at_initializer(self):
        # `int v = thread_local_lookup();` — the identifier after '='
        # must not count as the specifier.
        cur = FakeCursor("VAR_DECL", "v", tokens=[
            FakeToken("int"), FakeToken("v"), FakeToken("="),
            FakeToken("thread_local")])
        self.assertFalse(has_leading_token(cur, "thread_local"))


class BinaryOperatorSpellingTest(unittest.TestCase):
    def _cmp(self, op: str) -> FakeCursor:
        lhs = FakeCursor("UNEXPOSED_EXPR", "a", extent=(0, 1))
        rhs = FakeCursor("UNEXPOSED_EXPR", "b",
                         extent=(2 + len(op), 3 + len(op)))
        return FakeCursor(
            "BINARY_OPERATOR", children=[lhs, rhs],
            tokens=[FakeToken("a", 0), FakeToken(op, 1),
                    FakeToken("b", 2 + len(op))])

    def test_reads_token_between_operands(self):
        self.assertEqual(binary_operator_spelling(self._cmp("<")), "<")
        self.assertEqual(binary_operator_spelling(self._cmp("<=>")), "<=>")

    def test_degenerate_children(self):
        only = FakeCursor("BINARY_OPERATOR",
                          children=[FakeCursor("UNEXPOSED_EXPR")])
        self.assertEqual(binary_operator_spelling(only), "")


class SplitTemplateArgsTest(unittest.TestCase):
    def test_top_level_split(self):
        self.assertEqual(
            split_template_args("std::map<const void *, int>"),
            ["const void *", "int"])

    def test_nested_brackets_stay_joined(self):
        self.assertEqual(
            split_template_args(
                "std::map<std::pair<int, int>, std::vector<bool>>"),
            ["std::pair<int, int>", "std::vector<bool>"])

    def test_no_template(self):
        self.assertEqual(split_template_args("int"), [])


if __name__ == "__main__":
    unittest.main()
