import unittest
from pathlib import Path

from ugf_analyzer.census import Census
from ugf_analyzer.findings import Reporter
from ugf_analyzer.rules.arena_escape import ArenaEscapeRule
from ugf_analyzer.rules.base import AnalysisContext
from ugf_analyzer.rules.pointer_order import PointerOrderRule
from ugf_analyzer.rules.shared_state import SharedStateRule
from ugf_analyzer.rules.thread_discipline import ThreadDisciplineRule
from ugf_analyzer.rules.wallclock import WallclockRule
from ugf_analyzer.tests.fakes import (
    STD,
    FakeCursor,
    FakeToken,
    FakeType,
    namespace,
)

ROOT = Path("/repo")
FX = namespace("fx")


def make_ctx() -> AnalysisContext:
    return AnalysisContext(ROOT, Reporter(ROOT), Census())


def active(ctx):
    findings, _ = ctx.reporter.finalize()
    return findings


class WallclockRuleTest(unittest.TestCase):
    def _call(self, file, decl_name="getenv", decl_parent=STD):
        decl = FakeCursor("FUNCTION_DECL", decl_name, parent=decl_parent)
        return FakeCursor("CALL_EXPR", decl_name, file=file, line=42,
                          referenced=decl)

    def test_banned_call_in_scope(self):
        ctx = make_ctx()
        WallclockRule().visit(self._call("/repo/src/sim/engine.cpp"), ctx)
        findings = active(ctx)
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].rule, "wallclock")
        self.assertIn("'std::getenv'", findings[0].message)

    def test_runner_is_out_of_scope(self):
        # src/runner measures wall time *about* runs; that is legal.
        ctx = make_ctx()
        WallclockRule().visit(
            self._call("/repo/src/runner/sweep.cpp"), ctx)
        self.assertEqual(active(ctx), [])

    def test_unbanned_name_in_scope(self):
        ctx = make_ctx()
        WallclockRule().visit(
            self._call("/repo/src/sim/engine.cpp", decl_name="log2"), ctx)
        self.assertEqual(active(ctx), [])


class SharedStateRuleTest(unittest.TestCase):
    @staticmethod
    def _var(name, ctype, parent=FX, storage=None, tokens=None,
             file="/repo/src/util/misc.cpp", line=5):
        return FakeCursor("VAR_DECL", name, file=file, line=line,
                          parent=parent, ctype=ctype, storage=storage,
                          tokens=tokens)

    def test_mutable_namespace_var_flagged(self):
        ctx = make_ctx()
        SharedStateRule().visit(
            self._var("g_count", FakeType("int", kind="INT")), ctx)
        findings = active(ctx)
        self.assertEqual(len(findings), 1)
        self.assertIn("'fx::g_count'", findings[0].message)
        self.assertIn("namespace-scope", findings[0].message)
        entry = next(iter(ctx.census.statics.values()))
        self.assertEqual(entry.verdict, "flagged")

    def test_const_and_atomic_are_exempt_but_censused(self):
        ctx = make_ctx()
        rule = SharedStateRule()
        rule.visit(self._var("kTable", FakeType("const int", kind="INT",
                                                const=True), line=1), ctx)
        rule.visit(self._var("g_hits", FakeType("std::atomic<int>"),
                             line=2), ctx)
        self.assertEqual(active(ctx), [])
        verdicts = {e.name: e.verdict for e in ctx.census.statics.values()}
        self.assertEqual(verdicts, {"fx::kTable": "exempt-const",
                                    "fx::g_hits": "exempt-atomic"})

    def test_local_static_and_plain_local(self):
        ctx = make_ctx()
        fn = FakeCursor("FUNCTION_DECL", "bump", parent=FX)
        rule = SharedStateRule()
        rule.visit(self._var("calls", FakeType("long", kind="LONG"),
                             parent=fn, storage="STATIC"), ctx)
        rule.visit(self._var("i", FakeType("long", kind="LONG"),
                             parent=fn, storage="NONE", line=6), ctx)
        findings = active(ctx)
        self.assertEqual(len(findings), 1)
        self.assertIn("local-static", findings[0].message)
        self.assertIn("'fx::bump::calls'", findings[0].message)
        self.assertEqual(len(ctx.census.statics), 1)

    def test_thread_local_wording(self):
        ctx = make_ctx()
        fn = FakeCursor("FUNCTION_DECL", "f", parent=FX)
        cur = self._var("t_buf", FakeType("int", kind="INT"), parent=fn,
                        storage="NONE",
                        tokens=[FakeToken("thread_local"),
                                FakeToken("int"), FakeToken("t_buf")])
        SharedStateRule().visit(cur, ctx)
        findings = active(ctx)
        self.assertEqual(len(findings), 1)
        self.assertIn("thread-local", findings[0].message)

    def test_engine_field_census(self):
        ctx = make_ctx()
        engine = FakeCursor(
            "CLASS_DECL", "Engine",
            parent=namespace("sim", parent=namespace("ugf")))
        field = FakeCursor("FIELD_DECL", "steps_",
                           file="/repo/src/sim/engine.hpp", line=30,
                           parent=engine,
                           ctype=FakeType("unsigned long", kind="ULONG"))
        SharedStateRule().visit(field, ctx)
        self.assertEqual(active(ctx), [])
        self.assertIn("steps_", ctx.census.engine_fields)
        self.assertEqual(ctx.census.engine_fields["steps_"].line, 30)

    def test_other_class_fields_not_censused(self):
        ctx = make_ctx()
        other = FakeCursor("CLASS_DECL", "Sweep",
                           parent=namespace("runner",
                                            parent=namespace("ugf")))
        field = FakeCursor("FIELD_DECL", "n_",
                           file="/repo/src/runner/sweep.hpp", line=8,
                           parent=other, ctype=FakeType("int", kind="INT"))
        SharedStateRule().visit(field, ctx)
        self.assertEqual(ctx.census.engine_fields, {})


class PointerOrderRuleTest(unittest.TestCase):
    @staticmethod
    def _cmp(op, kinds=("POINTER", "POINTER"),
             file="/repo/src/sim/queue.cpp"):
        lhs = FakeCursor("UNEXPOSED_EXPR", "a", extent=(0, 1),
                         ctype=FakeType(kind=kinds[0]))
        rhs = FakeCursor("UNEXPOSED_EXPR", "b",
                         extent=(2 + len(op), 3 + len(op)),
                         ctype=FakeType(kind=kinds[1]))
        return FakeCursor(
            "BINARY_OPERATOR", file=file, line=11, children=[lhs, rhs],
            tokens=[FakeToken("a", 0), FakeToken(op, 1),
                    FakeToken("b", 2 + len(op))])

    def test_pointer_comparison_flagged(self):
        ctx = make_ctx()
        PointerOrderRule().visit(self._cmp("<"), ctx)
        findings = active(ctx)
        self.assertEqual(len(findings), 1)
        self.assertIn("relational '<'", findings[0].message)

    def test_integer_comparison_clean(self):
        ctx = make_ctx()
        PointerOrderRule().visit(self._cmp("<", kinds=("INT", "INT")), ctx)
        self.assertEqual(active(ctx), [])

    def test_equality_on_pointers_clean(self):
        ctx = make_ctx()
        PointerOrderRule().visit(self._cmp("=="), ctx)
        self.assertEqual(active(ctx), [])

    def test_pointer_keyed_map_flagged(self):
        ctx = make_ctx()
        field = FakeCursor(
            "FIELD_DECL", "by_addr", file="/repo/src/obs/index.hpp",
            line=3, ctype=FakeType("std::map<const void *, int>"))
        PointerOrderRule().visit(field, ctx)
        findings = active(ctx)
        self.assertEqual(len(findings), 1)
        self.assertIn("std::map keyed on a raw pointer (const void *)",
                      findings[0].message)

    def test_id_keyed_map_clean(self):
        ctx = make_ctx()
        field = FakeCursor(
            "FIELD_DECL", "by_id", file="/repo/src/obs/index.hpp",
            line=4, ctype=FakeType("std::map<unsigned int, int>"))
        PointerOrderRule().visit(field, ctx)
        self.assertEqual(active(ctx), [])


class ThreadDisciplineRuleTest(unittest.TestCase):
    @staticmethod
    def _field(spelling, file):
        return FakeCursor("FIELD_DECL", "m", file=file, line=9,
                          ctype=FakeType(spelling))

    def test_mutex_outside_pool_flagged(self):
        ctx = make_ctx()
        ThreadDisciplineRule().visit(
            self._field("std::mutex", "/repo/src/runner/sweep.hpp"), ctx)
        findings = active(ctx)
        self.assertEqual(len(findings), 1)
        self.assertIn("std::mutex constructed outside", findings[0].message)

    def test_container_of_threads_flagged(self):
        ctx = make_ctx()
        ThreadDisciplineRule().visit(
            self._field("std::vector<std::thread, "
                        "std::allocator<std::thread>>",
                        "/repo/src/runner/sweep.hpp"), ctx)
        findings = active(ctx)
        self.assertEqual(len(findings), 1)
        self.assertIn("std::thread constructed outside",
                      findings[0].message)

    def test_thread_id_is_legal(self):
        ctx = make_ctx()
        ThreadDisciplineRule().visit(
            self._field("std::thread::id", "/repo/src/runner/sweep.hpp"),
            ctx)
        self.assertEqual(active(ctx), [])

    def test_pool_file_is_sanctioned(self):
        ctx = make_ctx()
        ThreadDisciplineRule().visit(
            self._field("std::mutex", "/repo/src/util/thread_pool.hpp"),
            ctx)
        self.assertEqual(active(ctx), [])

    def test_allowlisted_file_records_usage(self):
        ctx = make_ctx()
        ThreadDisciplineRule().visit(
            self._field("std::mutex", "/repo/src/util/check.cpp"), ctx)
        self.assertEqual(active(ctx), [])
        self.assertIn(("thread-discipline", "src/util/check.cpp"),
                      ctx.used_allowlist)
        self.assertNotIn("thread-discipline:src/util/check.cpp",
                         ctx.unused_allowlist_entries())

    def test_async_call_flagged(self):
        ctx = make_ctx()
        decl = FakeCursor("FUNCTION_DECL", "async", parent=STD)
        call = FakeCursor("CALL_EXPR", "async",
                          file="/repo/src/analysis/report.cpp", line=77,
                          referenced=decl)
        ThreadDisciplineRule().visit(call, ctx)
        findings = active(ctx)
        self.assertEqual(len(findings), 1)
        self.assertIn("'std::async'", findings[0].message)


class ArenaEscapeRuleTest(unittest.TestCase):
    def test_namespace_scope_handle_flagged(self):
        ctx = make_ctx()
        var = FakeCursor("VAR_DECL", "g_last", parent=FX,
                         file="/repo/src/util/cache.cpp", line=6,
                         ctype=FakeType("ugf::sim::PayloadRef"))
        ArenaEscapeRule().visit(var, ctx)
        findings = active(ctx)
        self.assertEqual(len(findings), 1)
        self.assertIn("static-storage 'fx::g_last'", findings[0].message)

    def test_plain_local_handle_clean(self):
        ctx = make_ctx()
        fn = FakeCursor("FUNCTION_DECL", "f", parent=FX)
        var = FakeCursor("VAR_DECL", "m", parent=fn, storage="NONE",
                         file="/repo/src/util/cache.cpp", line=7,
                         ctype=FakeType("ugf::sim::Message"))
        ArenaEscapeRule().visit(var, ctx)
        self.assertEqual(active(ctx), [])

    def test_field_outside_owning_scope_flagged(self):
        ctx = make_ctx()
        field = FakeCursor("FIELD_DECL", "held",
                           file="/repo/src/obs/replay.hpp", line=12,
                           ctype=FakeType("ugf::sim::Message"))
        ArenaEscapeRule().visit(field, ctx)
        findings = active(ctx)
        self.assertEqual(len(findings), 1)
        self.assertIn("member 'held'", findings[0].message)

    def test_field_in_owning_scope_clean(self):
        ctx = make_ctx()
        field = FakeCursor("FIELD_DECL", "payload",
                           file="/repo/src/sim/message.hpp", line=20,
                           ctype=FakeType("ugf::sim::PayloadRef"))
        ArenaEscapeRule().visit(field, ctx)
        self.assertEqual(active(ctx), [])


if __name__ == "__main__":
    unittest.main()
