"""Duck-typed stand-ins for the clang.cindex surface the rules use.

These implement exactly the attribute contract documented at the top
of astutil.py — nothing more. If a rule starts depending on an
attribute the fakes lack, its unit test fails with AttributeError,
which is the signal to extend both this file and the contract.
"""

from __future__ import annotations


class FakeKind:
    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"FakeKind({self.name!r})"


class FakeFile:
    def __init__(self, name: str):
        self.name = name


class FakeLocation:
    def __init__(self, file: str | None, line: int):
        self.file = FakeFile(file) if file is not None else None
        self.line = line


class FakePos:
    def __init__(self, offset: int):
        self.offset = offset


class FakeExtent:
    def __init__(self, start: int, end: int):
        self.start = FakePos(start)
        self.end = FakePos(end)


class FakeToken:
    def __init__(self, spelling: str, start: int = 0):
        self.spelling = spelling
        self.extent = FakeExtent(start, start + len(spelling))


class FakeType:
    def __init__(self, spelling: str = "", kind: str = "RECORD",
                 const: bool = False, element: "FakeType | None" = None,
                 canonical: "FakeType | None" = None):
        self.spelling = spelling
        self.kind = FakeKind(kind)
        self._const = const
        self._element = element
        self._canonical = canonical

    def get_canonical(self) -> "FakeType":
        return self._canonical or self

    def is_const_qualified(self) -> bool:
        return self._const

    @property
    def element_type(self) -> "FakeType":
        if self._element is None:
            raise AttributeError("type has no element_type")
        return self._element


class FakeCursor:
    def __init__(self, kind: str, spelling: str = "",
                 file: str | None = None, line: int = 0,
                 parent: "FakeCursor | None" = None,
                 referenced: "FakeCursor | None" = None,
                 ctype: FakeType | None = None,
                 tokens: list[FakeToken] | None = None,
                 children: list["FakeCursor"] | None = None,
                 storage: str | None = None, definition: bool = True,
                 extent: tuple[int, int] = (0, 0)):
        self.kind = FakeKind(kind)
        self.spelling = spelling
        self.location = FakeLocation(file, line)
        self.semantic_parent = parent
        self.referenced = referenced
        self.type = ctype if ctype is not None else FakeType()
        self._tokens = list(tokens or [])
        self._children = list(children or [])
        if storage is not None:
            self.storage_class = FakeKind(storage)
        self._definition = definition
        self.extent = FakeExtent(*extent)

    def is_definition(self) -> bool:
        return self._definition

    def get_children(self):
        return list(self._children)

    def get_tokens(self):
        return list(self._tokens)


TU = FakeCursor("TRANSLATION_UNIT")


def namespace(name: str, parent: FakeCursor = TU) -> FakeCursor:
    return FakeCursor("NAMESPACE", name, parent=parent)


STD = namespace("std")
