"""Pure-python unit tests for ugf_analyzer.

Everything here runs WITHOUT libclang: the rules are duck-typed, so
fake cursors (fakes.py) exercise the exact attribute surface documented
in astutil. The libclang-dependent half (parsing real C++) is covered
by the fixture self-test, which CMake registers only where a usable
libclang is found and CI always runs.
"""
