import json
import tempfile
import unittest
from pathlib import Path

from ugf_analyzer import config
from ugf_analyzer.census import Census, StaticEntry
from ugf_analyzer.findings import ALLOW_RE, Finding, Reporter
from ugf_analyzer.frontend import load_compile_commands


class AllowPatternTest(unittest.TestCase):
    def test_single_rule_with_justification(self):
        m = ALLOW_RE.search(
            "int x;  // ugf-analyzer: allow(shared-state): cache epoch")
        self.assertIsNotNone(m)
        self.assertEqual(m.group(1), "shared-state")
        self.assertEqual(m.group(2), "cache epoch")

    def test_multiple_rules_no_justification(self):
        m = ALLOW_RE.search("// ugf-analyzer: allow(wallclock, shared-state)")
        self.assertIsNotNone(m)
        self.assertEqual(
            {r.strip() for r in m.group(1).split(",")},
            {"wallclock", "shared-state"})
        self.assertIsNone(m.group(2))

    def test_prose_does_not_match(self):
        self.assertIsNone(ALLOW_RE.search(
            "// the analyzer would allow(thing) if asked"))


class ReporterTest(unittest.TestCase):
    def test_cross_tu_dedup_and_sort(self):
        reporter = Reporter(Path("/nonexistent"))
        for _ in range(3):  # same header seen from three TUs
            reporter.report("src/b.hpp", 4, "wallclock", "msg")
        reporter.report("src/a.cpp", 9, "wallclock", "msg")
        active, suppressed = reporter.finalize()
        self.assertEqual(suppressed, [])
        self.assertEqual(
            active,
            [Finding("src/a.cpp", 9, "wallclock", "msg"),
             Finding("src/b.hpp", 4, "wallclock", "msg")])

    def test_suppression_from_source_line(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            src = root / "src"
            src.mkdir()
            (src / "x.cpp").write_text(
                "int a;\n"
                "// ugf-analyzer: allow(shared-state): startup only\n"
                "int b;\n"
                "int c;  // ugf-analyzer: allow(wallclock)\n",
                encoding="utf-8")
            reporter = Reporter(root)
            reporter.report("src/x.cpp", 1, "shared-state", "m1")
            reporter.report("src/x.cpp", 3, "shared-state", "m2")
            reporter.report("src/x.cpp", 4, "wallclock", "m3")
            reporter.report("src/x.cpp", 4, "shared-state", "m4")  # wrong rule
            active, suppressed = reporter.finalize()
            self.assertEqual([f.line for f in active], [1, 4])
            self.assertEqual(
                {(f.line, f.rule): j for f, j in suppressed},
                {(3, "shared-state"): "startup only", (4, "wallclock"): ""})


class CensusTest(unittest.TestCase):
    @staticmethod
    def _entry(**kw) -> StaticEntry:
        base = dict(file="src/a.cpp", line=1, name="fx::v", type="int",
                    storage="namespace-scope", thread_local=False,
                    is_const=False, is_atomic=False)
        base.update(kw)
        return StaticEntry(**base)

    def test_json_is_sorted_and_stable(self):
        census = Census()
        census.add_static(self._entry(file="src/z.cpp", name="fx::z"))
        census.add_static(self._entry(file="src/a.cpp", name="fx::a"))
        doc = json.loads(census.to_json())
        self.assertEqual(doc["schema"], "ugf-shared-state-v1")
        self.assertEqual([e["file"] for e in doc["statics"]],
                         ["src/a.cpp", "src/z.cpp"])
        self.assertEqual(census.to_json(), census.to_json())

    def test_first_sighting_wins(self):
        census = Census()
        census.add_static(self._entry(verdict="flagged"))
        census.add_static(self._entry(verdict="exempt-const"))
        self.assertEqual(
            next(iter(census.statics.values())).verdict, "flagged")

    def test_apply_suppressions_promotes_to_allowed(self):
        census = Census()
        census.add_static(self._entry(line=7, verdict="flagged"))
        suppressed = [
            (Finding("src/a.cpp", 7, "shared-state", "m"), "boot cache")]
        census.apply_suppressions(suppressed)
        entry = next(iter(census.statics.values()))
        self.assertEqual(entry.verdict, "allowed")
        self.assertEqual(entry.justification, "boot cache")
        summary = json.loads(census.to_json())["summary"]
        self.assertEqual(summary["statics_allowed"], 1)
        self.assertEqual(summary["statics_flagged"], 0)


class CompileCommandsTest(unittest.TestCase):
    def test_arguments_cleaned_and_scope_filtered(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            compdb = root / "compile_commands.json"
            compdb.write_text(json.dumps([
                {"directory": str(root),
                 "command": "c++ -std=c++20 -Isrc -c src/sim/a.cpp "
                            "-o a.o -MD -MF a.d",
                 "file": "src/sim/a.cpp"},
                {"directory": str(root),
                 "command": "c++ -std=c++20 -c tests/t.cpp -o t.o",
                 "file": "tests/t.cpp"},
            ]), encoding="utf-8")
            units = load_compile_commands(compdb, root)
            self.assertEqual(len(units), 1)
            file_path, args = units[0]
            self.assertEqual(file_path, (root / "src/sim/a.cpp").resolve())
            self.assertEqual(args,
                             ["-std=c++20", "-Isrc", "-Wno-everything"])


class ConfigTest(unittest.TestCase):
    def test_allowlist_entries_all_justified(self):
        self.assertEqual(config.allowlist_errors(), [])

    def test_rule_names_are_consistent(self):
        from ugf_analyzer.rules import make_rules
        names = [rule.name for rule in make_rules()]
        self.assertEqual(sorted(names), [
            "arena-escape", "pointer-order", "shared-state",
            "thread-discipline", "wallclock"])
        for rule_name in config.FILE_ALLOWLIST:
            self.assertIn(rule_name, names)


if __name__ == "__main__":
    unittest.main()
