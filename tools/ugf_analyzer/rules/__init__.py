"""Rule registry. Import order fixes --list-rules and doc ordering."""

from __future__ import annotations

from ugf_analyzer.rules.arena_escape import ArenaEscapeRule
from ugf_analyzer.rules.base import AnalysisContext, Rule
from ugf_analyzer.rules.pointer_order import PointerOrderRule
from ugf_analyzer.rules.shared_state import SharedStateRule
from ugf_analyzer.rules.thread_discipline import ThreadDisciplineRule
from ugf_analyzer.rules.wallclock import WallclockRule

ALL_RULES = (
    WallclockRule,
    SharedStateRule,
    PointerOrderRule,
    ThreadDisciplineRule,
    ArenaEscapeRule,
)


def make_rules() -> list[Rule]:
    return [cls() for cls in ALL_RULES]


__all__ = ["ALL_RULES", "AnalysisContext", "Rule", "make_rules"]
