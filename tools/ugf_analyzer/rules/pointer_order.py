"""pointer-order: no ordering or hashing on raw pointer values.

Pointer values differ run to run (ASLR, allocation order), so any
ordering built on them — a relational comparison feeding a branch, a
std::map/std::set keyed on a pointer, a std::hash/std::less over a
pointer type — produces iteration orders and tie-breaks that cannot be
reproduced. Determinism-sensitive code must key on stable identities
(ProcessId, arena indices, (step, seq)).

AST-grounded on purpose: a regex cannot tell ``a < b`` on pointers from
the same comparison on integers, nor see through a typedef to a
pointer-keyed map.
"""

from __future__ import annotations

from ugf_analyzer import config
from ugf_analyzer.astutil import (
    binary_operator_spelling,
    canonical_spelling,
    canonical_type,
    kind_name,
    split_template_args,
    type_kind_name,
)
from ugf_analyzer.rules.base import AnalysisContext, Rule

_DECL_KINDS = {"VAR_DECL", "FIELD_DECL", "PARM_DECL", "TYPEDEF_DECL",
               "TYPE_ALIAS_DECL"}


class PointerOrderRule(Rule):
    name = "pointer-order"
    description = ("no ordering comparisons, map/set keys, or hashing "
                   "on raw pointer values")

    def visit(self, cursor, ctx: AnalysisContext) -> None:
        kind = kind_name(cursor)
        if kind == "BINARY_OPERATOR":
            self._check_comparison(cursor, ctx)
        elif kind in _DECL_KINDS:
            self._check_declared_type(cursor, ctx)

    def _check_comparison(self, cursor, ctx: AnalysisContext) -> None:
        rel, _ = ctx.cursor_rel(cursor)
        if not self.in_scope(rel, config.POINTER_ORDER_SCOPE):
            return
        op = binary_operator_spelling(cursor)
        if op not in config.RELATIONAL_OPS:
            return
        try:
            children = list(cursor.get_children())
        except (AttributeError, ValueError):
            return
        if len(children) != 2:
            return
        if not all(self._is_object_pointer(c) for c in children):
            return
        ctx.report(
            cursor, self.name,
            f"relational '{op}' on raw pointer values; pointer order "
            "varies run-to-run — compare stable ids or indices instead")

    def _check_declared_type(self, cursor, ctx: AnalysisContext) -> None:
        rel, _ = ctx.cursor_rel(cursor)
        if not self.in_scope(rel, config.POINTER_ORDER_SCOPE):
            return
        spelling = canonical_spelling(cursor).removeprefix("const ")
        template = next(
            (t for t in config.POINTER_KEYED_TEMPLATES
             if spelling.startswith(t)), None)
        if template is None:
            return
        args = split_template_args(spelling)
        if not args or not args[0].rstrip().endswith("*"):
            return
        ctx.report(
            cursor, self.name,
            f"{template[:-1]} keyed on a raw pointer ({args[0]}); "
            "pointer order varies run-to-run and poisons iteration "
            "order — key on a stable id instead")

    @staticmethod
    def _is_object_pointer(expr) -> bool:
        """Pointer-typed operand that is not a nullptr literal."""
        if kind_name(expr) == "CXX_NULL_PTR_LITERAL_EXPR":
            return False
        # Look through one layer of implicit cast / paren wrapping: the
        # operand's type is already the decayed type in libclang, so the
        # expression type is authoritative.
        try:
            return type_kind_name(canonical_type(expr.type)) == "POINTER"
        except (AttributeError, ValueError):
            return False
