"""shared-state: no mutable static-storage state anywhere under src/.

Anything with static (or thread-local) storage duration outlives
``Engine::reset()`` and is shared between Monte-Carlo workers, so a
non-const, non-atomic instance is a determinism hazard the moment
ROADMAP item 2 partitions one run across threads. The regex linter is
blind here: it cannot tell a static data member from a local, or a
``static constexpr`` table from a mutable cache.

Every static-storage variable — exempt, allowed, or flagged — is also
recorded into the shared_state.json census, alongside the data members
of ugf::sim::Engine (the per-run state a worker partition must split).
"""

from __future__ import annotations

from ugf_analyzer import config
from ugf_analyzer.astutil import (
    CLASS_PARENT_KINDS,
    SCOPE_PARENT_KINDS,
    canonical_spelling,
    has_leading_token,
    is_atomic_type,
    is_const_type,
    kind_name,
    parent_kind,
    qualified_name,
    storage_class_name,
)
from ugf_analyzer.census import EngineField, StaticEntry
from ugf_analyzer.rules.base import AnalysisContext, Rule

ENGINE_QNAME = "ugf::sim::Engine"


class SharedStateRule(Rule):
    name = "shared-state"
    description = ("no non-const, non-atomic static-storage or "
                   "thread-local variables under src/")

    def visit(self, cursor, ctx: AnalysisContext) -> None:
        kind = kind_name(cursor)
        if kind == "FIELD_DECL":
            self._maybe_census_engine_field(cursor, ctx)
            return
        if kind != "VAR_DECL":
            return
        rel, line = ctx.cursor_rel(cursor)
        if not self.in_scope(rel, config.SHARED_STATE_SCOPE):
            return
        try:
            if not cursor.is_definition():
                return  # extern declarations are censused at their definition
        except (AttributeError, ValueError):
            return

        storage = self._storage_kind(cursor)
        if storage is None:
            return
        thread_local = has_leading_token(cursor, "thread_local")

        ctype = cursor.type
        is_const = is_const_type(ctype)
        is_atomic = is_atomic_type(ctype)
        if is_const:
            verdict = "exempt-const"
        elif is_atomic:
            verdict = "exempt-atomic"
        elif ctx.allowlisted(self.name, rel):
            verdict = "allowed"
        else:
            verdict = "flagged"

        entry = StaticEntry(
            file=rel, line=line, name=qualified_name(cursor),
            type=canonical_spelling(cursor), storage=storage,
            thread_local=thread_local, is_const=is_const,
            is_atomic=is_atomic, verdict=verdict,
            justification=config.FILE_ALLOWLIST.get(self.name, {}).get(
                rel, "") if verdict == "allowed" else "")
        ctx.census.add_static(entry)

        if verdict == "flagged":
            what = "thread-local" if thread_local else storage
            ctx.reporter.report(
                rel, line, self.name,
                f"mutable {what} variable '{entry.name}' outlives "
                "Engine::reset() and is shared across workers; make it "
                "const/atomic, move it into per-run state, or allowlist "
                "it with a justification")

    @staticmethod
    def _storage_kind(cursor) -> str | None:
        parent = parent_kind(cursor)
        if parent in SCOPE_PARENT_KINDS:
            return "namespace-scope"
        if parent in CLASS_PARENT_KINDS:
            return "class-static"
        storage = storage_class_name(cursor)
        if storage == "STATIC" or has_leading_token(cursor, "thread_local"):
            return "local-static"
        return None

    @staticmethod
    def _maybe_census_engine_field(cursor, ctx: AnalysisContext) -> None:
        try:
            parent = cursor.semantic_parent
        except (AttributeError, ValueError):
            return
        if parent is None or qualified_name(parent) != ENGINE_QNAME:
            return
        _, line = ctx.cursor_rel(cursor)
        try:
            type_spelling = cursor.type.spelling or ""
        except (AttributeError, ValueError):
            type_spelling = ""
        ctx.census.add_engine_field(EngineField(
            name=cursor.spelling, line=line, type=type_spelling,
            is_const=is_const_type(cursor.type)))
