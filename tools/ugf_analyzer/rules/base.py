"""Rule framework: the context rules see and the base class they extend.

A rule is a stateless-ish visitor: the walker calls ``visit(cursor,
ctx)`` for every in-tree cursor (cursors from system headers and files
outside the analysis root are pruned before rules run). Rules report
through the context, which owns path relativization, the allowlist,
and the census hook — so rule code stays pure matching logic.
"""

from __future__ import annotations

from pathlib import Path

from ugf_analyzer import config
from ugf_analyzer.astutil import location_of
from ugf_analyzer.census import Census
from ugf_analyzer.findings import Reporter


class AnalysisContext:
    def __init__(self, root: Path, reporter: Reporter,
                 census: Census | None = None):
        self.root = root.resolve()
        self.reporter = reporter
        self.census = census if census is not None else Census()
        self.used_allowlist: set[tuple[str, str]] = set()
        self._rel_cache: dict[str, str | None] = {}

    def rel_path(self, abs_path: str) -> str | None:
        """Repo-relative posix path, or None when outside the root."""
        cached = self._rel_cache.get(abs_path)
        if cached is not None or abs_path in self._rel_cache:
            return cached
        try:
            rel = Path(abs_path).resolve().relative_to(self.root).as_posix()
        except ValueError:
            rel = None
        self._rel_cache[abs_path] = rel
        return rel

    def cursor_rel(self, cursor) -> tuple[str | None, int]:
        """(relative file, line) of a cursor, (None, 0) if out of tree."""
        abs_path, line = location_of(cursor)
        if abs_path is None:
            return None, 0
        return self.rel_path(abs_path), line

    def allowlisted(self, rule: str, rel: str) -> bool:
        entries = config.FILE_ALLOWLIST.get(rule, {})
        if rel in entries:
            self.used_allowlist.add((rule, rel))
            return True
        return False

    def report(self, cursor, rule: str, message: str) -> None:
        rel, line = self.cursor_rel(cursor)
        if rel is None or line <= 0:
            return
        if self.allowlisted(rule, rel):
            return
        self.reporter.report(rel, line, rule, message)

    def unused_allowlist_entries(self) -> list[str]:
        """Entries that granted nothing — stale config worth deleting."""
        stale = []
        for rule, entries in config.FILE_ALLOWLIST.items():
            for rel in entries:
                if (rule, rel) not in self.used_allowlist:
                    stale.append(f"{rule}:{rel}")
        return sorted(stale)


class Rule:
    """Base class: subclasses set name/description and override visit."""

    name = "base"
    description = ""

    def visit(self, cursor, ctx: AnalysisContext) -> None:
        raise NotImplementedError

    @staticmethod
    def in_scope(rel: str | None, prefixes) -> bool:
        return rel is not None and rel.startswith(tuple(prefixes))
