"""wallclock: the simulation core reads no clock but GlobalStep.

Flags calls (and address-takes) of wall-clock, sleep, and environment
functions from files under src/sim, src/protocols, src/core. The regex
linter cannot do this: it would either miss ``using std::chrono::
steady_clock; ... steady_clock::now()`` or false-positive on the word
"sleep" in the protocol interface (wants_sleep). Matching the
*referenced declaration's* qualified name sees through using-decls,
aliases, and namespace tricks.
"""

from __future__ import annotations

from ugf_analyzer import config
from ugf_analyzer.astutil import kind_name, qualified_name
from ugf_analyzer.rules.base import AnalysisContext, Rule


class WallclockRule(Rule):
    name = "wallclock"
    description = ("no wall-clock, sleep, or environment reads in "
                   "src/sim, src/protocols, src/core")

    _REF_KINDS = {"CALL_EXPR", "DECL_REF_EXPR", "MEMBER_REF_EXPR"}

    def visit(self, cursor, ctx: AnalysisContext) -> None:
        if kind_name(cursor) not in self._REF_KINDS:
            return
        rel, _ = ctx.cursor_rel(cursor)
        if not self.in_scope(rel, config.WALLCLOCK_SCOPE):
            return
        try:
            referenced = cursor.referenced
        except (AttributeError, ValueError):
            return
        if referenced is None:
            return
        qname = qualified_name(referenced)
        if qname in config.WALLCLOCK_BANNED:
            ctx.report(
                cursor, self.name,
                f"'{qname}' reached from the simulation core; GlobalStep "
                "is the only clock and explicit config the only "
                "environment — wall-clock reads make runs irreproducible")
