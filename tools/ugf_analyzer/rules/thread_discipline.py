"""thread-discipline: concurrency flows through util::ThreadPool.

Constructing std::thread / std::async / mutexes / atomics outside the
pool, the partitioned step executor built on it, and the documented
padded-cell observability files
creates ad-hoc concurrency the determinism story cannot see: engine
state would be shared off the (step, seq)-ordered path, and the
thread-count-invariance tests would no longer cover reality.

Matching is on canonical *types of declarations* (so a
``std::vector<std::thread>`` member or an aliased mutex is caught) plus
calls to std::async. Static member calls on std::thread
(hardware_concurrency) and the value type std::thread::id stay legal.
"""

from __future__ import annotations

import re

from ugf_analyzer import config
from ugf_analyzer.astutil import (
    canonical_spelling,
    kind_name,
    qualified_name,
)
from ugf_analyzer.rules.base import AnalysisContext, Rule

_BANNED_TYPE_RE = re.compile(config.THREAD_DISCIPLINE_TYPE_RE)
# Ownership sites only: a parameter taking atomic& does not construct.
_DECL_KINDS = {"VAR_DECL", "FIELD_DECL"}


class ThreadDisciplineRule(Rule):
    name = "thread-discipline"
    description = ("no std::thread/std::async/mutexes/atomics "
                   "constructed outside src/util/thread_pool, "
                   "src/sim/parallel_executor, and the src/obs "
                   "padded-cell files")

    def visit(self, cursor, ctx: AnalysisContext) -> None:
        kind = kind_name(cursor)
        if kind in _DECL_KINDS:
            self._check_decl(cursor, ctx)
        elif kind == "CALL_EXPR":
            self._check_call(cursor, ctx)

    def _applies(self, rel: str | None) -> bool:
        return (self.in_scope(rel, config.THREAD_DISCIPLINE_SCOPE)
                and rel not in config.THREAD_DISCIPLINE_ALLOWED_FILES)

    def _check_decl(self, cursor, ctx: AnalysisContext) -> None:
        rel, _ = ctx.cursor_rel(cursor)
        if not self._applies(rel):
            return
        match = _BANNED_TYPE_RE.search(canonical_spelling(cursor))
        if match is None:
            return
        primitive = match.group(0).rstrip("<")
        ctx.report(
            cursor, self.name,
            f"{primitive} constructed outside src/util/thread_pool, "
            "src/sim/parallel_executor, and the src/obs padded-cell "
            "files; worker concurrency flows through util::ThreadPool "
            "so determinism tests cover it")

    def _check_call(self, cursor, ctx: AnalysisContext) -> None:
        rel, _ = ctx.cursor_rel(cursor)
        if not self._applies(rel):
            return
        try:
            referenced = cursor.referenced
        except (AttributeError, ValueError):
            return
        if referenced is None:
            return
        qname = qualified_name(referenced)
        if qname in config.THREAD_DISCIPLINE_BANNED_CALLS:
            ctx.report(
                cursor, self.name,
                f"'{qname}' spawns work outside util::ThreadPool; "
                "submit through the pool so worker count and claim "
                "order stay deterministic")
