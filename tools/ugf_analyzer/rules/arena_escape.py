"""arena-escape: PayloadRef / sim::Message must not outlive their run.

Payloads live in the per-run PayloadArena and die at Engine::reset();
a PayloadRef (or a Message, which embeds one) stored with static
storage duration, or as a member of a type defined outside the per-run
ownership scopes (src/sim, src/protocols), dangles after the first
reset — silently, because the slab memory is recycled, which is
exactly the bug class ASan cannot see through arena reuse.
"""

from __future__ import annotations

import re

from ugf_analyzer import config
from ugf_analyzer.astutil import (
    CLASS_PARENT_KINDS,
    SCOPE_PARENT_KINDS,
    canonical_spelling,
    has_leading_token,
    kind_name,
    parent_kind,
    qualified_name,
    storage_class_name,
)
from ugf_analyzer.rules.base import AnalysisContext, Rule

_ARENA_RE = re.compile(config.ARENA_TYPE_RE)


class ArenaEscapeRule(Rule):
    name = "arena-escape"
    description = ("no PayloadRef/sim::Message stored in static storage "
                   "or in types that outlive Engine::reset()")

    def visit(self, cursor, ctx: AnalysisContext) -> None:
        kind = kind_name(cursor)
        if kind == "VAR_DECL":
            self._check_static_var(cursor, ctx)
        elif kind == "FIELD_DECL":
            self._check_field(cursor, ctx)

    def _check_static_var(self, cursor, ctx: AnalysisContext) -> None:
        rel, _ = ctx.cursor_rel(cursor)
        if not self.in_scope(rel, config.ARENA_ESCAPE_SCOPE):
            return
        if not self._has_static_storage(cursor):
            return
        match = _ARENA_RE.search(canonical_spelling(cursor))
        if match is None:
            return
        ctx.report(
            cursor, self.name,
            f"static-storage '{qualified_name(cursor)}' holds "
            f"{match.group(0)}; arena-owned handles die at "
            "Engine::reset() and must never outlive their run "
            "(sim/payload_arena.hpp)")

    def _check_field(self, cursor, ctx: AnalysisContext) -> None:
        rel, _ = ctx.cursor_rel(cursor)
        if not self.in_scope(rel, config.ARENA_ESCAPE_SCOPE):
            return
        if rel.startswith(config.ARENA_OWNING_SCOPES):
            return  # per-run types: processes, protocol state, queues
        match = _ARENA_RE.search(canonical_spelling(cursor))
        if match is None:
            return
        ctx.report(
            cursor, self.name,
            f"member '{cursor.spelling}' of a type outside src/sim and "
            f"src/protocols holds "
            f"{match.group(0)}; such objects outlive Engine::reset(), "
            "so the handle dangles into recycled slab memory — copy the "
            "payload contents out instead")

    @staticmethod
    def _has_static_storage(cursor) -> bool:
        parent = parent_kind(cursor)
        if parent in SCOPE_PARENT_KINDS or parent in CLASS_PARENT_KINDS:
            return True
        return (storage_class_name(cursor) == "STATIC"
                or has_leading_token(cursor, "thread_local"))
