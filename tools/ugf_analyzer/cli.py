"""Command-line driver.

    python3 tools/ugf_analyzer --compdb build/compile_commands.json --root .

Exit codes (static_checks.py and CI rely on these):
  0  clean
  1  findings
  2  environment/config error (bad compdb, fatal parse error,
     unjustified allowlist entry, --require-libclang unmet)
  4  skipped: libclang unavailable and not required
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ugf_analyzer import config
from ugf_analyzer.astutil import location_of
from ugf_analyzer.census import Census
from ugf_analyzer.findings import Reporter
from ugf_analyzer.frontend import (
    FrontendUnavailable,
    load_cindex,
    load_compile_commands,
    parse_tu,
)
from ugf_analyzer.rules import AnalysisContext, make_rules

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2
EXIT_SKIPPED = 4


def walk_tu(tu, ctx: AnalysisContext, rules) -> None:
    """Depth-first over in-tree cursors; out-of-root files are pruned.

    Cursors from included files appear at their own nesting level, not
    under a foreign subtree, so pruning by the cursor's file is safe
    and keeps system headers out of every rule.
    """
    stack = [tu.cursor]
    while stack:
        node = stack.pop()
        try:
            children = list(node.get_children())
        except (AttributeError, ValueError):
            continue
        for child in children:
            abs_file, _ = location_of(child)
            if abs_file is not None:
                rel = ctx.rel_path(abs_file)
                if rel is None or not rel.startswith("src/"):
                    continue
            for rule in rules:
                rule.visit(child, ctx)
            stack.append(child)


def run_analysis(cindex, units, root: Path, strict_parse: bool,
                 warn_stale: bool = True
                 ) -> tuple[int, Reporter, Census, dict]:
    """Parses + walks every unit. Returns (exit, reporter, census, stats)."""
    reporter = Reporter(root)
    census = Census()
    ctx = AnalysisContext(root, reporter, census)
    rules = make_rules()
    stats = {"units": 0, "parse_errors": 0}

    for file_path, args in units:
        tu, errors, fatals = parse_tu(cindex, file_path, args)
        stats["units"] += 1
        stats["parse_errors"] += len(errors) + len(fatals)
        for diag in fatals + errors:
            print(f"ugf_analyzer: parse: {diag}", file=sys.stderr)
        if fatals:
            print(f"ugf_analyzer: fatal parse error in {file_path}; "
                  "results would be unreliable", file=sys.stderr)
            return EXIT_ERROR, reporter, census, stats
        if errors and strict_parse:
            print(f"ugf_analyzer: --strict-parse: errors in {file_path}",
                  file=sys.stderr)
            return EXIT_ERROR, reporter, census, stats
        walk_tu(tu, ctx, rules)

    if warn_stale:
        for stale in ctx.unused_allowlist_entries():
            print(f"ugf_analyzer: warning: unused allowlist entry {stale} "
                  "(delete it or the exemption rots)", file=sys.stderr)
    return EXIT_CLEAN, reporter, census, stats


def emit(reporter: Reporter, census: Census, stats: dict,
         shared_state_out: Path | None) -> int:
    active, suppressed = reporter.finalize()
    census.apply_suppressions(suppressed)
    for finding in active:
        print(finding.render())
    if shared_state_out is not None:
        shared_state_out.parent.mkdir(parents=True, exist_ok=True)
        shared_state_out.write_text(census.to_json(), encoding="utf-8")
    status = "clean" if not active else f"{len(active)} finding(s)"
    print(
        f"ugf_analyzer: {stats['units']} translation units, "
        f"{len(census.statics)} static-storage vars censused, "
        f"{len(suppressed)} suppressed, {status}",
        file=sys.stderr)
    return EXIT_FINDINGS if active else EXIT_CLEAN


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="ugf_analyzer", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--compdb", type=Path,
                        help="path to compile_commands.json")
    parser.add_argument("--root", type=Path, default=Path.cwd(),
                        help="repo root findings are reported relative to")
    parser.add_argument("--shared-state-out", type=Path, default=None,
                        help="write the ugf-shared-state-v1 census here")
    parser.add_argument("--require-libclang", action="store_true",
                        help="exit 2 (not skip-4) when libclang is missing")
    parser.add_argument("--strict-parse", action="store_true",
                        help="treat non-fatal parse errors as failures")
    parser.add_argument("--selftest", action="store_true",
                        help="run the fixture self-test instead of a compdb")
    parser.add_argument("--update-golden", action="store_true",
                        help="with --selftest: rewrite expected_findings.txt")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in make_rules():
            print(f"{rule.name}: {rule.description}")
        return EXIT_CLEAN

    config_errors = config.allowlist_errors()
    if config_errors:
        for err in config_errors:
            print(f"ugf_analyzer: config: {err}", file=sys.stderr)
        return EXIT_ERROR

    try:
        cindex = load_cindex()
    except FrontendUnavailable as err:
        stream = sys.stderr
        print(f"ugf_analyzer: {err}", file=stream)
        if args.require_libclang:
            print("ugf_analyzer: libclang is required here (CI); failing",
                  file=stream)
            return EXIT_ERROR
        print("ugf_analyzer: skipping semantic analysis (exit 4)",
              file=stream)
        return EXIT_SKIPPED

    if args.selftest:
        from ugf_analyzer.selftest import run_selftest
        return run_selftest(cindex, update_golden=args.update_golden)

    if args.compdb is None:
        parser.error("--compdb is required (or use --selftest/--list-rules)")
    if not args.compdb.is_file():
        print(f"ugf_analyzer: {args.compdb} not found; configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON (the presets and the "
              "top-level CMakeLists do)", file=sys.stderr)
        return EXIT_ERROR

    root = args.root.resolve()
    units = load_compile_commands(args.compdb, root)
    if not units:
        print("ugf_analyzer: no src/ translation units in the database",
              file=sys.stderr)
        return EXIT_ERROR

    code, reporter, census, stats = run_analysis(
        cindex, units, root, args.strict_parse)
    if code != EXIT_CLEAN:
        return code
    return emit(reporter, census, stats, args.shared_state_out)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
