"""The only module that touches clang.cindex.

Responsibilities: locate a loadable libclang (bindings alone are not
enough), parse translation units out of compile_commands.json with
cleaned-up arguments, and classify parse diagnostics. Everything above
this module works on duck-typed cursors, so the absence of libclang
degrades to a *skip* (exit 4 upstream), never a crash — mirroring how
run_clang_tidy.py degrades when clang-tidy is not installed.
"""

from __future__ import annotations

import glob
import json
import os
import shlex
from pathlib import Path


class FrontendUnavailable(RuntimeError):
    """libclang (or its python bindings) cannot be loaded here."""


def _candidate_libraries() -> list[str]:
    """Ordered libclang .so candidates across distro layouts."""
    candidates: list[str] = []
    env = os.environ.get("LIBCLANG_PATH") or os.environ.get(
        "LIBCLANG_LIBRARY_FILE")
    if env:
        candidates.append(env)
    try:
        from ctypes.util import find_library
        for name in ["clang"] + [f"clang-{v}" for v in range(21, 9, -1)]:
            hit = find_library(name)
            if hit:
                candidates.append(hit)
    except Exception:  # noqa: BLE001 - ctypes.util quirks vary by platform
        pass
    for pattern in (
            "/usr/lib/llvm-*/lib/libclang-*.so*",
            "/usr/lib/llvm-*/lib/libclang.so*",
            "/usr/lib/*/libclang-*.so*",
            "/usr/lib/*/libclang.so*",
            "/usr/local/lib/libclang*.so*",
    ):
        # Newest version first within each pattern.
        candidates.extend(sorted(glob.glob(pattern), reverse=True))
    seen: set[str] = set()
    ordered = []
    for c in candidates:
        if c not in seen and "libclang-cpp" not in c:
            seen.add(c)
            ordered.append(c)
    return ordered


def load_cindex():
    """Imports clang.cindex and proves an Index can be created.

    Returns the cindex module. Raises FrontendUnavailable with a
    human-readable reason otherwise.
    """
    try:
        from clang import cindex
    except ImportError as err:
        raise FrontendUnavailable(
            f"python clang bindings not importable ({err}); install "
            "python3-clang (apt) or the libclang wheel (pip)") from err

    attempts: list[str] = []
    try:
        cindex.Index.create()
        return cindex
    except Exception as err:  # noqa: BLE001 - cindex raises LibclangError
        attempts.append(f"default: {err}")

    for library in _candidate_libraries():
        if not Path(library).exists() and "/" in library:
            continue
        try:
            cindex.Config.loaded = False
            cindex.conf.lib  # may already be cached from a failed load
        except Exception:  # noqa: BLE001
            pass
        try:
            cindex.Config.set_library_file(library)
            cindex.Index.create()
            return cindex
        except Exception as err:  # noqa: BLE001
            attempts.append(f"{library}: {err}")
            # Config caches aggressively; reset for the next candidate.
            cindex.Config.loaded = False
            cindex.Config.library_file = None

    raise FrontendUnavailable(
        "no loadable libclang found; tried "
        + "; ".join(attempts[:6])
        + (" ..." if len(attempts) > 6 else "")
        + ". Set LIBCLANG_PATH=/path/to/libclang.so to override.")


# --- compile_commands.json -------------------------------------------------

# Arguments that take a value and must be dropped together with it.
_DROP_WITH_VALUE = {"-o", "-MF", "-MT", "-MQ", "--output"}
# Arguments dropped alone (build bookkeeping irrelevant to parsing).
_DROP_ALONE = {"-c", "-MD", "-MMD", "-MP", "--"}


def load_compile_commands(compdb: Path, source_root: Path,
                          subdir: str = "src") -> list[tuple[Path, list[str]]]:
    """[(absolute source file, clang args)] for TUs under root/subdir.

    Args are cleaned for libclang: compiler argv[0], -c/-o/-M* and the
    source path itself are dropped, and -Wno-everything is appended —
    the analyzer's rules are the diagnostics of interest, not warnings
    from a foreign compiler's flag dialect.
    """
    entries = json.loads(compdb.read_text(encoding="utf-8"))
    root = source_root.resolve()
    scope = root / subdir
    out: dict[Path, list[str]] = {}
    for entry in entries:
        directory = Path(entry.get("directory", "."))
        file_path = (directory / entry["file"]).resolve() \
            if not Path(entry["file"]).is_absolute() \
            else Path(entry["file"]).resolve()
        if not str(file_path).startswith(str(scope) + os.sep):
            continue
        if "arguments" in entry:
            raw = list(entry["arguments"])
        else:
            raw = shlex.split(entry.get("command", ""))
        args: list[str] = []
        skip_next = False
        for i, arg in enumerate(raw):
            if i == 0:  # the compiler itself
                continue
            if skip_next:
                skip_next = False
                continue
            if arg in _DROP_WITH_VALUE:
                skip_next = True
                continue
            if arg in _DROP_ALONE:
                continue
            try:
                if Path(arg).is_absolute() and \
                        Path(arg).resolve() == file_path:
                    continue
                if (directory / arg).resolve() == file_path:
                    continue
            except OSError:
                pass
            args.append(arg)
        args.append("-Wno-everything")
        out.setdefault(file_path, args)
    return sorted(out.items())


def parse_tu(cindex, file_path: Path, args: list[str]):
    """(translation unit, error diagnostics, fatal diagnostics)."""
    index = cindex.Index.create()
    tu = index.parse(str(file_path), args=args)
    errors: list[str] = []
    fatals: list[str] = []
    for diag in tu.diagnostics:
        if diag.severity >= 4:
            fatals.append(_render_diag(diag))
        elif diag.severity == 3:
            errors.append(_render_diag(diag))
    return tu, errors, fatals


def _render_diag(diag) -> str:
    loc = diag.location
    where = f"{loc.file.name}:{loc.line}" if loc and loc.file else "<nofile>"
    return f"{where}: {diag.spelling}"


def probe() -> tuple[bool, str]:
    """(usable?, detail). Proves load + a real parse round-trip."""
    import tempfile
    try:
        cindex = load_cindex()
    except FrontendUnavailable as err:
        return False, str(err)
    try:
        with tempfile.TemporaryDirectory() as tmp:
            probe_cpp = Path(tmp) / "probe.cpp"
            probe_cpp.write_text(
                "namespace p { struct S { int f; }; static int v = 0; }\n"
                "int main() { return p::v; }\n")
            tu, errors, fatals = parse_tu(cindex, probe_cpp,
                                          ["-x", "c++", "-std=c++17"])
            kinds = {child.kind.name for child in tu.cursor.get_children()}
            if fatals or errors or "NAMESPACE" not in kinds:
                return False, (f"probe parse produced errors={errors} "
                               f"fatals={fatals} kinds={sorted(kinds)}")
    except Exception as err:  # noqa: BLE001 - any failure means unusable
        return False, f"probe parse failed: {err}"
    return True, "libclang usable"
