"""Rule scopes, banned-name sets, and the explicit allowlist.

Two exemption mechanisms exist, deliberately distinct:

* Scope definitions (WALLCLOCK_SCOPE, THREAD_DISCIPLINE_ALLOWED_FILES,
  ARENA_OWNING_SCOPES) are part of what each rule *means* — e.g.
  concurrency primitives are definitionally legal inside the thread
  pool and the src/obs padded-cell files.
* FILE_ALLOWLIST grants a named file an exception to a rule that does
  apply to it. Every entry must carry a one-line justification; the
  analyzer refuses (exit 2) to run with an unjustified entry, and
  unused entries are reported so the list cannot rot.

Single-line exceptions belong in the source as
``// ugf-analyzer: allow(<rule>): why`` instead of here.
"""

from __future__ import annotations

# --- wallclock -------------------------------------------------------------
# The simulation core: GlobalStep is the only clock, explicit config
# structs the only environment. src/runner and src/obs intentionally
# stay out of scope — they measure wall time *about* runs (progress
# rates, wall-time histograms), never inside the simulated world.
WALLCLOCK_SCOPE = ("src/sim/", "src/protocols/", "src/core/")

WALLCLOCK_BANNED = frozenset({
    # C time
    "time", "std::time", "clock", "std::clock", "gettimeofday",
    "clock_gettime", "timespec_get", "localtime", "gmtime", "mktime",
    "difftime", "ctime", "asctime",
    # C++ chrono clocks (now() is the read; the type alone is fine)
    "std::chrono::system_clock::now",
    "std::chrono::steady_clock::now",
    "std::chrono::high_resolution_clock::now",
    "std::chrono::utc_clock::now",
    "std::chrono::file_clock::now",
    # environment
    "getenv", "std::getenv", "secure_getenv", "setenv", "putenv",
    "unsetenv",
    # sleeping / yielding — a simulated process sleeps via the protocol
    # interface (wants_sleep), never the OS
    "sleep", "usleep", "nanosleep",
    "std::this_thread::sleep_for", "std::this_thread::sleep_until",
    "std::this_thread::yield",
})

# --- shared-state ----------------------------------------------------------
SHARED_STATE_SCOPE = ("src/",)

# --- pointer-order ---------------------------------------------------------
POINTER_ORDER_SCOPE = ("src/",)
# Ordered/hashed templates whose key must not be a raw pointer.
POINTER_KEYED_TEMPLATES = (
    "std::map<", "std::multimap<", "std::set<", "std::multiset<",
    "std::hash<", "std::less<", "std::greater<", "std::less_equal<",
    "std::greater_equal<",
)
RELATIONAL_OPS = frozenset({"<", ">", "<=", ">=", "<=>"})

# --- thread-discipline -----------------------------------------------------
THREAD_DISCIPLINE_SCOPE = ("src/",)

# Files where constructing concurrency primitives is the point: the
# pool itself, the partitioned step executor built on top of it (the
# one sanctioned intra-run concurrency site — its shard buffers and
# wave barriers are what the thread-invariance matrix tests pin down),
# and the padded-cell observability files whose per-thread slots +
# relaxed atomics are the documented design (docs/OBSERVABILITY.md).
THREAD_DISCIPLINE_ALLOWED_FILES = frozenset({
    "src/util/thread_pool.hpp",
    "src/util/thread_pool.cpp",
    "src/sim/parallel_executor.hpp",
    "src/sim/parallel_executor.cpp",
    "src/obs/metrics.hpp",
    "src/obs/metrics.cpp",
    "src/obs/profile.hpp",
    "src/obs/profile.cpp",
    "src/obs/progress.hpp",
    "src/obs/progress.cpp",
    "src/obs/flight_recorder.hpp",
    "src/obs/flight_recorder.cpp",
})

# Matched against canonical type spellings, so containers of primitives
# (std::vector<std::thread>) and aliases are caught. std::thread::id is
# a plain value type and deliberately not banned.
THREAD_DISCIPLINE_TYPE_RE = (
    r"\bstd::(?:"
    r"thread\b(?!::)|jthread\b|"
    r"mutex\b|timed_mutex\b|recursive_mutex\b|recursive_timed_mutex\b|"
    r"shared_mutex\b|shared_timed_mutex\b|"
    r"condition_variable\b|condition_variable_any\b|"
    r"atomic\b|atomic<|atomic_flag\b|atomic_ref<|"
    r"lock_guard<|unique_lock<|scoped_lock<|shared_lock<|"
    r"future<|shared_future<|promise<|packaged_task<|"
    r"latch\b|barrier\b|barrier<|counting_semaphore|binary_semaphore\b|"
    r"stop_source\b|stop_token\b|stop_callback"
    r")")

THREAD_DISCIPLINE_BANNED_CALLS = frozenset({
    "std::async",
})

# --- arena-escape ----------------------------------------------------------
ARENA_ESCAPE_SCOPE = ("src/",)
# Types whose instances die at Engine::reset(): a handle stored outside
# the per-run ownership scopes outlives its arena.
ARENA_TYPE_RE = r"\bugf::sim::(?:PayloadRef|Message|PayloadArena)\b"
# Classes defined here live inside one run (processes, protocol state,
# in-flight queues); anywhere else outlives reset().
ARENA_OWNING_SCOPES = ("src/sim/", "src/protocols/")

# --- explicit allowlist ----------------------------------------------------
# rule -> { repo-relative file -> one-line justification }.
FILE_ALLOWLIST: dict[str, dict[str, str]] = {
    "thread-discipline": {
        "src/util/check.cpp":
            "failure hooks fire from any worker; the registry guards "
            "itself with a private mutex because it cannot depend on "
            "ThreadPool (check.hpp is below it in the layering)",
        "src/runner/monte_carlo.cpp":
            "the atomic run-claim counter is the one sanctioned "
            "cross-worker handshake feeding ThreadPool::parallel_for "
            "(seeds derive from the claimed index, keeping runs "
            "thread-count invariant)",
    },
}


def allowlist_errors() -> list[str]:
    """Config self-check: every entry needs a real justification."""
    errors: list[str] = []
    for rule, entries in FILE_ALLOWLIST.items():
        for rel, justification in entries.items():
            if not justification or not justification.strip():
                errors.append(
                    f"allowlist entry {rule}:{rel} has no justification")
    return errors
