#!/usr/bin/env python3
"""Exit 0 when libclang is usable here, 1 otherwise.

CMake runs this at configure time to decide whether to register the
``ugf_analyzer`` / ``ugf_analyzer_selftest`` ctest tests — the same
found/not-found gating pattern as clang-tidy. ``--verbose`` prints the
reason, which CI uses to fail loudly when the required toolchain is
missing rather than silently skipping the analyzer.
"""

import sys
from pathlib import Path

_TOOLS = str(Path(__file__).resolve().parent.parent)
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)

from ugf_analyzer.frontend import probe  # noqa: E402


def main(argv: list[str]) -> int:
    usable, detail = probe()
    if "--verbose" in argv or not usable:
        print(f"ugf_analyzer probe: {detail}", file=sys.stderr)
    return 0 if usable else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
