"""Duck-typed cursor/type helpers shared by every rule.

Rules never import clang.cindex. They rely only on this attribute
surface (which the unit-test fakes also implement):

  cursor.kind.name           e.g. "VAR_DECL", "CALL_EXPR"
  cursor.spelling            declared name
  cursor.location.file.name  absolute path (file may be None for the TU)
  cursor.location.line
  cursor.extent.start.offset / cursor.extent.end.offset
  cursor.semantic_parent     enclosing decl cursor (or None)
  cursor.referenced          referenced decl for refs/calls (or None)
  cursor.storage_class.name  "STATIC" / "NONE" / "EXTERN" / ...
  cursor.is_definition()
  cursor.get_children() / cursor.get_tokens()
  cursor.type / token.spelling, token.extent

  type.spelling
  type.kind.name             e.g. "POINTER", "CONSTANTARRAY"
  type.get_canonical() / type.is_const_qualified() / type.element_type

Every helper is defensive: libclang raises ValueError for enum ids
newer than the bindings and AttributeError on half-formed cursors from
broken TUs; a helper that cannot answer returns its neutral value
rather than crashing the whole pass.
"""

from __future__ import annotations

SCOPE_PARENT_KINDS = {"NAMESPACE", "TRANSLATION_UNIT"}
CLASS_PARENT_KINDS = {
    "CLASS_DECL", "STRUCT_DECL", "UNION_DECL", "CLASS_TEMPLATE",
    "CLASS_TEMPLATE_PARTIAL_SPECIALIZATION",
}
ARRAY_TYPE_KINDS = {"CONSTANTARRAY", "INCOMPLETEARRAY", "VARIABLEARRAY",
                    "DEPENDENTSIZEDARRAY"}


def kind_name(cursor) -> str:
    try:
        return cursor.kind.name
    except (AttributeError, ValueError):
        return ""


def type_kind_name(ctype) -> str:
    try:
        return ctype.kind.name
    except (AttributeError, ValueError):
        return ""


def location_of(cursor):
    """(absolute file name, line) or (None, 0)."""
    try:
        loc = cursor.location
        if loc is None or loc.file is None:
            return None, 0
        return loc.file.name, loc.line
    except (AttributeError, ValueError):
        return None, 0


def qualified_name(cursor) -> str:
    """Fully qualified name: walks semantic parents up to the TU.

    Anonymous scopes contribute "(anonymous)"; a broken parent chain
    truncates rather than raising.
    """
    parts: list[str] = []
    node = cursor
    for _ in range(64):  # defensive depth bound
        if node is None:
            break
        kind = kind_name(node)
        if kind == "TRANSLATION_UNIT":
            break
        if kind == "LINKAGE_SPEC":  # extern "C" blocks are transparent
            try:
                node = node.semantic_parent
            except (AttributeError, ValueError):
                break
            continue
        spelling = getattr(node, "spelling", "") or "(anonymous)"
        parts.append(spelling)
        try:
            node = node.semantic_parent
        except (AttributeError, ValueError):
            break
    return "::".join(reversed(parts))


def canonical_type(ctype):
    try:
        return ctype.get_canonical()
    except (AttributeError, ValueError):
        return ctype


def canonical_spelling(cursor) -> str:
    try:
        return canonical_type(cursor.type).spelling or ""
    except (AttributeError, ValueError):
        return ""


def is_const_type(ctype) -> bool:
    """const-ness of the type, looking through array layers."""
    t = canonical_type(ctype)
    for _ in range(8):
        try:
            if t.is_const_qualified():
                return True
        except (AttributeError, ValueError):
            return False
        if type_kind_name(t) not in ARRAY_TYPE_KINDS:
            return False
        try:
            t = t.element_type
        except (AttributeError, ValueError):
            return False
    return False


def is_atomic_type(ctype) -> bool:
    """std::atomic<...> / std::atomic_flag / C _Atomic, through arrays."""
    t = canonical_type(ctype)
    for _ in range(8):
        if type_kind_name(t) == "ATOMIC":
            return True
        spelling = (getattr(t, "spelling", "") or "").removeprefix("const ")
        if spelling.startswith(("std::atomic<", "std::atomic_flag",
                                "_Atomic(")):
            return True
        if type_kind_name(t) not in ARRAY_TYPE_KINDS:
            return False
        try:
            t = t.element_type
        except (AttributeError, ValueError):
            return False
    return False


def storage_class_name(cursor) -> str:
    try:
        return cursor.storage_class.name
    except (AttributeError, ValueError):
        return "NONE"


def parent_kind(cursor) -> str:
    try:
        return kind_name(cursor.semantic_parent)
    except (AttributeError, ValueError):
        return ""


def has_leading_token(cursor, spelling: str, limit: int = 12) -> bool:
    """True when `spelling` appears in the first tokens of the extent.

    Used for specifiers libclang does not expose through cindex
    (``thread_local``). Bounded so a huge initializer is never scanned.
    """
    try:
        for i, tok in enumerate(cursor.get_tokens()):
            if i >= limit:
                return False
            if tok.spelling == spelling:
                return True
            if tok.spelling in ("=", "{", "("):  # initializer begins
                return False
    except (AttributeError, ValueError):
        return False
    return False


def binary_operator_spelling(cursor) -> str:
    """Operator token of a BINARY_OPERATOR cursor, or "".

    cindex 14 has no opcode accessor, so this reads the token that sits
    between the two operand extents. Returns "" for macro-mangled
    extents rather than guessing.
    """
    try:
        children = list(cursor.get_children())
        if len(children) != 2:
            return ""
        lhs_end = children[0].extent.end.offset
        rhs_start = children[1].extent.start.offset
        if not (0 <= lhs_end <= rhs_start):
            return ""
        for tok in cursor.get_tokens():
            off = tok.extent.start.offset
            if lhs_end <= off < rhs_start:
                return tok.spelling
    except (AttributeError, ValueError):
        return ""
    return ""


def split_template_args(spelling: str) -> list[str]:
    """Top-level template arguments of `Outer<...>` from a type spelling.

    Purely textual (works identically on fake types in the unit tests
    and on any libclang version): respects nested <>, (), [] and skips
    the outer name. Returns [] when the spelling has no argument list.
    """
    start = spelling.find("<")
    if start < 0 or not spelling.endswith(">"):
        return []
    body = spelling[start + 1:-1]
    args: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in body:
        if ch in "<([":
            depth += 1
        elif ch in ">)]":
            depth -= 1
        if ch == "," and depth == 0:
            args.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        args.append(tail)
    return args
