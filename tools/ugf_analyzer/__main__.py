"""Entry point so both invocation styles work:

    python3 tools/ugf_analyzer ...            (directory execution)
    PYTHONPATH=tools python3 -m ugf_analyzer  (module execution)
"""

import sys
from pathlib import Path

# Directory execution puts tools/ugf_analyzer itself on sys.path; the
# package imports need its parent (tools/) there instead.
_TOOLS = str(Path(__file__).resolve().parent.parent)
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)

from ugf_analyzer.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
