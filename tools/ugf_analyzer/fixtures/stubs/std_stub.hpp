#pragma once
// Minimal std:: shapes with the exact qualified names the analyzer
// rules match on. Self-contained so the fixture self-test parses
// identically under any libclang version, independent of the host's
// real standard library headers. Never included by production code.

namespace std {

using size_t = decltype(sizeof(0));

namespace chrono {
struct time_point {
  long long ticks;
};
struct system_clock {
  static time_point now();
};
struct steady_clock {
  static time_point now();
};
struct high_resolution_clock {
  static time_point now();
};
struct seconds {
  long long value;
};
}  // namespace chrono

namespace this_thread {
void sleep_for(chrono::seconds);
void sleep_until(chrono::time_point);
void yield();
}  // namespace this_thread

char* getenv(const char* name);
long time(long* out);

struct thread {
  struct id {
    int v;
  };
  static unsigned hardware_concurrency();
};
struct jthread {
  int v;
};
class mutex {
 public:
  void lock();
  void unlock();
};
class recursive_mutex {};
class shared_mutex {};
class condition_variable {};
template <class T>
struct atomic {
  T value;
  T load() const;
  void store(T);
};
struct atomic_flag {
  bool value;
};
template <class M>
struct lock_guard {
  explicit lock_guard(M&);
};
template <class M>
struct unique_lock {
  explicit unique_lock(M&);
};
template <class F>
int async(F f);

template <class T>
struct allocator {
  int v;
};
template <class T, class A = allocator<T>>
struct vector {
  T* data;
  size_t count;
};
template <class K, class V>
struct map {
  int v;
};
template <class K>
struct set {
  int v;
};
template <class K>
struct hash {
  int v;
};
template <class K>
struct less {
  int v;
};

}  // namespace std
