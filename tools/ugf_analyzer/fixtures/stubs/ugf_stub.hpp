#pragma once
// Minimal arena-layer shapes (qualified names only) for the
// arena-escape fixtures. Mirrors src/sim/payload_arena.hpp and
// src/sim/message.hpp shapes without pulling in the real headers.

namespace ugf::sim {

struct PayloadRef {
  const void* ptr;
  unsigned kind;
};

struct Message {
  unsigned from;
  unsigned to;
  PayloadRef payload;
};

class PayloadArena {
 public:
  void reset();
};

}  // namespace ugf::sim
