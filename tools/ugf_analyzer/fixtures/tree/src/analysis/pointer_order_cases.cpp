// Fixture: ordering and hashing built on raw pointer values.
// Expected findings: lines 8, 12, 16, 20. The rest are negatives.
#include "std_stub.hpp"

namespace fx {

bool ptr_before(const int* a, const int* b) {
  return a < b;
}

struct AddrIndex {
  std::map<const void*, int> by_addr;
};

int track_addresses() {
  std::set<int*> live;
  return live.v;
}

int hash_name(std::hash<char*> hasher);

bool id_before(unsigned x, unsigned y) {
  return x < y;
}

bool is_null(const int* p) {
  return p == nullptr;
}

struct IdIndex {
  std::map<unsigned, int> by_id;
};

}  // namespace fx
