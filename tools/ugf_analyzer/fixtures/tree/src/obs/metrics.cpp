// Fixture: padded-cell observability file — atomics are allowed here,
// and the namespace-scope atomic lands in the census as exempt-atomic.
#include "std_stub.hpp"

namespace fx {

std::atomic<unsigned long> g_dropped_events;

struct PaddedCell {
  std::atomic<unsigned long> value;
};

}  // namespace fx
