// Fixture: arena handles held by a type that outlives Engine::reset().
// Expected findings: lines 8 and 9.
#include "ugf_stub.hpp"

namespace fx {

struct ReplayLog {
  ugf::sim::Message last_message;
  ugf::sim::PayloadRef held;
  unsigned long step;
};

}  // namespace fx
