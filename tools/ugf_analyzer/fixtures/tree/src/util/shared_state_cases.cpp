// Fixture: static-storage variables across every storage kind.
// Expected findings: lines 6, 10, 13, 18. Line 22 is suppressed.

namespace fx {

int g_mutable_counter = 0;

const int kTable[4] = {1, 2, 3, 4};  // exempt-const in the census

thread_local int t_scratch = 0;

long bump() {
  static long calls = 0;
  return ++calls;
}

struct Gauge {
  static inline int live_instances;
};

// ugf-analyzer: allow(shared-state): fixture cache guarded elsewhere
static long g_cache_epoch = 0;

}  // namespace fx
