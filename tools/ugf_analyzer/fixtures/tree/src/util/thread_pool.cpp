// Fixture: the sanctioned pool file — primitives here are the point.
// No findings expected anywhere in this file.
#include "std_stub.hpp"

namespace fx {

class FixturePool {
 public:
  void shutdown();

 private:
  std::vector<std::thread> workers_;
  std::mutex wake_lock_;
  std::condition_variable wake_;
  std::atomic<bool> stopping_;
};

void FixturePool::shutdown() {}

}  // namespace fx
