// Fixture: legal look-alikes — none of these may produce findings.
#include "std_stub.hpp"
#include "ugf_stub.hpp"

namespace fx {

unsigned worker_budget() {
  return std::thread::hardware_concurrency();
}

std::thread::id current_owner(std::thread::id tid) {
  std::thread::id copy = tid;
  return copy;
}

const unsigned kFanout = 8;

bool step_before(unsigned long a, unsigned long b) {
  return a < b;
}

ugf::sim::Message roundtrip(ugf::sim::Message m) {
  ugf::sim::Message copy = m;
  return copy;
}

}  // namespace fx
