// Fixture: concurrency primitives outside the sanctioned files.
// Expected findings: lines 8, 9, 13, 17. Line 21 is suppressed.
#include "std_stub.hpp"

namespace fx {

struct AdHocPool {
  std::vector<std::thread> workers;
  std::mutex guard;
};

int count_hits() {
  std::atomic<int> hits;
  return hits.load();
}

int fire_and_forget() { return std::async(count_hits); }

int tracked() {
  // ugf-analyzer: allow(thread-discipline): fixture sanctioned counter
  std::atomic<int> sanctioned;
  return sanctioned.load();
}

}  // namespace fx
