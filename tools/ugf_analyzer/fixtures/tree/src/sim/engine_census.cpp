// Fixture: ugf::sim::Engine fields feed the shared_state.json census.
// No findings: the PayloadRef member lives in an owning scope.
#include "ugf_stub.hpp"

namespace ugf::sim {

class Engine {
 public:
  void reset();

 private:
  static constexpr unsigned kMaxProcs = 64;
  unsigned long steps_ = 0;
  PayloadRef current_{};
  const unsigned n_;
};

}  // namespace ugf::sim
