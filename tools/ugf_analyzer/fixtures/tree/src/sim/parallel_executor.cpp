// Fixture: the partitioned step executor is a sanctioned concurrency
// site (THREAD_DISCIPLINE_ALLOWED_FILES): primitives here produce no
// findings — the file carve, not an inline allow, keeps them out of
// the golden. The merge-telemetry clock read is NOT carved (wallclock
// still applies everywhere in src/sim) and needs its inline allow.
// Expected findings: none. Line 19 is suppressed (wallclock).
#include "std_stub.hpp"

namespace fx {

struct ShardMerge {
  std::vector<std::thread> lanes;  // carved: no thread-discipline finding
  std::mutex wave_guard;           // carved
};

long long merge_clock() {
  std::atomic<int> staged;  // carved
  // ugf-analyzer: allow(wallclock): fixture merge-telemetry clock read
  auto t = std::chrono::steady_clock::now();
  return t.ticks + staged.load();
}

}  // namespace fx
