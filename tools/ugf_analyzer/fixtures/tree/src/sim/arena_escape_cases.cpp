// Fixture: arena-owned handles with static storage duration. Each
// site draws both arena-escape and shared-state (static storage is
// the escape vector *and* mutable shared state).
// Expected findings: lines 9 and 12, under both rules.
#include "ugf_stub.hpp"

namespace fx {

ugf::sim::PayloadRef g_escaped_ref;

void cache_across_runs() {
  static ugf::sim::Message parked;
  (void)parked;
}

ugf::sim::Message make_local() {
  ugf::sim::Message m;  // plain local: dies with the call, no finding
  return m;
}

}  // namespace fx
