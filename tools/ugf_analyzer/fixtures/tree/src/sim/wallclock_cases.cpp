// Fixture: wall-clock / environment reads inside the simulation core.
// Expected findings: lines 10, 14, 19, 22. Line 26 is suppressed.
#include "std_stub.hpp"

extern "C" long time(long* out);

namespace fx {

long direct_c_call() {
  return time(nullptr);
}

long qualified_chrono_now() {
  auto t = std::chrono::steady_clock::now();
  return t.ticks;
}

const char* environment_read() {
  return std::getenv("UGF_MODE");
}

void os_yield() { std::this_thread::yield(); }

void sanctioned_read() {
  // ugf-analyzer: allow(wallclock): fixture-sanctioned exception
  (void)std::getenv("UGF_ALLOWED");
}

}  // namespace fx
