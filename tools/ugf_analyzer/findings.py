"""Findings, suppressions, and the shared output contract.

Output is identical to tools/lint_ugf.py: one ``file:line: rule:
message`` per finding on stdout, a one-line summary on stderr, exit 1
when anything survives suppression. A finding is suppressed by

    // ugf-analyzer: allow(<rule>[, <rule>...])[: justification]

on the finding's line or the line above. The trailing justification is
not just a comment: the shared-state census records it, and the
fixture self-test asserts suppressed lines stay out of the golden set.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

ALLOW_RE = re.compile(
    r"ugf-analyzer:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)(?::\s*(.*?))?\s*$")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, keyed repo-relative so output is stable."""
    file: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.rule}: {self.message}"


class SuppressionIndex:
    """Lazily loads source lines and answers allow() queries."""

    def __init__(self, root: Path):
        self._root = root
        self._cache: dict[str, list[str]] = {}

    def _lines(self, rel: str) -> list[str]:
        if rel not in self._cache:
            try:
                text = (self._root / rel).read_text(encoding="utf-8",
                                                    errors="replace")
                self._cache[rel] = text.splitlines()
            except OSError:
                self._cache[rel] = []
        return self._cache[rel]

    def match(self, rel: str, line: int, rule: str) -> str | None:
        """Justification text ("" if none given) when allowed, else None."""
        lines = self._lines(rel)
        for lineno in (line, line - 1):
            idx = lineno - 1
            if 0 <= idx < len(lines):
                m = ALLOW_RE.search(lines[idx])
                if m and rule in {r.strip() for r in m.group(1).split(",")}:
                    return (m.group(2) or "").strip()
        return None


class Reporter:
    """Collects findings with cross-TU dedup, applies suppressions last.

    Headers are parsed once per including TU, so the same violation is
    reported many times; the (file, line, rule, message) key collapses
    them. Suppression happens at finalize() so the census can still see
    which entries were inline-allowed (and with what justification).
    """

    def __init__(self, root: Path):
        self.root = root
        self.suppressions = SuppressionIndex(root)
        self._all: set[Finding] = set()

    def report(self, rel: str, line: int, rule: str, message: str) -> None:
        self._all.add(Finding(rel, line, rule, message))

    def finalize(self) -> tuple[list[Finding], list[tuple[Finding, str]]]:
        """(active findings sorted, suppressed findings + justification)."""
        active: list[Finding] = []
        suppressed: list[tuple[Finding, str]] = []
        for finding in sorted(self._all):
            justification = self.suppressions.match(
                finding.file, finding.line, finding.rule)
            if justification is None:
                active.append(finding)
            else:
                suppressed.append((finding, justification))
        return active, suppressed
