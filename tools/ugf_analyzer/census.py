"""Machine-readable census of mutable shared state: shared_state.json.

ROADMAP item 2 (deterministic intra-run parallelism) needs to know
exactly which state a worker partition may touch. The shared-state
rule walk produces that census as a side effect:

* ``statics`` — every namespace-scope / static-storage / thread-local
  variable under src/, with constness, atomicity, storage kind, and the
  final verdict (exempt-const, exempt-atomic, allowed + justification,
  or flagged).
* ``engine_fields`` — the data members of ``ugf::sim::Engine``, i.e.
  the per-run mutable state a worker partitioning has to split or
  merge deterministically.

Ordering is fully deterministic (sorted by file, line, name) so the
report is byte-stable across runs and suitable for golden comparison.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

SCHEMA = "ugf-shared-state-v1"


@dataclass
class StaticEntry:
    file: str
    line: int
    name: str
    type: str
    storage: str          # namespace-scope | class-static | local-static
    thread_local: bool
    is_const: bool
    is_atomic: bool
    verdict: str = "flagged"      # exempt-const | exempt-atomic | allowed | flagged
    justification: str = ""


@dataclass
class EngineField:
    name: str
    line: int
    type: str
    is_const: bool


@dataclass
class Census:
    statics: dict[tuple[str, int, str], StaticEntry] = field(
        default_factory=dict)
    engine_fields: dict[str, EngineField] = field(default_factory=dict)

    def add_static(self, entry: StaticEntry) -> None:
        # Headers are seen once per including TU; first sighting wins.
        self.statics.setdefault((entry.file, entry.line, entry.name), entry)

    def add_engine_field(self, f: EngineField) -> None:
        self.engine_fields.setdefault(f.name, f)

    def apply_suppressions(self, suppressed) -> None:
        """Marks census entries covered by inline allows as allowed.

        `suppressed` is the Reporter's finalize() list of
        (Finding, justification) pairs for the shared-state rule.
        """
        by_site = {(f.file, f.line): justification
                   for f, justification in suppressed
                   if f.rule == "shared-state"}
        for entry in self.statics.values():
            if entry.verdict == "flagged":
                justification = by_site.get((entry.file, entry.line))
                if justification is not None:
                    entry.verdict = "allowed"
                    entry.justification = justification

    def to_json(self) -> str:
        statics = [
            {
                "file": e.file,
                "line": e.line,
                "name": e.name,
                "type": e.type,
                "storage": e.storage,
                "thread_local": e.thread_local,
                "const": e.is_const,
                "atomic": e.is_atomic,
                "verdict": e.verdict,
                "justification": e.justification,
            }
            for e in sorted(self.statics.values(),
                            key=lambda e: (e.file, e.line, e.name))
        ]
        engine_fields = [
            {
                "name": f.name,
                "line": f.line,
                "type": f.type,
                "const": f.is_const,
            }
            for f in sorted(self.engine_fields.values(),
                            key=lambda f: (f.line, f.name))
        ]
        doc = {
            "schema": SCHEMA,
            "statics": statics,
            "engine_fields": engine_fields,
            "summary": {
                "statics_total": len(statics),
                "statics_flagged": sum(
                    1 for e in statics if e["verdict"] == "flagged"),
                "statics_allowed": sum(
                    1 for e in statics if e["verdict"] == "allowed"),
                "engine_fields": len(engine_fields),
            },
        }
        return json.dumps(doc, indent=2, sort_keys=True) + "\n"
