#!/usr/bin/env python3
"""Pinpoint the first divergence between two ugf-digest-v1 streams.

Takes two NDJSON digest streams (e.g. a serial run and an
``--engine-threads 8`` run, or the same figure run on two hosts) and
reports the first divergent (step, subsystem, pid segment), using the
merkle segmentation to localize the mismatch to the narrowest pid range
the streams recorded.

Usage:
    divergence_bisect.py A.ndjson B.ndjson [--expect step=S,subsystem=X,lo=L,hi=H]

Exit codes:
    0  streams identical (or --expect matched the found divergence)
    1  streams diverge (or --expect did not match)
    2  usage / malformed or incomparable streams
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA = "ugf-digest-v1"
RECORD_KEYS = ("step", "subsystem", "level", "lo", "hi")


def fail(msg: str) -> "NoReturn":  # noqa: F821 - py3.8 compat, no typing dep
    print(f"divergence_bisect: error: {msg}", file=sys.stderr)
    sys.exit(2)


def load_stream(path: str):
    """Parse one stream; returns (header, [record dicts])."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = [ln for ln in fh.read().splitlines() if ln.strip()]
    except OSError as exc:
        fail(f"{path}: {exc}")
    if not lines:
        fail(f"{path}: empty stream")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        fail(f"{path}:1: not JSON: {exc}")
    if not isinstance(header, dict) or header.get("schema") != SCHEMA:
        fail(f"{path}:1: missing schema {SCHEMA!r} header")
    records = []
    for i, line in enumerate(lines[1:], start=2):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(f"{path}:{i}: not JSON: {exc}")
        if not isinstance(rec, dict):
            fail(f"{path}:{i}: record is not an object")
        for key in RECORD_KEYS + ("digest",):
            if key not in rec:
                fail(f"{path}:{i}: record missing {key!r}")
        records.append(rec)
    return header, records


def key_of(rec):
    return tuple(rec[k] for k in RECORD_KEYS)


def group_at(records, step, subsystem):
    return [
        r for r in records if r["step"] == step and r["subsystem"] == subsystem
    ]


def find_divergence(recs_a, recs_b):
    """First index where streams disagree, or None if identical.

    A disagreement is either a differing record key (structural drift —
    one engine sampled steps the other never reached) or a differing
    digest for the same (step, subsystem, segment).
    """
    for i in range(min(len(recs_a), len(recs_b))):
        a, b = recs_a[i], recs_b[i]
        if key_of(a) != key_of(b) or a["digest"] != b["digest"]:
            return i
    if len(recs_a) != len(recs_b):
        return min(len(recs_a), len(recs_b))
    return None


def localize(recs_a, recs_b, idx):
    """Narrow the divergence at record index idx to its deepest segment.

    Returns (step, subsystem, lo, hi, divergent_leaf_list). Records are
    emitted top-down per (step, subsystem), so scanning that whole group
    and keeping the deepest divergent level gives the narrowest pid range
    the producer recorded.
    """
    first = recs_a[idx] if idx < len(recs_a) else recs_b[idx]
    step, subsystem = first["step"], first["subsystem"]
    group_a = {key_of(r): r["digest"] for r in group_at(recs_a, step, subsystem)}
    group_b = {key_of(r): r["digest"] for r in group_at(recs_b, step, subsystem)}
    divergent = []
    for key in group_a:
        if key in group_b and group_a[key] != group_b[key]:
            divergent.append(key)
    if not divergent:
        # Structural divergence (truncation / different sampling): report
        # the whole range of the first record that has no counterpart.
        return step, subsystem, first["lo"], first["hi"], []
    deepest = max(k[2] for k in divergent)
    leaves = sorted(
        [k for k in divergent if k[2] == deepest], key=lambda k: k[3]
    )
    lo, hi = leaves[0][3], leaves[0][4]
    return step, subsystem, lo, hi, leaves


def parse_expect(spec: str):
    out = {}
    for part in spec.split(","):
        if "=" not in part:
            fail(f"--expect: malformed component {part!r}")
        k, v = part.split("=", 1)
        k = k.strip()
        if k not in ("step", "subsystem", "lo", "hi"):
            fail(f"--expect: unknown key {k!r}")
        out[k] = v.strip() if k == "subsystem" else int(v)
    for k in ("step", "subsystem", "lo", "hi"):
        if k not in out:
            fail(f"--expect: missing key {k!r}")
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="first-divergence bisection over two ugf-digest-v1 streams"
    )
    parser.add_argument("stream_a")
    parser.add_argument("stream_b")
    parser.add_argument(
        "--expect",
        metavar="step=S,subsystem=X,lo=L,hi=H",
        help="assert the divergence localizes exactly here "
        "(exit 0 iff it does)",
    )
    args = parser.parse_args(argv)

    header_a, recs_a = load_stream(args.stream_a)
    header_b, recs_b = load_stream(args.stream_b)
    for key in ("n", "cadence", "segments"):
        if header_a.get(key) != header_b.get(key):
            fail(
                f"streams are not comparable: header {key!r} differs "
                f"({header_a.get(key)!r} vs {header_b.get(key)!r})"
            )
    for key in ("protocol", "adversary", "f", "seed"):
        if header_a.get(key) != header_b.get(key):
            print(
                f"divergence_bisect: note: header {key!r} differs "
                f"({header_a.get(key)!r} vs {header_b.get(key)!r})",
                file=sys.stderr,
            )

    idx = find_divergence(recs_a, recs_b)
    if idx is None:
        print(
            f"identical: {len(recs_a)} records, "
            f"n={header_a.get('n')} cadence={header_a.get('cadence')} "
            f"segments={header_a.get('segments')}"
        )
        if args.expect:
            print(
                "divergence_bisect: --expect given but streams are identical",
                file=sys.stderr,
            )
            return 1
        return 0

    step, subsystem, lo, hi, leaves = localize(recs_a, recs_b, idx)
    da = group_at(recs_a, step, subsystem)
    db = group_at(recs_b, step, subsystem)
    digest_a = next(
        (r["digest"] for r in da if (r["lo"], r["hi"]) == (lo, hi)), "?"
    )
    digest_b = next(
        (r["digest"] for r in db if (r["lo"], r["hi"]) == (lo, hi)), "?"
    )
    print("FIRST DIVERGENCE")
    print(f"  step      : {step}")
    print(f"  subsystem : {subsystem}")
    print(f"  pid range : [{lo}, {hi})")
    print(f"  digest A  : {digest_a}  ({args.stream_a})")
    print(f"  digest B  : {digest_b}  ({args.stream_b})")
    if len(leaves) > 1:
        ranges = ", ".join(f"[{k[3]}, {k[4]})" for k in leaves)
        print(f"  note      : {len(leaves)} segments diverge at the deepest "
              f"level: {ranges}")
    if not leaves:
        print("  note      : structural divergence (one stream truncated or "
              "sampled different steps) — range is the first unmatched record")

    if args.expect:
        want = parse_expect(args.expect)
        got = {"step": step, "subsystem": subsystem, "lo": lo, "hi": hi}
        if got == want:
            print("expect: matched")
            return 0
        print(
            f"divergence_bisect: expect mismatch: wanted {want}, got {got}",
            file=sys.stderr,
        )
        return 1
    return 1


if __name__ == "__main__":
    sys.exit(main())
