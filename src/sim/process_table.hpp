#pragma once

/// \file process_table.hpp
/// Structure-of-arrays process state and pooled per-process queues.
///
/// The engine used to keep one fat ProcessRuntime struct per process —
/// a unique_ptr<Protocol>, an Inbox with its own lane vector and
/// deques, and an outgoing vector, ~200 resident bytes plus several
/// heap objects each. At the million-process scale that layout is the
/// wall: construction alone is millions of allocations, and every
/// event touches cache lines full of fields it never reads.
///
/// This header splits that struct three ways:
///  * ProcessTable — the POD scheduling fields as parallel flat arrays
///    (one cache-friendly column per field);
///  * InboxPool — every process's pending deliveries in shared chunked
///    storage, index-linked (no pointers, so the backing vectors may
///    grow), with the exact per-d FIFO-lane semantics of the old
///    Engine::Inbox: O(1) accept, pop by (arrival, acceptance-seq),
///    lanes retained across clears;
///  * OutgoingPool — the queued sends of all processes in shared
///    chunked FIFOs.
///
/// Chunks and lane nodes are recycled through free lists, so a warm
/// engine (Monte-Carlo reuse) runs against already-grown storage and
/// the steady-state allocation count per run is zero — same contract
/// the per-process containers used to give, now with one allocator
/// arena for the whole table instead of N of them.
///
/// Sharding (intra-run parallelism). Both pools partition their
/// backing storage into S arenas along a fixed contiguous pid→shard
/// map (ShardMap), one arena per parallel-executor worker. Every
/// structural mutation for process p — lane allocation, chunk
/// allocation/free — touches only arena(shard(p)), so S workers may
/// operate concurrently as long as each sticks to the processes of its
/// own shard. The per-pid Head entries are disjoint by construction.
/// S == 1 (the serial engine) is byte-identical to the pre-sharding
/// layout, including capacity retention across resets of any size.

#include <array>
#include <cstdint>
#include <vector>

#include "sim/message.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace ugf::sim {

/// One pending delivery: the message plus its acceptance sequence
/// number (the arrival tie-break — globally unique, so ordering by
/// (arrives_at, seq) is strict).
struct InboxEntry {
  Message msg;
  std::uint64_t seq = 0;
};

/// Fixed contiguous pid→shard mapping shared by the pooled queues and
/// the parallel step executor: shard(p) = min(p / ceil(n/S), S-1).
/// S == 1 maps every pid to shard 0 independently of n, so a serial
/// pool keeps its grown storage across resets of arbitrary size —
/// exactly the pre-sharding retention contract.
class ShardMap {
 public:
  ShardMap() = default;
  ShardMap(std::uint32_t n, std::uint32_t shards)
      : shards_(shards < 1 ? 1 : shards),
        size_(shards_ == 1 ? 0 : (n + shards_ - 1) / shards_) {
    if (shards_ > 1 && size_ == 0) size_ = 1;
  }

  [[nodiscard]] std::uint32_t shards() const noexcept { return shards_; }
  /// Processes per shard (the last shard takes the remainder);
  /// 0 in the degenerate single-shard map.
  [[nodiscard]] std::uint32_t shard_size() const noexcept { return size_; }
  [[nodiscard]] std::uint32_t of(ProcessId p) const noexcept {
    if (shards_ == 1) return 0;
    const std::uint32_t s = p / size_;
    return s < shards_ ? s : shards_ - 1;
  }
  /// First pid of shard `s` (clamped to n by callers iterating ranges).
  [[nodiscard]] std::uint32_t begin_of(std::uint32_t s) const noexcept {
    return shards_ == 1 ? 0 : s * size_;
  }

  [[nodiscard]] bool operator==(const ShardMap& o) const noexcept {
    return shards_ == o.shards_ && size_ == o.size_;
  }

 private:
  std::uint32_t shards_ = 1;
  std::uint32_t size_ = 0;
};

/// Flat parallel arrays of the per-process scheduling fields (the old
/// ProcessRuntime minus protocol/inbox/outgoing). All vectors share
/// indexing by ProcessId and are resized together by reset().
struct ProcessTable {
  std::vector<util::Rng> rng;
  std::vector<ProcessState> state;
  std::vector<std::uint64_t> delta;  ///< local step duration delta_rho
  std::vector<std::uint64_t> d;      ///< delivery time d_rho
  std::vector<std::uint64_t> sent;   ///< M_rho so far
  std::vector<GlobalStep> last_step_end;
  std::vector<GlobalStep> next_begin;  ///< scheduled StepBegin, if any
  std::vector<std::uint64_t> begin_token;
  std::vector<std::uint64_t> end_token;

  /// (Re)initialises all columns for `n` processes: awake, delta = d =
  /// 1, rng[p] = master.child(p). Capacity is retained across calls.
  void reset(std::uint32_t n, const util::Rng& master);

  /// Resident bytes of all columns (capacity, not size).
  [[nodiscard]] std::size_t bytes() const noexcept;
};

/// Pending deliveries of every process, in pooled chunked storage.
///
/// Per process the structure is a linked list of *lanes*, one per
/// distinct delivery time d ever seen (messages are accepted in
/// non-decreasing emission time, so within one lane the arrival times
/// are non-decreasing: each lane is an append-only FIFO). pop_due
/// merges the lane fronts by (arrives_at, acceptance seq). Lanes stay
/// attached to their process across clear() — identical behaviour to
/// the old per-process Inbox, including the per-process last-hit lane
/// hint — but lane nodes and entry chunks come from per-shard free
/// lists instead of per-process heap containers.
///
/// Concurrency contract: concurrent calls are allowed iff they address
/// processes of distinct shards (one executor worker per shard). No
/// internal synchronisation; mixing shards on one pid is a data race.
class InboxPool {
 public:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  /// (Re)sizes to `n` processes split over `shards` arenas. While the
  /// shard geometry (count and shard width) is unchanged, existing
  /// processes keep their lanes (emptied) and chunks are recycled —
  /// the warm-engine contract. A geometry change (different shard
  /// count, or a different n under multi-shard mapping) rebuilds the
  /// arenas from scratch, keeping only vector capacity.
  void reset(std::uint32_t n, std::uint32_t shards = 1);

  /// Accepts one message for process `p` on the lane of delivery time
  /// `d`, creating the lane on first use.
  void push(ProcessId p, std::uint64_t d, Message msg, std::uint64_t seq);

  /// True iff a message for `p` with arrival <= step is pending; if
  /// so, moves the earliest (by arrival, then acceptance seq) into
  /// `out`.
  bool pop_due(ProcessId p, GlobalStep step, Message& out);

  /// Discards every pending message of `p`. Lane nodes stay attached
  /// (empty); their chunks go back to the shard's free list.
  void clear(ProcessId p) noexcept;

  [[nodiscard]] bool empty(ProcessId p) const noexcept {
    return heads_[p].size == 0;
  }
  [[nodiscard]] std::size_t size(ProcessId p) const noexcept {
    return heads_[p].size;
  }
  /// Distinct delivery-time lanes ever seen by `p` (diagnostics).
  [[nodiscard]] std::size_t lane_count(ProcessId p) const noexcept;
  /// Earliest pending arrival of `p`; kNeverStep when empty. O(1):
  /// maintained on push, recomputed from lane fronts after a pop.
  [[nodiscard]] GlobalStep earliest_arrival(ProcessId p) const noexcept {
    return heads_[p].earliest;
  }

  [[nodiscard]] const ShardMap& shard_map() const noexcept { return map_; }

  /// 64-bit digest of `p`'s pending messages. Within one lane the FIFO
  /// order is deterministic (identical serial vs parallel) and
  /// acceptance seqs are emission ids, so each lane gets a chained
  /// fold; across lanes the per-lane digests are combined with a
  /// wrapping add, and empty lanes are skipped, because the lane list
  /// itself is a warm-engine artifact — lanes persist (emptied) across
  /// Engine::reset in whatever first-use order the *previous* run
  /// established, and a warm engine must digest exactly like a cold
  /// one. Payload refs are addresses and are skipped.
  [[nodiscard]] std::uint64_t pending_digest(ProcessId p) const noexcept {
    const Arena& a = arena_of(p);
    std::uint64_t h = 0;
    for (std::uint32_t li = heads_[p].first_lane; li != kNil;
         li = a.lanes[li].next) {
      const Lane& lane = a.lanes[li];
      if (lane.size == 0) continue;
      std::uint64_t lane_h = util::mix_seed(0x1B0C5ULL, lane.d);
      std::uint32_t chunk = lane.head_chunk;
      std::uint32_t slot = lane.head_slot;
      for (std::uint64_t i = 0; i < lane.size; ++i) {
        const InboxEntry& e = a.chunks[chunk].slots[slot];
        lane_h = util::mix_seed(lane_h, e.msg.from);
        lane_h = util::mix_seed(lane_h, e.msg.sent_at);
        lane_h = util::mix_seed(lane_h, e.msg.arrives_at);
        lane_h = util::mix_seed(lane_h, e.seq);
        if (++slot == kChunkEntries) {
          chunk = a.chunks[chunk].next;
          slot = 0;
        }
      }
      h += lane_h;
    }
    return h;
  }

  /// Resident bytes of the whole pool (capacity, not size).
  [[nodiscard]] std::size_t bytes() const noexcept;

 private:
  /// Entries per chunk: sized for the common case (a handful of
  /// messages in flight per process) so a million single-lane inboxes
  /// do not each pin a near-empty jumbo block.
  static constexpr std::uint32_t kChunkEntries = 4;

  struct Chunk {
    std::array<InboxEntry, kChunkEntries> slots;
    std::uint32_t next = kNil;
  };
  struct Lane {
    std::uint64_t d = 0;
    /// Arrival step of the most recently accepted entry (the FIFO
    /// order assert; tracking it here avoids a tail-chunk walk).
    GlobalStep last_arrival = 0;
    std::uint64_t size = 0;
    std::uint32_t head_chunk = kNil;
    std::uint32_t tail_chunk = kNil;
    std::uint32_t head_slot = 0;  ///< front entry index in head chunk
    std::uint32_t tail_slot = 0;  ///< next write index in tail chunk
    std::uint32_t next = kNil;    ///< next lane of the same process
  };
  struct Head {
    std::uint32_t first_lane = kNil;
    /// Lane hit by the previous push — senders keep their d for long
    /// stretches, so the next push almost always lands there again.
    std::uint32_t hint_lane = kNil;
    std::uint64_t size = 0;
    GlobalStep earliest = kNeverStep;
  };
  /// One shard's private storage; lane/chunk indices in the Heads of
  /// this shard's processes refer into these vectors only.
  struct Arena {
    std::vector<Lane> lanes;
    std::vector<Chunk> chunks;
    std::uint32_t free_chunks = kNil;
    std::uint32_t free_lanes = kNil;
  };

  std::uint32_t alloc_chunk(Arena& a);
  static void free_chunk(Arena& a, std::uint32_t chunk) noexcept;
  void recompute_earliest(ProcessId p) noexcept;
  [[nodiscard]] Arena& arena_of(ProcessId p) noexcept {
    return arenas_[map_.of(p)];
  }
  [[nodiscard]] const Arena& arena_of(ProcessId p) const noexcept {
    return arenas_[map_.of(p)];
  }

  std::vector<Head> heads_;
  std::vector<Arena> arenas_ = std::vector<Arena>(1);
  ShardMap map_;
};

/// Messages queued by ProcessContext::send, drained at the sender's
/// StepEnd — per-process FIFOs over pooled chunks, same recycling and
/// per-shard concurrency story as InboxPool.
class OutgoingPool {
 public:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Entry {
    ProcessId to = kNoProcess;
    PayloadRef payload;
  };

  /// (Re)sizes to `n` processes over `shards` arenas and empties every
  /// queue. Same geometry-change semantics as InboxPool::reset.
  void reset(std::uint32_t n, std::uint32_t shards = 1);

  void push(ProcessId p, ProcessId to, PayloadRef payload);

  /// Pops the oldest queued send of `p` into (to, payload); false when
  /// empty.
  bool pop(ProcessId p, ProcessId& to, PayloadRef& payload) noexcept;

  /// Drops every queued send of `p` (sender crash), recycling chunks.
  void clear(ProcessId p) noexcept;

  [[nodiscard]] bool empty(ProcessId p) const noexcept {
    return heads_[p].size == 0;
  }
  [[nodiscard]] std::size_t size(ProcessId p) const noexcept {
    return heads_[p].size;
  }

  /// Resident bytes of the whole pool (capacity, not size).
  [[nodiscard]] std::size_t bytes() const noexcept;

 private:
  static constexpr std::uint32_t kChunkEntries = 8;

  struct Chunk {
    std::array<Entry, kChunkEntries> slots;
    std::uint32_t next = kNil;
  };
  struct Head {
    std::uint32_t head_chunk = kNil;
    std::uint32_t tail_chunk = kNil;
    std::uint32_t head_slot = 0;
    std::uint32_t tail_slot = 0;
    std::uint64_t size = 0;
  };
  struct Arena {
    std::vector<Chunk> chunks;
    std::uint32_t free_chunks = kNil;
  };

  std::uint32_t alloc_chunk(Arena& a);
  static void free_chunk(Arena& a, std::uint32_t chunk) noexcept;
  [[nodiscard]] Arena& arena_of(ProcessId p) noexcept {
    return arenas_[map_.of(p)];
  }

  std::vector<Head> heads_;
  std::vector<Arena> arenas_ = std::vector<Arena>(1);
  ShardMap map_;
};

}  // namespace ugf::sim
