#include "sim/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/state_digest.hpp"
#include "sim/parallel_executor.hpp"
#include "util/check.hpp"
#include "util/dynamic_bitset.hpp"
#include "util/saturating.hpp"

namespace ugf::sim {

using util::sat_add;

/// Per-step protocol services; bound to the process whose StepBegin is
/// currently executing.
class Engine::ContextImpl final : public ProcessContext {
 public:
  ContextImpl(Engine& engine, ProcessId self, SystemInfo info) noexcept
      : engine_(engine), self_(self), info_(info) {}

  [[nodiscard]] ProcessId self() const noexcept override { return self_; }
  [[nodiscard]] const SystemInfo& system() const noexcept override {
    return info_;
  }
  [[nodiscard]] util::Rng& rng() noexcept override {
    return engine_.table_.rng[self_];
  }
  [[nodiscard]] PayloadArena& arena() noexcept override {
    return engine_.arena_;
  }

  void send(ProcessId to, PayloadRef payload) override {
    if (to >= engine_.config_.n)
      throw std::out_of_range("ProcessContext::send: bad destination");
    if (to == self_)
      throw std::invalid_argument("ProcessContext::send: self-send");
    if (!payload)
      throw std::invalid_argument("ProcessContext::send: null payload");
    engine_.outgoing_.push(self_, to, payload);
  }

  [[nodiscard]] std::size_t queued_sends() const noexcept override {
    return engine_.outgoing_.size(self_);
  }

 private:
  Engine& engine_;
  ProcessId self_;
  SystemInfo info_;
};

/// The adversary's observation/mutation surface (Def II.5).
class Engine::ControlImpl final : public AdversaryControl {
 public:
  explicit ControlImpl(Engine& engine) noexcept : engine_(engine) {}

  [[nodiscard]] std::uint32_t num_processes() const noexcept override {
    return engine_.config_.n;
  }
  [[nodiscard]] std::uint32_t crash_budget() const noexcept override {
    return engine_.config_.f;
  }
  [[nodiscard]] std::uint32_t crashes_used() const noexcept override {
    return engine_.crashes_used_;
  }
  // The observation surface is exactly Def II.5: liveness state, send
  // counts, the clock, and the adversary-controlled d/delta values.
  // Every accessor bounds-checks its ProcessId so a buggy adversary
  // strategy fails loudly instead of reading foreign memory.
  [[nodiscard]] bool is_crashed(ProcessId p) const noexcept override {
    UGF_ASSERT_MSG(p < engine_.config_.n, "is_crashed(%u) with n=%u", p,
                   engine_.config_.n);
    return engine_.table_.state[p] == ProcessState::kCrashed;
  }
  [[nodiscard]] bool is_asleep(ProcessId p) const noexcept override {
    UGF_ASSERT_MSG(p < engine_.config_.n, "is_asleep(%u) with n=%u", p,
                   engine_.config_.n);
    return engine_.table_.state[p] == ProcessState::kAsleep;
  }
  [[nodiscard]] std::uint64_t messages_sent_by(
      ProcessId p) const noexcept override {
    UGF_ASSERT_MSG(p < engine_.config_.n, "messages_sent_by(%u) with n=%u", p,
                   engine_.config_.n);
    return engine_.table_.sent[p];
  }
  [[nodiscard]] GlobalStep now() const noexcept override {
    return engine_.now_;
  }
  [[nodiscard]] std::uint64_t delivery_time(
      ProcessId p) const noexcept override {
    UGF_ASSERT_MSG(p < engine_.config_.n, "delivery_time(%u) with n=%u", p,
                   engine_.config_.n);
    return engine_.table_.d[p];
  }
  [[nodiscard]] std::uint64_t local_step_time(
      ProcessId p) const noexcept override {
    UGF_ASSERT_MSG(p < engine_.config_.n, "local_step_time(%u) with n=%u", p,
                   engine_.config_.n);
    return engine_.table_.delta[p];
  }

  bool crash(ProcessId p) override {
    if (p >= engine_.config_.n) return false;
    if (engine_.table_.state[p] == ProcessState::kCrashed) return false;
    if (engine_.crashes_used_ >= engine_.config_.f) return false;
    ++engine_.crashes_used_;
    engine_.crash_process(p);
    UGF_ASSERT_MSG(engine_.crashes_used_ <= engine_.config_.f,
                   "crash budget exceeded: %u > F=%u", engine_.crashes_used_,
                   engine_.config_.f);
    return true;
  }

  void set_delivery_time(ProcessId p, std::uint64_t d) override {
    if (p >= engine_.config_.n)
      throw std::out_of_range("AdversaryControl::set_delivery_time");
    const std::uint64_t old = engine_.table_.d[p];
    engine_.table_.d[p] = std::max<std::uint64_t>(1, d);
    UGF_ASSERT(engine_.table_.d[p] >= 1);
    if (engine_.table_.d[p] != old)
      engine_.emit(obs::EventType::kDelayChange, engine_.now_, p, kNoProcess,
                   engine_.table_.d[p], old, engine_.hook_cause_);
  }

  void set_local_step_time(ProcessId p, std::uint64_t delta) override {
    if (p >= engine_.config_.n)
      throw std::out_of_range("AdversaryControl::set_local_step_time");
    const std::uint64_t old = engine_.table_.delta[p];
    engine_.table_.delta[p] = std::max<std::uint64_t>(1, delta);
    UGF_ASSERT(engine_.table_.delta[p] >= 1);
    if (engine_.table_.delta[p] != old)
      engine_.emit(obs::EventType::kStepTimeChange, engine_.now_, p,
                   kNoProcess, engine_.table_.delta[p], old,
                   engine_.hook_cause_);
  }

  void request_timer(GlobalStep step) override {
    const GlobalStep at = std::max(step, engine_.now_);
    engine_.events_.push(
        engine_.make_event(at, EventKind::kTimer, kNoProcess, /*token=*/0));
  }

  void suppress_message() override {
    if (!engine_.in_emission_hook_)
      throw std::logic_error(
          "AdversaryControl::suppress_message outside on_message_emitted");
    engine_.suppress_current_ = true;
  }

 private:
  Engine& engine_;
};

Engine::Engine(const EngineConfig& config, const ProtocolFactory& factory,
               Adversary* adversary)
    : config_(config), factory_(factory), adversary_(adversary) {
  if (config_.n < 2) throw std::invalid_argument("Engine: need n >= 2");
  if (config_.f >= config_.n)
    throw std::invalid_argument("Engine: need f < n");
  control_ = std::make_unique<ControlImpl>(*this);
  init_run_state();
}

Engine::~Engine() = default;

void Engine::reset(const EngineConfig& config, Adversary* adversary) {
  if (config.n < 2) throw std::invalid_argument("Engine: need n >= 2");
  if (config.f >= config.n) throw std::invalid_argument("Engine: need f < n");
  config_ = config;
  adversary_ = adversary;
  was_reset_ = true;
  init_run_state();
}

std::uint32_t Engine::plan_run_shards() const noexcept {
  if (config_.intra_run_threads <= 1) return 1;
  // An adversary observes every emission synchronously (and may mutate
  // foreign state mid-step); a sink observes the exact serial event
  // interleaving. Either forces the serial loop.
  if (adversary_ != nullptr || config_.sink != nullptr) return 1;
  return std::min(config_.intra_run_threads, config_.n);
}

void Engine::init_run_state() {
  const SystemInfo info{config_.n, config_.f};
  const util::Rng master(config_.seed);
  // Fresh protocol state every run; the table columns and pooled
  // inbox/outgoing chunks keep their grown capacity. The plane is
  // replaced *before* the arena reset so no protocol instance can hold
  // a ref into the payloads being destroyed.
  plane_ = factory_.create_plane(info);
  if (!plane_) throw std::runtime_error("ProtocolFactory returned null plane");
  run_shards_ = plan_run_shards();
  parallel_fallback_ = config_.intra_run_threads > 1 && run_shards_ == 1;
  table_.reset(config_.n, master);
  inboxes_.reset(config_.n, run_shards_);
  outgoing_.reset(config_.n, run_shards_);
  // Payloads of the previous run die here, after the plane that may
  // have cached refs to them was replaced above; the slabs stay —
  // including those of worker arenas a previous (possibly wider)
  // parallel run grew.
  arena_.reset();
  while (run_shards_ > 1 && worker_arenas_.size() < run_shards_ - 1u)
    worker_arenas_.push_back(std::make_unique<PayloadArena>());
  for (const auto& arena : worker_arenas_) arena->reset();
  if (parallel_) parallel_->reset_stats();
  events_.clear();
  next_seq_ = 0;
  next_msg_seq_ = 0;
  now_ = 0;
  crashes_used_ = 0;
  ran_ = false;
  in_emission_hook_ = false;
  suppress_current_ = false;
  hook_cause_ = 0;
  reached_.clear();
  reached_count_ = 0;

  outcome_.total_messages = 0;
  outcome_.t_end = 0;
  outcome_.delta_max = 1;
  outcome_.d_max = 1;
  outcome_.time_complexity = 0.0;
  outcome_.rumor_gathering_ok = false;
  outcome_.truncated = false;
  outcome_.crashed = 0;
  outcome_.delivered_messages = 0;
  outcome_.dropped_messages = 0;
  outcome_.omitted_messages = 0;
  outcome_.last_send_step = 0;
  outcome_.local_steps_executed = 0;
  outcome_.per_process_sent.assign(config_.n, 0);
  outcome_.final_state.assign(config_.n, ProcessState::kAwake);
  outcome_.completion_step.assign(config_.n, kNeverStep);
}

std::size_t Engine::resident_state_bytes() const noexcept {
  return table_.bytes() + inboxes_.bytes() + outgoing_.bytes() +
         (plane_ ? plane_->state_bytes() : 0);
}

void Engine::crash_process(ProcessId pid) {
  table_.state[pid] = ProcessState::kCrashed;
  // Invalidate every scheduled event of this process.
  ++table_.begin_token[pid];
  ++table_.end_token[pid];
  table_.next_begin[pid] = kNeverStep;
  const std::uint64_t wiped = inboxes_.size(pid);
  outcome_.dropped_messages += wiped;
  inboxes_.clear(pid);
  outgoing_.clear(pid);
  // A crash (and its inbox wipe) taken inside on_message_emitted is
  // attributed to the emission the adversary was reacting to.
  emit(obs::EventType::kCrash, now_, pid, kNoProcess, wiped, crashes_used_,
       hook_cause_);
  if (wiped > 0)
    emit(obs::EventType::kDrop, now_, pid, kNoProcess, wiped, 0, hook_cause_);
}

bool Engine::holds_gossip0(ProcessId pid) const {
  if (const util::DynamicBitset* bits = plane_->gossip_bits(pid))
    return bits->test(0);
  if (plane_->claims_all_gossip(pid)) return true;
  return plane_->has_gossip_of(pid, 0);
}

void Engine::note_infection(ProcessId pid, GlobalStep step,
                            std::uint64_t cause) {
  if (config_.sink == nullptr || reached_[pid] != 0) return;
  if (!holds_gossip0(pid)) return;
  reached_[pid] = 1;
  ++reached_count_;
  emit(obs::EventType::kInfection, step, pid, kNoProcess, reached_count_, 0,
       cause);
}

void Engine::schedule_begin_direct(ProcessId pid, GlobalStep at) {
  ++table_.begin_token[pid];
  table_.next_begin[pid] = at;
  events_.push(
      make_event(at, EventKind::kStepBegin, pid, table_.begin_token[pid]));
}

void Engine::schedule_wake(ProcessId pid, GlobalStep at) {
  if (table_.state[pid] != ProcessState::kAsleep) return;
  if (table_.next_begin[pid] != kNeverStep && table_.next_begin[pid] <= at)
    return;
  schedule_begin_direct(pid, at);
}

void Engine::handle_step_begin(const ScheduledEvent& ev) {
  const ProcessId pid = ev.pid;
  if (ev.token != table_.begin_token[pid] ||
      table_.state[pid] == ProcessState::kCrashed)
    return;
  table_.next_begin[pid] = kNeverStep;
  table_.state[pid] = ProcessState::kAwake;

  const GlobalStep s = ev.step;
  ContextImpl ctx(*this, pid, SystemInfo{config_.n, config_.f});

  emit(obs::EventType::kStepBegin, s, pid, kNoProcess, inboxes_.size(pid));

  // Deliver everything that has arrived by the start of the step. When
  // a sink wants provenance and this process has not held gossip 0 yet,
  // the first delivery that flips the bit is latched as the infection's
  // cause (0 if local protocol state flips it without a delivery).
  Message msg;
  std::uint64_t infection_cause = 0;
  const bool watch_infection = config_.sink != nullptr && reached_[pid] == 0;
  while (inboxes_.pop_due(pid, s, msg)) {
    UGF_ASSERT_MSG(msg.to == pid, "message for %u delivered to %u", msg.to,
                   pid);
    UGF_ASSERT_MSG(msg.arrives_at <= s,
                   "message delivered at %llu before its arrival at %llu",
                   static_cast<unsigned long long>(s),
                   static_cast<unsigned long long>(msg.arrives_at));
    ++outcome_.delivered_messages;
    emit(obs::EventType::kDelivery, s, pid, msg.from, msg.sent_at,
         msg.arrives_at, msg.cause);
    {
      obs::ScopedPhase phase(config_.profiler, obs::Phase::kProtocol);
      plane_->on_message(ctx, msg);
    }
    if (watch_infection && infection_cause == 0 && holds_gossip0(pid)) {
      infection_cause = msg.cause;
    }
  }

  {
    obs::ScopedPhase phase(config_.profiler, obs::Phase::kProtocol);
    plane_->on_local_step(ctx);
  }
  if (config_.sink != nullptr) note_infection(pid, s, infection_cause);

  const GlobalStep end = sat_add(s, table_.delta[pid]);
  ++table_.end_token[pid];
  events_.push(make_event(end, EventKind::kStepEnd, pid, table_.end_token[pid]));
}

void Engine::handle_step_end(const ScheduledEvent& ev) {
  const ProcessId pid = ev.pid;
  if (ev.token != table_.end_token[pid] ||
      table_.state[pid] == ProcessState::kCrashed)
    return;

  const GlobalStep e = ev.step;
  const std::uint64_t sent_before = table_.sent[pid];

  // Emit the messages queued during the step, one by one; the adversary
  // observes each emission and may crash the receiver first (Strategy
  // 2.k.0) or even the sender. Crashing the sender clears the pooled
  // outgoing queue under the loop, so each message is popped into
  // locals *before* the hook runs: the queue may be wiped, but never
  // the element being emitted. A sender crash ends the fan-out after
  // the current message (the queue drains to empty); the message
  // already on the wire is still accepted if its receiver lives.
  ProcessId to = kNoProcess;
  PayloadRef payload;
  while (outgoing_.pop(pid, to, payload)) {
    ++table_.sent[pid];
    ++outcome_.total_messages;
    outcome_.last_send_step = std::max(outcome_.last_send_step, e);
    // One 1-based emission id per attempt — accepted, omitted or dropped
    // alike — so every downstream event (and every adversary reaction)
    // can name the exact emission that triggered it. The same counter
    // breaks inbox arrival ties: accepted messages still carry strictly
    // increasing seqs in emission order.
    const std::uint64_t cause = ++next_msg_seq_;
    emit(obs::EventType::kEmission, e, pid, to, table_.sent[pid],
         table_.d[pid], cause);
    if (adversary_ != nullptr) {
      in_emission_hook_ = true;
      suppress_current_ = false;
      hook_cause_ = cause;
      {
        obs::ScopedPhase phase(config_.profiler, obs::Phase::kAdversary);
        adversary_->on_message_emitted(*control_,
                                       SendEvent{pid, to, e, table_.sent[pid]});
      }
      in_emission_hook_ = false;
      hook_cause_ = 0;
      if (suppress_current_) {
        ++outcome_.omitted_messages;
        emit(obs::EventType::kOmission, e, pid, to, 0, 0, cause);
        continue;
      }
    }
    if (table_.state[to] == ProcessState::kCrashed) {
      ++outcome_.dropped_messages;
      emit(obs::EventType::kDrop, e, to, pid, 1, 0, cause);
      continue;
    }
    // A suppressed (omitted) message must never reach this acceptance
    // path — the `continue` above it is what "omission" means.
    UGF_ASSERT(!suppress_current_);
    const std::uint64_t d = table_.d[pid];
    const GlobalStep arrival = sat_add(e, d);
    inboxes_.push(to, d, Message{pid, to, e, arrival, payload, cause}, cause);
    if (table_.state[to] == ProcessState::kAsleep) schedule_wake(to, arrival);
  }
  if (table_.state[pid] == ProcessState::kCrashed) return;

  table_.last_step_end[pid] = e;
  ++outcome_.local_steps_executed;
  emit(obs::EventType::kStepEnd, e, pid, kNoProcess,
       table_.sent[pid] - sent_before, table_.delta[pid]);

  if (plane_->wants_sleep(pid)) {
    table_.state[pid] = ProcessState::kAsleep;
    emit(obs::EventType::kSleep, e, pid);
    if (!inboxes_.empty(pid)) {
      // A message arrived during the step (or is in flight): the process
      // notices it and wakes no earlier than the end of this step.
      schedule_wake(pid, std::max(e, inboxes_.earliest_arrival(pid)));
    }
  } else {
    schedule_begin_direct(pid, e);
  }
}

Outcome Engine::run() {
  if (ran_)
    throw std::logic_error("Engine::run called twice; reset() first");
  ran_ = true;
  obs::ScopedPhase run_phase(config_.profiler, obs::Phase::kEngineRun);

  // Seed the infection ledger before the adversary can act: a process
  // holding the gossip of process 0 at time 0 (process 0 itself) counts
  // even if it is crashed at run start.
  if (config_.sink != nullptr) {
    reached_.assign(config_.n, 0);
    for (ProcessId p = 0; p < config_.n; ++p) note_infection(p, 0);
  }

  if (config_.digester != nullptr) config_.digester->begin_run(config_.n);

  if (adversary_ != nullptr) {
    obs::ScopedPhase phase(config_.profiler, obs::Phase::kAdversary);
    adversary_->on_run_start(*control_);
  }

  // Every non-crashed process starts its first local step at step 0.
  for (ProcessId p = 0; p < config_.n; ++p) {
    if (table_.state[p] != ProcessState::kCrashed)
      schedule_begin_direct(p, 0);
  }

  if (run_shards_ > 1) {
    if (!parallel_) parallel_ = std::make_unique<ParallelStepExecutor>(*this);
    parallel_->run_loop(run_shards_);
  } else {
    run_serial_loop();
  }

  // Final-state digest regardless of cadence (deduped if the last step
  // boundary already sampled), so every stream ends on the same record.
  if (config_.digester != nullptr) sample_digest(now_, /*force=*/true);

  if (config_.profiler != nullptr) {
    const TimingWheel::Stats wheel = events_.stats();
    obs::SchedulerStats sched;
    sched.max_buckets = wheel.max_buckets;
    sched.max_spill = wheel.max_spill;
    sched.max_horizon = wheel.max_horizon;
    sched.cascades = wheel.cascades;
    sched.spill_refiles = wheel.spill_refiles;
    config_.profiler->note_scheduler(sched);
  }

  finalize(outcome_);
  if (config_.metrics != nullptr) publish_metrics();
  return outcome_;
}

void Engine::run_serial_loop() {
  std::uint64_t processed = 0;
  while (!events_.empty()) {
    const ScheduledEvent ev = events_.pop();
    if (ev.step > config_.max_steps || ++processed > config_.max_events) {
      outcome_.truncated = true;
      break;
    }
    // Step monotonicity: the event queue never travels back in time.
    UGF_ASSERT_MSG(ev.step >= now_,
                   "event queue went backwards: step %llu after %llu",
                   static_cast<unsigned long long>(ev.step),
                   static_cast<unsigned long long>(now_));
    now_ = ev.step;
#if UGF_AUDITS_ENABLED
    // Metrics counters are append-only: no event handler may ever
    // decrease an accounting total. Snapshot only the six scalar
    // counters — copying the whole Outcome would deep-copy its three
    // per-process vectors on every event.
    struct MetricsSnapshot {
      std::uint64_t total_messages, delivered_messages, dropped_messages,
          omitted_messages, local_steps_executed;
      GlobalStep last_send_step;
    };
    const MetricsSnapshot metrics_before{
        outcome_.total_messages,   outcome_.delivered_messages,
        outcome_.dropped_messages, outcome_.omitted_messages,
        outcome_.local_steps_executed, outcome_.last_send_step};
#endif
    switch (static_cast<EventKind>(ev.kind)) {
      case EventKind::kStepBegin:
        handle_step_begin(ev);
        break;
      case EventKind::kStepEnd:
        handle_step_end(ev);
        break;
      case EventKind::kTimer:
        if (adversary_ != nullptr) {
          obs::ScopedPhase phase(config_.profiler, obs::Phase::kAdversary);
          adversary_->on_timer(*control_, ev.step);
        }
        break;
    }
#if UGF_AUDITS_ENABLED
    UGF_AUDIT(outcome_.total_messages >= metrics_before.total_messages);
    UGF_AUDIT(outcome_.delivered_messages >= metrics_before.delivered_messages);
    UGF_AUDIT(outcome_.dropped_messages >= metrics_before.dropped_messages);
    UGF_AUDIT(outcome_.omitted_messages >= metrics_before.omitted_messages);
    UGF_AUDIT(outcome_.last_send_step >= metrics_before.last_send_step);
    UGF_AUDIT(outcome_.local_steps_executed >=
              metrics_before.local_steps_executed);
#endif
    // Digest at completed global-step boundaries only: every event of
    // now_ has been handled once the next pending event is later (the
    // same boundary the parallel executor's wave collection uses).
    if (config_.digester != nullptr &&
        (events_.empty() || events_.peek_step() > now_)) {
      sample_digest(now_);
    }
  }
}

void Engine::sample_digest(GlobalStep step, bool force) {
  obs::StateDigester& dig = *config_.digester;
  if (!dig.should_sample(step, force)) return;
  dig.begin_sample(step);
  dig.fold_per_process("rng", [this](ProcessId p) {
    return table_.rng[p].state_digest();
  });
  dig.fold_per_process("table.state", [this](ProcessId p) {
    return static_cast<std::uint64_t>(table_.state[p]);
  });
  dig.fold_per_process("table.delta",
                       [this](ProcessId p) { return table_.delta[p]; });
  dig.fold_per_process("table.d", [this](ProcessId p) { return table_.d[p]; });
  dig.fold_per_process("table.sent",
                       [this](ProcessId p) { return table_.sent[p]; });
  dig.fold_per_process("table.last_step_end", [this](ProcessId p) {
    return table_.last_step_end[p];
  });
  dig.fold_per_process("table.next_begin", [this](ProcessId p) {
    return table_.next_begin[p];
  });
  dig.fold_per_process("table.tokens", [this](ProcessId p) {
    return util::mix_seed(table_.begin_token[p], table_.end_token[p]);
  });
  dig.fold_per_process("plane", [this](ProcessId p) {
    std::uint64_t h = obs::kDigestInit;
    plane_->digest_into(p, h);
    return h;
  });
  dig.fold_per_process("inbox", [this](ProcessId p) {
    return inboxes_.pending_digest(p);
  });
  // Wheel events are visited in wheel-internal order, which is not
  // reproducible across serial/parallel placements; fold commutatively
  // (wrapping add) per pid. Event seqs depend on push order and are
  // excluded. Timer events carry no in-range pid and accumulate in the
  // overflow slot, emitted as their own scalar subsystem.
  {
    std::vector<std::uint64_t>& acc = dig.accumulator();
    const std::uint32_t n = config_.n;
    events_.for_each_pending([&acc, n](const ScheduledEvent& ev) {
      const std::uint64_t m =
          util::mix_seed(ev.step, util::mix_seed(ev.kind, ev.token));
      acc[ev.pid < n ? ev.pid : n] += m;
    });
    dig.fold_accumulated("wheel");
    dig.fold_global("wheel.timers", acc[n]);
  }
  dig.fold_global("wheel.occupancy", events_.size());
  // Arena live stats summed across the coordinator and worker arenas:
  // the same payload set is allocated (shard-locally) at any thread
  // count, so the sums are digest-safe even though addresses and the
  // per-arena split are not. Cumulative-across-reset counters (e.g.
  // total_payloads) are excluded — a warm engine must digest like a
  // cold one.
  {
    std::uint64_t live = arena_.live_payloads();
    std::uint64_t bytes = arena_.bytes_in_use();
    for (const auto& arena : worker_arenas_) {
      live += arena->live_payloads();
      bytes += arena->bytes_in_use();
    }
    dig.fold_global("arena", util::mix_seed(live, bytes));
  }
  dig.end_sample();
}

void Engine::publish_metrics() {
  // Handle resolution touches the registry's name map (a mutex); a
  // warm engine re-run under the same registry skips it entirely.
  if (metrics_.registry != config_.metrics) {
    obs::MetricsRegistry& r = *config_.metrics;
    metrics_.registry = config_.metrics;
    metrics_.runs = r.counter("engine.runs");
    metrics_.resets = r.counter("engine.resets");
    metrics_.truncated_runs = r.counter("engine.truncated_runs");
    metrics_.local_steps = r.counter("engine.local_steps");
    metrics_.emissions = r.counter("engine.events.emission");
    metrics_.deliveries = r.counter("engine.events.delivery");
    metrics_.drops = r.counter("engine.events.drop");
    metrics_.omissions = r.counter("engine.events.omission");
    metrics_.crashes = r.counter("engine.events.crash");
    metrics_.arena_payloads = r.counter("engine.arena.payloads");
    metrics_.wheel_cascades = r.counter("engine.wheel.cascades");
    metrics_.wheel_spill_refiles = r.counter("engine.wheel.spill_refiles");
    metrics_.arena_bytes = r.gauge("engine.arena.bytes_in_use");
    metrics_.arena_capacity_bytes = r.gauge("engine.arena.capacity_bytes");
    metrics_.arena_slabs = r.gauge("engine.arena.slabs");
    metrics_.table_bytes = r.gauge("engine.table.bytes");
    metrics_.table_bytes_per_process = r.gauge("engine.table.bytes_per_process");
    metrics_.wheel_max_buckets = r.gauge("engine.wheel.max_buckets");
    metrics_.wheel_max_spill = r.gauge("engine.wheel.max_spill");
    metrics_.wheel_max_horizon = r.gauge("engine.wheel.max_horizon");
    metrics_.parallel_batches = r.counter("engine.parallel.batches");
    metrics_.parallel_merge_ns = r.counter("engine.parallel.merge_ns");
    metrics_.parallel_fallbacks = r.counter("engine.parallel.fallbacks");
    metrics_.parallel_threads = r.gauge("engine.parallel.threads");
    metrics_.digest_samples = r.counter("digest.samples");
    metrics_.digest_records = r.counter("digest.records");
    metrics_.digest_fold_ns = r.counter("digest.fold_ns");
  }

  metrics_.runs.add(1);
  if (was_reset_) {
    metrics_.resets.add(1);
    was_reset_ = false;
  }
  if (outcome_.truncated) metrics_.truncated_runs.add(1);
  metrics_.local_steps.add(outcome_.local_steps_executed);
  // Event counts come from the outcome, not the sink, so they are
  // exact with observability fully detached. kInfection/kStepBegin/...
  // have no sink-free ledger and are deliberately not counted here.
  metrics_.emissions.add(outcome_.total_messages);
  metrics_.deliveries.add(outcome_.delivered_messages);
  metrics_.drops.add(outcome_.dropped_messages);
  metrics_.omissions.add(outcome_.omitted_messages);
  metrics_.crashes.add(outcome_.crashed);
  // Payloads are only destroyed at reset, so the end-of-run live count
  // is exactly the number this run allocated, and bytes_in_use is the
  // run's high-water mark. Parallel runs allocate from one arena per
  // worker shard; the ledgers fold them all in.
  std::uint64_t live_payloads = arena_.live_payloads();
  std::uint64_t arena_bytes = arena_.bytes_in_use();
  std::uint64_t arena_capacity = arena_.capacity_bytes();
  std::uint64_t arena_slabs = arena_.slab_count();
  for (const auto& arena : worker_arenas_) {
    live_payloads += arena->live_payloads();
    arena_bytes += arena->bytes_in_use();
    arena_capacity += arena->capacity_bytes();
    arena_slabs += arena->slab_count();
  }
  metrics_.arena_payloads.add(live_payloads);
  metrics_.arena_bytes.note_max(arena_bytes);
  metrics_.arena_capacity_bytes.note_max(arena_capacity);
  metrics_.arena_slabs.note_max(arena_slabs);
  // The SoA footprint: table columns + pooled queues + protocol plane,
  // with the arenas' capacity folded into the per-process figure so it
  // reflects everything a run keeps resident per process.
  const std::size_t state_bytes = resident_state_bytes();
  metrics_.table_bytes.note_max(state_bytes);
  metrics_.table_bytes_per_process.note_max(
      (state_bytes + arena_capacity) / std::max(1u, config_.n));

  if (run_shards_ > 1 && parallel_) {
    const ParallelStepExecutor::Stats& pstats = parallel_->stats();
    metrics_.parallel_batches.add(pstats.batches);
    metrics_.parallel_merge_ns.add(pstats.merge_ns);
  }
  if (parallel_fallback_) metrics_.parallel_fallbacks.add(1);
  metrics_.parallel_threads.note_max(run_shards_);

  if (config_.digester != nullptr) {
    const obs::StateDigester::Stats& dstats = config_.digester->stats();
    metrics_.digest_samples.add(dstats.samples);
    metrics_.digest_records.add(dstats.records);
    metrics_.digest_fold_ns.add(dstats.total_ns);
  }

  const TimingWheel::Stats wheel = events_.stats();
  metrics_.wheel_cascades.add(wheel.cascades);
  metrics_.wheel_spill_refiles.add(wheel.spill_refiles);
  metrics_.wheel_max_buckets.note_max(wheel.max_buckets);
  metrics_.wheel_max_spill.note_max(wheel.max_spill);
  metrics_.wheel_max_horizon.note_max(wheel.max_horizon);
}

void Engine::finalize(Outcome& outcome) const {
  outcome.crashed = crashes_used_;
  outcome.delta_max = 1;
  outcome.d_max = 1;
  outcome.t_end = 0;
  for (ProcessId p = 0; p < config_.n; ++p) {
    outcome.per_process_sent[p] = table_.sent[p];
    outcome.final_state[p] = table_.state[p];
    outcome.delta_max = std::max(outcome.delta_max, table_.delta[p]);
    outcome.d_max = std::max(outcome.d_max, table_.d[p]);
    if (table_.state[p] != ProcessState::kCrashed) {
      outcome.completion_step[p] = table_.last_step_end[p];
      outcome.t_end = std::max(outcome.t_end, table_.last_step_end[p]);
    }
  }
  outcome.time_complexity =
      static_cast<double>(outcome.t_end) /
      static_cast<double>(outcome.delta_max + outcome.d_max);

#if UGF_AUDITS_ENABLED
  // Message conservation: every emitted message is delivered, dropped,
  // omitted, or still pending in some inbox — nothing is double-counted
  // and nothing leaks.
  std::uint64_t pending = 0;
  std::uint64_t per_process_total = 0;
  for (ProcessId p = 0; p < config_.n; ++p) {
    pending += inboxes_.size(p);
    per_process_total += table_.sent[p];
  }
  UGF_AUDIT_MSG(outcome.delivered_messages + outcome.dropped_messages +
                        outcome.omitted_messages + pending ==
                    outcome.total_messages,
                "message accounting leak: %llu delivered + %llu dropped + "
                "%llu omitted + %llu pending != %llu total",
                static_cast<unsigned long long>(outcome.delivered_messages),
                static_cast<unsigned long long>(outcome.dropped_messages),
                static_cast<unsigned long long>(outcome.omitted_messages),
                static_cast<unsigned long long>(pending),
                static_cast<unsigned long long>(outcome.total_messages));
  UGF_AUDIT_MSG(per_process_total == outcome.total_messages,
                "per-process sent counts sum to %llu, not M(O)=%llu",
                static_cast<unsigned long long>(per_process_total),
                static_cast<unsigned long long>(outcome.total_messages));
  UGF_AUDIT(outcome.crashed <= config_.f);
#endif

  // Rumor gathering (Def II.1): every correct process must hold the
  // gossip of every correct process. Meaningless if truncated.
  // Protocols exposing gossip_bits are checked word-parallel against
  // the correct-process mask; claims_all_gossip short-circuits in O(1)
  // for counting/summary protocols; the rest fall back to n virtual
  // calls (with an early break on the first failure).
  outcome.rumor_gathering_ok = !outcome.truncated;
  if (outcome.rumor_gathering_ok) {
    util::DynamicBitset correct_mask(config_.n);
    for (ProcessId q = 0; q < config_.n; ++q) {
      if (table_.state[q] != ProcessState::kCrashed) correct_mask.set(q);
    }
    for (ProcessId p = 0; p < config_.n && outcome.rumor_gathering_ok; ++p) {
      if (table_.state[p] == ProcessState::kCrashed) continue;
      if (const util::DynamicBitset* bits = plane_->gossip_bits(p)) {
        UGF_ASSERT_MSG(bits->size() == config_.n,
                       "gossip_bits() sized %zu for n=%u", bits->size(),
                       config_.n);
        outcome.rumor_gathering_ok = bits->contains(correct_mask);
        continue;
      }
      if (plane_->claims_all_gossip(p)) continue;
      for (ProcessId q = 0; q < config_.n; ++q) {
        if (table_.state[q] == ProcessState::kCrashed) continue;
        if (!plane_->has_gossip_of(p, q)) {
          outcome.rumor_gathering_ok = false;
          break;
        }
      }
    }
  }
}

}  // namespace ugf::sim
