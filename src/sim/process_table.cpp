#include "sim/process_table.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ugf::sim {

// ---- ProcessTable ---------------------------------------------------------

void ProcessTable::reset(std::uint32_t n, const util::Rng& master) {
  rng.resize(n);
  state.resize(n);
  delta.resize(n);
  d.resize(n);
  sent.resize(n);
  last_step_end.resize(n);
  next_begin.resize(n);
  begin_token.resize(n);
  end_token.resize(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    rng[p] = master.child(p);
    state[p] = ProcessState::kAwake;
    delta[p] = 1;
    d[p] = 1;
    sent[p] = 0;
    last_step_end[p] = 0;
    next_begin[p] = kNeverStep;
    begin_token[p] = 0;
    end_token[p] = 0;
  }
}

std::size_t ProcessTable::bytes() const noexcept {
  return rng.capacity() * sizeof(util::Rng) +
         state.capacity() * sizeof(ProcessState) +
         (delta.capacity() + d.capacity() + sent.capacity() +
          begin_token.capacity() + end_token.capacity()) *
             sizeof(std::uint64_t) +
         (last_step_end.capacity() + next_begin.capacity()) *
             sizeof(GlobalStep);
}

// ---- InboxPool ------------------------------------------------------------

std::uint32_t InboxPool::alloc_chunk(Arena& a) {
  if (a.free_chunks != kNil) {
    const std::uint32_t c = a.free_chunks;
    a.free_chunks = a.chunks[c].next;
    a.chunks[c].next = kNil;
    return c;
  }
  a.chunks.emplace_back();
  return static_cast<std::uint32_t>(a.chunks.size() - 1);
}

void InboxPool::free_chunk(Arena& a, std::uint32_t chunk) noexcept {
  a.chunks[chunk].next = a.free_chunks;
  a.free_chunks = chunk;
}

void InboxPool::reset(std::uint32_t n, std::uint32_t shards) {
  const ShardMap map(n, shards);
  if (!(map == map_)) {
    // Shard geometry changed: every lane/chunk index in heads_ refers
    // to a pid→arena mapping that no longer holds. Rebuild from empty,
    // keeping only vector capacity (and dropping surplus arenas).
    map_ = map;
    arenas_.resize(map.shards());
    for (Arena& a : arenas_) {
      a.lanes.clear();
      a.chunks.clear();
      a.free_chunks = kNil;
      a.free_lanes = kNil;
    }
    heads_.assign(n, Head{});
    return;
  }
  // Shrinking: recycle the chunks of surplus processes and detach
  // their lane nodes to their shard's free list before the heads
  // disappear.
  for (std::size_t p = n; p < heads_.size(); ++p) {
    clear(static_cast<ProcessId>(p));
    Arena& a = arena_of(static_cast<ProcessId>(p));
    std::uint32_t li = heads_[p].first_lane;
    while (li != kNil) {
      const std::uint32_t next = a.lanes[li].next;
      a.lanes[li].next = a.free_lanes;
      a.free_lanes = li;
      li = next;
    }
    heads_[p] = Head{};
  }
  const std::size_t surviving = std::min<std::size_t>(heads_.size(), n);
  heads_.resize(n);
  // Surviving processes keep their lanes, emptied — same retention the
  // per-process Inbox::clear() used to give a reused engine.
  for (std::size_t p = 0; p < surviving; ++p)
    clear(static_cast<ProcessId>(p));
}

void InboxPool::push(ProcessId p, std::uint64_t d, Message msg,
                     std::uint64_t seq) {
  Arena& a = arena_of(p);
  Head& h = heads_[p];
  std::uint32_t li = h.hint_lane;
  if (li == kNil || a.lanes[li].d != d) {
    li = kNil;
    std::uint32_t tail = kNil;
    for (std::uint32_t i = h.first_lane; i != kNil; i = a.lanes[i].next) {
      if (a.lanes[i].d == d) {
        li = i;
        break;
      }
      tail = i;
    }
    if (li == kNil) {
      if (a.free_lanes != kNil) {
        li = a.free_lanes;
        a.free_lanes = a.lanes[li].next;
        a.lanes[li] = Lane{};
      } else {
        a.lanes.emplace_back();
        li = static_cast<std::uint32_t>(a.lanes.size() - 1);
      }
      a.lanes[li].d = d;
      if (tail == kNil)
        h.first_lane = li;
      else
        a.lanes[tail].next = li;
    }
    h.hint_lane = li;
  }
  UGF_ASSERT_MSG(a.lanes[li].size == 0 ||
                     a.lanes[li].last_arrival <= msg.arrives_at,
                 "lane d=%llu accepted out of arrival order",
                 static_cast<unsigned long long>(d));
  UGF_ASSERT_MSG(msg.arrives_at >= msg.sent_at,
                 "message arrives at %llu before its emission at %llu",
                 static_cast<unsigned long long>(msg.arrives_at),
                 static_cast<unsigned long long>(msg.sent_at));
  // Chunk allocation may grow a.chunks; take references afterwards.
  if (a.lanes[li].tail_chunk == kNil) {
    const std::uint32_t c = alloc_chunk(a);
    Lane& lane = a.lanes[li];
    lane.head_chunk = lane.tail_chunk = c;
    lane.head_slot = lane.tail_slot = 0;
  } else if (a.lanes[li].tail_slot == kChunkEntries) {
    const std::uint32_t c = alloc_chunk(a);
    Lane& lane = a.lanes[li];
    a.chunks[lane.tail_chunk].next = c;
    lane.tail_chunk = c;
    lane.tail_slot = 0;
  }
  Lane& lane = a.lanes[li];
  h.earliest = std::min(h.earliest, msg.arrives_at);
  lane.last_arrival = msg.arrives_at;
  a.chunks[lane.tail_chunk].slots[lane.tail_slot] = InboxEntry{msg, seq};
  ++lane.tail_slot;
  ++lane.size;
  ++h.size;
}

void InboxPool::recompute_earliest(ProcessId p) noexcept {
  const Arena& a = arena_of(p);
  Head& h = heads_[p];
  h.earliest = kNeverStep;
  for (std::uint32_t li = h.first_lane; li != kNil; li = a.lanes[li].next) {
    const Lane& lane = a.lanes[li];
    if (lane.size == 0) continue;
    h.earliest = std::min(
        h.earliest,
        a.chunks[lane.head_chunk].slots[lane.head_slot].msg.arrives_at);
  }
}

bool InboxPool::pop_due(ProcessId p, GlobalStep step, Message& out) {
  Arena& a = arena_of(p);
  Head& h = heads_[p];
  if (h.earliest > step) return false;  // O(1) miss: nothing is due yet
  std::uint32_t best = kNil;
  GlobalStep best_arrival = 0;
  std::uint64_t best_seq = 0;
  for (std::uint32_t li = h.first_lane; li != kNil; li = a.lanes[li].next) {
    const Lane& lane = a.lanes[li];
    if (lane.size == 0) continue;
    const InboxEntry& front = a.chunks[lane.head_chunk].slots[lane.head_slot];
    if (front.msg.arrives_at > step) continue;
    if (best == kNil || front.msg.arrives_at < best_arrival ||
        (front.msg.arrives_at == best_arrival && front.seq < best_seq)) {
      best = li;
      best_arrival = front.msg.arrives_at;
      best_seq = front.seq;
    }
  }
  UGF_ASSERT_MSG(best != kNil,
                 "earliest cache says a message is due at %llu but no lane "
                 "front is",
                 static_cast<unsigned long long>(step));
  if (best == kNil) return false;
  Lane& lane = a.lanes[best];
  out = a.chunks[lane.head_chunk].slots[lane.head_slot].msg;
  ++lane.head_slot;
  --lane.size;
  --h.size;
  if (lane.size == 0) {
    // The last entry always lives in the final chunk of the lane.
    UGF_ASSERT(lane.head_chunk == lane.tail_chunk);
    free_chunk(a, lane.head_chunk);
    lane.head_chunk = lane.tail_chunk = kNil;
    lane.head_slot = lane.tail_slot = 0;
  } else if (lane.head_slot == kChunkEntries) {
    const std::uint32_t consumed = lane.head_chunk;
    lane.head_chunk = a.chunks[consumed].next;
    lane.head_slot = 0;
    free_chunk(a, consumed);
  }
  recompute_earliest(p);
  return true;
}

void InboxPool::clear(ProcessId p) noexcept {
  Arena& a = arena_of(p);
  Head& h = heads_[p];
  for (std::uint32_t li = h.first_lane; li != kNil; li = a.lanes[li].next) {
    Lane& lane = a.lanes[li];
    std::uint32_t c = lane.head_chunk;
    while (c != kNil) {
      const std::uint32_t next = a.chunks[c].next;
      free_chunk(a, c);
      c = next;
    }
    lane.head_chunk = lane.tail_chunk = kNil;
    lane.head_slot = lane.tail_slot = 0;
    lane.size = 0;
    lane.last_arrival = 0;
  }
  h.size = 0;
  h.earliest = kNeverStep;
  // Mirror of the old last-lane hint reset: point back at the first
  // retained lane (correctness never depends on the hint, only speed).
  h.hint_lane = h.first_lane;
}

std::size_t InboxPool::lane_count(ProcessId p) const noexcept {
  const Arena& a = arena_of(p);
  std::size_t count = 0;
  for (std::uint32_t li = heads_[p].first_lane; li != kNil;
       li = a.lanes[li].next)
    ++count;
  return count;
}

std::size_t InboxPool::bytes() const noexcept {
  std::size_t total = heads_.capacity() * sizeof(Head);
  for (const Arena& a : arenas_)
    total += a.lanes.capacity() * sizeof(Lane) +
             a.chunks.capacity() * sizeof(Chunk);
  return total;
}

// ---- OutgoingPool ---------------------------------------------------------

std::uint32_t OutgoingPool::alloc_chunk(Arena& a) {
  if (a.free_chunks != kNil) {
    const std::uint32_t c = a.free_chunks;
    a.free_chunks = a.chunks[c].next;
    a.chunks[c].next = kNil;
    return c;
  }
  a.chunks.emplace_back();
  return static_cast<std::uint32_t>(a.chunks.size() - 1);
}

void OutgoingPool::free_chunk(Arena& a, std::uint32_t chunk) noexcept {
  a.chunks[chunk].next = a.free_chunks;
  a.free_chunks = chunk;
}

void OutgoingPool::reset(std::uint32_t n, std::uint32_t shards) {
  const ShardMap map(n, shards);
  if (!(map == map_)) {
    map_ = map;
    arenas_.resize(map.shards());
    for (Arena& a : arenas_) {
      a.chunks.clear();
      a.free_chunks = kNil;
    }
    heads_.assign(n, Head{});
    return;
  }
  for (std::size_t p = 0; p < heads_.size(); ++p)
    clear(static_cast<ProcessId>(p));
  heads_.resize(n);
}

void OutgoingPool::push(ProcessId p, ProcessId to, PayloadRef payload) {
  Arena& a = arena_of(p);
  if (heads_[p].tail_chunk == kNil) {
    const std::uint32_t c = alloc_chunk(a);
    Head& h = heads_[p];
    h.head_chunk = h.tail_chunk = c;
    h.head_slot = h.tail_slot = 0;
  } else if (heads_[p].tail_slot == kChunkEntries) {
    const std::uint32_t c = alloc_chunk(a);
    Head& h = heads_[p];
    a.chunks[h.tail_chunk].next = c;
    h.tail_chunk = c;
    h.tail_slot = 0;
  }
  Head& h = heads_[p];
  a.chunks[h.tail_chunk].slots[h.tail_slot] = Entry{to, payload};
  ++h.tail_slot;
  ++h.size;
}

bool OutgoingPool::pop(ProcessId p, ProcessId& to,
                       PayloadRef& payload) noexcept {
  Arena& a = arena_of(p);
  Head& h = heads_[p];
  if (h.size == 0) return false;
  const Entry& entry = a.chunks[h.head_chunk].slots[h.head_slot];
  to = entry.to;
  payload = entry.payload;
  ++h.head_slot;
  --h.size;
  if (h.size == 0) {
    UGF_ASSERT(h.head_chunk == h.tail_chunk);
    free_chunk(a, h.head_chunk);
    h.head_chunk = h.tail_chunk = kNil;
    h.head_slot = h.tail_slot = 0;
  } else if (h.head_slot == kChunkEntries) {
    const std::uint32_t consumed = h.head_chunk;
    h.head_chunk = a.chunks[consumed].next;
    h.head_slot = 0;
    free_chunk(a, consumed);
  }
  return true;
}

void OutgoingPool::clear(ProcessId p) noexcept {
  Arena& a = arena_of(p);
  Head& h = heads_[p];
  std::uint32_t c = h.head_chunk;
  while (c != kNil) {
    const std::uint32_t next = a.chunks[c].next;
    free_chunk(a, c);
    c = next;
  }
  h = Head{};
}

std::size_t OutgoingPool::bytes() const noexcept {
  std::size_t total = heads_.capacity() * sizeof(Head);
  for (const Arena& a : arenas_)
    total += a.chunks.capacity() * sizeof(Chunk);
  return total;
}

}  // namespace ugf::sim
