#include "sim/process_table.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ugf::sim {

// ---- ProcessTable ---------------------------------------------------------

void ProcessTable::reset(std::uint32_t n, const util::Rng& master) {
  rng.resize(n);
  state.resize(n);
  delta.resize(n);
  d.resize(n);
  sent.resize(n);
  last_step_end.resize(n);
  next_begin.resize(n);
  begin_token.resize(n);
  end_token.resize(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    rng[p] = master.child(p);
    state[p] = ProcessState::kAwake;
    delta[p] = 1;
    d[p] = 1;
    sent[p] = 0;
    last_step_end[p] = 0;
    next_begin[p] = kNeverStep;
    begin_token[p] = 0;
    end_token[p] = 0;
  }
}

std::size_t ProcessTable::bytes() const noexcept {
  return rng.capacity() * sizeof(util::Rng) +
         state.capacity() * sizeof(ProcessState) +
         (delta.capacity() + d.capacity() + sent.capacity() +
          begin_token.capacity() + end_token.capacity()) *
             sizeof(std::uint64_t) +
         (last_step_end.capacity() + next_begin.capacity()) *
             sizeof(GlobalStep);
}

// ---- InboxPool ------------------------------------------------------------

std::uint32_t InboxPool::alloc_chunk() {
  if (free_chunks_ != kNil) {
    const std::uint32_t c = free_chunks_;
    free_chunks_ = chunks_[c].next;
    chunks_[c].next = kNil;
    return c;
  }
  chunks_.emplace_back();
  return static_cast<std::uint32_t>(chunks_.size() - 1);
}

void InboxPool::free_chunk(std::uint32_t chunk) noexcept {
  chunks_[chunk].next = free_chunks_;
  free_chunks_ = chunk;
}

void InboxPool::reset(std::uint32_t n) {
  // Shrinking: recycle the chunks of surplus processes and detach
  // their lane nodes to the free list before the heads disappear.
  for (std::size_t p = n; p < heads_.size(); ++p) {
    clear(static_cast<ProcessId>(p));
    std::uint32_t li = heads_[p].first_lane;
    while (li != kNil) {
      const std::uint32_t next = lanes_[li].next;
      lanes_[li].next = free_lanes_;
      free_lanes_ = li;
      li = next;
    }
    heads_[p] = Head{};
  }
  const std::size_t surviving = std::min<std::size_t>(heads_.size(), n);
  heads_.resize(n);
  // Surviving processes keep their lanes, emptied — same retention the
  // per-process Inbox::clear() used to give a reused engine.
  for (std::size_t p = 0; p < surviving; ++p)
    clear(static_cast<ProcessId>(p));
}

void InboxPool::push(ProcessId p, std::uint64_t d, Message msg,
                     std::uint64_t seq) {
  Head& h = heads_[p];
  std::uint32_t li = h.hint_lane;
  if (li == kNil || lanes_[li].d != d) {
    li = kNil;
    std::uint32_t tail = kNil;
    for (std::uint32_t i = h.first_lane; i != kNil; i = lanes_[i].next) {
      if (lanes_[i].d == d) {
        li = i;
        break;
      }
      tail = i;
    }
    if (li == kNil) {
      if (free_lanes_ != kNil) {
        li = free_lanes_;
        free_lanes_ = lanes_[li].next;
        lanes_[li] = Lane{};
      } else {
        lanes_.emplace_back();
        li = static_cast<std::uint32_t>(lanes_.size() - 1);
      }
      lanes_[li].d = d;
      if (tail == kNil)
        h.first_lane = li;
      else
        lanes_[tail].next = li;
    }
    h.hint_lane = li;
  }
  UGF_ASSERT_MSG(lanes_[li].size == 0 ||
                     lanes_[li].last_arrival <= msg.arrives_at,
                 "lane d=%llu accepted out of arrival order",
                 static_cast<unsigned long long>(d));
  UGF_ASSERT_MSG(msg.arrives_at >= msg.sent_at,
                 "message arrives at %llu before its emission at %llu",
                 static_cast<unsigned long long>(msg.arrives_at),
                 static_cast<unsigned long long>(msg.sent_at));
  // Chunk allocation may grow chunks_; take references afterwards.
  if (lanes_[li].tail_chunk == kNil) {
    const std::uint32_t c = alloc_chunk();
    Lane& lane = lanes_[li];
    lane.head_chunk = lane.tail_chunk = c;
    lane.head_slot = lane.tail_slot = 0;
  } else if (lanes_[li].tail_slot == kChunkEntries) {
    const std::uint32_t c = alloc_chunk();
    Lane& lane = lanes_[li];
    chunks_[lane.tail_chunk].next = c;
    lane.tail_chunk = c;
    lane.tail_slot = 0;
  }
  Lane& lane = lanes_[li];
  h.earliest = std::min(h.earliest, msg.arrives_at);
  lane.last_arrival = msg.arrives_at;
  chunks_[lane.tail_chunk].slots[lane.tail_slot] = InboxEntry{msg, seq};
  ++lane.tail_slot;
  ++lane.size;
  ++h.size;
}

void InboxPool::recompute_earliest(ProcessId p) noexcept {
  Head& h = heads_[p];
  h.earliest = kNeverStep;
  for (std::uint32_t li = h.first_lane; li != kNil; li = lanes_[li].next) {
    const Lane& lane = lanes_[li];
    if (lane.size == 0) continue;
    h.earliest = std::min(
        h.earliest, chunks_[lane.head_chunk].slots[lane.head_slot].msg.arrives_at);
  }
}

bool InboxPool::pop_due(ProcessId p, GlobalStep step, Message& out) {
  Head& h = heads_[p];
  if (h.earliest > step) return false;  // O(1) miss: nothing is due yet
  std::uint32_t best = kNil;
  GlobalStep best_arrival = 0;
  std::uint64_t best_seq = 0;
  for (std::uint32_t li = h.first_lane; li != kNil; li = lanes_[li].next) {
    const Lane& lane = lanes_[li];
    if (lane.size == 0) continue;
    const InboxEntry& front = chunks_[lane.head_chunk].slots[lane.head_slot];
    if (front.msg.arrives_at > step) continue;
    if (best == kNil || front.msg.arrives_at < best_arrival ||
        (front.msg.arrives_at == best_arrival && front.seq < best_seq)) {
      best = li;
      best_arrival = front.msg.arrives_at;
      best_seq = front.seq;
    }
  }
  UGF_ASSERT_MSG(best != kNil,
                 "earliest cache says a message is due at %llu but no lane "
                 "front is",
                 static_cast<unsigned long long>(step));
  if (best == kNil) return false;
  Lane& lane = lanes_[best];
  out = chunks_[lane.head_chunk].slots[lane.head_slot].msg;
  ++lane.head_slot;
  --lane.size;
  --h.size;
  if (lane.size == 0) {
    // The last entry always lives in the final chunk of the lane.
    UGF_ASSERT(lane.head_chunk == lane.tail_chunk);
    free_chunk(lane.head_chunk);
    lane.head_chunk = lane.tail_chunk = kNil;
    lane.head_slot = lane.tail_slot = 0;
  } else if (lane.head_slot == kChunkEntries) {
    const std::uint32_t consumed = lane.head_chunk;
    lane.head_chunk = chunks_[consumed].next;
    lane.head_slot = 0;
    free_chunk(consumed);
  }
  recompute_earliest(p);
  return true;
}

void InboxPool::clear(ProcessId p) noexcept {
  Head& h = heads_[p];
  for (std::uint32_t li = h.first_lane; li != kNil; li = lanes_[li].next) {
    Lane& lane = lanes_[li];
    std::uint32_t c = lane.head_chunk;
    while (c != kNil) {
      const std::uint32_t next = chunks_[c].next;
      free_chunk(c);
      c = next;
    }
    lane.head_chunk = lane.tail_chunk = kNil;
    lane.head_slot = lane.tail_slot = 0;
    lane.size = 0;
    lane.last_arrival = 0;
  }
  h.size = 0;
  h.earliest = kNeverStep;
  // Mirror of the old last-lane hint reset: point back at the first
  // retained lane (correctness never depends on the hint, only speed).
  h.hint_lane = h.first_lane;
}

std::size_t InboxPool::lane_count(ProcessId p) const noexcept {
  std::size_t count = 0;
  for (std::uint32_t li = heads_[p].first_lane; li != kNil;
       li = lanes_[li].next)
    ++count;
  return count;
}

std::size_t InboxPool::bytes() const noexcept {
  return heads_.capacity() * sizeof(Head) + lanes_.capacity() * sizeof(Lane) +
         chunks_.capacity() * sizeof(Chunk);
}

// ---- OutgoingPool ---------------------------------------------------------

std::uint32_t OutgoingPool::alloc_chunk() {
  if (free_chunks_ != kNil) {
    const std::uint32_t c = free_chunks_;
    free_chunks_ = chunks_[c].next;
    chunks_[c].next = kNil;
    return c;
  }
  chunks_.emplace_back();
  return static_cast<std::uint32_t>(chunks_.size() - 1);
}

void OutgoingPool::free_chunk(std::uint32_t chunk) noexcept {
  chunks_[chunk].next = free_chunks_;
  free_chunks_ = chunk;
}

void OutgoingPool::reset(std::uint32_t n) {
  for (std::size_t p = 0; p < heads_.size(); ++p)
    clear(static_cast<ProcessId>(p));
  heads_.resize(n);
}

void OutgoingPool::push(ProcessId p, ProcessId to, PayloadRef payload) {
  if (heads_[p].tail_chunk == kNil) {
    const std::uint32_t c = alloc_chunk();
    Head& h = heads_[p];
    h.head_chunk = h.tail_chunk = c;
    h.head_slot = h.tail_slot = 0;
  } else if (heads_[p].tail_slot == kChunkEntries) {
    const std::uint32_t c = alloc_chunk();
    Head& h = heads_[p];
    chunks_[h.tail_chunk].next = c;
    h.tail_chunk = c;
    h.tail_slot = 0;
  }
  Head& h = heads_[p];
  chunks_[h.tail_chunk].slots[h.tail_slot] = Entry{to, payload};
  ++h.tail_slot;
  ++h.size;
}

bool OutgoingPool::pop(ProcessId p, ProcessId& to,
                       PayloadRef& payload) noexcept {
  Head& h = heads_[p];
  if (h.size == 0) return false;
  const Entry& entry = chunks_[h.head_chunk].slots[h.head_slot];
  to = entry.to;
  payload = entry.payload;
  ++h.head_slot;
  --h.size;
  if (h.size == 0) {
    UGF_ASSERT(h.head_chunk == h.tail_chunk);
    free_chunk(h.head_chunk);
    h.head_chunk = h.tail_chunk = kNil;
    h.head_slot = h.tail_slot = 0;
  } else if (h.head_slot == kChunkEntries) {
    const std::uint32_t consumed = h.head_chunk;
    h.head_chunk = chunks_[consumed].next;
    h.head_slot = 0;
    free_chunk(consumed);
  }
  return true;
}

void OutgoingPool::clear(ProcessId p) noexcept {
  Head& h = heads_[p];
  std::uint32_t c = h.head_chunk;
  while (c != kNil) {
    const std::uint32_t next = chunks_[c].next;
    free_chunk(c);
    c = next;
  }
  h = Head{};
}

std::size_t OutgoingPool::bytes() const noexcept {
  return heads_.capacity() * sizeof(Head) + chunks_.capacity() * sizeof(Chunk);
}

}  // namespace ugf::sim
