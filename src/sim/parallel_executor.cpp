#include "sim/parallel_executor.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/profile.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"
#include "util/saturating.hpp"

namespace ugf::sim {

using util::sat_add;

namespace {

/// Monotonic nanoseconds for the merge-time telemetry.
std::uint64_t mono_ns() noexcept {
  // Read between waves for the engine.parallel.merge_ns counter only;
  // never visible to the simulated world, so runs stay a pure function
  // of (config, seed).
  // ugf-analyzer: allow(wallclock): coordinator-side merge telemetry
  const auto now = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          now.time_since_epoch())
          .count());
}

}  // namespace

/// Per-worker protocol services: the parallel twin of
/// Engine::ContextImpl, identical except that payloads come from the
/// worker shard's private arena (one allocator writer per thread).
/// Payload addresses therefore differ from a serial run's — payloads
/// are opaque values to every protocol, so nothing downstream can
/// observe the difference.
class ParallelStepExecutor::WorkerContext final : public ProcessContext {
 public:
  WorkerContext(Engine& engine, PayloadArena& arena) noexcept
      : engine_(engine),
        arena_(arena),
        info_{engine.config_.n, engine.config_.f} {}

  /// Re-aims the context at the shard process whose StepBegin is next.
  void bind(ProcessId self) noexcept { self_ = self; }

  [[nodiscard]] ProcessId self() const noexcept override { return self_; }
  [[nodiscard]] const SystemInfo& system() const noexcept override {
    return info_;
  }
  [[nodiscard]] util::Rng& rng() noexcept override {
    return engine_.table_.rng[self_];
  }
  [[nodiscard]] PayloadArena& arena() noexcept override { return arena_; }

  void send(ProcessId to, PayloadRef payload) override {
    if (to >= engine_.config_.n)
      throw std::out_of_range("ProcessContext::send: bad destination");
    if (to == self_)
      throw std::invalid_argument("ProcessContext::send: self-send");
    if (!payload)
      throw std::invalid_argument("ProcessContext::send: null payload");
    engine_.outgoing_.push(self_, to, payload);
  }

  [[nodiscard]] std::size_t queued_sends() const noexcept override {
    return engine_.outgoing_.size(self_);
  }

 private:
  Engine& engine_;
  PayloadArena& arena_;
  ProcessId self_ = kNoProcess;
  SystemInfo info_;
};

void ParallelStepExecutor::run_loop(std::uint32_t shards) {
  Engine& e = engine_;
  UGF_ASSERT_MSG(shards >= 2, "parallel run_loop with %u shard(s)", shards);
  UGF_ASSERT_MSG(e.adversary_ == nullptr && e.config_.sink == nullptr,
                 "parallel run_loop requires a benign, sinkless run");
  map_ = ShardMap(e.config_.n, shards);
  UGF_ASSERT_MSG(map_ == e.inboxes_.shard_map(),
                 "pool shard geometry diverged from the executor's");
  if (pool_ == nullptr || pool_->size() != shards - 1)
    pool_ = std::make_unique<util::ThreadPool>(shards - 1);
  shard_bounds_.resize(shards + 1);
  for (std::uint32_t w = 0; w <= shards; ++w) shard_bounds_[w] = w;
  delivered_.assign(shards, 0);
  if (wave_min_arrival_.size() != e.config_.n) {
    wave_min_arrival_.assign(e.config_.n, 0);
    wave_epoch_mark_.assign(e.config_.n, 0);
  }

  // Same loop contract as Engine::run_serial_loop, at wave granularity:
  // every event of the current step is collected (peek_step keeps the
  // wheel's last-popped step at s, so same-step pushes from this wave
  // stay legal), then executed phase by phase. Truncation triggers on
  // the same popped-event count; the only divergence is that a
  // max_events limit landing strictly inside a wave truncates before
  // the wave instead of mid-wave (see file comment).
  std::uint64_t processed = 0;
  while (!e.events_.empty()) {
    const GlobalStep s = e.events_.peek_step();
    if (s > e.config_.max_steps) {
      e.outcome_.truncated = true;
      break;
    }
    wave_.clear();
    while (!e.events_.empty() && e.events_.peek_step() == s)
      wave_.push_back(e.events_.pop());
    processed += wave_.size();
    if (processed > e.config_.max_events) {
      e.outcome_.truncated = true;
      break;
    }
    UGF_ASSERT_MSG(s >= e.now_,
                   "event queue went backwards: step %llu after %llu",
                   static_cast<unsigned long long>(s),
                   static_cast<unsigned long long>(e.now_));
    e.now_ = s;
    run_wave(s);
    ++stats_.batches;
    // Global step s is complete (a wave is exactly one step); digest on
    // the coordinator thread, after the workers' merge barrier, at the
    // same boundary the serial loop samples.
    if (e.config_.digester != nullptr &&
        (e.events_.empty() || e.events_.peek_step() > s)) {
      e.sample_digest(s);
    }
  }
}

void ParallelStepExecutor::run_wave(GlobalStep s) {
  Engine& e = engine_;
  ++wave_epoch_;
  begins_.clear();
  ends_.clear();
  for (const ScheduledEvent& ev : wave_) {
    switch (static_cast<Engine::EventKind>(ev.kind)) {
      case Engine::EventKind::kStepBegin:
        // Superseded wake-begins carry an old token, exactly as in the
        // serial loop's handle_step_begin guard.
        if (ev.token == e.table_.begin_token[ev.pid] &&
            e.table_.state[ev.pid] != ProcessState::kCrashed)
          begins_.push_back(ev.pid);
        break;
      case Engine::EventKind::kStepEnd:
        // Benign runs cannot stale a StepEnd: tokens only advance at
        // the owning process's next StepBegin (or a crash, and there
        // is no crasher here).
        UGF_ASSERT(ev.token == e.table_.end_token[ev.pid]);
        UGF_ASSERT(e.table_.state[ev.pid] != ProcessState::kCrashed);
        ends_.push_back(ev.pid);
        break;
      case Engine::EventKind::kTimer:
        UGF_ASSERT_MSG(false, "timer event in a benign run");
        break;
    }
  }
  if (!begins_.empty()) run_begin_phase(s);
  if (!ends_.empty()) run_end_phase(s);
}

void ParallelStepExecutor::run_begin_phase(GlobalStep s) {
  Engine& e = engine_;
  // StepBegins commute: each touches only its own table columns, its
  // own inbox lanes (and their shard arena), its own protocol-plane
  // slot and RNG stream, and queues sends into its own outgoing FIFO.
  // Workers filter the wave's begin list down to their shard, so the
  // per-shard pooled storage keeps its single-writer guarantee.
  pool_->parallel_for(
      shard_bounds_, [&](std::size_t w, std::size_t, std::size_t) {
        WorkerContext ctx(e, w == 0 ? e.arena_ : *e.worker_arenas_[w - 1]);
        std::uint64_t delivered = 0;
        Message msg;
        for (const ProcessId pid : begins_) {
          if (map_.of(pid) != w) continue;
          e.table_.next_begin[pid] = kNeverStep;
          e.table_.state[pid] = ProcessState::kAwake;
          ctx.bind(pid);
          while (e.inboxes_.pop_due(pid, s, msg)) {
            UGF_ASSERT_MSG(msg.to == pid, "message for %u delivered to %u",
                           msg.to, pid);
            ++delivered;
            obs::ScopedPhase phase(e.config_.profiler, obs::Phase::kProtocol);
            e.plane_->on_message(ctx, msg);
          }
          obs::ScopedPhase phase(e.config_.profiler, obs::Phase::kProtocol);
          e.plane_->on_local_step(ctx);
        }
        delivered_[w] = delivered;
      });
  for (const std::uint64_t d : delivered_) e.outcome_.delivered_messages += d;

  // Seq-ordered merge: the StepEnds are scheduled by the coordinator
  // in wave order — the exact order the serial loop would have pushed
  // them — so their relative wheel position (and with it the emission
  // ids of the next wave) is bit-for-bit reproduced.
  const std::uint64_t t0 = mono_ns();
  for (const ProcessId pid : begins_) {
    const GlobalStep end = sat_add(s, e.table_.delta[pid]);
    ++e.table_.end_token[pid];
    e.events_.push(e.make_event(end, Engine::EventKind::kStepEnd, pid,
                                e.table_.end_token[pid]));
  }
  stats_.merge_ns += mono_ns() - t0;
}

void ParallelStepExecutor::run_end_phase(GlobalStep s) {
  Engine& e = engine_;
  const std::size_t n_ends = ends_.size();

  // Pre-reserve the wave's emission-id range: the serial loop hands
  // out ++next_msg_seq_ per popped outgoing entry while walking ends
  // in seq order, so prefix sums over the queued-send counts assign
  // every future emission its exact serial id before any worker runs.
  emit_ofs_.resize(n_ends + 1);
  emit_ofs_[0] = 0;
  for (std::size_t i = 0; i < n_ends; ++i)
    emit_ofs_[i + 1] = emit_ofs_[i] + e.outgoing_.size(ends_[i]);
  const std::uint64_t total = emit_ofs_[n_ends];
  const std::uint64_t id0 = e.next_msg_seq_;
  e.next_msg_seq_ += total;
  emissions_.resize(total);
  sleeps_.assign(n_ends, 0);
  pre_push_earliest_.resize(n_ends);

  // Stage a (parallel over source shards): drain each ending process's
  // outgoing FIFO into its pre-reserved slot range and take the local
  // bookkeeping that only touches source-shard columns. The sleep
  // verdict is recorded but not applied — stage c replays state flips
  // in serial order.
  pool_->parallel_for(
      shard_bounds_, [&](std::size_t w, std::size_t, std::size_t) {
        for (std::size_t i = 0; i < n_ends; ++i) {
          const ProcessId pid = ends_[i];
          if (map_.of(pid) != w) continue;
          std::uint64_t slot = emit_ofs_[i];
          ProcessId to = kNoProcess;
          PayloadRef payload;
          while (e.outgoing_.pop(pid, to, payload)) {
            ++e.table_.sent[pid];
            const std::uint64_t d = e.table_.d[pid];
            emissions_[slot] = Emission{payload, sat_add(s, d), d, pid, to};
            ++slot;
          }
          UGF_ASSERT_MSG(slot == emit_ofs_[i + 1],
                         "outgoing queue of %u changed size mid-wave", pid);
          e.table_.last_step_end[pid] = s;
          sleeps_[i] = e.plane_->wants_sleep(pid) ? 1 : 0;
        }
      });

  e.outcome_.total_messages += total;
  e.outcome_.local_steps_executed += n_ends;
  if (total > 0)
    e.outcome_.last_send_step = std::max(e.outcome_.last_send_step, s);

  const std::uint64_t t0 = mono_ns();
  // Pre-push inbox snapshot: the serial self-wake of a sleeping process
  // reads its inbox as of its own end event — before higher-seq ends
  // of the same step pushed into it. Those later arrivals are folded
  // back in during stage c via the wave-running minimum.
  for (std::size_t i = 0; i < n_ends; ++i) {
    if (sleeps_[i] != 0)
      pre_push_earliest_[i] = e.inboxes_.earliest_arrival(ends_[i]);
  }
  stats_.merge_ns += mono_ns() - t0;

  // Stage b (parallel over destination shards): apply the wave's inbox
  // pushes in global emission-id order. Every worker scans the full
  // id-sorted buffer and takes only its own shard's destinations, so
  // each per-process lane still accepts in strictly increasing id
  // order — the serial acceptance order.
  if (total > 0) {
    pool_->parallel_for(
        shard_bounds_, [&](std::size_t w, std::size_t, std::size_t) {
          for (std::uint64_t idx = 0; idx < total; ++idx) {
            const Emission& m = emissions_[idx];
            if (map_.of(m.to) != w) continue;
            UGF_ASSERT(e.table_.state[m.to] != ProcessState::kCrashed);
            const std::uint64_t id = id0 + idx + 1;
            e.inboxes_.push(m.to, m.d,
                            Message{m.from, m.to, s, m.arrival, m.payload, id},
                            id);
          }
        });
  }

  // Stage c (coordinator): replay the serial wake/sleep sequence. The
  // walk visits ends in wave order and their emissions in id order, so
  // every schedule_wake / schedule_begin_direct below fires with the
  // arguments — and in the relative order — of the serial loop, which
  // is what keeps the next waves' event ordering (and thus all
  // downstream emission ids) bit-for-bit identical.
  const std::uint64_t t1 = mono_ns();
  for (std::size_t i = 0; i < n_ends; ++i) {
    const ProcessId pid = ends_[i];
    for (std::uint64_t idx = emit_ofs_[i]; idx < emit_ofs_[i + 1]; ++idx) {
      const Emission& m = emissions_[idx];
      if (wave_epoch_mark_[m.to] != wave_epoch_) {
        wave_epoch_mark_[m.to] = wave_epoch_;
        wave_min_arrival_[m.to] = m.arrival;
      } else {
        wave_min_arrival_[m.to] =
            std::min(wave_min_arrival_[m.to], m.arrival);
      }
      if (e.table_.state[m.to] == ProcessState::kAsleep)
        e.schedule_wake(m.to, m.arrival);
    }
    if (sleeps_[i] != 0) {
      e.table_.state[pid] = ProcessState::kAsleep;
      GlobalStep earliest = pre_push_earliest_[i];
      if (wave_epoch_mark_[pid] == wave_epoch_)
        earliest = std::min(earliest, wave_min_arrival_[pid]);
      // Serial equivalence of the folded-in later arrivals: the serial
      // engine self-wakes at max(s, pre-push earliest) and lets each
      // later same-step push lower next_begin via schedule_wake; both
      // compute min(max(s, E0), A1, A2, ...) == max(s, min(E0, A1,
      // A2, ...)) because every same-step arrival Ai = s + di > s.
      if (earliest != kNeverStep) e.schedule_wake(pid, std::max(s, earliest));
    } else {
      e.schedule_begin_direct(pid, s);
    }
  }
  stats_.merge_ns += mono_ns() - t1;
}

}  // namespace ugf::sim
