#pragma once

/// \file outcome.hpp
/// The result record of one simulated dissemination — everything the
/// paper's Definitions II.3 and II.4 need, plus bookkeeping used by the
/// test suite's invariants.

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace ugf::sim {

struct Outcome {
  // --- complexities (Defs II.3 / II.4) -----------------------------------
  /// M(O): total number of messages sent by all processes.
  std::uint64_t total_messages = 0;
  /// T_end(O): the last global step at which a correct process finished a
  /// local step (i.e. entered its final asleep/completed state).
  GlobalStep t_end = 0;
  /// max_rho delta_rho over the outcome (final values, crashed included).
  std::uint64_t delta_max = 1;
  /// max_rho d_rho over the outcome (final values, crashed included).
  std::uint64_t d_max = 1;
  /// T(O) = T_end / (delta_max + d_max).
  double time_complexity = 0.0;

  // --- dissemination status -----------------------------------------------
  /// Every correct process holds the gossip of every correct process
  /// (rumor gathering, Def II.1).
  bool rumor_gathering_ok = false;
  /// The run hit the engine's max_steps safety cap before quiescing.
  bool truncated = false;
  /// Number of processes crashed by the adversary.
  std::uint32_t crashed = 0;

  // --- bookkeeping for tests & diagnostics --------------------------------
  std::uint64_t delivered_messages = 0;
  /// Messages whose receiver was crashed (at emission or before arrival).
  std::uint64_t dropped_messages = 0;
  /// Messages suppressed by an omission-capable adversary (extension).
  std::uint64_t omitted_messages = 0;
  /// Global step of the last message emission by any process.
  GlobalStep last_send_step = 0;
  /// Total local steps executed across all processes.
  std::uint64_t local_steps_executed = 0;
  /// Per-process sent-message counts (M_rho(O)).
  std::vector<std::uint64_t> per_process_sent;
  /// Per-process final state.
  std::vector<ProcessState> final_state;
  /// Per-process step at which the process finished its last local step
  /// (kNeverStep if it never executed one or crashed).
  std::vector<GlobalStep> completion_step;
};

}  // namespace ugf::sim
