#include "sim/payload_arena.hpp"

#include <algorithm>

#include "sim/message.hpp"

namespace ugf::sim {

void PayloadArena::reset() noexcept {
  // Reverse construction order, like stack unwinding; payloads are
  // independent but the symmetry is free.
  for (auto it = live_.rbegin(); it != live_.rend(); ++it) (*it)->~Payload();
  live_.clear();
  active_ = 0;
  offset_ = 0;
  bytes_in_use_ = 0;
}

void* PayloadArena::allocate(std::size_t size, std::size_t align) {
  UGF_ASSERT_MSG((align & (align - 1)) == 0, "alignment %zu not a power of 2",
                 align);
  // Slab bases come from operator new[], aligned for any fundamental
  // type; over-aligned payloads would need aligned slabs.
  UGF_ASSERT(align <= alignof(std::max_align_t));
  for (;;) {
    if (active_ < slabs_.size()) {
      Slab& slab = slabs_[active_];
      const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
      if (aligned + size <= slab.size) {
        offset_ = aligned + size;
        bytes_in_use_ += size;
        return slab.mem.get() + aligned;
      }
      // Slab exhausted: try the next retained slab (warm reuse after
      // reset()), falling through to allocate a fresh one if none fits.
      ++active_;
      offset_ = 0;
      continue;
    }
    const std::size_t slab_size = std::max(kSlabBytes, size + align);
    slabs_.push_back(Slab{std::make_unique<std::byte[]>(slab_size), slab_size});
    capacity_bytes_ += slab_size;
    // Loop re-enters with active_ == the new slab's index.
  }
}

}  // namespace ugf::sim
