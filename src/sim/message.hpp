#pragma once

/// \file message.hpp
/// Messages exchanged by processes. A message is one point-to-point
/// send: message complexity (Def II.3) counts messages, never bytes, so
/// a payload may carry arbitrarily many gossips at once. Payloads are
/// immutable, arena-owned (sim/payload_arena.hpp) and shared by
/// reference: a fan-out of k sends of the same content (the SEARS hot
/// path) allocates the payload once and copies only the 16-byte ref.

#include <cstdint>
#include <type_traits>

#include "sim/payload_arena.hpp"
#include "sim/types.hpp"

namespace ugf::sim {

/// Base class for protocol-defined message contents. Payloads must be
/// immutable after construction (they are shared between the network
/// and many receivers) and live in a PayloadArena: construction goes
/// through `ProcessContext::make_payload<T>()` / `PayloadArena::make`,
/// and every instance dies at the arena's reset() — a PayloadRef must
/// never outlive the run that created it.
///
/// Each concrete payload type declares a distinct `kind` tag (a
/// `static constexpr std::uint32_t kKind`, conventionally a four-char
/// literal like 'PULL') and passes it up; `payload_as` dispatches on the
/// tag instead of RTTI because delivery is the simulator's hottest path
/// (tens of millions of messages under Strategy 2.k.l).
class Payload {
 public:
  virtual ~Payload() = default;

  [[nodiscard]] std::uint32_t kind() const noexcept { return kind_; }

 protected:
  explicit Payload(std::uint32_t kind) noexcept : kind_(kind) {}
  Payload(const Payload&) = default;
  Payload& operator=(const Payload&) = default;

 private:
  std::uint32_t kind_;
};

/// An in-flight or delivered message. Trivially copyable: the payload
/// travels as an arena ref, so accepting, parking (Strategy 2.k.l keeps
/// ~10^6 in flight) and delivering a message never touches a refcount.
struct Message {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  GlobalStep sent_at = 0;     ///< global step of emission (end of local step)
  GlobalStep arrives_at = 0;  ///< sent_at + d_from(at send time)
  PayloadRef payload;
  /// 1-based id of the emission that put this message on the wire —
  /// the causal identity obs::LineageTracker stitches deliveries to
  /// (obs/event.hpp). Doubles as the inbox's arrival tie-break.
  std::uint64_t cause = 0;
};

static_assert(std::is_trivially_copyable_v<Message>);

/// Downcast helper for receivers; returns nullptr on kind mismatch.
/// Dispatches on the ref's cached kind tag — a mismatch never touches
/// the payload object itself.
template <typename T>
const T* payload_as(const Message& msg) noexcept {
  return msg.payload.kind() == T::kKind
             ? static_cast<const T*>(msg.payload.get())
             : nullptr;
}

}  // namespace ugf::sim
