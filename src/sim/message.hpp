#pragma once

/// \file message.hpp
/// Messages exchanged by processes. A message is one point-to-point
/// send: message complexity (Def II.3) counts messages, never bytes, so
/// a payload may carry arbitrarily many gossips at once. Payloads are
/// immutable and shared: a fan-out of k sends of the same content (the
/// SEARS hot path) allocates the payload once.

#include <memory>

#include "sim/types.hpp"

namespace ugf::sim {

/// Base class for protocol-defined message contents. Payloads must be
/// immutable after construction (they are shared between the network
/// and many receivers).
///
/// Each concrete payload type declares a distinct `kind` tag (a
/// `static constexpr std::uint32_t kKind`, conventionally a four-char
/// literal like 'PULL') and passes it up; `payload_as` dispatches on the
/// tag instead of RTTI because delivery is the simulator's hottest path
/// (tens of millions of messages under Strategy 2.k.l).
class Payload {
 public:
  virtual ~Payload() = default;

  [[nodiscard]] std::uint32_t kind() const noexcept { return kind_; }

 protected:
  explicit Payload(std::uint32_t kind) noexcept : kind_(kind) {}
  Payload(const Payload&) = default;
  Payload& operator=(const Payload&) = default;

 private:
  std::uint32_t kind_;
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// An in-flight or delivered message.
struct Message {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  GlobalStep sent_at = 0;     ///< global step of emission (end of local step)
  GlobalStep arrives_at = 0;  ///< sent_at + d_from(at send time)
  PayloadPtr payload;
};

/// Downcast helper for receivers; returns nullptr on kind mismatch.
template <typename T>
const T* payload_as(const Message& msg) noexcept {
  const Payload* p = msg.payload.get();
  return (p != nullptr && p->kind() == T::kKind) ? static_cast<const T*>(p)
                                                 : nullptr;
}

}  // namespace ugf::sim
