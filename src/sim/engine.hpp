#pragma once

/// \file engine.hpp
/// The discrete global-step execution engine (§II-A).
///
/// The engine is event-driven: instead of ticking every global step it
/// schedules the two step boundaries of each process (begin / end of a
/// local step) plus adversary timers on a hierarchical timing wheel
/// (sim/timing_wheel.hpp). This is semantically identical to the
/// paper's tick model but skips idle time, which matters because UGF
/// inflates delivery times up to tau^(k+l) = F^2 global steps — and the
/// wheel keeps scheduling O(1) per event no matter how far ahead those
/// deliveries are parked.
///
/// Timeline of one local step of process rho, spanning [s, s+delta_rho):
///   * at s   (StepBegin): messages with arrival <= s are delivered,
///             then the protocol computes and queues outgoing messages;
///   * at s+delta_rho (StepEnd): queued messages are emitted one by one
///             (the adversary observes each emission synchronously and
///             may crash the receiver before the network accepts the
///             message), then the process either starts its next step or
///             falls asleep (Def IV.2). A sleeping process is woken by
///             the next message arrival.
///
/// Determinism: every run is a pure function of (config, factory,
/// adversary). Ties in the event queue are broken by insertion order;
/// protocol randomness comes from per-process child streams of the run
/// seed.
///
/// Layout: per-process state is a structure-of-arrays ProcessTable
/// (sim/process_table.hpp) plus two engine-owned pools for inbox lanes
/// and outgoing buffers; protocol state lives in one ProtocolPlane per
/// run instead of one heap object per process. Constructing an engine
/// for N = 10^6 processes is a handful of large allocations, not
/// millions of small ones.
///
/// Reuse: `reset()` rewinds an engine for another run while retaining
/// every capacity the previous run grew — the process table columns,
/// pooled inbox/outgoing chunks, event-queue storage and payload-arena
/// slabs — so a Monte-Carlo worker runs its whole batch share against
/// warm memory. A reset engine is indistinguishable from a freshly
/// constructed one (same config ⇒ bit-for-bit identical Outcome).

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "sim/adversary_iface.hpp"
#include "sim/message.hpp"
#include "sim/outcome.hpp"
#include "sim/payload_arena.hpp"
#include "sim/process_table.hpp"
#include "sim/protocol.hpp"
#include "sim/timing_wheel.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace ugf::obs {
class StateDigester;
}

namespace ugf::sim {

class ParallelStepExecutor;

struct EngineConfig {
  /// Number of processes N (>= 2).
  std::uint32_t n = 0;
  /// Adversary crash budget F (< N). Also reported to protocols.
  std::uint32_t f = 0;
  /// Seed controlling all protocol randomness of the run.
  std::uint64_t seed = 1;
  /// Safety horizon in global steps; runs exceeding it are truncated.
  GlobalStep max_steps = 1'000'000'000'000ull;
  /// Safety cap on processed engine events (guards livelocked protocols).
  std::uint64_t max_events = 50'000'000ull;
  /// Optional event consumer (obs/event.hpp); nullptr (the default)
  /// disables all event observation at the cost of one predicted branch
  /// per would-be event. Must outlive run().
  obs::EventSink* sink = nullptr;
  /// Optional phase profiler (obs/profile.hpp); nullptr disables phase
  /// timing. Must outlive run(); may be shared across engines/threads.
  obs::PhaseProfiler* profiler = nullptr;
  /// Optional campaign metrics registry (obs/metrics.hpp); nullptr
  /// disables publishing. The engine publishes once at the end of
  /// run() from the outcome / arena / wheel counters — nothing is
  /// added to the event hot path. Must outlive run(); may be shared
  /// across engines/threads. See docs/OBSERVABILITY.md for the metric
  /// names.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional state digester (obs/state_digest.hpp); nullptr disables
  /// digest sampling. When attached, the engine folds every subsystem
  /// into per-step digests at the digester's cadence — after each fully
  /// completed global step, on whichever loop (serial or parallel
  /// coordinator) executed it — plus once at the end of the run. The
  /// digest stream is a pure function of (config, factory, adversary):
  /// identical at every intra_run_threads value. Attaching a digester
  /// never changes the execution path (it does not force the serial
  /// loop). Must outlive run(); must NOT be shared across concurrently
  /// running engines.
  obs::StateDigester* digester = nullptr;
  /// Worker threads used *inside* one run (ParallelStepExecutor,
  /// sim/parallel_executor.hpp): due processes of each global step are
  /// partitioned into contiguous pid shards, one worker per shard, and
  /// the emitted events are merged back in deterministic seq order, so
  /// the Outcome is bit-for-bit identical at every thread count. 1 (the
  /// default) is the plain serial event loop. Values > 1 engage only
  /// for benign runs without an event sink — an adversary observes each
  /// emission synchronously and a sink observes the exact serial event
  /// interleaving, so both force the serial path (the run is still
  /// correct, just single-threaded). Capped at n.
  std::uint32_t intra_run_threads = 1;
};

/// Runs one dissemination to quiescence and reports its Outcome.
class Engine {
 public:
  /// `adversary` may be nullptr (benign run). The factory and adversary
  /// must outlive the call to run().
  Engine(const EngineConfig& config, const ProtocolFactory& factory,
         Adversary* adversary);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes the dissemination; callable once per reset cycle.
  [[nodiscard]] Outcome run();

  /// Rewinds the engine for another run() under a new config (same
  /// factory; `n` may even change). A fresh protocol plane is created
  /// and every payload of the previous run is destroyed — any
  /// PayloadRef from the previous run is dangling after this — but all
  /// grown capacity (process table, pooled inbox/outgoing chunks,
  /// event-queue storage, arena slabs) is retained. Equivalent to
  /// constructing a new Engine: the run is a pure function of (config,
  /// factory, adversary) either way.
  void reset(const EngineConfig& config, Adversary* adversary);

  /// The run's payload arena (stats inspection in tests/benches).
  [[nodiscard]] const PayloadArena& arena() const noexcept { return arena_; }

  /// Resident bytes of the per-process machinery: table columns,
  /// pooled inbox/outgoing storage and the protocol plane's state
  /// (arena bytes are reported separately). Also published per process
  /// as the "engine.table.bytes_per_process" gauge.
  [[nodiscard]] std::size_t resident_state_bytes() const noexcept;

  /// Pending deliveries of one process. Messages are accepted in
  /// non-decreasing emission time, so within one delivery-time class d
  /// the arrival times (= emission + d) are non-decreasing too: the
  /// inbox is a handful of append-only FIFO lanes (one per distinct d
  /// seen), merged at delivery time. This is O(1) per accept with
  /// sequential memory — a binary heap degrades badly when Strategy
  /// 2.k.l parks ~10^6 far-future messages in flight. Adversaries that
  /// use many distinct d values degrade gracefully (one lane each).
  ///
  /// The engine itself stores every process's lanes in one shared
  /// InboxPool (sim/process_table.hpp); this class is a single-process
  /// view over a private pool, kept public for direct unit testing of
  /// the exact pooled semantics. Processes never see it.
  class Inbox {
   public:
    Inbox() { pool_.reset(1); }

    void push(std::uint64_t d, Message msg, std::uint64_t seq) {
      pool_.push(0, d, std::move(msg), seq);
    }
    [[nodiscard]] bool empty() const noexcept { return pool_.empty(0); }
    [[nodiscard]] std::size_t size() const noexcept { return pool_.size(0); }
    /// Distinct delivery-time lanes ever seen (diagnostics/tests).
    [[nodiscard]] std::size_t lane_count() const noexcept {
      return pool_.lane_count(0);
    }
    /// Earliest pending arrival step; kNeverStep when empty. O(1): the
    /// value is maintained incrementally on push and recomputed from
    /// the lane fronts only after a successful pop.
    [[nodiscard]] GlobalStep earliest_arrival() const noexcept {
      return pool_.earliest_arrival(0);
    }
    /// True iff a message with arrival <= step is pending; if so, moves
    /// the earliest (by arrival, then acceptance order) into `out`.
    bool pop_due(GlobalStep step, Message& out) {
      return pool_.pop_due(0, step, out);
    }
    /// Discards every pending message. Lanes (and their chunk storage)
    /// are kept for reuse — empty lanes are skipped by every scan, so
    /// retention is invisible to callers.
    void clear() noexcept { pool_.clear(0); }

   private:
    InboxPool pool_;
  };

 private:
  enum class EventKind : std::uint8_t { kStepBegin, kStepEnd, kTimer };

  /// Builds a wheel event; `token` is the validity token checked
  /// against the process table when the event fires.
  [[nodiscard]] ScheduledEvent make_event(GlobalStep step, EventKind kind,
                                          ProcessId pid,
                                          std::uint64_t token) noexcept {
    return ScheduledEvent{step, next_seq_++, token, pid,
                          static_cast<std::uint8_t>(kind)};
  }

  class ContextImpl;
  class ControlImpl;

  /// The parallel executor is the engine's other event loop: same
  /// state, same invariants, partitioned across worker threads. It
  /// lives in its own translation unit and reaches the engine's
  /// internals directly rather than through a widened public surface.
  friend class ParallelStepExecutor;

  /// Shared by the constructor and reset(): (re)creates the protocol
  /// plane and zeroes all per-run mutable state, reusing capacity.
  void init_run_state();

  /// Worker shards this run executes on: config_.intra_run_threads
  /// clamped to n when the run is parallel-eligible (benign, sinkless),
  /// 1 otherwise.
  [[nodiscard]] std::uint32_t plan_run_shards() const noexcept;

  /// The pre-parallelism per-event loop; also the threads==1 path and
  /// the fallback whenever an adversary or sink demands exact serial
  /// interleaving.
  void run_serial_loop();

  /// Folds every subsystem into config_.digester at `step` (no-op when
  /// the cadence skips the step, unless `force`). Called at completed
  /// global-step boundaries only — both event loops guarantee no event
  /// of `step` is still pending — so serial and parallel runs digest
  /// the exact same states.
  void sample_digest(GlobalStep step, bool force = false);

  /// Resolved metric handles, re-resolved only when the configured
  /// registry changes (reset() normally carries the same one, so a
  /// warm engine publishes without touching the registry's name map).
  struct MetricHandles {
    obs::MetricsRegistry* registry = nullptr;
    obs::Counter runs;
    obs::Counter resets;
    obs::Counter truncated_runs;
    obs::Counter local_steps;
    obs::Counter emissions;
    obs::Counter deliveries;
    obs::Counter drops;
    obs::Counter omissions;
    obs::Counter crashes;
    obs::Counter arena_payloads;
    obs::Counter wheel_cascades;
    obs::Counter wheel_spill_refiles;
    obs::Gauge arena_bytes;
    obs::Gauge arena_capacity_bytes;
    obs::Gauge arena_slabs;
    obs::Gauge table_bytes;
    obs::Gauge table_bytes_per_process;
    obs::Gauge wheel_max_buckets;
    obs::Gauge wheel_max_spill;
    obs::Gauge wheel_max_horizon;
    obs::Counter parallel_batches;
    obs::Counter parallel_merge_ns;
    obs::Counter parallel_fallbacks;
    obs::Gauge parallel_threads;
    obs::Counter digest_samples;
    obs::Counter digest_records;
    obs::Counter digest_fold_ns;
  };

  /// Publishes this run's counters into config_.metrics (end of run()).
  void publish_metrics();

  void schedule_wake(ProcessId pid, GlobalStep at);
  void schedule_begin_direct(ProcessId pid, GlobalStep at);
  void handle_step_begin(const ScheduledEvent& ev);
  void handle_step_end(const ScheduledEvent& ev);
  void crash_process(ProcessId pid);
  void finalize(Outcome& outcome) const;

  /// Feeds one observation to the attached sink; no-op when detached.
  void emit(obs::EventType type, GlobalStep step, ProcessId a,
            ProcessId b = kNoProcess, std::uint64_t v0 = 0,
            std::uint64_t v1 = 0, std::uint64_t cause = 0) {
    if (config_.sink != nullptr) [[unlikely]]
      config_.sink->on_event(obs::TraceEvent{step, v0, v1, a, b, type, cause});
  }
  /// Emits kInfection the first time `pid` holds the gossip of process
  /// 0 (rumor-spreading progress; only evaluated with a sink attached).
  /// `cause` is the emission id whose delivery flipped the gossip bit
  /// this step (0 when infected at run start or by local state alone).
  void note_infection(ProcessId pid, GlobalStep step, std::uint64_t cause = 0);
  /// True iff process `pid` currently holds gossip 0 (word-parallel via
  /// gossip_bits when exposed, claims_all_gossip or virtual fallback
  /// otherwise).
  [[nodiscard]] bool holds_gossip0(ProcessId pid) const;

  EngineConfig config_;
  const ProtocolFactory& factory_;
  Adversary* adversary_;

  ProcessTable table_;
  InboxPool inboxes_;
  OutgoingPool outgoing_;
  std::unique_ptr<ProtocolPlane> plane_;
  PayloadArena arena_;
  /// Private arenas of worker shards 1..run_shards_-1 (shard 0 — the
  /// coordinator — allocates from arena_, so the serial engine is the
  /// one-shard degenerate case). Retained across resets like arena_;
  /// boxed because PayloadArena pins its slab bookkeeping in place.
  std::vector<std::unique_ptr<PayloadArena>> worker_arenas_;
  /// Lazily built on the first parallel run(); holds the worker pool
  /// and per-batch scratch, both kept warm across resets.
  std::unique_ptr<ParallelStepExecutor> parallel_;
  /// Shards planned for the current run cycle (1 = serial).
  std::uint32_t run_shards_ = 1;
  /// intra_run_threads > 1 was requested but the run demanded the
  /// serial path (adversary / sink attached).
  bool parallel_fallback_ = false;
  TimingWheel events_;
  std::uint64_t next_seq_ = 0;
  /// Emission ids handed out so far; pre-incremented once per emission
  /// attempt (accepted, omitted or dropped alike), so the id is 1-based
  /// and doubles as the inbox arrival tie-break — accepted messages
  /// still carry strictly increasing seqs in emission order.
  std::uint64_t next_msg_seq_ = 0;
  GlobalStep now_ = 0;
  std::uint32_t crashes_used_ = 0;
  bool ran_ = false;
  bool was_reset_ = false;  ///< this run cycle began with a reset()
  bool in_emission_hook_ = false;
  bool suppress_current_ = false;
  /// Emission id the adversary is currently reacting to (valid inside
  /// on_message_emitted); stamps causal attribution onto the decision
  /// events (crash / wipe / delay-change / step-time-change).
  std::uint64_t hook_cause_ = 0;

  /// Infection flags (reached_[p] == 1 once p held gossip 0); only
  /// maintained when a sink is attached.
  std::vector<char> reached_;
  std::uint32_t reached_count_ = 0;

  Outcome outcome_;
  MetricHandles metrics_;
  std::unique_ptr<ControlImpl> control_;
};

}  // namespace ugf::sim
