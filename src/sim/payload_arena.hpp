#pragma once

/// \file payload_arena.hpp
/// The per-run payload memory model: a slab (bump) allocator owning
/// every message payload of one engine run, and the trivially-copyable
/// `PayloadRef` handle processes pass around instead of a smart pointer.
///
/// Why not shared_ptr: delivery is the simulator's hottest path (UGF
/// Strategy 2.k.l parks ~10^6 far-future messages in flight), and an
/// atomic refcount per message hop is pure overhead when payloads are
/// immutable and all die together at the end of the run anyway. The
/// arena makes that lifetime explicit: `make<T>()` bump-allocates from
/// 64 KiB slabs, `reset()` runs the destructors and rewinds the slabs
/// *without freeing them*, so a reused engine (Engine::reset) pays zero
/// payload allocation cost in steady state.
///
/// Lifetime contract (see DESIGN.md, "Memory model"): a PayloadRef is
/// valid from its `make<T>()` until the owning arena's `reset()` or
/// destruction. Refs must never outlive the run that created them;
/// protocols get fresh instances per run, so caching a ref inside a
/// protocol member (the snapshot_ caches) is safe by construction.
///
/// Not thread-safe: one arena belongs to one engine, and one engine run
/// is single-threaded. Parallel Monte-Carlo runs use one engine (hence
/// one arena) per worker.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace ugf::sim {

class Payload;

/// Refcount-free handle to an arena-owned payload: the slab address
/// plus a cached copy of the payload's kind tag, so `payload_as<T>`
/// dispatch never touches the payload cache line on a kind mismatch.
/// Trivially copyable — copying a Message copies 16 bytes, no atomics.
class PayloadRef {
 public:
  constexpr PayloadRef() noexcept = default;

  [[nodiscard]] const Payload* get() const noexcept { return ptr_; }
  [[nodiscard]] std::uint32_t kind() const noexcept { return kind_; }
  [[nodiscard]] explicit operator bool() const noexcept {
    return ptr_ != nullptr;
  }
  /// Two refs are equal iff they name the same arena slot (payload
  /// identity, not content — fan-outs of one snapshot compare equal).
  friend bool operator==(PayloadRef a, PayloadRef b) noexcept {
    return a.ptr_ == b.ptr_;
  }
  friend bool operator!=(PayloadRef a, PayloadRef b) noexcept {
    return !(a == b);
  }

 private:
  friend class PayloadArena;
  PayloadRef(const Payload* ptr, std::uint32_t kind) noexcept
      : ptr_(ptr), kind_(kind) {}

  const Payload* ptr_ = nullptr;
  std::uint32_t kind_ = 0;
};

static_assert(std::is_trivially_copyable_v<PayloadRef>);

/// Slab allocator for the payloads of one run. Objects are constructed
/// in place with `make<T>()`, destroyed together by `reset()`; slab
/// memory is retained across resets so warm engines re-run without
/// touching the system allocator.
class PayloadArena {
 public:
  /// Slab granularity. Payloads are tens-to-hundreds of bytes, so one
  /// slab holds hundreds of them; a benign small-N run never leaves its
  /// first slab.
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  PayloadArena() = default;
  ~PayloadArena() { reset(); }

  PayloadArena(const PayloadArena&) = delete;
  PayloadArena& operator=(const PayloadArena&) = delete;

  /// Constructs a payload in the arena and returns its handle. T must
  /// derive from Payload and carry the usual `static constexpr
  /// std::uint32_t kKind` tag.
  template <typename T, typename... Args>
  PayloadRef make(Args&&... args) {
    static_assert(std::is_base_of_v<Payload, T>,
                  "arena payloads must derive from sim::Payload");
    void* slot = allocate(sizeof(T), alignof(T));
    const T* obj = ::new (slot) T(std::forward<Args>(args)...);
    live_.push_back(obj);
    ++total_payloads_;
    return PayloadRef(obj, T::kKind);
  }

  /// Destroys every payload and rewinds the slabs, keeping their
  /// memory. Every PayloadRef handed out so far becomes dangling.
  void reset() noexcept;

  // --- stats (regression tests + bench counters) -------------------------
  /// Payloads currently alive (since the last reset).
  [[nodiscard]] std::size_t live_payloads() const noexcept {
    return live_.size();
  }
  /// Payloads ever constructed, across resets. The fan-out regression
  /// test pins this: k sends of one snapshot move the counter by 1.
  [[nodiscard]] std::uint64_t total_payloads() const noexcept {
    return total_payloads_;
  }
  /// Bytes bump-allocated since the last reset (object storage only).
  [[nodiscard]] std::size_t bytes_in_use() const noexcept {
    return bytes_in_use_;
  }
  /// Slabs owned (retained across resets).
  [[nodiscard]] std::size_t slab_count() const noexcept {
    return slabs_.size();
  }
  /// Total slab capacity in bytes (retained across resets).
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return capacity_bytes_;
  }

 private:
  struct Slab {
    std::unique_ptr<std::byte[]> mem;
    std::size_t size = 0;
  };

  /// Bump-allocates `size` bytes at `align` from the active slab,
  /// advancing to a retained or fresh slab on overflow.
  void* allocate(std::size_t size, std::size_t align);

  std::vector<Slab> slabs_;
  std::size_t active_ = 0;  ///< slab currently bump-allocating
  std::size_t offset_ = 0;  ///< bump position inside slabs_[active_]
  std::size_t bytes_in_use_ = 0;
  std::size_t capacity_bytes_ = 0;
  std::uint64_t total_payloads_ = 0;
  /// Construction order; reset() destroys in reverse.
  std::vector<const Payload*> live_;
};

}  // namespace ugf::sim
