#pragma once

/// \file instrumentation.hpp
/// Measurement wrappers around the Protocol and Adversary interfaces.
/// They observe without interfering, which makes them suitable both for
/// the test suite (the executable indistinguishability lemmas) and for
/// analysis tooling (infection curves, traffic traces). Note that the
/// delivery recorder reads Message::sent_at / arrives_at — global-clock
/// facts a real protocol never sees; instrumentation lives outside the
/// partial-synchrony rules by design.

#include <memory>
#include <vector>

#include "sim/adversary_iface.hpp"
#include "sim/protocol.hpp"

namespace ugf::sim {

/// One observed emission.
struct SendRecord {
  GlobalStep step = 0;
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  auto operator<=>(const SendRecord&) const = default;
};

/// Wraps an adversary (possibly nullptr) and records every emission the
/// engine reports, in engine order.
class TracingAdversary final : public Adversary {
 public:
  explicit TracingAdversary(Adversary* inner = nullptr) noexcept
      : inner_(inner) {}

  [[nodiscard]] const char* name() const noexcept override {
    return inner_ != nullptr ? inner_->name() : "trace";
  }
  [[nodiscard]] std::string strategy_descriptor() const override {
    return inner_ != nullptr ? inner_->strategy_descriptor() : "trace";
  }
  void on_run_start(AdversaryControl& ctl) override {
    if (inner_ != nullptr) inner_->on_run_start(ctl);
  }
  void on_message_emitted(AdversaryControl& ctl,
                          const SendEvent& event) override {
    records_.push_back(SendRecord{event.step, event.from, event.to});
    if (inner_ != nullptr) inner_->on_message_emitted(ctl, event);
  }
  void on_timer(AdversaryControl& ctl, GlobalStep step) override {
    if (inner_ != nullptr) inner_->on_timer(ctl, step);
  }

  [[nodiscard]] const std::vector<SendRecord>& records() const noexcept {
    return records_;
  }

 private:
  Adversary* inner_;
  std::vector<SendRecord> records_;
};

/// One observed delivery.
struct DeliveryRecord {
  ProcessId to = kNoProcess;
  ProcessId from = kNoProcess;
  GlobalStep sent_at = 0;
  GlobalStep arrives_at = 0;
  auto operator<=>(const DeliveryRecord&) const = default;
};

/// Wraps a protocol instance; forwards everything, logging deliveries.
class DeliveryRecordingProtocol final : public Protocol {
 public:
  DeliveryRecordingProtocol(std::unique_ptr<Protocol> inner, ProcessId self,
                            std::vector<DeliveryRecord>* log)
      : inner_(std::move(inner)), self_(self), log_(log) {}

  void on_message(ProcessContext& ctx, const Message& msg) override {
    if (log_ != nullptr)
      log_->push_back(
          DeliveryRecord{self_, msg.from, msg.sent_at, msg.arrives_at});
    inner_->on_message(ctx, msg);
  }
  void on_local_step(ProcessContext& ctx) override {
    inner_->on_local_step(ctx);
  }
  [[nodiscard]] bool wants_sleep() const noexcept override {
    return inner_->wants_sleep();
  }
  [[nodiscard]] bool completed() const noexcept override {
    return inner_->completed();
  }
  [[nodiscard]] bool has_gossip_of(ProcessId p) const noexcept override {
    return inner_->has_gossip_of(p);
  }

  /// The wrapped instance (white-box inspection in tests).
  [[nodiscard]] const Protocol& inner() const noexcept { return *inner_; }

 private:
  std::unique_ptr<Protocol> inner_;
  ProcessId self_;
  std::vector<DeliveryRecord>* log_;
};

/// Factory wrapper matching DeliveryRecordingProtocol. The shared log is
/// safe because one engine run is single-threaded.
class DeliveryRecordingFactory final : public ProtocolFactory {
 public:
  DeliveryRecordingFactory(const ProtocolFactory& inner,
                           std::vector<DeliveryRecord>* log) noexcept
      : inner_(inner), log_(log) {}

  [[nodiscard]] const char* name() const noexcept override {
    return inner_.name();
  }
  [[nodiscard]] std::unique_ptr<Protocol> create(
      ProcessId self, const SystemInfo& info) const override {
    return std::make_unique<DeliveryRecordingProtocol>(
        inner_.create(self, info), self, log_);
  }

 private:
  const ProtocolFactory& inner_;
  std::vector<DeliveryRecord>* log_;
};

}  // namespace ugf::sim
