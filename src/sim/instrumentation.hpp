#pragma once

/// \file instrumentation.hpp
/// Measurement wrappers around the Protocol and Adversary interfaces,
/// expressed in the unified obs::TraceEvent vocabulary (obs/event.hpp)
/// so the engine's own sink, these wrappers, and every exporter share
/// one record type. They observe without interfering, which makes them
/// suitable both for the test suite (the executable indistinguishability
/// lemmas) and for analysis tooling (infection curves, traffic traces).
/// Note that the delivery recorder reads Message::sent_at / arrives_at —
/// global-clock facts a real protocol never sees; instrumentation lives
/// outside the partial-synchrony rules by design.
///
/// Prefer EngineConfig::sink for new code: it sees the full event stream
/// (crashes, infections, step boundaries). These wrappers exist for
/// call sites that can only interpose on the protocol/adversary side,
/// and for tests that want exactly the emission or delivery sub-stream.

#include <memory>
#include <vector>

#include "obs/event.hpp"
#include "sim/adversary_iface.hpp"
#include "sim/protocol.hpp"
#include "util/check.hpp"

namespace ugf::sim {

/// Wraps an adversary (possibly nullptr) and records every emission the
/// engine reports, in engine order, as obs::EventType::kEmission events
/// (step = emission step, a = sender, b = receiver, v0 = sender's send
/// count including this one; v1 stays 0 — the hook cannot see d_rho).
class TracingAdversary final : public Adversary {
 public:
  explicit TracingAdversary(Adversary* inner = nullptr) noexcept
      : inner_(inner) {}

  [[nodiscard]] const char* name() const noexcept override {
    return inner_ != nullptr ? inner_->name() : "trace";
  }
  [[nodiscard]] std::string strategy_descriptor() const override {
    return inner_ != nullptr ? inner_->strategy_descriptor() : "trace";
  }
  void on_run_start(AdversaryControl& ctl) override {
    if (inner_ != nullptr) inner_->on_run_start(ctl);
  }
  void on_message_emitted(AdversaryControl& ctl,
                          const SendEvent& event) override {
    recorder_.on_event(obs::TraceEvent{event.step, event.sender_total, 0,
                                       event.from, event.to,
                                       obs::EventType::kEmission});
    if (inner_ != nullptr) inner_->on_message_emitted(ctl, event);
  }
  void on_timer(AdversaryControl& ctl, GlobalStep step) override {
    if (inner_ != nullptr) inner_->on_timer(ctl, step);
  }

  /// Observed emissions in engine order (never ring-clipped).
  [[nodiscard]] const std::vector<obs::TraceEvent>& records() const noexcept {
    return recorder_.raw();
  }

 private:
  Adversary* inner_;
  obs::EventRecorder recorder_;
};

/// Wraps a protocol instance; forwards everything, logging one
/// obs::EventType::kDelivery event per delivered message (step =
/// arrival step, a = receiver, b = sender, v0 = sent_at, v1 =
/// arrives_at — the actual delivery step may be later if the receiver
/// was mid-step or asleep; the engine-side sink records that one).
class DeliveryRecordingProtocol final : public Protocol {
 public:
  DeliveryRecordingProtocol(std::unique_ptr<Protocol> inner, ProcessId self,
                            obs::EventSink* log)
      : inner_(std::move(inner)), self_(self), log_(log) {}

  void on_message(ProcessContext& ctx, const Message& msg) override {
    if (log_ != nullptr)
      log_->on_event(obs::TraceEvent{msg.arrives_at, msg.sent_at,
                                     msg.arrives_at, self_, msg.from,
                                     obs::EventType::kDelivery});
    inner_->on_message(ctx, msg);
  }
  void on_local_step(ProcessContext& ctx) override {
    inner_->on_local_step(ctx);
  }
  [[nodiscard]] bool wants_sleep() const noexcept override {
    return inner_->wants_sleep();
  }
  [[nodiscard]] bool completed() const noexcept override {
    return inner_->completed();
  }
  [[nodiscard]] bool has_gossip_of(ProcessId p) const noexcept override {
    return inner_->has_gossip_of(p);
  }

  /// The wrapped instance (white-box inspection in tests).
  [[nodiscard]] const Protocol& inner() const noexcept { return *inner_; }

 private:
  std::unique_ptr<Protocol> inner_;
  ProcessId self_;
  obs::EventSink* log_;
};

/// Factory wrapper matching DeliveryRecordingProtocol. The shared log is
/// safe because one engine run is single-threaded.
///
/// Lifetime contract: `inner` and `log` are borrowed, not owned. Both
/// must outlive this factory *and* every Engine constructed from it
/// (protocol instances keep using `log` for the whole run). The inner
/// factory is held by pointer precisely so this borrow is explicit —
/// a temporary passed here is a bug, and create() asserts the pointer
/// is still the one bound at construction.
class DeliveryRecordingFactory final : public ProtocolFactory {
 public:
  DeliveryRecordingFactory(const ProtocolFactory& inner,
                           obs::EventSink* log) noexcept
      : inner_(&inner), log_(log) {}

  [[nodiscard]] const char* name() const noexcept override {
    UGF_ASSERT(inner_ != nullptr);
    return inner_->name();
  }
  [[nodiscard]] std::unique_ptr<Protocol> create(
      ProcessId self, const SystemInfo& info) const override {
    UGF_ASSERT(inner_ != nullptr);
    return std::make_unique<DeliveryRecordingProtocol>(
        inner_->create(self, info), self, log_);
  }

 private:
  const ProtocolFactory* inner_;
  obs::EventSink* log_;
};

}  // namespace ugf::sim
