#pragma once

/// \file parallel_executor.hpp
/// Deterministic intra-run parallelism: partitioned step execution
/// with a bit-for-bit seq-ordered merge (ROADMAP item 2).
///
/// The engine's exact (step, seq) ordering makes one global step a
/// natural parallel unit: with no adversary and no event sink, the
/// process-local work of every event due at step s — inbox pop_due
/// drain, the protocol calls, fan-out generation into the
/// OutgoingPool — commutes across processes, because nothing a
/// process does at step s can be observed by another process before
/// step s+1 (delivery times are >= 1) and no synchronous hook can
/// mutate foreign state mid-step. The executor exploits exactly that
/// window and nothing more:
///
///   * the coordinator pops one *wave* — every event scheduled at the
///     current step — off the TimingWheel in seq order and filters
///     stale tokens, exactly like the serial loop;
///   * StepBegins run on util::ThreadPool workers, one worker per
///     contiguous pid shard (ShardMap — SoA columns and the pooled
///     queues are sharded along the same map, so every structural
///     mutation has exactly one writing thread); the coordinator then
///     pushes the resulting StepEnds onto the wheel *in wave order*,
///     reproducing the serial push sequence event for event;
///   * StepEnds run in three stages: (a) workers drain their shard's
///     outgoing queues into a shared emission buffer whose slots are
///     pre-reserved by prefix sums over the wave — emission ids (the
///     inbox tie-break the serial engine assigns with ++next_msg_seq_)
///     become a pure function of the wave, not of thread timing; (b)
///     workers apply inbox pushes for their *destination* shard by
///     scanning that buffer in global id order; (c) the coordinator
///     replays the wake/sleep decisions of every ending process in
///     wave order against pre-push inbox snapshots, issuing the exact
///     wheel pushes the serial engine would have issued, in the same
///     order.
///
/// Determinism argument, in one line per hazard: emission ids —
/// prefix-sum reservation; wheel push order — coordinator-only pushes
/// in wave order; pooled-queue structure — one writer per shard;
/// payload addresses — per-shard arenas (addresses differ from the
/// serial run, but payloads are opaque values, never compared by
/// address); RNG streams — per-process, untouched. What is *not*
/// reproduced: absolute wheel seq numbers (only relative order is
/// observable) and mid-wave truncation (max_events lands on a wave
/// boundary here; runs sized to truncate exactly mid-wave may differ —
/// the determinism tests pin this edge to the serial path).
///
/// Runs with an adversary (synchronous on_message_emitted can crash a
/// receiver between two emissions of one fan-out) or an event sink
/// (ugf-trace-v1 byte-identity requires the serial interleaving) never
/// reach this executor: Engine::run() falls back to the serial loop,
/// so the nine golden outcome rows and the trace goldens are untouched
/// by construction, and additionally verified by the thread-matrix
/// determinism tests.

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/message.hpp"
#include "sim/process_table.hpp"
#include "sim/timing_wheel.hpp"
#include "sim/types.hpp"
#include "util/thread_pool.hpp"

namespace ugf::sim {

class Engine;

/// Partitioned event loop over an Engine's run state; one instance per
/// engine, reused (warm pool + scratch) across reset cycles.
class ParallelStepExecutor {
 public:
  explicit ParallelStepExecutor(Engine& engine) noexcept : engine_(engine) {}

  ParallelStepExecutor(const ParallelStepExecutor&) = delete;
  ParallelStepExecutor& operator=(const ParallelStepExecutor&) = delete;

  /// Executes the engine's whole event loop on `shards` >= 2 workers
  /// (the coordinator doubles as shard 0's worker). Precondition: the
  /// engine's pools were reset with the same shard count, no adversary,
  /// no sink. Mutates the engine's run state exactly as
  /// Engine::run_serial_loop would.
  void run_loop(std::uint32_t shards);

  /// Cumulative executor telemetry (published as engine.parallel.*).
  struct Stats {
    std::uint64_t batches = 0;   ///< waves executed in parallel
    std::uint64_t merge_ns = 0;  ///< coordinator time in seq-ordered merges
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = Stats{}; }

 private:
  class WorkerContext;

  /// One drained outgoing entry, parked between the source-shard drain
  /// (stage a) and the destination-shard inbox apply (stage b). Slot
  /// index == emission id - id0 - 1, so the buffer is id-sorted by
  /// construction.
  struct Emission {
    PayloadRef payload;
    GlobalStep arrival = 0;
    std::uint64_t d = 0;
    ProcessId from = kNoProcess;
    ProcessId to = kNoProcess;
  };

  void run_wave(GlobalStep s);
  void run_begin_phase(GlobalStep s);
  void run_end_phase(GlobalStep s);

  Engine& engine_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< shards-1 workers
  ShardMap map_;
  /// Chunk boundaries {0, 1, ..., shards}: phases dispatch one chunk
  /// per shard through ThreadPool::parallel_for's static-partition
  /// overload (chunk index == shard index).
  std::vector<std::size_t> shard_bounds_;

  // Per-wave scratch, grown once and reused.
  std::vector<ScheduledEvent> wave_;
  std::vector<ProcessId> begins_;  ///< valid StepBegins, wave order
  std::vector<ProcessId> ends_;    ///< valid StepEnds, wave order
  std::vector<std::uint64_t> emit_ofs_;  ///< per-end emission prefix sums
  std::vector<Emission> emissions_;      ///< id-ordered wave emissions
  std::vector<std::uint8_t> sleeps_;     ///< per-end wants_sleep verdict
  std::vector<GlobalStep> pre_push_earliest_;  ///< per-end inbox snapshot
  std::vector<std::uint64_t> delivered_;       ///< per-shard delivery count
  /// Running min arrival pushed to each destination within the current
  /// wave (stage c), versioned by wave_epoch_ so no O(n) clear per wave.
  std::vector<GlobalStep> wave_min_arrival_;
  std::vector<std::uint64_t> wave_epoch_mark_;
  std::uint64_t wave_epoch_ = 0;

  Stats stats_;
};

}  // namespace ugf::sim
