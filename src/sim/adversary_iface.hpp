#pragma once

/// \file adversary_iface.hpp
/// The adaptive-adversary abstraction (Def II.5). An adversary observes
/// the dissemination online and may (a) crash up to F processes and
/// (b) rewrite per-process delivery times d_rho and local-step times
/// delta_rho. The engine exposes exactly that power — no more — through
/// `AdversaryControl`, and notifies the adversary of the observable
/// events it needs:
///
///  * `on_run_start`        — before global step 0 (UGF samples its
///                            strategy and applies initial crashes/delays
///                            here);
///  * `on_message_emitted`  — synchronously when a process emits a
///                            message, *before* the network accepts it.
///                            Crashing the receiver inside this hook
///                            drops the message (it still counts as sent
///                            by the emitter), which is exactly the
///                            "crash the receiver at the global step t at
///                            which rho-hat sends" move of Strategy 2.k.0;
///  * `on_timer`            — fired at steps previously requested via
///                            `AdversaryControl::request_timer` (used by
///                            time-triggered adversaries such as the
///                            oblivious baseline).

#include <cstdint>
#include <string>

#include "sim/types.hpp"

namespace ugf::sim {

/// A send observation passed to the adversary.
struct SendEvent {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  GlobalStep step = 0;               ///< emission step
  std::uint64_t sender_total = 0;    ///< messages sent by `from` so far (incl.)
};

/// The mutation/observation surface the engine hands to adversaries.
class AdversaryControl {
 public:
  virtual ~AdversaryControl() = default;

  // --- observation -------------------------------------------------------
  [[nodiscard]] virtual std::uint32_t num_processes() const noexcept = 0;
  [[nodiscard]] virtual std::uint32_t crash_budget() const noexcept = 0;
  [[nodiscard]] virtual std::uint32_t crashes_used() const noexcept = 0;
  [[nodiscard]] virtual bool is_crashed(ProcessId p) const noexcept = 0;
  [[nodiscard]] virtual bool is_asleep(ProcessId p) const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t messages_sent_by(
      ProcessId p) const noexcept = 0;
  [[nodiscard]] virtual GlobalStep now() const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t delivery_time(
      ProcessId p) const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t local_step_time(
      ProcessId p) const noexcept = 0;

  // --- mutation -----------------------------------------------------------
  /// Crashes `p`. Returns false (and does nothing) if `p` is already
  /// crashed or the crash budget F is exhausted.
  virtual bool crash(ProcessId p) = 0;

  /// Sets the delivery time d_p (>= 1) for messages *sent by* p from now on.
  virtual void set_delivery_time(ProcessId p, std::uint64_t d) = 0;

  /// Sets the local-step duration delta_p (>= 1) for p's future steps.
  virtual void set_local_step_time(ProcessId p, std::uint64_t delta) = 0;

  /// Requests an `on_timer` callback at global step `step` (>= now).
  virtual void request_timer(GlobalStep step) = 0;

  /// Omission power (extension, §VII of the paper / Kowalski &
  /// Strojnowski): only valid inside `on_message_emitted` — the message
  /// currently being emitted is lost instead of accepted by the network.
  /// It still counts toward the sender's message complexity (the send
  /// happened); the sender is not notified. Throws std::logic_error when
  /// called outside an emission hook.
  virtual void suppress_message() = 0;
};

/// Base class for all adversaries. The default implementation is the
/// benign "no adversary" behaviour; concrete adversaries override the
/// hooks they need.
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Human-readable name (for reports).
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Description of the concrete strategy applied in the current run
  /// (meaningful after on_run_start). Randomized adversaries such as UGF
  /// report the strategy they drew, e.g. "strategy-2.1.1".
  [[nodiscard]] virtual std::string strategy_descriptor() const {
    return name();
  }

  /// Called once before the first global step.
  virtual void on_run_start(AdversaryControl& ctl) { (void)ctl; }

  /// Called for every message emission, before network acceptance.
  virtual void on_message_emitted(AdversaryControl& ctl,
                                  const SendEvent& event) {
    (void)ctl;
    (void)event;
  }

  /// Called at steps requested via request_timer.
  virtual void on_timer(AdversaryControl& ctl, GlobalStep step) {
    (void)ctl;
    (void)step;
  }
};

}  // namespace ugf::sim
