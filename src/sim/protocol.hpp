#pragma once

/// \file protocol.hpp
/// The all-to-all gossip protocol interface (§II-B).
///
/// Execution model realised by the engine (matching §II-A exactly):
/// a local step of process `rho` spans `[s, s + delta_rho)`. At the
/// start of the step every message with arrival <= s is delivered via
/// `on_message`; then `on_local_step` runs the protocol logic; messages
/// queued with `ProcessContext::send` are emitted at the *end* of the
/// step (s + delta_rho) and arrive d_rho steps later. After the step the
/// engine queries `wants_sleep` — a sleeping process (Def IV.2) executes
/// no further steps until a message arrives for it.
///
/// Protocols never see the global clock, delta or d (partial synchrony);
/// the only facts available are SystemInfo (N and the crash bound F) and
/// whatever arrives in messages.

#include <memory>
#include <utility>

#include "sim/message.hpp"
#include "sim/payload_arena.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace ugf::util {
class DynamicBitset;
}

namespace ugf::sim {

/// Per-step services the engine offers to the protocol code of one
/// process. Only valid during the `on_message` / `on_local_step` calls
/// it is passed to.
class ProcessContext {
 public:
  virtual ~ProcessContext() = default;

  /// This process's own id.
  [[nodiscard]] virtual ProcessId self() const noexcept = 0;

  /// Static system facts (N, F).
  [[nodiscard]] virtual const SystemInfo& system() const noexcept = 0;

  /// This process's private random stream (deterministic per run seed).
  [[nodiscard]] virtual util::Rng& rng() noexcept = 0;

  /// The run's payload arena. Payloads made here live until the end of
  /// the run (PayloadArena::reset); prefer `make_payload`.
  [[nodiscard]] virtual PayloadArena& arena() noexcept = 0;

  /// Queues a message to `to`; it is emitted at the end of the current
  /// local step. Each call is one message for complexity accounting.
  /// Self-sends are rejected (all-to-all protocols never need them).
  /// The ref may be reused across sends — a k-way fan-out of one
  /// snapshot is k sends of the same (single-allocation) payload.
  virtual void send(ProcessId to, PayloadRef payload) = 0;

  /// Number of messages queued so far in this step (diagnostics).
  [[nodiscard]] virtual std::size_t queued_sends() const noexcept = 0;

  /// Constructs a payload in the run's arena; the returned ref is valid
  /// for the rest of the run (and may be cached by the protocol, which
  /// itself dies with the run).
  template <typename T, typename... Args>
  PayloadRef make_payload(Args&&... args) {
    return arena().make<T>(std::forward<Args>(args)...);
  }
};

/// State machine of one process executing an all-to-all gossip protocol.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Delivery of one message, invoked at the start of a local step for
  /// every message whose arrival step has passed (in arrival order).
  virtual void on_message(ProcessContext& ctx, const Message& msg) = 0;

  /// One local step's worth of protocol logic; called after deliveries.
  virtual void on_local_step(ProcessContext& ctx) = 0;

  /// Queried after each local step. Returning true puts the process to
  /// sleep; a later message arrival wakes it (a fresh local step starts
  /// at the arrival step). `completed()` processes must also sleep.
  [[nodiscard]] virtual bool wants_sleep() const noexcept = 0;

  /// True once the process has decided it will stop sending forever
  /// (quiescence, Def II.2) unless new information arrives.
  [[nodiscard]] virtual bool completed() const noexcept = 0;

  /// Verification hook: does this process currently hold the gossip that
  /// originated at `origin`? Used by the engine to validate rumor
  /// gathering (Def II.1); not visible to adversaries or other processes.
  [[nodiscard]] virtual bool has_gossip_of(ProcessId origin) const noexcept = 0;

  /// Optional fast path over `has_gossip_of`: a bitset view with bit p
  /// set iff this process holds the gossip of p, or nullptr (the
  /// default) when the protocol keeps no such bitset. When non-null it
  /// must agree with `has_gossip_of` for every origin — the engine then
  /// verifies rumor gathering with word-parallel containment checks
  /// instead of n virtual calls per process. The view must stay valid
  /// until the next protocol callback.
  [[nodiscard]] virtual const util::DynamicBitset* gossip_bits()
      const noexcept {
    return nullptr;
  }
};

/// Creates the per-process protocol instances of one run.
class ProtocolFactory {
 public:
  virtual ~ProtocolFactory() = default;

  /// Human-readable protocol name (for reports).
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Instantiates the state machine of process `self`.
  [[nodiscard]] virtual std::unique_ptr<Protocol> create(
      ProcessId self, const SystemInfo& info) const = 0;
};

}  // namespace ugf::sim
