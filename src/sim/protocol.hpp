#pragma once

/// \file protocol.hpp
/// The all-to-all gossip protocol interface (§II-B).
///
/// Execution model realised by the engine (matching §II-A exactly):
/// a local step of process `rho` spans `[s, s + delta_rho)`. At the
/// start of the step every message with arrival <= s is delivered via
/// `on_message`; then `on_local_step` runs the protocol logic; messages
/// queued with `ProcessContext::send` are emitted at the *end* of the
/// step (s + delta_rho) and arrive d_rho steps later. After the step the
/// engine queries `wants_sleep` — a sleeping process (Def IV.2) executes
/// no further steps until a message arrives for it.
///
/// Protocols never see the global clock, delta or d (partial synchrony);
/// the only facts available are SystemInfo (N and the crash bound F) and
/// whatever arrives in messages.

#include <concepts>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/message.hpp"
#include "sim/payload_arena.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace ugf::util {
class DynamicBitset;
}

namespace ugf::sim {

/// Per-step services the engine offers to the protocol code of one
/// process. Only valid during the `on_message` / `on_local_step` calls
/// it is passed to.
class ProcessContext {
 public:
  virtual ~ProcessContext() = default;

  /// This process's own id.
  [[nodiscard]] virtual ProcessId self() const noexcept = 0;

  /// Static system facts (N, F).
  [[nodiscard]] virtual const SystemInfo& system() const noexcept = 0;

  /// This process's private random stream (deterministic per run seed).
  [[nodiscard]] virtual util::Rng& rng() noexcept = 0;

  /// The run's payload arena. Payloads made here live until the end of
  /// the run (PayloadArena::reset); prefer `make_payload`.
  [[nodiscard]] virtual PayloadArena& arena() noexcept = 0;

  /// Queues a message to `to`; it is emitted at the end of the current
  /// local step. Each call is one message for complexity accounting.
  /// Self-sends are rejected (all-to-all protocols never need them).
  /// The ref may be reused across sends — a k-way fan-out of one
  /// snapshot is k sends of the same (single-allocation) payload.
  virtual void send(ProcessId to, PayloadRef payload) = 0;

  /// Number of messages queued so far in this step (diagnostics).
  [[nodiscard]] virtual std::size_t queued_sends() const noexcept = 0;

  /// Constructs a payload in the run's arena; the returned ref is valid
  /// for the rest of the run (and may be cached by the protocol, which
  /// itself dies with the run).
  template <typename T, typename... Args>
  PayloadRef make_payload(Args&&... args) {
    return arena().make<T>(std::forward<Args>(args)...);
  }
};

/// State machine of one process executing an all-to-all gossip protocol.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Delivery of one message, invoked at the start of a local step for
  /// every message whose arrival step has passed (in arrival order).
  virtual void on_message(ProcessContext& ctx, const Message& msg) = 0;

  /// One local step's worth of protocol logic; called after deliveries.
  virtual void on_local_step(ProcessContext& ctx) = 0;

  /// Queried after each local step. Returning true puts the process to
  /// sleep; a later message arrival wakes it (a fresh local step starts
  /// at the arrival step). `completed()` processes must also sleep.
  [[nodiscard]] virtual bool wants_sleep() const noexcept = 0;

  /// True once the process has decided it will stop sending forever
  /// (quiescence, Def II.2) unless new information arrives.
  [[nodiscard]] virtual bool completed() const noexcept = 0;

  /// Verification hook: does this process currently hold the gossip that
  /// originated at `origin`? Used by the engine to validate rumor
  /// gathering (Def II.1); not visible to adversaries or other processes.
  [[nodiscard]] virtual bool has_gossip_of(ProcessId origin) const noexcept = 0;

  /// Optional fast path over `has_gossip_of`: a bitset view with bit p
  /// set iff this process holds the gossip of p, or nullptr (the
  /// default) when the protocol keeps no such bitset. When non-null it
  /// must agree with `has_gossip_of` for every origin — the engine then
  /// verifies rumor gathering with word-parallel containment checks
  /// instead of n virtual calls per process. The view must stay valid
  /// until the next protocol callback.
  [[nodiscard]] virtual const util::DynamicBitset* gossip_bits()
      const noexcept {
    return nullptr;
  }

  /// Folds this process's protocol state into the 64-bit digest `h`
  /// (state-digest observability; see docs/OBSERVABILITY.md). Contract:
  /// mix every field whose value is a deterministic function of the run
  /// (config, factory, adversary) via util::mix_seed, in a fixed member
  /// order; never mix addresses, PayloadRefs, or anything that varies
  /// with engine thread count. The default folds nothing, which makes
  /// the plane digest degenerate-but-stable for external protocols.
  virtual void digest_into(std::uint64_t& /*h*/) const noexcept {}
};

/// The protocol state of one whole run, indexed by ProcessId. The
/// engine owns exactly one plane per run cycle (no per-process heap
/// objects on the hot path); the acting process of `on_message` /
/// `on_local_step` is `ctx.self()`. Planes are created fresh by
/// `ProtocolFactory::create_plane` at every Engine construction /
/// reset(), so — like per-process Protocol instances before them —
/// they may cache arena PayloadRefs without ever dangling.
class ProtocolPlane {
 public:
  virtual ~ProtocolPlane() = default;

  /// Delivery of one message to process `ctx.self()` (== msg.to).
  virtual void on_message(ProcessContext& ctx, const Message& msg) = 0;

  /// One local step of process `ctx.self()`, after its deliveries.
  virtual void on_local_step(ProcessContext& ctx) = 0;

  /// Per-process queries; see Protocol for the contracts.
  [[nodiscard]] virtual bool wants_sleep(ProcessId p) const noexcept = 0;
  [[nodiscard]] virtual bool completed(ProcessId p) const noexcept = 0;
  [[nodiscard]] virtual bool has_gossip_of(ProcessId p,
                                           ProcessId origin) const noexcept = 0;

  /// Optional word-parallel gossip view of process `p` (see
  /// Protocol::gossip_bits); nullptr when not kept.
  [[nodiscard]] virtual const util::DynamicBitset* gossip_bits(
      ProcessId /*p*/) const noexcept {
    return nullptr;
  }

  /// True when process `p` asserts it holds the gossip of *every*
  /// process. Lets the engine verify rumor gathering in O(1) per
  /// process for summary/counting protocols that keep no per-origin
  /// bits — without this the fallback costs n virtual calls per
  /// process, which is O(N^2) at the million-process scale.
  [[nodiscard]] virtual bool claims_all_gossip(ProcessId /*p*/) const noexcept {
    return false;
  }

  /// Approximate resident bytes of the whole plane's protocol state
  /// (for the engine's bytes-per-process gauge); 0 = unknown.
  [[nodiscard]] virtual std::size_t state_bytes() const noexcept { return 0; }

  /// Folds process `p`'s protocol state into the digest `h` (same
  /// contract as Protocol::digest_into). Sibling of state_bytes() in
  /// the plane observability contract; the default folds nothing.
  virtual void digest_into(ProcessId /*p*/,
                           std::uint64_t& /*h*/) const noexcept {}
};

/// Adapter plane over one heap-allocated Protocol per process — the
/// compatibility path for external factories that only implement
/// `create()` (instrumentation wrappers, test doubles, examples).
class PerProcessPlane final : public ProtocolPlane {
 public:
  explicit PerProcessPlane(std::vector<std::unique_ptr<Protocol>> procs)
      : procs_(std::move(procs)) {}

  void on_message(ProcessContext& ctx, const Message& msg) override {
    procs_[ctx.self()]->on_message(ctx, msg);
  }
  void on_local_step(ProcessContext& ctx) override {
    procs_[ctx.self()]->on_local_step(ctx);
  }
  [[nodiscard]] bool wants_sleep(ProcessId p) const noexcept override {
    return procs_[p]->wants_sleep();
  }
  [[nodiscard]] bool completed(ProcessId p) const noexcept override {
    return procs_[p]->completed();
  }
  [[nodiscard]] bool has_gossip_of(ProcessId p,
                                   ProcessId origin) const noexcept override {
    return procs_[p]->has_gossip_of(origin);
  }
  [[nodiscard]] const util::DynamicBitset* gossip_bits(
      ProcessId p) const noexcept override {
    return procs_[p]->gossip_bits();
  }
  void digest_into(ProcessId p, std::uint64_t& h) const noexcept override {
    procs_[p]->digest_into(h);
  }

  /// The wrapped instance (white-box tests / instrumentation).
  [[nodiscard]] Protocol& process(ProcessId p) noexcept { return *procs_[p]; }

 private:
  std::vector<std::unique_ptr<Protocol>> procs_;
};

/// Native plane of the bundled protocols: the per-process state
/// machines live by value in one contiguous vector — no per-process
/// heap object, no virtual dispatch on the hot path (P is final, so
/// the calls below devirtualize). Construction order is ProcessId
/// order, exactly matching the old one-create()-per-process path.
template <typename P>
class VectorPlane final : public ProtocolPlane {
 public:
  template <typename MakeFn>
  VectorPlane(std::uint32_t n, MakeFn make) {
    procs_.reserve(n);
    for (ProcessId p = 0; p < n; ++p) procs_.push_back(make(p));
  }

  void on_message(ProcessContext& ctx, const Message& msg) override {
    procs_[ctx.self()].on_message(ctx, msg);
  }
  void on_local_step(ProcessContext& ctx) override {
    procs_[ctx.self()].on_local_step(ctx);
  }
  [[nodiscard]] bool wants_sleep(ProcessId p) const noexcept override {
    return procs_[p].wants_sleep();
  }
  [[nodiscard]] bool completed(ProcessId p) const noexcept override {
    return procs_[p].completed();
  }
  [[nodiscard]] bool has_gossip_of(ProcessId p,
                                   ProcessId origin) const noexcept override {
    return procs_[p].has_gossip_of(origin);
  }
  [[nodiscard]] const util::DynamicBitset* gossip_bits(
      ProcessId p) const noexcept override {
    return procs_[p].gossip_bits();
  }
  [[nodiscard]] bool claims_all_gossip(ProcessId p) const noexcept override {
    if constexpr (requires(const P& q) {
                    { q.claims_all_gossip() } -> std::convertible_to<bool>;
                  }) {
      return procs_[p].claims_all_gossip();
    } else {
      (void)p;
      return false;
    }
  }
  [[nodiscard]] std::size_t state_bytes() const noexcept override {
    return procs_.capacity() * sizeof(P);
  }
  void digest_into(ProcessId p, std::uint64_t& h) const noexcept override {
    procs_[p].digest_into(h);
  }

  /// The embedded instance (white-box tests).
  [[nodiscard]] P& process(ProcessId p) noexcept { return procs_[p]; }
  [[nodiscard]] const P& process(ProcessId p) const noexcept {
    return procs_[p];
  }

 private:
  std::vector<P> procs_;
};

/// Creates the per-process protocol instances of one run.
class ProtocolFactory {
 public:
  virtual ~ProtocolFactory() = default;

  /// Human-readable protocol name (for reports).
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Instantiates the state machine of process `self`. Still the
  /// canonical definition of the protocol logic: white-box tests and
  /// wrapper factories compose per-process instances, and the default
  /// `create_plane` below is built from it.
  [[nodiscard]] virtual std::unique_ptr<Protocol> create(
      ProcessId self, const SystemInfo& info) const = 0;

  /// Builds the whole run's protocol state plane. The default adapts
  /// `create()` via PerProcessPlane; the bundled factories override it
  /// with a contiguous VectorPlane of their process type.
  [[nodiscard]] virtual std::unique_ptr<ProtocolPlane> create_plane(
      const SystemInfo& info) const;
};

inline std::unique_ptr<ProtocolPlane> ProtocolFactory::create_plane(
    const SystemInfo& info) const {
  std::vector<std::unique_ptr<Protocol>> procs;
  procs.reserve(info.n);
  for (ProcessId p = 0; p < info.n; ++p) {
    auto protocol = create(p, info);
    if (!protocol) throw std::runtime_error("ProtocolFactory returned null");
    procs.push_back(std::move(protocol));
  }
  return std::make_unique<PerProcessPlane>(std::move(procs));
}

}  // namespace ugf::sim
