#pragma once

/// \file timing_wheel.hpp
/// The engine's event scheduler: a hierarchical timing wheel.
///
/// The simulation schedules three kinds of events (step begins, step
/// ends, adversary timers) whose firing steps are overwhelmingly
/// *near-future* — a benign local step advances time by delta_rho = 1 —
/// but UGF's Strategy 2.k.l parks messages tau^(k+l) = F^2 global steps
/// ahead, which at production scale is millions of steps with ~10^6
/// events in flight. A binary heap pays O(log m) pointer-chasing
/// comparisons per push *and* pop on exactly that workload; the wheel
/// pays O(1) per event regardless of how far ahead it is parked.
///
/// Layout: `kLevels` arrays of `kBuckets` buckets each. Level k buckets
/// span 2^(10k) steps, so the wheel directly covers a 2^30-step horizon
/// past `base(2)`; anything farther lands in a far-future *spill list*
/// that is refiled (in order) whenever the level-2 window advances.
/// Buckets are plain vectors drained front-to-back; all storage —
/// bucket vectors and the spill list — is retained across `clear()`,
/// matching the engine's reset()-keeps-capacity contract.
///
/// Determinism. The engine requires pops in exact (step, seq) order,
/// `seq` being the global insertion counter. The wheel preserves it
/// structurally, with no comparisons at all:
///
///  * pushes happen in increasing `seq`, so every bucket (and the spill
///    list) is appended in seq order and stays seq-sorted;
///  * a level-k bucket's span equals the whole level-(k-1) window, and
///    its cascade runs exactly when that window advances to cover it —
///    while the lower level is completely empty. Distribution preserves
///    source order, so each target bucket starts seq-sorted, and every
///    later direct push carries a larger seq than anything cascaded;
///  * a level-0 bucket holds exactly one step, so draining it
///    front-to-back is (step, seq) order.
///
/// The same argument covers the spill list: it is only refiled while
/// level 2 is empty, in insertion order. `tests/test_timing_wheel.cpp`
/// replays random schedules through this wheel and a reference binary
/// heap and asserts identical pop sequences.
///
/// Time never flows backwards: `push` requires `ev.step` at or after
/// the step of the last popped event (the engine's event-monotonicity
/// invariant), which is what lets drained buckets be reused for later
/// laps without lap counting.

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace ugf::sim {

/// One scheduled engine event. `step`/`seq` are the scheduling key; the
/// remaining fields are the engine's payload (event kind, subject
/// process, validity token) and are opaque to the wheel.
struct ScheduledEvent {
  GlobalStep step = 0;
  std::uint64_t seq = 0;  ///< insertion order; tie-break for determinism
  std::uint64_t token = 0;
  ProcessId pid = kNoProcess;
  std::uint8_t kind = 0;
};

/// Hierarchical timing wheel over ScheduledEvents; see file comment.
class TimingWheel {
 public:
  /// Buckets per level and the level-0 window width in steps.
  static constexpr std::size_t kBuckets = 1024;
  /// Number of wheel levels; beyond them events spill.
  static constexpr std::size_t kLevels = 3;

  /// Scheduler-health gauges of the current run (zeroed by clear()).
  /// Maxima are high-water marks, counters are cumulative.
  struct Stats {
    std::size_t pending = 0;         ///< events currently scheduled
    std::size_t spill_pending = 0;   ///< of which in the spill list
    std::size_t max_spill = 0;       ///< spill-list high-water mark
    std::size_t max_buckets = 0;     ///< occupied-bucket high-water mark
    std::uint64_t max_horizon = 0;   ///< max (step - cursor) ever pushed
    std::uint64_t cascades = 0;      ///< bucket cascades performed
    std::uint64_t spill_refiles = 0; ///< events refiled out of the spill
  };

  TimingWheel();

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Schedules `ev`. `ev.step` must be >= the step of the last popped
  /// event and `ev.seq` must exceed every previously pushed seq.
  void push(const ScheduledEvent& ev);

  /// Removes and returns the earliest pending event in (step, seq)
  /// order. The wheel must not be empty.
  ScheduledEvent pop();

  /// Step of the earliest pending event without removing it. Windows
  /// advance and buckets cascade exactly as pop() would, so a
  /// peek_step()/pop() pair does no duplicate cascade work. The wheel
  /// must not be empty. Lets the parallel executor collect one whole
  /// global step into a batch while same-step pushes are still legal
  /// (pop() would advance the last-popped step past them).
  [[nodiscard]] GlobalStep peek_step();

  /// Discards every pending event and rewinds the cursor to step 0.
  /// Bucket vectors and the spill list keep their grown capacity; the
  /// stats gauges restart from zero.
  void clear() noexcept;

  [[nodiscard]] Stats stats() const noexcept {
    Stats out = stats_;
    out.pending = size_;
    out.spill_pending = spill_.size();
    return out;
  }

  /// Invokes `fn(const ScheduledEvent&)` for every pending event, in
  /// wheel-internal (level, bucket) order — NOT (step, seq) order, and
  /// not reproducible across serial/parallel schedules that placed the
  /// same events differently. Consumers must fold the visited set
  /// order-insensitively (the state digester accumulates commutatively
  /// per pid) and must not rely on `seq`, which depends on push order.
  template <typename Fn>
  void for_each_pending(Fn&& fn) const {
    for (const auto& level : levels_) {
      for (const Bucket& bucket : level) {
        for (std::size_t i = bucket.head; i < bucket.events.size(); ++i) {
          fn(bucket.events[i]);
        }
      }
    }
    for (const ScheduledEvent& ev : spill_) fn(ev);
  }

 private:
  static constexpr std::size_t kLevelBits = 10;  // log2(kBuckets)
  static constexpr std::size_t kBitmapWords = kBuckets / 64;
  /// Width of one level-k bucket in steps: 2^(10k).
  [[nodiscard]] static constexpr GlobalStep bucket_width(
      std::size_t level) noexcept {
    return GlobalStep{1} << (kLevelBits * level);
  }
  /// Width of the whole level-k window: 2^(10(k+1)).
  [[nodiscard]] static constexpr GlobalStep window_width(
      std::size_t level) noexcept {
    return GlobalStep{1} << (kLevelBits * (level + 1));
  }

  struct Bucket {
    std::vector<ScheduledEvent> events;
    std::size_t head = 0;  ///< drained prefix (level-0 pop cursor)
  };

  /// Appends into `levels_[level]` by step; step must fall inside the
  /// level's current window.
  void place(std::size_t level, const ScheduledEvent& ev);
  /// Moves every event of level-`from` bucket `index` one level down.
  void cascade(std::size_t from, std::size_t index);
  /// Rebases level 2 onto the earliest spill step and refiles every
  /// spill event that now fits the wheel. Requires levels empty.
  void refile_spill();
  /// Positions head_ on the first occupied level-0 bucket, advancing
  /// windows / cascading / refiling as needed. Requires size_ > 0.
  Bucket& front_bucket();

  void mark_occupied(std::size_t level, std::size_t index) noexcept;
  void mark_drained(std::size_t level, std::size_t index) noexcept;
  /// First occupied bucket index >= from at `level`, or kBuckets.
  [[nodiscard]] std::size_t find_occupied(std::size_t level,
                                          std::size_t from) const noexcept;

  std::array<std::vector<Bucket>, kLevels> levels_;
  /// Occupancy bitmap per level (bit = bucket holds pending events).
  std::array<std::array<std::uint64_t, kBitmapWords>, kLevels> occupancy_{};
  /// Events beyond the level-2 window; seq-sorted by construction.
  std::vector<ScheduledEvent> spill_;
  GlobalStep spill_min_ = kNeverStep;  ///< earliest step in spill_

  /// Aligned start of each level's current window. base_[k] is a
  /// multiple of bucket_width(k+1) == window_width(k) alignment of the
  /// level above; base_[0] <= cursor position < base_[0] + kBuckets.
  std::array<GlobalStep, kLevels> base_{};
  std::size_t head_ = 0;  ///< level-0 cursor (bucket index)
  std::size_t size_ = 0;
  std::size_t occupied_buckets_ = 0;

  Stats stats_;
};

}  // namespace ugf::sim
