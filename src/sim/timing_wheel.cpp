#include "sim/timing_wheel.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace ugf::sim {

TimingWheel::TimingWheel() {
  for (auto& level : levels_) level.resize(kBuckets);
}

void TimingWheel::mark_occupied(std::size_t level,
                                std::size_t index) noexcept {
  auto& word = occupancy_[level][index / 64];
  const std::uint64_t bit = std::uint64_t{1} << (index % 64);
  if ((word & bit) == 0) {
    word |= bit;
    ++occupied_buckets_;
    stats_.max_buckets = std::max(stats_.max_buckets, occupied_buckets_);
  }
}

void TimingWheel::mark_drained(std::size_t level,
                               std::size_t index) noexcept {
  auto& word = occupancy_[level][index / 64];
  const std::uint64_t bit = std::uint64_t{1} << (index % 64);
  if ((word & bit) != 0) {
    word &= ~bit;
    --occupied_buckets_;
  }
}

std::size_t TimingWheel::find_occupied(std::size_t level,
                                       std::size_t from) const noexcept {
  if (from >= kBuckets) return kBuckets;
  std::size_t w = from / 64;
  std::uint64_t word = occupancy_[level][w] & (~std::uint64_t{0} << (from % 64));
  for (;;) {
    if (word != 0)
      return w * 64 + static_cast<std::size_t>(std::countr_zero(word));
    if (++w == kBitmapWords) return kBuckets;
    word = occupancy_[level][w];
  }
}

void TimingWheel::place(std::size_t level, const ScheduledEvent& ev) {
  const std::size_t index =
      static_cast<std::size_t>((ev.step - base_[level]) >>
                               (kLevelBits * level));
  UGF_ASSERT_MSG(index < kBuckets,
                 "step %llu outside level-%zu window at base %llu",
                 static_cast<unsigned long long>(ev.step), level,
                 static_cast<unsigned long long>(base_[level]));
  Bucket& bucket = levels_[level][index];
  UGF_ASSERT(bucket.events.empty() || bucket.events.back().seq < ev.seq);
  bucket.events.push_back(ev);
  mark_occupied(level, index);
}

void TimingWheel::push(const ScheduledEvent& ev) {
  const GlobalStep cursor = base_[0] + head_;
  UGF_ASSERT_MSG(ev.step >= cursor,
                 "push at step %llu behind the cursor %llu",
                 static_cast<unsigned long long>(ev.step),
                 static_cast<unsigned long long>(cursor));
  stats_.max_horizon = std::max(stats_.max_horizon, ev.step - cursor);
  if (ev.step - base_[0] < window_width(0)) {
    place(0, ev);
  } else if (ev.step - base_[1] < window_width(1)) {
    place(1, ev);
  } else if (ev.step - base_[2] < window_width(2)) {
    place(2, ev);
  } else {
    UGF_ASSERT(spill_.empty() || spill_.back().seq < ev.seq);
    spill_.push_back(ev);
    spill_min_ = std::min(spill_min_, ev.step);
    stats_.max_spill = std::max(stats_.max_spill, spill_.size());
  }
  ++size_;
}

void TimingWheel::cascade(std::size_t from, std::size_t index) {
  Bucket& src = levels_[from][index];
  for (const ScheduledEvent& ev : src.events) place(from - 1, ev);
  src.events.clear();
  src.head = 0;
  mark_drained(from, index);
  ++stats_.cascades;
}

void TimingWheel::refile_spill() {
  // Rebase level 2 onto the earliest far-future step (aligned down to
  // the level-2 window width so bucket spans stay aligned with the
  // level-1 window) and move every event that now fits. The remainder
  // stays, in order, with a freshly tracked minimum. Only reached while
  // all three levels are empty, so refiled events land in empty buckets
  // in insertion (= seq) order.
  UGF_ASSERT(!spill_.empty());
  UGF_ASSERT_MSG(spill_min_ - base_[2] >= window_width(2),
                 "spill holds a step (%llu) the wheel should have covered",
                 static_cast<unsigned long long>(spill_min_));
  base_[2] = spill_min_ & ~(window_width(2) - 1);
  GlobalStep remaining_min = kNeverStep;
  std::size_t kept = 0;
  for (const ScheduledEvent& ev : spill_) {
    if (ev.step - base_[2] < window_width(2)) {
      place(2, ev);
      ++stats_.spill_refiles;
    } else {
      spill_[kept++] = ev;
      remaining_min = std::min(remaining_min, ev.step);
    }
  }
  spill_.resize(kept);
  spill_min_ = remaining_min;
}

TimingWheel::Bucket& TimingWheel::front_bucket() {
  UGF_ASSERT(size_ != 0);
  for (;;) {
    const std::size_t index = find_occupied(0, head_);
    if (index != kBuckets) {
      head_ = index;
      return levels_[0][index];
    }
    // Level 0 exhausted: jump its window to the next occupied level-1
    // bucket and cascade it down; replenish level 1 from level 2 and
    // level 2 from the spill list the same way. Jumps only ever target
    // occupied buckets, so a far-future gap costs one hop per level,
    // not one per empty bucket.
    std::size_t l1 = find_occupied(1, 0);
    if (l1 == kBuckets) {
      std::size_t l2 = find_occupied(2, 0);
      if (l2 == kBuckets) {
        refile_spill();
        l2 = find_occupied(2, 0);
        UGF_ASSERT(l2 != kBuckets);
      }
      base_[1] = base_[2] + static_cast<GlobalStep>(l2) * bucket_width(2);
      cascade(2, l2);
      l1 = find_occupied(1, 0);
      UGF_ASSERT(l1 != kBuckets);
    }
    base_[0] = base_[1] + static_cast<GlobalStep>(l1) * bucket_width(1);
    head_ = 0;
    cascade(1, l1);
  }
}

GlobalStep TimingWheel::peek_step() {
  Bucket& bucket = front_bucket();
  UGF_ASSERT(bucket.head < bucket.events.size());
  return bucket.events[bucket.head].step;
}

ScheduledEvent TimingWheel::pop() {
  Bucket& bucket = front_bucket();
  UGF_ASSERT(bucket.head < bucket.events.size());
  const ScheduledEvent ev = bucket.events[bucket.head++];
  --size_;
  if (bucket.head == bucket.events.size()) {
    bucket.events.clear();
    bucket.head = 0;
    mark_drained(0, head_);
  }
  return ev;
}

void TimingWheel::clear() noexcept {
  for (auto& level : levels_) {
    for (auto& bucket : level) {
      bucket.events.clear();
      bucket.head = 0;
    }
  }
  for (auto& bitmap : occupancy_)
    bitmap.fill(0);
  spill_.clear();
  spill_min_ = kNeverStep;
  base_.fill(0);
  head_ = 0;
  size_ = 0;
  occupied_buckets_ = 0;
  stats_ = Stats{};
}

}  // namespace ugf::sim
