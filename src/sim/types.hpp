#pragma once

/// \file types.hpp
/// Fundamental identifiers and time units of the simulation (§II-A of
/// the paper). Time advances in discrete *global steps*; each process
/// has a local-step duration `delta_rho` and a delivery time `d_rho`,
/// both of which the adversary may change at run time.

#include <cstdint>
#include <limits>

namespace ugf::sim {

/// Index of a process in Pi = {0, ..., N-1}.
using ProcessId = std::uint32_t;

/// Discrete global step counter (the paper's t).
using GlobalStep = std::uint64_t;

/// Sentinel for "no process".
inline constexpr ProcessId kNoProcess = std::numeric_limits<ProcessId>::max();

/// Sentinel for "never" / unset step values.
inline constexpr GlobalStep kNeverStep = std::numeric_limits<GlobalStep>::max();

/// Liveness/scheduling state of a process runtime.
enum class ProcessState : std::uint8_t {
  kAwake,    ///< has a scheduled local step
  kAsleep,   ///< fell asleep (Def IV.2); wakes on message arrival
  kCrashed,  ///< crashed by the adversary; never acts again
};

/// Static facts about the system a protocol instance may rely on
/// (the paper's protocols know N and the crash bound F, but never the
/// clock, delta or d — partial synchrony, §II-A.4).
struct SystemInfo {
  std::uint32_t n = 0;  ///< total number of processes N
  std::uint32_t f = 0;  ///< crash bound F known to the protocol
};

}  // namespace ugf::sim
