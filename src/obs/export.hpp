#pragma once

/// \file export.hpp
/// Trace and time-series serialization:
///
///   * NDJSON (`ugf-trace-v1`): one JSON object per line; line 1 is a
///     meta record (schema, protocol, adversary, n, f, seed, events),
///     every later line is one TraceEvent. Append-friendly, greppable,
///     and validated by `tools/lint_ugf.py --validate-trace`.
///   * Chrome trace_event JSON: one run rendered for chrome://tracing /
///     Perfetto — local steps as duration slices per process track,
///     messages as flow arrows from emission to delivery, crashes and
///     infections as instants, infected/in-flight as counter tracks.
///     Global steps are mapped 1:1 to trace microseconds.
///   * CSV: the per-run TimeSeries in long step-function form.
///
/// All writers are deterministic: same events in, same bytes out (the
/// golden-file tests depend on it). Schema changes bump the version
/// string; see docs/OBSERVABILITY.md for the stability policy.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "obs/timeseries.hpp"

namespace ugf::obs {

/// NDJSON/Chrome trace schema version (bumped on breaking changes).
inline constexpr const char* kTraceSchema = "ugf-trace-v1";

/// Run provenance stamped into every export.
struct TraceMeta {
  std::string protocol;
  std::string adversary;
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  std::uint64_t seed = 0;
};

/// Writes the meta line plus one line per event.
void write_ndjson_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events,
                        const TraceMeta& meta);

/// Rendering knobs for the Chrome trace writer. Defaults reproduce the
/// historical output byte-for-byte (golden-file tested); every option
/// is additive.
struct ChromeTraceOptions {
  /// Adds a flow "t" (step) event at each delivery's arrival time on
  /// the receiver track, so chrome://tracing routes the message arrow
  /// through the moment the message physically arrived — visible when
  /// a process sleeps past the arrival and delivers late.
  bool delivery_flow_steps = false;
};

/// Writes a complete Chrome trace_event JSON document for one run.
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events,
                        const TraceMeta& meta);
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events,
                        const TraceMeta& meta, const ChromeTraceOptions& options);

/// Writes one run's TimeSeries as CSV
/// (step,infected,in_flight,cumulative_messages,crashes,delay_changes,
///  omitted,dropped).
void write_timeseries_csv(const std::string& path, const TimeSeries& series);

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void write_ndjson_trace_file(const std::string& path,
                             const std::vector<TraceEvent>& events,
                             const TraceMeta& meta);
void write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceEvent>& events,
                             const TraceMeta& meta,
                             const ChromeTraceOptions& options = {});

}  // namespace ugf::obs
