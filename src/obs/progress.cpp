#include "obs/progress.hpp"

#include <cstdlib>

#if defined(_WIN32)
#include <io.h>
#define UGF_ISATTY _isatty
#define UGF_FILENO _fileno
#else
#include <unistd.h>
#define UGF_ISATTY isatty
#define UGF_FILENO fileno
#endif

namespace ugf::obs {

SweepProgress::Options SweepProgress::auto_options(int force) {
  Options opts;
  opts.tty = UGF_ISATTY(UGF_FILENO(stderr)) != 0;
  const char* ci = std::getenv("CI");
  const bool in_ci = ci != nullptr && ci[0] != '\0';
  opts.enabled = force > 0 || (force == 0 && opts.tty && !in_ci);
  return opts;
}

SweepProgress::SweepProgress(Options options)
    : enabled_(options.enabled),
      tty_(options.tty),
      min_interval_s_(options.tty ? options.min_interval_s
                                  : options.min_interval_s * 8.0),
      out_(options.out != nullptr ? options.out : stderr),
      start_(clock::now()) {}

SweepProgress::~SweepProgress() { finish(); }

void SweepProgress::note_batch(const std::string& label, std::size_t done,
                               std::size_t total) {
  if (!enabled_) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    label_ = label;
    batch_done_ = done;
    batch_total_ = total;
  }
  maybe_render(true);
}

std::string SweepProgress::current_line() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return build_line_locked();
}

std::string SweepProgress::build_line_locked() const {
  char buf[256];
  std::string line;
  if (!label_.empty() && batch_total_ != 0) {
    std::snprintf(buf, sizeof buf, "[%s %zu/%zu] ", label_.c_str(),
                  batch_done_, batch_total_);
    line += buf;
  }
  const std::uint64_t done = done_.load(std::memory_order_relaxed);
  const std::uint64_t total = total_.load(std::memory_order_relaxed);
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start_).count();
  const double rate = elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
  if (total != 0) {
    std::snprintf(buf, sizeof buf, "runs %llu/%llu (%.1f%%)",
                  static_cast<unsigned long long>(done),
                  static_cast<unsigned long long>(total),
                  100.0 * static_cast<double>(done) /
                      static_cast<double>(total));
  } else {
    std::snprintf(buf, sizeof buf, "runs %llu",
                  static_cast<unsigned long long>(done));
  }
  line += buf;
  std::snprintf(buf, sizeof buf, " | %.1f runs/s", rate);
  line += buf;
  if (total > done) {
    // No observed rate yet (first window, zero completed runs) — or a
    // rate so tiny the projection is meaningless — renders as a frank
    // "unknown" instead of a garbage multi-year estimate.
    const double eta = rate > 0.0 ? static_cast<double>(total - done) / rate
                                  : -1.0;
    if (eta >= 0.0 && eta < 1e7) {
      std::snprintf(buf, sizeof buf, " | eta %.1fs", eta);
    } else {
      std::snprintf(buf, sizeof buf, " | eta --:--");
    }
    line += buf;
  }
  std::snprintf(buf, sizeof buf, " | workers %llu",
                static_cast<unsigned long long>(
                    active_workers_.load(std::memory_order_relaxed)));
  line += buf;
  return line;
}

void SweepProgress::maybe_render(bool force) {
  const auto now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          clock::now() - start_)
                          .count();
  if (!force) {
    const std::int64_t last = last_render_ns_.load(std::memory_order_relaxed);
    if (last >= 0 &&
        static_cast<double>(now_ns - last) < min_interval_s_ * 1e9)
      return;
  }
  // Workers that lose the race skip the render — the winner's line is
  // at most one run stale, and nobody blocks.
  if (!mutex_.try_lock()) return;
  last_render_ns_.store(now_ns, std::memory_order_relaxed);
  render_locked();
  mutex_.unlock();
}

void SweepProgress::render_locked() {
  if (finished_) return;
  std::string line = build_line_locked();
  if (tty_) {
    // Rewrite in place; pad to clear the previous, longer line.
    if (line.size() < last_line_len_)
      line.append(last_line_len_ - line.size(), ' ');
    last_line_len_ = line.size();
    std::fprintf(out_, "\r%s", line.c_str());
  } else {
    std::fprintf(out_, "%s\n", line.c_str());
  }
  std::fflush(out_);
}

void SweepProgress::finish() {
  if (!enabled_) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  render_locked();
  if (tty_) std::fprintf(out_, "\n");
  std::fflush(out_);
  finished_ = true;
}

}  // namespace ugf::obs
