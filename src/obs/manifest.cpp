#include "obs/manifest.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "util/json.hpp"
#include "util/json_parse.hpp"

#if defined(_WIN32)
#include <winsock.h>
#else
#include <unistd.h>
#endif

#include "util/check.hpp"

// The git/build identity is injected per-translation-unit by
// src/obs/CMakeLists.txt; stay buildable without it.
#ifndef UGF_BUILD_GIT_DESCRIBE
#define UGF_BUILD_GIT_DESCRIBE "unknown"
#endif
#ifndef UGF_BUILD_TYPE
#define UGF_BUILD_TYPE "unknown"
#endif
#ifndef UGF_BUILD_SANITIZERS
#define UGF_BUILD_SANITIZERS ""
#endif

namespace ugf::obs {

BuildInfo current_build_info() {
  BuildInfo info;
  info.git_describe = UGF_BUILD_GIT_DESCRIBE;
  info.build_type = UGF_BUILD_TYPE;
  info.sanitizers = UGF_BUILD_SANITIZERS;
#if defined(__VERSION__)
  info.compiler = __VERSION__;
#else
  info.compiler = "unknown";
#endif
  info.audit_level = UGF_AUDIT_LEVEL;
  return info;
}

HostInfo current_host_info() {
  HostInfo info;
  char name[256] = {};
  if (gethostname(name, sizeof name - 1) == 0 && name[0] != '\0')
    info.hostname = name;
  else
    info.hostname = "unknown";
  info.hardware_threads = std::thread::hardware_concurrency();
  return info;
}

namespace {

using StringPairs = std::vector<std::pair<std::string, std::string>>;

StringPairs sorted(StringPairs pairs) {
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

void write_string_map(util::JsonWriter& json, const char* name,
                      const StringPairs& pairs) {
  json.key(name).begin_object();
  for (const auto& [key, value] : sorted(pairs))
    json.member(key, std::string_view(value));
  json.end_object();
}

StringPairs read_string_map(const util::JsonValue& value) {
  StringPairs out;
  for (const auto& [key, member] : value.members())
    out.emplace_back(key, member.as_string());
  return out;
}

MetricsSnapshot read_metrics_object(const util::JsonValue& value) {
  MetricsSnapshot out;
  if (value.at("schema").as_string() != kMetricsSchema)
    throw std::runtime_error("manifest: unexpected metrics schema");
  for (const auto& [name, v] : value.at("counters").members())
    out.counters.push_back({name, v.as_uint64()});
  for (const auto& [name, v] : value.at("gauges").members())
    out.gauges.push_back({name, v.as_uint64()});
  for (const auto& [name, v] : value.at("histograms").members()) {
    HistogramSnapshot h;
    h.name = name;
    h.count = v.at("count").as_uint64();
    h.sum = v.at("sum").as_uint64();
    h.min = v.at("min").as_uint64();
    h.max = v.at("max").as_uint64();
    for (const util::JsonValue& pair : v.at("buckets").items()) {
      if (pair.items().size() != 2)
        throw std::runtime_error("manifest: bad histogram bucket pair");
      h.buckets.emplace_back(pair.items()[0].as_uint64(),
                             pair.items()[1].as_uint64());
    }
    out.histograms.push_back(std::move(h));
  }
  return out;
}

}  // namespace

void write_manifest(std::ostream& out, const RunManifest& manifest) {
  util::JsonWriter json;
  json.begin_object()
      .member("schema", kManifestSchema)
      .member("figure", std::string_view(manifest.figure))
      .member("protocol", std::string_view(manifest.protocol));

  json.key("adversaries").begin_array();
  for (const ManifestAdversary& adv : manifest.adversaries) {
    json.begin_object()
        .member("label", std::string_view(adv.label))
        .member("factory", std::string_view(adv.factory));
    write_string_map(json, "params", adv.params);
    json.end_object();
  }
  json.end_array();

  if (manifest.has_sweep) {
    json.key("sweep").begin_object();
    json.key("grid").begin_array();
    for (const std::uint32_t n : manifest.sweep.grid) json.value(n);
    json.end_array();
    json.member("f_fraction", manifest.sweep.f_fraction)
        .member("runs", manifest.sweep.runs)
        .member("base_seed", manifest.sweep.base_seed)
        .member("threads", manifest.sweep.threads)
        .member("max_steps", manifest.sweep.max_steps)
        .member("max_events", manifest.sweep.max_events)
        .member("collect_timeseries", manifest.sweep.collect_timeseries)
        .member("timeseries_samples", manifest.sweep.timeseries_samples)
        .end_object();
  } else {
    json.key("sweep").null();
  }

  write_string_map(json, "params", manifest.params);
  write_string_map(json, "artifacts", manifest.artifacts);

  json.key("build")
      .begin_object()
      .member("git_describe", std::string_view(manifest.build.git_describe))
      .member("build_type", std::string_view(manifest.build.build_type))
      .member("sanitizers", std::string_view(manifest.build.sanitizers))
      .member("compiler", std::string_view(manifest.build.compiler))
      .member("audit_level", manifest.build.audit_level)
      .end_object();

  json.key("host")
      .begin_object()
      .member("hostname", std::string_view(manifest.host.hostname))
      .member("hardware_threads", manifest.host.hardware_threads)
      .end_object();

  json.member("wall_time_seconds", manifest.wall_time_seconds);

  json.key("metrics");
  append_metrics_json(json, manifest.metrics);

  json.end_object();
  out << json.str() << "\n";
}

void write_manifest_file(const std::string& path,
                         const RunManifest& manifest) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("manifest: cannot open " + path);
  write_manifest(out, manifest);
  out.flush();
  if (!out) throw std::runtime_error("manifest: write failed for " + path);
}

RunManifest read_manifest_file(const std::string& path) {
  const util::JsonValue doc = util::parse_json_file(path);
  if (doc.at("schema").as_string() != kManifestSchema)
    throw std::runtime_error(path + ": not a " + std::string(kManifestSchema) +
                             " file");

  RunManifest m;
  m.figure = doc.at("figure").as_string();
  m.protocol = doc.at("protocol").as_string();

  for (const util::JsonValue& adv : doc.at("adversaries").items()) {
    ManifestAdversary out;
    out.label = adv.at("label").as_string();
    out.factory = adv.at("factory").as_string();
    out.params = read_string_map(adv.at("params"));
    m.adversaries.push_back(std::move(out));
  }

  const util::JsonValue& sweep = doc.at("sweep");
  if (!sweep.is_null()) {
    m.has_sweep = true;
    for (const util::JsonValue& n : sweep.at("grid").items())
      m.sweep.grid.push_back(static_cast<std::uint32_t>(n.as_uint64()));
    m.sweep.f_fraction = sweep.at("f_fraction").as_double();
    m.sweep.runs = static_cast<std::uint32_t>(sweep.at("runs").as_uint64());
    m.sweep.base_seed = sweep.at("base_seed").as_uint64();
    m.sweep.threads = sweep.at("threads").as_uint64();
    m.sweep.max_steps = sweep.at("max_steps").as_uint64();
    m.sweep.max_events = sweep.at("max_events").as_uint64();
    m.sweep.collect_timeseries = sweep.at("collect_timeseries").as_bool();
    m.sweep.timeseries_samples =
        static_cast<std::uint32_t>(sweep.at("timeseries_samples").as_uint64());
  }

  m.params = read_string_map(doc.at("params"));
  m.artifacts = read_string_map(doc.at("artifacts"));

  const util::JsonValue& build = doc.at("build");
  m.build.git_describe = build.at("git_describe").as_string();
  m.build.build_type = build.at("build_type").as_string();
  m.build.sanitizers = build.at("sanitizers").as_string();
  m.build.compiler = build.at("compiler").as_string();
  m.build.audit_level = static_cast<int>(build.at("audit_level").as_int64());

  const util::JsonValue& host = doc.at("host");
  m.host.hostname = host.at("hostname").as_string();
  m.host.hardware_threads =
      static_cast<std::uint32_t>(host.at("hardware_threads").as_uint64());

  m.wall_time_seconds = doc.at("wall_time_seconds").as_double();
  m.metrics = read_metrics_object(doc.at("metrics"));
  return m;
}

}  // namespace ugf::obs
