#include "obs/lineage.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "obs/export.hpp"
#include "util/json.hpp"

namespace ugf::obs {

void LineageTracker::ensure_process(sim::ProcessId p) {
  if (p == sim::kNoProcess) return;
  if (p >= node_of_process_.size()) {
    node_of_process_.resize(p + 1, npos);
    pending_by_receiver_.resize(p + 1);
  }
}

void LineageTracker::on_event(const TraceEvent& event) {
  if (finalized_) return;
  switch (event.type) {
    case EventType::kEmission: {
      if (event.cause == 0) break;  // pre-causality producer; nothing to key
      if (event.cause > emissions_.size()) emissions_.resize(event.cause);
      EmissionRec& rec = emissions_[event.cause - 1];
      rec.from = event.a;
      rec.to = event.b;
      rec.emitted_at = event.step;
      rec.fate = Fate::kPending;
      ensure_process(event.b);
      if (event.b != sim::kNoProcess)
        pending_by_receiver_[event.b].push_back(event.cause);
      break;
    }
    case EventType::kDelivery:
      if (event.cause != 0 && event.cause <= emissions_.size()) {
        emissions_[event.cause - 1].fate = Fate::kDelivered;
        emissions_[event.cause - 1].resolved_at = event.step;
      }
      break;
    case EventType::kOmission:
      if (event.cause != 0 && event.cause <= emissions_.size()) {
        emissions_[event.cause - 1].fate = Fate::kOmitted;
        emissions_[event.cause - 1].resolved_at = event.step;
      }
      break;
    case EventType::kDrop:
      if (event.b != sim::kNoProcess) {
        // Emission-time drop: the receiver was already crashed.
        if (event.cause != 0 && event.cause <= emissions_.size()) {
          emissions_[event.cause - 1].fate = Fate::kDropped;
          emissions_[event.cause - 1].resolved_at = event.step;
        }
      } else {
        // Crash wipe: every in-flight message to `a` dies at once.
        ensure_process(event.a);
        for (std::uint64_t id : pending_by_receiver_[event.a]) {
          EmissionRec& rec = emissions_[id - 1];
          if (rec.fate == Fate::kPending) {
            rec.fate = Fate::kWiped;
            rec.resolved_at = event.step;
          }
        }
        pending_by_receiver_[event.a].clear();
      }
      break;
    case EventType::kCrash:
      actions_.push_back(AdversaryAction{ActionKind::kCrash, event.a,
                                         event.step, event.cause, false});
      break;
    case EventType::kInfection: {
      ensure_process(event.a);
      InfectionNode node;
      node.process = event.a;
      node.step = event.step;
      node.cause = event.cause;
      if (event.cause != 0 && event.cause <= emissions_.size()) {
        node.parent = emissions_[event.cause - 1].from;
        const std::size_t parent_node = node_index(node.parent);
        node.depth =
            parent_node == npos ? 1 : nodes_[parent_node].depth + 1;
      }
      node_of_process_[event.a] = nodes_.size();
      nodes_.push_back(node);
      break;
    }
    case EventType::kDelayChange:
      actions_.push_back(AdversaryAction{ActionKind::kDelayChange, event.a,
                                         event.step, event.cause, false});
      break;
    case EventType::kStepTimeChange:
      actions_.push_back(AdversaryAction{ActionKind::kStepTimeChange, event.a,
                                         event.step, event.cause, false});
      break;
    case EventType::kStepBegin:
    case EventType::kStepEnd:
    case EventType::kSleep:
      break;
  }
}

void LineageTracker::finalize() {
  if (finalized_) return;
  finalized_ = true;

  depth_max_ = 0;
  for (const InfectionNode& node : nodes_)
    depth_max_ = std::max(depth_max_, node.depth);
  std::vector<std::uint32_t> width(depth_max_ + 1, 0);
  width_max_ = 0;
  for (const InfectionNode& node : nodes_)
    width_max_ = std::max(width_max_, ++width[node.depth]);

  // Critical path: walk parent edges back from the last infection (the
  // stream is in infection order, so nodes_.back() is the tip).
  critical_path_.clear();
  if (!nodes_.empty()) {
    std::size_t at = nodes_.size() - 1;
    for (;;) {
      InfectionNode& node = nodes_[at];
      node.on_critical_path = true;
      if (node.cause == 0) break;
      critical_path_.push_back(node.cause);
      const std::size_t parent = node_index(node.parent);
      if (parent == npos) break;  // defensive: orphaned edge
      at = parent;
    }
    std::reverse(critical_path_.begin(), critical_path_.end());
  }

  // Attribution: an edge-like suppression is on the critical path iff
  // its target is a critical-path node and the emission predates that
  // node's infection (the adversary delayed the chain that mattered);
  // a node-like decision is on iff its victim is a critical-path node.
  attribution_ = Attribution{};
  for (const EmissionRec& rec : emissions_) {
    if (rec.fate != Fate::kOmitted && rec.fate != Fate::kDropped &&
        rec.fate != Fate::kWiped)
      continue;
    const bool on = suppression_on_critical_path(rec);
    switch (rec.fate) {
      case Fate::kOmitted:
        ++(on ? attribution_.omissions_on : attribution_.omissions_off);
        break;
      case Fate::kDropped:
        ++(on ? attribution_.drops_on : attribution_.drops_off);
        break;
      default:
        ++(on ? attribution_.wipes_on : attribution_.wipes_off);
        break;
    }
  }
  for (AdversaryAction& action : actions_) {
    const std::size_t victim = node_index(action.process);
    action.on_critical_path = victim != npos && nodes_[victim].on_critical_path;
    switch (action.kind) {
      case ActionKind::kCrash:
        ++(action.on_critical_path ? attribution_.crashes_on
                                   : attribution_.crashes_off);
        break;
      case ActionKind::kDelayChange:
        ++(action.on_critical_path ? attribution_.delay_changes_on
                                   : attribution_.delay_changes_off);
        break;
      case ActionKind::kStepTimeChange:
        ++(action.on_critical_path ? attribution_.step_time_changes_on
                                   : attribution_.step_time_changes_off);
        break;
    }
  }
}

void LineageTracker::clear() noexcept {
  emissions_.clear();
  nodes_.clear();
  actions_.clear();
  for (auto& pending : pending_by_receiver_) pending.clear();
  std::fill(node_of_process_.begin(), node_of_process_.end(), npos);
  critical_path_.clear();
  attribution_ = Attribution{};
  depth_max_ = 0;
  width_max_ = 0;
  finalized_ = false;
}

void LineageTracker::publish_metrics(MetricsRegistry& registry) const {
  const Histogram depth = registry.histogram("lineage.infection_depth");
  for (const InfectionNode& node : nodes_) depth.record(node.depth);
  registry.histogram("lineage.critical_path_len")
      .record(critical_path_.size());
  registry.gauge("lineage.depth_max").note_max(depth_max_);
  registry.gauge("lineage.width_max").note_max(width_max_);
}

namespace {

void process_or_null(util::JsonWriter& json, sim::ProcessId p) {
  if (p == sim::kNoProcess)
    json.null();
  else
    json.value(p);
}

const char* fate_name(LineageTracker::Fate fate) {
  switch (fate) {
    case LineageTracker::Fate::kOmitted: return "omission";
    case LineageTracker::Fate::kDropped: return "drop";
    case LineageTracker::Fate::kWiped: return "wipe";
    default: return "?";
  }
}

const char* action_name(LineageTracker::ActionKind kind) {
  switch (kind) {
    case LineageTracker::ActionKind::kCrash: return "crash";
    case LineageTracker::ActionKind::kDelayChange: return "delay-change";
    case LineageTracker::ActionKind::kStepTimeChange:
      return "step-time-change";
  }
  return "?";
}

bool is_suppressed(LineageTracker::Fate fate) {
  return fate == LineageTracker::Fate::kOmitted ||
         fate == LineageTracker::Fate::kDropped ||
         fate == LineageTracker::Fate::kWiped;
}

template <typename WriteFn>
void write_file(const std::string& path, const WriteFn& write) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("obs: cannot open " + path);
  write(out);
  out.flush();
  if (!out) throw std::runtime_error("obs: write failed for " + path);
}

}  // namespace

void write_lineage_ndjson(std::ostream& out, LineageTracker& tracker,
                          const TraceMeta& meta) {
  tracker.finalize();
  const auto& nodes = tracker.nodes();
  const auto& emissions = tracker.emissions();
  const auto& actions = tracker.actions();
  std::uint64_t suppressed = 0;
  for (const auto& rec : emissions)
    if (is_suppressed(rec.fate)) ++suppressed;

  {
    util::JsonWriter json;
    json.begin_object()
        .member("schema", kLineageSchema)
        .member("protocol", std::string_view(meta.protocol))
        .member("adversary", std::string_view(meta.adversary))
        .member("n", meta.n)
        .member("f", meta.f)
        .member("seed", meta.seed)
        .member("infected", static_cast<std::uint64_t>(nodes.size()));
    json.key("last_process");
    process_or_null(json, nodes.empty() ? sim::kNoProcess
                                        : nodes.back().process);
    json.member("last_step",
                nodes.empty() ? std::uint64_t{0} : nodes.back().step)
        .member("critical_path_len",
                static_cast<std::uint64_t>(tracker.critical_path().size()))
        .member("depth_max", tracker.depth_max())
        .member("width_max", tracker.width_max())
        .member("nodes", static_cast<std::uint64_t>(nodes.size()))
        .member("suppressed", suppressed)
        .member("actions", static_cast<std::uint64_t>(actions.size()))
        .end_object();
    out << json.str() << "\n";
  }

  for (const auto& node : nodes) {
    util::JsonWriter json;
    json.begin_object()
        .member("kind", "node")
        .member("p", node.process)
        .member("step", node.step)
        .member("depth", node.depth);
    json.key("parent");
    process_or_null(json, node.parent);
    json.member("cause", node.cause)
        .member("on_critical_path", node.on_critical_path)
        .end_object();
    out << json.str() << "\n";
  }

  for (std::size_t i = 0; i < emissions.size(); ++i) {
    const auto& rec = emissions[i];
    if (!is_suppressed(rec.fate)) continue;
    const bool on = tracker.suppression_on_critical_path(rec);
    util::JsonWriter json;
    json.begin_object()
        .member("kind", "suppressed")
        .member("action", fate_name(rec.fate));
    json.key("from");
    process_or_null(json, rec.from);
    json.key("to");
    process_or_null(json, rec.to);
    json.member("emitted_at", rec.emitted_at)
        .member("step", rec.resolved_at)
        .member("id", static_cast<std::uint64_t>(i + 1))
        .member("on_critical_path", on)
        .end_object();
    out << json.str() << "\n";
  }

  for (const auto& action : actions) {
    util::JsonWriter json;
    json.begin_object()
        .member("kind", "action")
        .member("action", action_name(action.kind))
        .member("p", action.process)
        .member("step", action.step)
        .member("cause", action.cause)
        .member("on_critical_path", action.on_critical_path)
        .end_object();
    out << json.str() << "\n";
  }

  {
    const auto& at = tracker.attribution();
    util::JsonWriter json;
    json.begin_object().member("kind", "attribution");
    json.key("on")
        .begin_object()
        .member("omission", at.omissions_on)
        .member("drop", at.drops_on)
        .member("wipe", at.wipes_on)
        .member("crash", at.crashes_on)
        .member("delay_change", at.delay_changes_on)
        .member("step_time_change", at.step_time_changes_on)
        .end_object();
    json.key("off")
        .begin_object()
        .member("omission", at.omissions_off)
        .member("drop", at.drops_off)
        .member("wipe", at.wipes_off)
        .member("crash", at.crashes_off)
        .member("delay_change", at.delay_changes_off)
        .member("step_time_change", at.step_time_changes_off)
        .end_object();
    json.end_object();
    out << json.str() << "\n";
  }
}

void write_lineage_chrome(std::ostream& out, LineageTracker& tracker,
                          const TraceMeta& meta) {
  tracker.finalize();
  util::JsonWriter json;
  json.begin_object();
  json.key("traceEvents").begin_array();

  json.begin_object()
      .member("name", "process_name")
      .member("ph", "M")
      .member("pid", 0)
      .key("args")
      .begin_object()
      .member("name", std::string_view("ugf lineage: " + meta.protocol +
                                       " vs " + meta.adversary))
      .end_object()
      .end_object();
  for (std::uint32_t p = 0; p < meta.n; ++p) {
    json.begin_object()
        .member("name", "thread_name")
        .member("ph", "M")
        .member("pid", 0)
        .member("tid", p)
        .key("args")
        .begin_object()
        .member("name", std::string_view("process " + std::to_string(p)))
        .end_object()
        .end_object();
  }

  const auto& emissions = tracker.emissions();
  for (const auto& node : tracker.nodes()) {
    if (node.cause == 0 || node.cause > emissions.size()) {
      // Root: mark the infection instant so the tree has visible seeds.
      json.begin_object()
          .member("name", "infected (root)")
          .member("cat", "lineage")
          .member("ph", "i")
          .member("s", "t")
          .member("ts", node.step)
          .member("pid", 0)
          .member("tid", node.process)
          .end_object();
      continue;
    }
    const auto& rec = emissions[node.cause - 1];
    const char* cat =
        node.on_critical_path ? "lineage-critical" : "lineage";
    const std::string id = "lineage:" + std::to_string(node.cause);
    json.begin_object()
        .member("name", "infects")
        .member("cat", cat)
        .member("ph", "s")
        .member("id", std::string_view(id))
        .member("ts", rec.emitted_at)
        .member("pid", 0)
        .member("tid", rec.from)
        .end_object();
    json.begin_object()
        .member("name", "infects")
        .member("cat", cat)
        .member("ph", "f")
        .member("bp", "e")
        .member("id", std::string_view(id))
        .member("ts", node.step)
        .member("pid", 0)
        .member("tid", node.process)
        .end_object();
  }

  json.end_array();
  json.member("displayTimeUnit", "ms");
  json.key("otherData")
      .begin_object()
      .member("schema", kLineageSchema)
      .member("protocol", std::string_view(meta.protocol))
      .member("adversary", std::string_view(meta.adversary))
      .member("n", meta.n)
      .member("f", meta.f)
      .member("seed", meta.seed)
      .member("critical_path_len",
              static_cast<std::uint64_t>(tracker.critical_path().size()))
      .end_object();
  json.end_object();
  out << json.str() << "\n";
}

void write_lineage_ndjson_file(const std::string& path,
                               LineageTracker& tracker,
                               const TraceMeta& meta) {
  write_file(path, [&](std::ostream& out) {
    write_lineage_ndjson(out, tracker, meta);
  });
}

void write_lineage_chrome_file(const std::string& path,
                               LineageTracker& tracker,
                               const TraceMeta& meta) {
  write_file(path, [&](std::ostream& out) {
    write_lineage_chrome(out, tracker, meta);
  });
}

}  // namespace ugf::obs
