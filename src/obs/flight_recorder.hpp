#pragma once

/// \file flight_recorder.hpp
/// Post-mortem context for invariant failures. A FlightRecorder is an
/// EventSink wrapping a bounded EventRecorder ring (the last N
/// TraceEvents of the run it is bound to). On construction it
/// registers a util check-failure hook; when a UGF_ASSERT / UGF_AUDIT
/// fires on the thread that owns the recorder, the hook dumps
///
///   <dir>/<stem>.ndjson        — the ring as valid `ugf-trace-v1`
///                                NDJSON (validates with
///                                tools/lint_ugf.py --validate-trace)
///   <dir>/<stem>.metrics.json  — the bound registry's merged
///                                `ugf-metrics-v1` snapshot, if any
///   <dir>/<stem>.digest.ndjson — the bound StateDigester's most recent
///                                root digest per subsystem, if any —
///                                pins which subsystem diverged first
///                                before the invariant tripped
///
/// to stderr-announced paths before the process aborts, turning a bare
/// "UGF_AUDIT failed" into a replayable trace tail. Only recorders
/// owned by the *failing* thread dump: other workers' rings are being
/// mutated concurrently and reading them would race.
///
/// The runner attaches one per Monte-Carlo run when checks are
/// compiled in (UGF_CHECKS_ENABLED); at audit level 0 no check can
/// fire, so the recorder would be dead weight and is compiled out of
/// that path. Tests may also construct one directly and call `dump()`.

#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/event.hpp"

namespace ugf::obs {

class MetricsRegistry;
class StateDigester;

class FlightRecorder final : public EventSink {
 public:
  /// ~160 KiB of TraceEvents: enough to cover several global steps of
  /// a large-n run while keeping per-run construction cheap.
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// Provenance stamped into the dump's trace meta line.
  struct Context {
    std::string protocol;
    std::string adversary;
    std::uint32_t n = 0;
    std::uint32_t f = 0;
    std::uint64_t seed = 0;
  };

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);
  ~FlightRecorder() override;

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Rebinds the recorder to a new run: clears the ring and replaces
  /// the meta context. `metrics` and `digester` may be nullptr. Call
  /// between runs when reusing one recorder per worker.
  void bind(Context context, const MetricsRegistry* metrics,
            const StateDigester* digester = nullptr) noexcept;

  void on_event(const TraceEvent& event) override { ring_.on_event(event); }

  [[nodiscard]] const EventRecorder& ring() const noexcept { return ring_; }

  /// Writes the dump files into `dir` and returns the path stem
  /// ("<dir>/ugf-flight-seed<seed>"). Used by the failure hook and
  /// directly by tests. Throws on I/O failure.
  std::string dump(const std::string& dir) const;

  /// Directory the failure hook dumps into. Default "."; overridden
  /// process-wide (e.g. by figure binaries to their --out-dir) or via
  /// the UGF_FLIGHT_DIR environment variable, which wins.
  static void set_dump_dir(std::string dir);

 private:
  static void on_check_failure(void* self) noexcept;

  EventRecorder ring_;
  Context context_;
  const MetricsRegistry* metrics_ = nullptr;
  const StateDigester* digester_ = nullptr;
  std::thread::id owner_thread_;  ///< only this thread's failures dump
  std::size_t hook_id_ = 0;
};

}  // namespace ugf::obs
