#pragma once

/// \file timeseries.hpp
/// Derived per-run time-series: the paper's Fig. 3 reports endpoint
/// complexities, but diagnosing *why* a protocol/adversary pair behaves
/// as it does needs per-step progress — the infection curve
/// `infected(t)`, messages in flight, cumulative traffic and the
/// adversary's budget spend. All series are step functions sampled at
/// every global step where something changed, derived offline from a
/// recorded event stream (obs/event.hpp), never during the run.
///
/// `aggregate_timeseries` resamples many runs onto a shared step grid
/// and reports per-sample quartiles, which is what the runner exposes
/// per batch ("median infection curve over 50 trials").

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/event.hpp"
#include "sim/types.hpp"

namespace ugf::obs {

/// Step-function samples of one run; parallel arrays, one row per
/// global step at which at least one series changed. Values are the
/// state *after* all events of that step.
struct TimeSeries {
  std::vector<sim::GlobalStep> steps;
  std::vector<std::uint32_t> infected;       ///< processes ever holding gossip 0
  std::vector<std::uint64_t> in_flight;      ///< accepted, not yet delivered/lost
  std::vector<std::uint64_t> cumulative_messages;  ///< emissions so far
  std::vector<std::uint32_t> crashes;        ///< adversary crash-budget spend
  std::vector<std::uint64_t> delay_changes;  ///< d/delta rewrites so far
  std::vector<std::uint64_t> omitted;        ///< suppressed emissions so far
  std::vector<std::uint64_t> dropped;        ///< messages lost to crashes so far

  [[nodiscard]] bool empty() const noexcept { return steps.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return steps.size(); }
};

/// Derives the series of one run from its recorded events (which must
/// be in non-decreasing step order, as the engine emits them).
[[nodiscard]] TimeSeries build_timeseries(const std::vector<TraceEvent>& events);

/// Evaluates a step-function column at step `t`: the last value whose
/// step is <= t, or 0 before the first sample. `column` must be one of
/// the series arrays of `series` (same length as series.steps).
template <typename T>
[[nodiscard]] double timeseries_value_at(const TimeSeries& series,
                                         const std::vector<T>& column,
                                         sim::GlobalStep t) noexcept;

/// Median/quartile curves over many runs, resampled onto a shared grid
/// of `samples` evenly spaced steps in [0, max final step].
struct AggregateTimeSeries {
  std::vector<double> t;  ///< shared sample grid (global steps)
  std::vector<double> infected_q1;
  std::vector<double> infected_median;
  std::vector<double> infected_q3;
  std::vector<double> in_flight_median;
  std::vector<double> cumulative_messages_median;
  std::vector<double> crashes_median;
  std::vector<double> delay_changes_median;
  std::size_t runs = 0;

  [[nodiscard]] bool empty() const noexcept { return t.empty(); }
};

/// Aggregates per-run series; empty input yields an empty aggregate.
/// `samples` >= 2 (clamped). Runs shorter than the grid hold their
/// final value (a finished run stays at its last state).
[[nodiscard]] AggregateTimeSeries aggregate_timeseries(
    const std::vector<TimeSeries>& runs, std::size_t samples);

template <typename T>
double timeseries_value_at(const TimeSeries& series,
                           const std::vector<T>& column,
                           sim::GlobalStep t) noexcept {
  // Binary search for the last step <= t.
  std::size_t lo = 0, hi = series.steps.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (series.steps[mid] <= t)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo == 0 ? 0.0 : static_cast<double>(column[lo - 1]);
}

}  // namespace ugf::obs
