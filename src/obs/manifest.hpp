#pragma once

/// \file manifest.hpp
/// Run provenance: a `ugf-manifest-v1` JSON record written next to
/// every figure/bench artifact, holding everything needed to reproduce
/// the artifact bit-for-bit — the full sweep configuration (grid,
/// seeds, caps, thread count), every adversary with its numeric
/// parameters, the build (git describe, build type, sanitizer set,
/// audit level, compiler), the host, wall time, and the final merged
/// metrics snapshot. `read_manifest_file` is the inverse of
/// `write_manifest_file`; the checked-in round-trip test re-runs a
/// sweep from a parsed manifest and byte-compares the CSV.
///
/// Layering: obs knows nothing about runner or core types, so the
/// sweep and adversaries are mirrored as plain structs here; the bench
/// layer converts (bench/campaign.hpp). Extra binary-specific knobs
/// travel in the string-keyed `params` list.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace ugf::obs {

/// Manifest schema version (bumped on breaking changes).
inline constexpr const char* kManifestSchema = "ugf-manifest-v1";

/// Toolchain + configuration of the binary that produced the run.
struct BuildInfo {
  std::string git_describe;  ///< `git describe --always --dirty --tags`
  std::string build_type;    ///< CMAKE_BUILD_TYPE
  std::string sanitizers;    ///< UGF_SANITIZE ("" = none)
  std::string compiler;      ///< compiler id + version
  int audit_level = 0;       ///< UGF_AUDIT_LEVEL the binary compiled with
};

/// Build info of *this* binary (filled from compile definitions).
[[nodiscard]] BuildInfo current_build_info();

struct HostInfo {
  std::string hostname;
  std::uint32_t hardware_threads = 0;
};

[[nodiscard]] HostInfo current_host_info();

/// One adversary of the campaign. `factory` is the registry name
/// ("ugf", "strategy-2.k.l", ...; empty = benign, no adversary);
/// `params` holds its numeric knobs as exact-round-trip strings,
/// sorted by key on write.
struct ManifestAdversary {
  std::string label;
  std::string factory;
  std::vector<std::pair<std::string, std::string>> params;
};

/// Plain mirror of runner::SweepConfig (see layering note above).
struct ManifestSweep {
  std::vector<std::uint32_t> grid;
  double f_fraction = 0.3;
  std::uint32_t runs = 50;
  std::uint64_t base_seed = 0;
  std::uint64_t threads = 0;
  std::uint64_t max_steps = 0;
  std::uint64_t max_events = 0;
  bool collect_timeseries = false;
  std::uint32_t timeseries_samples = 65;
};

struct RunManifest {
  std::string figure;    ///< figure/binary id, e.g. "fig3a"
  std::string protocol;  ///< protocol factory name
  std::vector<ManifestAdversary> adversaries;
  bool has_sweep = false;
  ManifestSweep sweep;
  /// Binary-specific knobs (sorted by key on write).
  std::vector<std::pair<std::string, std::string>> params;
  /// Artifacts this run produced, as (kind, path): "csv", "json",
  /// "trace", "metrics", ... (sorted by kind on write).
  std::vector<std::pair<std::string, std::string>> artifacts;
  BuildInfo build;
  HostInfo host;
  double wall_time_seconds = 0.0;
  MetricsSnapshot metrics;
};

void write_manifest(std::ostream& out, const RunManifest& manifest);
void write_manifest_file(const std::string& path, const RunManifest& manifest);

/// Parses a manifest written by write_manifest_file; throws
/// std::runtime_error on I/O, parse, or schema mismatch.
[[nodiscard]] RunManifest read_manifest_file(const std::string& path);

}  // namespace ugf::obs
