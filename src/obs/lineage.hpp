#pragma once

/// \file lineage.hpp
/// Causal lineage of one run: who infected whom, through which exact
/// emission, and which adversary decisions stood in the way.
///
/// `LineageTracker` is an `EventSink` that folds the engine's typed
/// event stream (obs/event.hpp) into a propagation DAG online, keyed by
/// the per-emission `cause` ids the engine assigns on the hot path:
///
///   * one `EmissionRec` per emission attempt (accepted, omitted or
///     dropped alike), resolved to a final `Fate` as later events name
///     the same id;
///   * one `InfectionNode` per process that ever held gossip 0, with a
///     parent edge to the emission whose delivery flipped the bit and a
///     depth = parent depth + 1 (roots — infected at run start or by
///     local protocol state — have depth 0 and no parent);
///   * one `AdversaryAction` per node-like adversary decision (crash,
///     delay-change, step-time-change), attributed to the emission the
///     adversary was reacting to when it decided.
///
/// `finalize()` then computes the run's **critical path**: the exact
/// emission→delivery chain from a root to the *last* process infected —
/// the chain whose completion time is the run's spreading time. On top
/// of it sit the adversary-attribution summaries: an edge-like
/// suppression (omission / drop / crash-wipe of an emission targeting
/// process r) counts as *on the critical path* iff r is a critical-path
/// node and the emission predates r's infection — i.e. the adversary
/// burned budget delaying the chain that ended up mattering; a
/// node-like decision counts iff its victim is a critical-path node.
///
/// Serialization: `write_lineage_ndjson` renders the DAG as the
/// versioned `ugf-lineage-v1` artifact (meta line, then node /
/// suppressed / action / attribution records, one JSON object per
/// line); `write_lineage_chrome` renders the parent edges as Chrome
/// trace_event flow arrows (critical-path edges in their own category)
/// so chrome://tracing draws the infection tree. Both are
/// deterministic: same run, same bytes — the tracker holds no pointers,
/// timestamps or thread state, so lineage output is bit-identical
/// across Monte-Carlo thread counts.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "sim/types.hpp"

namespace ugf::obs {

struct TraceMeta;  // obs/export.hpp

/// Lineage artifact schema version (bumped on breaking changes).
inline constexpr const char* kLineageSchema = "ugf-lineage-v1";

/// Folds a run's event stream into its infection DAG. Attach to one
/// run (directly or via TeeSink), then call `finalize()` — or just one
/// of the writers, which finalize for you.
class LineageTracker final : public EventSink {
 public:
  /// What finally happened to one emission attempt.
  enum class Fate : std::uint8_t {
    kPending,    ///< still in flight when the run ended
    kDelivered,  ///< delivered to its receiver
    kOmitted,    ///< suppressed by the adversary at emission time
    kDropped,    ///< receiver already crashed at emission time
    kWiped,      ///< accepted, then lost to the receiver's crash wipe
  };

  /// One emission attempt, indexed by `cause - 1`.
  struct EmissionRec {
    sim::ProcessId from = sim::kNoProcess;
    sim::ProcessId to = sim::kNoProcess;
    sim::GlobalStep emitted_at = 0;
    /// Step of delivery / omission / drop / wipe (meaning per fate).
    sim::GlobalStep resolved_at = 0;
    Fate fate = Fate::kPending;
  };

  /// One process's infection (it first held gossip 0).
  struct InfectionNode {
    sim::ProcessId process = sim::kNoProcess;
    sim::GlobalStep step = 0;
    /// Emission whose delivery infected it; 0 for roots.
    std::uint64_t cause = 0;
    /// Infecting sender; kNoProcess for roots.
    sim::ProcessId parent = sim::kNoProcess;
    std::uint32_t depth = 0;
    bool on_critical_path = false;
  };

  /// Node-like adversary decision (edge-like suppressions live in the
  /// EmissionRec fates instead).
  enum class ActionKind : std::uint8_t {
    kCrash,
    kDelayChange,
    kStepTimeChange,
  };
  struct AdversaryAction {
    ActionKind kind = ActionKind::kCrash;
    sim::ProcessId process = sim::kNoProcess;
    sim::GlobalStep step = 0;
    /// Emission the adversary was reacting to; 0 = decision taken from
    /// on_run_start / on_timer, outside any emission.
    std::uint64_t cause = 0;
    bool on_critical_path = false;
  };

  /// Budget attribution relative to the critical path.
  struct Attribution {
    std::uint64_t omissions_on = 0, omissions_off = 0;
    std::uint64_t drops_on = 0, drops_off = 0;
    std::uint64_t wipes_on = 0, wipes_off = 0;
    std::uint64_t crashes_on = 0, crashes_off = 0;
    std::uint64_t delay_changes_on = 0, delay_changes_off = 0;
    std::uint64_t step_time_changes_on = 0, step_time_changes_off = 0;
  };

  void on_event(const TraceEvent& event) override;

  /// Computes critical path, per-record attribution flags and the
  /// summary. Idempotent; every later on_event() is rejected.
  void finalize();
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  /// Rewinds the tracker for another run (capacity retained).
  void clear() noexcept;

  // --- results (all valid after finalize) ----------------------------------
  [[nodiscard]] const std::vector<EmissionRec>& emissions() const noexcept {
    return emissions_;
  }
  [[nodiscard]] const std::vector<InfectionNode>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const std::vector<AdversaryAction>& actions() const noexcept {
    return actions_;
  }
  /// Emission ids of the critical path, root-side first; empty when no
  /// process was infected or the last infection is itself a root.
  [[nodiscard]] const std::vector<std::uint64_t>& critical_path()
      const noexcept {
    return critical_path_;
  }
  [[nodiscard]] const Attribution& attribution() const noexcept {
    return attribution_;
  }
  /// The last process infected (the critical path's tip); index into
  /// nodes(), or nodes().size() when no process was ever infected.
  [[nodiscard]] std::size_t last_node_index() const noexcept {
    return nodes_.empty() ? 0 : nodes_.size() - 1;
  }
  [[nodiscard]] std::uint32_t depth_max() const noexcept { return depth_max_; }
  [[nodiscard]] std::uint32_t width_max() const noexcept { return width_max_; }
  /// Whether a suppressed emission delayed the chain that mattered:
  /// its target is a critical-path node and the emission predates the
  /// target's infection. Valid after finalize().
  [[nodiscard]] bool suppression_on_critical_path(
      const EmissionRec& rec) const noexcept {
    const std::size_t target = node_index(rec.to);
    return target != npos && nodes_[target].on_critical_path &&
           rec.emitted_at < nodes_[target].step;
  }

  /// Publishes lineage series into a campaign registry (after
  /// finalize): `lineage.infection_depth` (histogram, one sample per
  /// node), `lineage.critical_path_len` (histogram, one per run),
  /// `lineage.depth_max` / `lineage.width_max` (max gauges).
  void publish_metrics(MetricsRegistry& registry) const;

 private:
  std::vector<EmissionRec> emissions_;
  std::vector<InfectionNode> nodes_;
  std::vector<AdversaryAction> actions_;
  /// Emission ids accepted for each receiver and not yet resolved —
  /// the candidates a crash wipe kills. Lazily pruned: entries whose
  /// fate is no longer kPending are skipped at wipe time.
  std::vector<std::vector<std::uint64_t>> pending_by_receiver_;
  /// nodes_ index per process; npos when never infected.
  std::vector<std::size_t> node_of_process_;
  std::vector<std::uint64_t> critical_path_;
  Attribution attribution_;
  std::uint32_t depth_max_ = 0;
  std::uint32_t width_max_ = 0;
  bool finalized_ = false;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  [[nodiscard]] std::size_t node_index(sim::ProcessId p) const noexcept {
    return p < node_of_process_.size() ? node_of_process_[p] : npos;
  }
  void ensure_process(sim::ProcessId p);
};

/// Writes the `ugf-lineage-v1` NDJSON artifact (finalizes the tracker).
void write_lineage_ndjson(std::ostream& out, LineageTracker& tracker,
                          const TraceMeta& meta);

/// Writes the infection DAG as Chrome trace_event flow arrows
/// (finalizes the tracker).
void write_lineage_chrome(std::ostream& out, LineageTracker& tracker,
                          const TraceMeta& meta);

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void write_lineage_ndjson_file(const std::string& path,
                               LineageTracker& tracker, const TraceMeta& meta);
void write_lineage_chrome_file(const std::string& path,
                               LineageTracker& tracker, const TraceMeta& meta);

}  // namespace ugf::obs
