#include "obs/timeseries.hpp"

#include <algorithm>

#include "analysis/statistics.hpp"
#include "util/check.hpp"

namespace ugf::obs {

TimeSeries build_timeseries(const std::vector<TraceEvent>& events) {
  TimeSeries out;
  if (events.empty()) return out;

  std::uint32_t infected = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t cumulative = 0;
  std::uint32_t crashes = 0;
  std::uint64_t delay_changes = 0;
  std::uint64_t omitted = 0;
  std::uint64_t dropped = 0;

  const auto flush = [&](sim::GlobalStep step) {
    out.steps.push_back(step);
    out.infected.push_back(infected);
    out.in_flight.push_back(in_flight);
    out.cumulative_messages.push_back(cumulative);
    out.crashes.push_back(crashes);
    out.delay_changes.push_back(delay_changes);
    out.omitted.push_back(omitted);
    out.dropped.push_back(dropped);
  };

  sim::GlobalStep current = events.front().step;
  for (const TraceEvent& ev : events) {
    UGF_ASSERT_MSG(ev.step >= current,
                   "event stream went backwards: step %llu after %llu",
                   static_cast<unsigned long long>(ev.step),
                   static_cast<unsigned long long>(current));
    if (ev.step != current) {
      flush(current);
      current = ev.step;
    }
    switch (ev.type) {
      case EventType::kEmission:
        ++cumulative;
        ++in_flight;
        break;
      case EventType::kDelivery:
        UGF_ASSERT(in_flight > 0);
        --in_flight;
        break;
      case EventType::kDrop:
        UGF_ASSERT(in_flight >= ev.v0);
        in_flight -= ev.v0;
        dropped += ev.v0;
        break;
      case EventType::kOmission:
        // Suppressed at emission: counted as sent, never in flight.
        UGF_ASSERT(in_flight > 0);
        --in_flight;
        ++omitted;
        break;
      case EventType::kCrash:
        ++crashes;
        break;
      case EventType::kInfection:
        ++infected;
        break;
      case EventType::kDelayChange:
      case EventType::kStepTimeChange:
        ++delay_changes;
        break;
      case EventType::kStepBegin:
      case EventType::kStepEnd:
      case EventType::kSleep:
        break;  // scheduling events carry no series state
    }
  }
  flush(current);
  return out;
}

AggregateTimeSeries aggregate_timeseries(const std::vector<TimeSeries>& runs,
                                         std::size_t samples) {
  AggregateTimeSeries out;
  std::vector<const TimeSeries*> usable;
  usable.reserve(runs.size());
  sim::GlobalStep t_max = 0;
  for (const TimeSeries& run : runs) {
    if (run.empty()) continue;
    usable.push_back(&run);
    t_max = std::max(t_max, run.steps.back());
  }
  if (usable.empty()) return out;

  samples = std::max<std::size_t>(2, samples);
  out.runs = usable.size();
  out.t.reserve(samples);

  std::vector<double> scratch(usable.size());
  const auto column_quantiles =
      [&](sim::GlobalStep t, const auto& column_of,
          double* q1, double* median, double* q3) {
        for (std::size_t r = 0; r < usable.size(); ++r) {
          const TimeSeries& series = *usable[r];
          scratch[r] = timeseries_value_at(series, column_of(series), t);
        }
        std::sort(scratch.begin(), scratch.end());
        if (q1 != nullptr) *q1 = analysis::quantile_sorted(scratch, 0.25);
        if (median != nullptr)
          *median = analysis::quantile_sorted(scratch, 0.5);
        if (q3 != nullptr) *q3 = analysis::quantile_sorted(scratch, 0.75);
      };

  for (std::size_t i = 0; i < samples; ++i) {
    // Evenly spaced grid including both endpoints, deduplicated for
    // short runs where several samples round to the same step.
    const auto t = static_cast<sim::GlobalStep>(
        (static_cast<double>(t_max) * static_cast<double>(i)) /
        static_cast<double>(samples - 1));
    if (!out.t.empty() && static_cast<double>(t) <= out.t.back()) continue;
    out.t.push_back(static_cast<double>(t));

    double q1 = 0.0, median = 0.0, q3 = 0.0;
    column_quantiles(t, [](const TimeSeries& s) -> const auto& {
      return s.infected;
    }, &q1, &median, &q3);
    out.infected_q1.push_back(q1);
    out.infected_median.push_back(median);
    out.infected_q3.push_back(q3);

    column_quantiles(t, [](const TimeSeries& s) -> const auto& {
      return s.in_flight;
    }, nullptr, &median, nullptr);
    out.in_flight_median.push_back(median);

    column_quantiles(t, [](const TimeSeries& s) -> const auto& {
      return s.cumulative_messages;
    }, nullptr, &median, nullptr);
    out.cumulative_messages_median.push_back(median);

    column_quantiles(t, [](const TimeSeries& s) -> const auto& {
      return s.crashes;
    }, nullptr, &median, nullptr);
    out.crashes_median.push_back(median);

    column_quantiles(t, [](const TimeSeries& s) -> const auto& {
      return s.delay_changes;
    }, nullptr, &median, nullptr);
    out.delay_changes_median.push_back(median);
  }
  return out;
}

}  // namespace ugf::obs
