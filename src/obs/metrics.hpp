#pragma once

/// \file metrics.hpp
/// Campaign-wide metrics: named counters, max-gauges and log-linear
/// histograms that the engine and runner publish into while a sweep
/// executes. Storage follows the PhaseProfiler recipe — each metric
/// owns cache-line-padded per-thread cells written with relaxed
/// atomics, so Monte-Carlo workers never contend; `snapshot()` merges
/// the shards on the caller's thread. The whole layer is attach-to-pay:
/// a default-constructed handle (or a nullptr registry anywhere in the
/// config plumbing) makes every `add`/`record` a single branch.
///
/// Semantics per kind:
///   * Counter   — monotonically increasing sum across threads.
///   * Gauge     — high-water mark; shards merge via max. (Campaign
///     reporting wants "worst over the run", not a last-writer race.)
///   * Histogram — log-linear buckets: values < 16 get exact unit
///     buckets, then 4 sub-buckets per power of two up to 2^64, so
///     relative error is bounded by 12.5% at any scale. Tracks exact
///     count/sum/min/max alongside the buckets.
///
/// Handles are resolved once by name (`registry.counter("runner.runs")`)
/// under a mutex and are then lock-free to use; resolving the same name
/// twice returns a handle to the same metric. Names are reported in
/// sorted order, so every exporter is deterministic.

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ugf::util {
class JsonWriter;
}

namespace ugf::obs {

/// metrics.json schema version (bumped on breaking changes).
inline constexpr const char* kMetricsSchema = "ugf-metrics-v1";

inline constexpr std::size_t kHistogramLinearBuckets = 16;
inline constexpr std::size_t kNumHistogramBuckets = 256;

/// Bucket index for a recorded value: exact below 16, then 4
/// sub-buckets per octave ([2^e, 2^{e+1}) splits into quarters).
[[nodiscard]] constexpr std::size_t histogram_bucket(
    std::uint64_t value) noexcept {
  if (value < kHistogramLinearBuckets) return static_cast<std::size_t>(value);
  const int exp = 63 - std::countl_zero(value);  // >= 4
  const auto sub = static_cast<std::size_t>((value >> (exp - 2)) & 3);
  return kHistogramLinearBuckets + static_cast<std::size_t>(exp - 4) * 4 + sub;
}

/// Smallest value that lands in bucket `index` (inverse of the above).
[[nodiscard]] constexpr std::uint64_t histogram_bucket_lower(
    std::size_t index) noexcept {
  if (index < kHistogramLinearBuckets) return index;
  const std::size_t exp = 4 + (index - kHistogramLinearBuckets) / 4;
  const std::size_t sub = (index - kHistogramLinearBuckets) % 4;
  return (std::uint64_t{4} + sub) << (exp - 2);
}

namespace detail {

inline constexpr std::size_t kMaxMetricThreads = 128;

/// One padded per-thread cell of a counter or gauge.
struct alignas(64) MetricCell {
  std::atomic<std::uint64_t> value{0};
};

/// One thread's histogram shard; allocated lazily on first record so an
/// unused histogram costs one pointer array, not 128 x ~2 KiB.
struct HistogramShard {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> min{std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max{0};
  std::array<std::atomic<std::uint64_t>, kNumHistogramBuckets> buckets{};
};

struct alignas(64) HistogramSlot {
  std::atomic<HistogramShard*> shard{nullptr};
};

/// Process-wide small integer id for the calling thread (same recipe as
/// PhaseProfiler: threads beyond the cap share the last slot — still
/// correct, marginally contended).
[[nodiscard]] inline std::size_t metric_thread_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot = [] {
    const std::size_t id = next.fetch_add(1, std::memory_order_relaxed);
    return id < kMaxMetricThreads ? id : kMaxMetricThreads - 1;
  }();
  return slot;
}

inline void fetch_max_relaxed(std::atomic<std::uint64_t>& slot,
                              std::uint64_t value) noexcept {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur < value &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

inline void fetch_min_relaxed(std::atomic<std::uint64_t>& slot,
                              std::uint64_t value) noexcept {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur > value &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

class MetricsRegistry;

/// Lock-free counter handle; default-constructed handles are inert.
class Counter {
 public:
  Counter() = default;

  void add(std::uint64_t n = 1) const noexcept {
    if (cells_ == nullptr) return;
    cells_[detail::metric_thread_slot()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return cells_ != nullptr;
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::MetricCell* cells) noexcept : cells_(cells) {}
  detail::MetricCell* cells_ = nullptr;
};

/// High-water-mark gauge handle; merges across threads via max.
class Gauge {
 public:
  Gauge() = default;

  void note_max(std::uint64_t value) const noexcept {
    if (cells_ == nullptr) return;
    detail::fetch_max_relaxed(cells_[detail::metric_thread_slot()].value,
                              value);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return cells_ != nullptr;
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::MetricCell* cells) noexcept : cells_(cells) {}
  detail::MetricCell* cells_ = nullptr;
};

/// Log-linear histogram handle.
class Histogram {
 public:
  Histogram() = default;

  void record(std::uint64_t value) const noexcept;

  [[nodiscard]] explicit operator bool() const noexcept {
    return slots_ != nullptr;
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramSlot* slots) noexcept : slots_(slots) {}
  detail::HistogramSlot* slots_ = nullptr;
};

/// Merged view of one histogram at snapshot time.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;
  /// Non-empty buckets only, as (smallest value in bucket, count).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Lower bound of the bucket holding the q-quantile (q in [0,1]),
  /// clamped to [min, max]; 0 when empty.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;
};

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeValue {
  std::string name;
  std::uint64_t value = 0;
};

/// Point-in-time merge of a whole registry, names sorted per kind.
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramSnapshot> histograms;

  [[nodiscard]] const CounterValue* find_counter(
      std::string_view name) const noexcept;
  [[nodiscard]] const GaugeValue* find_gauge(
      std::string_view name) const noexcept;
  [[nodiscard]] const HistogramSnapshot* find_histogram(
      std::string_view name) const noexcept;
};

/// The registry. Thread-safe throughout: handle resolution takes a
/// mutex (cold path, once per batch), handle use is lock-free, and
/// `snapshot()` may run concurrently with writers (relaxed reads — the
/// result is a consistent-enough merge for reporting, exact once
/// writers have quiesced, e.g. after ThreadPool::parallel_for joins).
class MetricsRegistry {
 public:
  static constexpr std::size_t kMaxThreads = detail::kMaxMetricThreads;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Resolve-or-register by name. Re-resolving an existing name with a
  /// different kind throws std::logic_error.
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  [[nodiscard]] Histogram histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every metric; names and outstanding handles stay valid.
  void reset() noexcept;

 private:
  struct Metric;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Appends the snapshot as a `ugf-metrics-v1` JSON object to an open
/// writer (used standalone and embedded in run manifests).
void append_metrics_json(util::JsonWriter& json,
                         const MetricsSnapshot& snapshot);

/// Serializes a snapshot as a single `ugf-metrics-v1` JSON object.
void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot);
void write_metrics_json_file(const std::string& path,
                             const MetricsSnapshot& snapshot);

/// Serializes a snapshot in the Prometheus text exposition format
/// (names sanitized to [a-zA-Z0-9_:], counters suffixed `_total`,
/// histograms as cumulative `_bucket{le=...}` series).
void write_prometheus_text(std::ostream& out, const MetricsSnapshot& snapshot);
void write_prometheus_text_file(const std::string& path,
                                const MetricsSnapshot& snapshot);

}  // namespace ugf::obs
