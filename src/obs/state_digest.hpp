#pragma once
/// \file
/// \brief Deterministic per-step subsystem state digests with merkle
/// segmentation over contiguous pid ranges (`ugf-digest-v1`).
///
/// `StateDigester` is an engine-side probe: at a configurable step cadence
/// the engine folds every subsystem — process-table columns, protocol plane
/// state, pending inboxes, timing-wheel occupancy, payload-arena live stats,
/// per-process RNG stream positions — into 64-bit digests. Per-process
/// subsystems are segmented into a small merkle tree over contiguous pid
/// ranges, so comparing two streams localizes a mismatch to a pid shard,
/// not just a step. Everything the engine calls is header-inline, keeping
/// `ugf_sim` free of a link dependency on `ugf_obs`; only the NDJSON stream
/// writer lives in the .cpp.
///
/// Determinism contract: a digest stream is a pure function of
/// (config, factory, adversary) — identical across engine thread counts,
/// runner worker counts, and warm engine reuse. Anything that is not
/// (payload addresses, wheel sequence numbers, cumulative-across-reset
/// counters) must never be folded in.

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ugf::obs {

struct TraceMeta;

/// Schema identifier stamped into exported digest stream headers.
inline constexpr const char* kDigestSchema = "ugf-digest-v1";

/// Chain-init constant for segment folds. Validators never re-derive leaf
/// digests from raw state; they only recompute parents from leaves via
/// util::mix_seed, so this constant is private to the producer.
inline constexpr std::uint64_t kDigestInit = 0xD16E5715ULL;

/// Per-step, per-subsystem merkle digests of engine state.
///
/// Engine-facing protocol per sampled step:
///   begin_run(n) once per run, then for each sampled step:
///   begin_sample(step); fold_per_process(...)* / fold_accumulated(...) /
///   fold_global(...)*; end_sample().
///
/// Record capture (for export / comparison) is opt-in via start_capture();
/// without it the digester is compute-only and keeps just the latest root
/// per subsystem (for FlightRecorder post-mortems) plus counters, so a
/// cadence-1 probe on a long run costs no memory growth.
class StateDigester {
 public:
  struct Config {
    /// Sample every `cadence` global steps (step % cadence == 0). The final
    /// step of a run is always sampled regardless of cadence.
    std::uint64_t cadence = 1;
    /// Requested merkle leaf count; clamped per run to the largest power of
    /// two <= n (minimum 1).
    std::uint32_t leaf_segments = 8;
  };

  /// One emitted digest record. `subsystem` indexes names().
  struct Record {
    std::uint64_t step = 0;
    std::uint64_t digest = 0;
    std::uint32_t subsystem = 0;
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    std::uint8_t level = 0;  ///< 0 = root; each level splits the pid range.
  };

  /// Latest root digest seen for one subsystem (FlightRecorder snapshot).
  struct RootSnapshot {
    std::string subsystem;
    std::uint64_t step = 0;
    std::uint64_t digest = 0;
  };

  struct Stats {
    std::uint64_t samples = 0;    ///< Steps sampled this run.
    std::uint64_t records = 0;    ///< Digest records produced this run.
    std::uint64_t total_ns = 0;   ///< Wall time spent folding this run.
  };

  StateDigester() = default;
  explicit StateDigester(Config config) : config_(config) {}

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Enable structured record capture (required before write()/records()).
  void start_capture() noexcept { capture_ = true; }
  [[nodiscard]] bool capturing() const noexcept { return capture_; }

  /// Reset per-run state. Clears captured records, latest roots and the
  /// stats counters so a reset + rerun produces a byte-identical stream
  /// (and per-run stats for metrics publishing); the subsystem name
  /// table survives.
  void begin_run(std::uint32_t n) {
    stats_ = Stats{};
    n_ = n;
    leaves_ = 1;
    while (leaves_ * 2 <= config_.leaf_segments && leaves_ * 2 <= n_) {
      leaves_ *= 2;
    }
    if (n_ == 0) leaves_ = 1;
    scratch_.assign(n_, 0);
    acc_.assign(static_cast<std::size_t>(n_) + 1, 0);
    tree_.assign(static_cast<std::size_t>(leaves_) * 2, 0);
    records_.clear();
    latest_.clear();
    have_sampled_ = false;
    last_sampled_step_ = 0;
  }

  /// True when `step` should be sampled: matches the cadence (or is
  /// forced, e.g. the final step of a run) and was not already sampled.
  [[nodiscard]] bool should_sample(std::uint64_t step,
                                   bool force = false) const noexcept {
    if (have_sampled_ && step == last_sampled_step_) return false;
    if (!force && config_.cadence > 1 && step % config_.cadence != 0) {
      return false;
    }
    return true;
  }

  void begin_sample(std::uint64_t step) {
    step_ = step;
    have_sampled_ = true;
    last_sampled_step_ = step;
    // ugf-analyzer: allow(wallclock): probe self-timing telemetry only;
    // never feeds simulation state.
    t0_ = std::chrono::steady_clock::now();
  }

  void end_sample() {
    ++stats_.samples;
    // ugf-analyzer: allow(wallclock): probe self-timing telemetry only;
    // never feeds simulation state.
    const auto t1 = std::chrono::steady_clock::now();
    stats_.total_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0_)
            .count());
  }

  /// Fold a per-process subsystem: `fn(pid) -> uint64_t` is evaluated for
  /// every pid in [0, n) and the results are merkle-segmented.
  template <typename Fn>
  void fold_per_process(const char* name, Fn&& fn) {
    for (std::uint32_t p = 0; p < n_; ++p) {
      scratch_[p] = static_cast<std::uint64_t>(fn(p));
    }
    emit_tree(name, scratch_.data());
  }

  /// Zeroed per-pid accumulator of size n + 1 for order-insensitive folds
  /// (timing-wheel events arrive in shard-dependent order): callers
  /// wrapping-add commutative contributions into slot `pid`, or into the
  /// overflow slot [n] for events without an in-range pid (timers).
  [[nodiscard]] std::vector<std::uint64_t>& accumulator() noexcept {
    acc_.assign(static_cast<std::size_t>(n_) + 1, 0);
    return acc_;
  }

  /// Emit the merkle tree over accumulator slots [0, n). The overflow slot
  /// is left untouched for a subsequent fold_global().
  void fold_accumulated(const char* name) { emit_tree(name, acc_.data()); }

  /// Emit a single whole-range root record for scalar subsystem state.
  void fold_global(const char* name, std::uint64_t value) {
    emit_record(intern(name), 0, 0, n_, util::mix_seed(kDigestInit, value));
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint32_t leaves() const noexcept { return leaves_; }
  [[nodiscard]] const std::vector<Record>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return names_;
  }
  /// Latest root digest per subsystem, in first-fold order.
  [[nodiscard]] const std::vector<RootSnapshot>& latest_roots()
      const noexcept {
    return latest_;
  }

  /// Write the captured stream as `ugf-digest-v1` NDJSON (header line with
  /// run metadata, then one record per line). Defined in state_digest.cpp.
  void write(std::ostream& out, const TraceMeta& meta) const;
  /// write() to `path`; returns false (and writes nothing) on I/O failure.
  [[nodiscard]] bool write_file(const std::string& path,
                                const TraceMeta& meta) const;

 private:
  [[nodiscard]] std::uint32_t intern(const char* name) {
    for (std::uint32_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return i;
    }
    names_.emplace_back(name);
    return static_cast<std::uint32_t>(names_.size()) - 1;
  }

  void emit_record(std::uint32_t subsystem, std::uint8_t level,
                   std::uint32_t lo, std::uint32_t hi, std::uint64_t digest) {
    ++stats_.records;
    if (capture_) {
      records_.push_back(Record{step_, digest, subsystem, lo, hi, level});
    }
    if (level == 0) {
      for (auto& snap : latest_) {
        if (snap.subsystem == names_[subsystem]) {
          snap.step = step_;
          snap.digest = digest;
          return;
        }
      }
      latest_.push_back(RootSnapshot{names_[subsystem], step_, digest});
    }
  }

  /// Build and emit the merkle tree over `values[0..n)`: leaf i covers
  /// [i*n/L, (i+1)*n/L) and chains mix_seed over its pids from kDigestInit;
  /// parents are mix_seed(left, right). Records are emitted top-down
  /// (root = level 0) so consumers can bisect without buffering.
  void emit_tree(const char* name, const std::uint64_t* values) {
    const std::uint32_t sub = intern(name);
    const std::uint32_t leaves = leaves_;
    for (std::uint32_t i = 0; i < leaves; ++i) {
      const std::uint32_t lo = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(i) * n_ / leaves);
      const std::uint32_t hi = static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(i) + 1) * n_ / leaves);
      std::uint64_t h = kDigestInit;
      for (std::uint32_t p = lo; p < hi; ++p) {
        h = util::mix_seed(h, values[p]);
      }
      tree_[leaves + i] = h;
    }
    for (std::uint32_t i = leaves; i-- > 1;) {
      tree_[i] = util::mix_seed(tree_[2 * i], tree_[2 * i + 1]);
    }
    std::uint8_t level = 0;
    for (std::uint32_t width = 1; width <= leaves; width *= 2, ++level) {
      for (std::uint32_t j = 0; j < width; ++j) {
        const std::uint32_t lo = static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(j) * n_ / width);
        const std::uint32_t hi = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(j) + 1) * n_ / width);
        emit_record(sub, level, lo, hi, tree_[width + j]);
      }
    }
  }

  Config config_{};
  std::uint32_t n_ = 0;
  std::uint32_t leaves_ = 1;
  std::uint64_t step_ = 0;
  std::uint64_t last_sampled_step_ = 0;
  bool have_sampled_ = false;
  bool capture_ = false;
  std::vector<std::uint64_t> scratch_;
  std::vector<std::uint64_t> acc_;
  std::vector<std::uint64_t> tree_;
  std::vector<Record> records_;
  std::vector<std::string> names_;
  std::vector<RootSnapshot> latest_;
  Stats stats_{};
  std::chrono::steady_clock::time_point t0_{};
};

}  // namespace ugf::obs
