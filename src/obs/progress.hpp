#pragma once

/// \file progress.hpp
/// Live campaign progress on stderr. One SweepProgress instance is
/// shared by a whole figure run: the sweep thread reports batch
/// transitions (via SweepConfig::ProgressFn), Monte-Carlo workers tick
/// `note_run_complete()` once per finished run, and a throttled
/// renderer turns that into a single status line — runs done / total,
/// runs/sec, ETA, and how many workers are currently inside a batch.
///
/// Threading: `note_run_complete` / `note_worker_begin` /
/// `note_worker_end` are wait-free relaxed atomics plus an opportunistic
/// try-lock render, safe from any thread. `note_batch` and `finish`
/// take the render lock. Rendering is wall-clock-throttled (default 4
/// Hz on a TTY, 0.5 Hz otherwise), so per-run overhead is one atomic
/// increment and one clock read.
///
/// Output is presentation, not data: lines go to stderr, rewrite in
/// place only when stderr is a TTY, and are off by default in CI (the
/// `CI` environment variable) — figure CSV/JSON artifacts stay
/// byte-identical with progress on or off.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace ugf::obs {

class SweepProgress {
 public:
  struct Options {
    bool enabled = false;
    bool tty = false;               ///< rewrite one line with '\r'
    double min_interval_s = 0.25;   ///< render throttle (x8 off-TTY)
    std::FILE* out = nullptr;       ///< nullptr = stderr
  };

  /// TTY-aware defaults: enabled iff stderr is a TTY and $CI is unset;
  /// `force` overrides (+1 on, -1 off, 0 auto).
  [[nodiscard]] static Options auto_options(int force = 0);

  explicit SweepProgress(Options options);
  ~SweepProgress();

  SweepProgress(const SweepProgress&) = delete;
  SweepProgress& operator=(const SweepProgress&) = delete;

  /// Grows the denominator; call once per planned sweep/batch before
  /// the runs start so ETA is meaningful.
  void add_planned_runs(std::uint64_t runs) noexcept {
    total_.fetch_add(runs, std::memory_order_relaxed);
  }

  /// Sweep-thread batch transition (adapts SweepConfig::ProgressFn).
  void note_batch(const std::string& label, std::size_t done,
                  std::size_t total);

  /// One Monte-Carlo run finished (any worker thread).
  void note_run_complete() noexcept {
    done_.fetch_add(1, std::memory_order_relaxed);
    if (enabled_) maybe_render(false);
  }

  /// Worker entered / left a batch (utilization display).
  void note_worker_begin() noexcept {
    active_workers_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_worker_end() noexcept {
    active_workers_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Final render plus a trailing newline on TTYs; idempotent.
  void finish();

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] std::uint64_t runs_done() const noexcept {
    return done_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t runs_planned() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

  /// The status line as it would be rendered now (test seam).
  [[nodiscard]] std::string current_line() const;

 private:
  using clock = std::chrono::steady_clock;

  void maybe_render(bool force);
  void render_locked();
  [[nodiscard]] std::string build_line_locked() const;

  bool enabled_;
  bool tty_;
  double min_interval_s_;
  std::FILE* out_;
  clock::time_point start_;
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> active_workers_{0};
  std::atomic<std::int64_t> last_render_ns_{-1};
  mutable std::mutex mutex_;  ///< label + output interleaving
  std::string label_;
  std::size_t batch_done_ = 0;
  std::size_t batch_total_ = 0;
  std::size_t last_line_len_ = 0;
  bool finished_ = false;
};

}  // namespace ugf::obs
