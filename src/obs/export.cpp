#include "obs/export.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "util/csv.hpp"
#include "util/json.hpp"

namespace ugf::obs {

namespace {

/// JSON value for a ProcessId: the kNoProcess sentinel renders as null.
void process_or_null(util::JsonWriter& json, sim::ProcessId p) {
  if (p == sim::kNoProcess)
    json.null();
  else
    json.value(p);
}

std::string flow_id(sim::ProcessId from, sim::ProcessId to,
                    sim::GlobalStep sent_at) {
  return std::to_string(from) + ":" + std::to_string(to) + ":" +
         std::to_string(sent_at);
}

}  // namespace

void write_ndjson_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events,
                        const TraceMeta& meta) {
  {
    util::JsonWriter json;
    json.begin_object()
        .member("schema", kTraceSchema)
        .member("protocol", std::string_view(meta.protocol))
        .member("adversary", std::string_view(meta.adversary))
        .member("n", meta.n)
        .member("f", meta.f)
        .member("seed", meta.seed)
        .member("events", static_cast<std::uint64_t>(events.size()))
        .end_object();
    out << json.str() << "\n";
  }
  for (const TraceEvent& ev : events) {
    util::JsonWriter json;
    json.begin_object()
        .member("step", ev.step)
        .member("type", to_string(ev.type));
    json.key("p");
    process_or_null(json, ev.a);
    json.key("q");
    process_or_null(json, ev.b);
    json.member("v0", ev.v0).member("v1", ev.v1).end_object();
    out << json.str() << "\n";
  }
}

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events,
                        const TraceMeta& meta) {
  write_chrome_trace(out, events, meta, ChromeTraceOptions{});
}

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events,
                        const TraceMeta& meta,
                        const ChromeTraceOptions& options) {
  util::JsonWriter json;
  json.begin_object();
  json.key("traceEvents").begin_array();

  // Track naming: one "process" (the run), one thread row per process.
  json.begin_object()
      .member("name", "process_name")
      .member("ph", "M")
      .member("pid", 0)
      .key("args")
      .begin_object()
      .member("name", std::string_view("ugf run: " + meta.protocol + " vs " +
                                       meta.adversary))
      .end_object()
      .end_object();
  for (std::uint32_t p = 0; p < meta.n; ++p) {
    json.begin_object()
        .member("name", "thread_name")
        .member("ph", "M")
        .member("pid", 0)
        .member("tid", p)
        .key("args")
        .begin_object()
        .member("name", std::string_view("process " + std::to_string(p)))
        .end_object()
        .end_object();
  }

  const auto instant = [&](const char* name, const TraceEvent& ev) {
    json.begin_object()
        .member("name", name)
        .member("cat", "event")
        .member("ph", "i")
        .member("s", "t")
        .member("ts", ev.step)
        .member("pid", 0)
        .member("tid", ev.a)
        .end_object();
  };
  const auto counter = [&](const char* name, sim::GlobalStep ts,
                           std::uint64_t value) {
    json.begin_object()
        .member("name", name)
        .member("ph", "C")
        .member("ts", ts)
        .member("pid", 0)
        .key("args")
        .begin_object()
        .member(name, value)
        .end_object()
        .end_object();
  };

  // Open local steps per process (begin step), for X duration slices.
  std::vector<sim::GlobalStep> open_begin(meta.n, sim::kNeverStep);
  std::uint64_t in_flight = 0;

  for (const TraceEvent& ev : events) {
    switch (ev.type) {
      case EventType::kStepBegin:
        if (ev.a < meta.n) open_begin[ev.a] = ev.step;
        break;
      case EventType::kStepEnd: {
        if (ev.a >= meta.n || open_begin[ev.a] == sim::kNeverStep) break;
        const sim::GlobalStep begin = open_begin[ev.a];
        open_begin[ev.a] = sim::kNeverStep;
        json.begin_object()
            .member("name", "local step")
            .member("cat", "step")
            .member("ph", "X")
            .member("ts", begin)
            .member("dur", ev.step - begin)
            .member("pid", 0)
            .member("tid", ev.a)
            .key("args")
            .begin_object()
            .member("emitted", ev.v0)
            .member("delta", ev.v1)
            .end_object()
            .end_object();
        break;
      }
      case EventType::kEmission:
        ++in_flight;
        counter("in_flight", ev.step, in_flight);
        json.begin_object()
            .member("name", "msg")
            .member("cat", "msg")
            .member("ph", "s")
            .member("id", std::string_view(flow_id(ev.a, ev.b, ev.step)))
            .member("ts", ev.step)
            .member("pid", 0)
            .member("tid", ev.a)
            .end_object();
        break;
      case EventType::kDelivery:
        in_flight = in_flight > 0 ? in_flight - 1 : 0;
        counter("in_flight", ev.step, in_flight);
        if (options.delivery_flow_steps) {
          // Route the arrow through the physical arrival (v1); the
          // finish below stays at the delivery step, which can be
          // later when the receiver slept past the arrival.
          json.begin_object()
              .member("name", "msg")
              .member("cat", "msg")
              .member("ph", "t")
              .member("id", std::string_view(flow_id(ev.b, ev.a, ev.v0)))
              .member("ts", ev.v1)
              .member("pid", 0)
              .member("tid", ev.a)
              .end_object();
        }
        json.begin_object()
            .member("name", "msg")
            .member("cat", "msg")
            .member("ph", "f")
            .member("bp", "e")
            .member("id", std::string_view(flow_id(ev.b, ev.a, ev.v0)))
            .member("ts", ev.step)
            .member("pid", 0)
            .member("tid", ev.a)
            .end_object();
        break;
      case EventType::kDrop:
        in_flight = in_flight >= ev.v0 ? in_flight - ev.v0 : 0;
        counter("in_flight", ev.step, in_flight);
        instant("drop", ev);
        break;
      case EventType::kOmission:
        in_flight = in_flight > 0 ? in_flight - 1 : 0;
        counter("in_flight", ev.step, in_flight);
        instant("omission", ev);
        break;
      case EventType::kCrash:
        instant("crash", ev);
        break;
      case EventType::kInfection:
        instant("infection", ev);
        counter("infected", ev.step, ev.v0);
        break;
      case EventType::kSleep:
        instant("sleep", ev);
        break;
      case EventType::kDelayChange:
        instant("delay-change", ev);
        break;
      case EventType::kStepTimeChange:
        instant("step-time-change", ev);
        break;
    }
  }

  json.end_array();
  json.member("displayTimeUnit", "ms");
  json.key("otherData")
      .begin_object()
      .member("schema", kTraceSchema)
      .member("protocol", std::string_view(meta.protocol))
      .member("adversary", std::string_view(meta.adversary))
      .member("n", meta.n)
      .member("f", meta.f)
      .member("seed", meta.seed)
      .end_object();
  json.end_object();
  out << json.str() << "\n";
}

void write_timeseries_csv(const std::string& path, const TimeSeries& series) {
  util::CsvWriter csv(path,
                      {"step", "infected", "in_flight", "cumulative_messages",
                       "crashes", "delay_changes", "omitted", "dropped"});
  for (std::size_t i = 0; i < series.size(); ++i) {
    csv.row_values(series.steps[i], static_cast<std::uint64_t>(series.infected[i]),
                   series.in_flight[i], series.cumulative_messages[i],
                   static_cast<std::uint64_t>(series.crashes[i]),
                   series.delay_changes[i], series.omitted[i],
                   series.dropped[i]);
  }
}

namespace {

template <typename WriteFn>
void write_file(const std::string& path, const WriteFn& write) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("obs: cannot open " + path);
  write(out);
  out.flush();
  if (!out) throw std::runtime_error("obs: write failed for " + path);
}

}  // namespace

void write_ndjson_trace_file(const std::string& path,
                             const std::vector<TraceEvent>& events,
                             const TraceMeta& meta) {
  write_file(path,
             [&](std::ostream& out) { write_ndjson_trace(out, events, meta); });
}

void write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceEvent>& events,
                             const TraceMeta& meta,
                             const ChromeTraceOptions& options) {
  write_file(path, [&](std::ostream& out) {
    write_chrome_trace(out, events, meta, options);
  });
}

}  // namespace ugf::obs
