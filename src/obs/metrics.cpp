#include "obs/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "util/check.hpp"
#include "util/json.hpp"

namespace ugf::obs {

void Histogram::record(std::uint64_t value) const noexcept {
  if (slots_ == nullptr) return;
  detail::HistogramSlot& slot = slots_[detail::metric_thread_slot()];
  detail::HistogramShard* shard = slot.shard.load(std::memory_order_acquire);
  if (shard == nullptr) {
    auto* fresh = new detail::HistogramShard();
    detail::HistogramShard* expected = nullptr;
    // Only this thread ever writes its own slot, but threads past the
    // slot cap share the last one — CAS keeps that case leak-free.
    if (slot.shard.compare_exchange_strong(expected, fresh,
                                           std::memory_order_acq_rel)) {
      shard = fresh;
    } else {
      delete fresh;
      shard = expected;
    }
  }
  shard->count.fetch_add(1, std::memory_order_relaxed);
  shard->sum.fetch_add(value, std::memory_order_relaxed);
  detail::fetch_min_relaxed(shard->min, value);
  detail::fetch_max_relaxed(shard->max, value);
  shard->buckets[histogram_bucket(value)].fetch_add(1,
                                                    std::memory_order_relaxed);
}

std::uint64_t HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Rank of the target sample (1-based, ceil) in cumulative counts.
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count) + 0.999999999999);
  std::uint64_t seen = 0;
  for (const auto& [lower, n] : buckets) {
    seen += n;
    if (seen >= rank) return std::clamp(lower, min, max);
  }
  return max;
}

namespace {

const CounterValue* find_named(const std::vector<CounterValue>& v,
                               std::string_view name) noexcept {
  for (const auto& e : v)
    if (e.name == name) return &e;
  return nullptr;
}

}  // namespace

const CounterValue* MetricsSnapshot::find_counter(
    std::string_view name) const noexcept {
  return find_named(counters, name);
}

const GaugeValue* MetricsSnapshot::find_gauge(
    std::string_view name) const noexcept {
  for (const auto& e : gauges)
    if (e.name == name) return &e;
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::find_histogram(
    std::string_view name) const noexcept {
  for (const auto& e : histograms)
    if (e.name == name) return &e;
  return nullptr;
}

// --- registry internals ----------------------------------------------------

struct MetricsRegistry::Metric {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  explicit Metric(Kind k) : kind(k) {
    if (kind == Kind::kHistogram) {
      slots = std::make_unique<detail::HistogramSlot[]>(kMaxThreads);
    } else {
      cells = std::make_unique<detail::MetricCell[]>(kMaxThreads);
    }
  }

  ~Metric() {
    if (slots == nullptr) return;
    for (std::size_t i = 0; i < kMaxThreads; ++i)
      delete slots[i].shard.load(std::memory_order_acquire);
  }

  Metric(const Metric&) = delete;
  Metric& operator=(const Metric&) = delete;

  Kind kind;
  std::unique_ptr<detail::MetricCell[]> cells;      // counter / gauge
  std::unique_ptr<detail::HistogramSlot[]> slots;   // histogram
};

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  // Sorted by name so snapshots and exports are deterministic. Metric
  // objects are heap-stable: handles keep raw pointers into them.
  std::map<std::string, std::unique_ptr<Metric>, std::less<>> metrics;

  Metric& resolve(std::string_view name, Metric::Kind kind) {
    const std::lock_guard<std::mutex> lock(mutex);
    const auto it = metrics.find(name);
    if (it != metrics.end()) {
      if (it->second->kind != kind)
        throw std::logic_error("MetricsRegistry: \"" + std::string(name) +
                               "\" re-registered with a different kind");
      return *it->second;
    }
    auto [pos, inserted] =
        metrics.emplace(std::string(name), std::make_unique<Metric>(kind));
    UGF_ASSERT(inserted);
    return *pos->second;
  }
};

MetricsRegistry::MetricsRegistry() : impl_(std::make_unique<Impl>()) {}
MetricsRegistry::~MetricsRegistry() = default;

Counter MetricsRegistry::counter(std::string_view name) {
  return Counter(impl_->resolve(name, Metric::Kind::kCounter).cells.get());
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  return Gauge(impl_->resolve(name, Metric::Kind::kGauge).cells.get());
}

Histogram MetricsRegistry::histogram(std::string_view name) {
  return Histogram(impl_->resolve(name, Metric::Kind::kHistogram).slots.get());
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  MetricsSnapshot out;
  for (const auto& [name, metric] : impl_->metrics) {
    switch (metric->kind) {
      case Metric::Kind::kCounter: {
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < kMaxThreads; ++i)
          total += metric->cells[i].value.load(std::memory_order_relaxed);
        out.counters.push_back({name, total});
        break;
      }
      case Metric::Kind::kGauge: {
        std::uint64_t peak = 0;
        for (std::size_t i = 0; i < kMaxThreads; ++i)
          peak = std::max(
              peak, metric->cells[i].value.load(std::memory_order_relaxed));
        out.gauges.push_back({name, peak});
        break;
      }
      case Metric::Kind::kHistogram: {
        HistogramSnapshot h;
        h.name = name;
        h.min = std::numeric_limits<std::uint64_t>::max();
        std::array<std::uint64_t, kNumHistogramBuckets> buckets{};
        for (std::size_t i = 0; i < kMaxThreads; ++i) {
          const detail::HistogramShard* shard =
              metric->slots[i].shard.load(std::memory_order_acquire);
          if (shard == nullptr) continue;
          h.count += shard->count.load(std::memory_order_relaxed);
          h.sum += shard->sum.load(std::memory_order_relaxed);
          h.min =
              std::min(h.min, shard->min.load(std::memory_order_relaxed));
          h.max =
              std::max(h.max, shard->max.load(std::memory_order_relaxed));
          for (std::size_t b = 0; b < kNumHistogramBuckets; ++b)
            buckets[b] += shard->buckets[b].load(std::memory_order_relaxed);
        }
        if (h.count == 0) h.min = 0;
        for (std::size_t b = 0; b < kNumHistogramBuckets; ++b)
          if (buckets[b] != 0)
            h.buckets.emplace_back(histogram_bucket_lower(b), buckets[b]);
        out.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::reset() noexcept {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& [name, metric] : impl_->metrics) {
    if (metric->cells != nullptr) {
      for (std::size_t i = 0; i < kMaxThreads; ++i)
        metric->cells[i].value.store(0, std::memory_order_relaxed);
    }
    if (metric->slots != nullptr) {
      for (std::size_t i = 0; i < kMaxThreads; ++i) {
        detail::HistogramShard* shard =
            metric->slots[i].shard.load(std::memory_order_acquire);
        if (shard == nullptr) continue;
        shard->count.store(0, std::memory_order_relaxed);
        shard->sum.store(0, std::memory_order_relaxed);
        shard->min.store(std::numeric_limits<std::uint64_t>::max(),
                         std::memory_order_relaxed);
        shard->max.store(0, std::memory_order_relaxed);
        for (auto& bucket : shard->buckets)
          bucket.store(0, std::memory_order_relaxed);
      }
    }
  }
}

// --- exporters -------------------------------------------------------------

void append_metrics_json(util::JsonWriter& json,
                         const MetricsSnapshot& snapshot) {
  json.begin_object().member("schema", kMetricsSchema);
  json.key("counters").begin_object();
  for (const auto& c : snapshot.counters)
    json.member(c.name, c.value);
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& g : snapshot.gauges)
    json.member(g.name, g.value);
  json.end_object();
  json.key("histograms").begin_object();
  for (const auto& h : snapshot.histograms) {
    json.key(h.name)
        .begin_object()
        .member("count", h.count)
        .member("sum", h.sum)
        .member("min", h.min)
        .member("max", h.max);
    json.key("buckets").begin_array();
    for (const auto& [lower, count] : h.buckets)
      json.begin_array().value(lower).value(count).end_array();
    json.end_array().end_object();
  }
  json.end_object().end_object();
}

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot) {
  util::JsonWriter json;
  append_metrics_json(json, snapshot);
  out << json.str() << "\n";
}

namespace {

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 4);
  out += "ugf_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

template <typename WriteFn>
void write_file(const std::string& path, const WriteFn& write) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("obs: cannot open " + path);
  write(out);
  out.flush();
  if (!out) throw std::runtime_error("obs: write failed for " + path);
}

}  // namespace

void write_prometheus_text(std::ostream& out,
                           const MetricsSnapshot& snapshot) {
  for (const auto& c : snapshot.counters) {
    const std::string name = prometheus_name(c.name);
    out << "# TYPE " << name << "_total counter\n"
        << name << "_total " << c.value << "\n";
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = prometheus_name(g.name);
    out << "# TYPE " << name << " gauge\n" << name << " " << g.value << "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = prometheus_name(h.name);
    out << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [lower, count] : h.buckets) {
      cumulative += count;
      // Our buckets cover integer ranges [lower, next_lower); the
      // inclusive Prometheus upper bound is the largest member.
      const std::size_t index = histogram_bucket(lower);
      const std::uint64_t upper =
          index + 1 < kNumHistogramBuckets
              ? histogram_bucket_lower(index + 1) - 1
              : std::numeric_limits<std::uint64_t>::max();
      out << name << "_bucket{le=\"" << upper << "\"} " << cumulative << "\n";
    }
    out << name << "_bucket{le=\"+Inf\"} " << h.count << "\n"
        << name << "_sum " << h.sum << "\n"
        << name << "_count " << h.count << "\n";
  }
}

void write_metrics_json_file(const std::string& path,
                             const MetricsSnapshot& snapshot) {
  write_file(path,
             [&](std::ostream& out) { write_metrics_json(out, snapshot); });
}

void write_prometheus_text_file(const std::string& path,
                                const MetricsSnapshot& snapshot) {
  write_file(path,
             [&](std::ostream& out) { write_prometheus_text(out, snapshot); });
}

}  // namespace ugf::obs
