#pragma once

/// \file profile.hpp
/// Phase profiling: scoped wall-clock counters that answer "where does
/// a sweep's time go" — engine step loop, protocol callbacks, adversary
/// callbacks, stats reduction, time-series derivation, export. A
/// `PhaseProfiler` accumulates nanoseconds and call counts per phase in
/// per-thread slots (cache-line padded, relaxed atomics), so the
/// Monte-Carlo thread pool's workers never contend; totals are summed
/// at report time. A `ScopedPhase` with a nullptr profiler costs one
/// branch — the same "attach to pay" contract as the event sink.
///
/// Phases overlap by design: kEngineRun covers a whole Engine::run(),
/// which *includes* the protocol/adversary callback time measured
/// separately; the report derives the engine-only residue. Timing adds
/// two steady_clock reads per scope, so profiled runs are themselves a
/// few percent slower — profiles tell you *where* time goes, the
/// micro-benches tell you *how much* it is.

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>

namespace ugf::obs {

enum class Phase : std::uint8_t {
  kEngineRun,       ///< whole Engine::run() (includes callbacks)
  kProtocol,        ///< Protocol::on_message / on_local_step
  kAdversary,       ///< Adversary hooks (run-start, emission, timer)
  kStatsReduction,  ///< batch summaries / aggregation in the runner
  kTimeseries,      ///< per-run time-series derivation
  kExport,          ///< trace / CSV serialization
};

inline constexpr std::size_t kNumPhases = 6;

[[nodiscard]] constexpr const char* to_string(Phase phase) noexcept {
  switch (phase) {
    case Phase::kEngineRun: return "engine run loop";
    case Phase::kProtocol: return "protocol callbacks";
    case Phase::kAdversary: return "adversary callbacks";
    case Phase::kStatsReduction: return "stats reduction";
    case Phase::kTimeseries: return "time-series derivation";
    case Phase::kExport: return "trace/CSV export";
  }
  return "unknown";
}

/// Scheduler-health gauges the engine reports once per run from its
/// timing wheel (sim/timing_wheel.hpp). Plain numbers so obs stays
/// independent of sim. Aggregation across runs/threads: maxima combine
/// via max, counters sum.
struct SchedulerStats {
  std::uint64_t runs = 0;           ///< engine runs that reported
  std::uint64_t max_buckets = 0;    ///< occupied-bucket high-water mark
  std::uint64_t max_spill = 0;      ///< spill-list high-water mark
  std::uint64_t max_horizon = 0;    ///< max steps ahead ever scheduled
  std::uint64_t cascades = 0;       ///< wheel bucket cascades
  std::uint64_t spill_refiles = 0;  ///< events refiled out of the spill
};

/// Aggregated totals of one profiler (sum over all thread slots).
struct PhaseTotals {
  std::array<std::uint64_t, kNumPhases> ns{};
  std::array<std::uint64_t, kNumPhases> calls{};
  std::size_t threads = 0;  ///< distinct thread slots that reported

  [[nodiscard]] std::uint64_t ns_of(Phase phase) const noexcept {
    return ns[static_cast<std::size_t>(phase)];
  }
  [[nodiscard]] std::uint64_t calls_of(Phase phase) const noexcept {
    return calls[static_cast<std::size_t>(phase)];
  }
};

/// Thread-safe phase accumulator. Any number of threads may `add`
/// concurrently; each writes its own padded slot (slot index is a
/// process-wide thread id, so a thread keeps its slot across
/// profilers). Threads beyond kMaxThreads share the last slot — still
/// correct, marginally contended.
class PhaseProfiler {
 public:
  using clock = std::chrono::steady_clock;
  static constexpr std::size_t kMaxThreads = 128;

  void add(Phase phase, std::uint64_t ns, std::uint64_t calls = 1) noexcept {
    Slot& slot = slots_[thread_slot()];
    const auto p = static_cast<std::size_t>(phase);
    slot.ns[p].fetch_add(ns, std::memory_order_relaxed);
    slot.calls[p].fetch_add(calls, std::memory_order_relaxed);
  }

  [[nodiscard]] PhaseTotals totals() const noexcept {
    PhaseTotals out;
    for (const Slot& slot : slots_) {
      bool used = false;
      for (std::size_t p = 0; p < kNumPhases; ++p) {
        const std::uint64_t calls =
            slot.calls[p].load(std::memory_order_relaxed);
        out.ns[p] += slot.ns[p].load(std::memory_order_relaxed);
        out.calls[p] += calls;
        used = used || calls != 0;
      }
      if (used) ++out.threads;
    }
    return out;
  }

  /// Folds one run's scheduler gauges into the profiler (thread-safe;
  /// called by Engine::run at the end of each profiled run).
  void note_scheduler(const SchedulerStats& stats) noexcept {
    sched_runs_.fetch_add(1, std::memory_order_relaxed);
    fetch_max(sched_max_buckets_, stats.max_buckets);
    fetch_max(sched_max_spill_, stats.max_spill);
    fetch_max(sched_max_horizon_, stats.max_horizon);
    sched_cascades_.fetch_add(stats.cascades, std::memory_order_relaxed);
    sched_spill_refiles_.fetch_add(stats.spill_refiles,
                                   std::memory_order_relaxed);
  }

  [[nodiscard]] SchedulerStats scheduler_totals() const noexcept {
    SchedulerStats out;
    out.runs = sched_runs_.load(std::memory_order_relaxed);
    out.max_buckets = sched_max_buckets_.load(std::memory_order_relaxed);
    out.max_spill = sched_max_spill_.load(std::memory_order_relaxed);
    out.max_horizon = sched_max_horizon_.load(std::memory_order_relaxed);
    out.cascades = sched_cascades_.load(std::memory_order_relaxed);
    out.spill_refiles = sched_spill_refiles_.load(std::memory_order_relaxed);
    return out;
  }

  void reset() noexcept {
    for (Slot& slot : slots_) {
      for (std::size_t p = 0; p < kNumPhases; ++p) {
        slot.ns[p].store(0, std::memory_order_relaxed);
        slot.calls[p].store(0, std::memory_order_relaxed);
      }
    }
    sched_runs_.store(0, std::memory_order_relaxed);
    sched_max_buckets_.store(0, std::memory_order_relaxed);
    sched_max_spill_.store(0, std::memory_order_relaxed);
    sched_max_horizon_.store(0, std::memory_order_relaxed);
    sched_cascades_.store(0, std::memory_order_relaxed);
    sched_spill_refiles_.store(0, std::memory_order_relaxed);
  }

 private:
  static void fetch_max(std::atomic<std::uint64_t>& slot,
                        std::uint64_t value) noexcept {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (cur < value &&
           !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }

  struct alignas(64) Slot {
    std::array<std::atomic<std::uint64_t>, kNumPhases> ns{};
    std::array<std::atomic<std::uint64_t>, kNumPhases> calls{};
  };

  static std::size_t thread_slot() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t slot = [] {
      const std::size_t id = next.fetch_add(1, std::memory_order_relaxed);
      return id < kMaxThreads ? id : kMaxThreads - 1;
    }();
    return slot;
  }

  std::array<Slot, kMaxThreads> slots_{};
  std::atomic<std::uint64_t> sched_runs_{0};
  std::atomic<std::uint64_t> sched_max_buckets_{0};
  std::atomic<std::uint64_t> sched_max_spill_{0};
  std::atomic<std::uint64_t> sched_max_horizon_{0};
  std::atomic<std::uint64_t> sched_cascades_{0};
  std::atomic<std::uint64_t> sched_spill_refiles_{0};
};

/// RAII scope: measures its own lifetime into `profiler` (no-op when
/// profiler is nullptr, which is the disabled-observability fast path).
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler* profiler, Phase phase) noexcept
      : profiler_(profiler), phase_(phase) {
    if (profiler_ != nullptr) start_ = PhaseProfiler::clock::now();
  }

  ~ScopedPhase() {
    if (profiler_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          PhaseProfiler::clock::now() - start_)
                          .count();
      profiler_->add(phase_, static_cast<std::uint64_t>(ns));
    }
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfiler* profiler_;
  Phase phase_;
  PhaseProfiler::clock::time_point start_{};
};

/// Prints the per-phase table (calls, total ms, ns/call, share of the
/// engine-run total, plus the engine-only residue row).
void print_phase_table(std::ostream& out, const PhaseProfiler& profiler);

}  // namespace ugf::obs
