#include "obs/flight_recorder.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/state_digest.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace ugf::obs {

namespace {

std::mutex& dump_dir_mutex() {
  // ugf-analyzer: allow(shared-state): process-wide dump-dir lock, set once at config time
  static std::mutex m;
  return m;
}

std::string& dump_dir_storage() {
  // ugf-analyzer: allow(shared-state): dump dir is process-global config; uses dump_dir_mutex()
  static std::string dir = ".";
  return dir;
}

std::string resolved_dump_dir() {
  // The environment wins so a wedged CI job can be re-pointed without
  // rebuilding; otherwise whatever the binary configured.
  if (const char* env = std::getenv("UGF_FLIGHT_DIR");
      env != nullptr && env[0] != '\0')
    return env;
  const std::lock_guard<std::mutex> lock(dump_dir_mutex());
  return dump_dir_storage();
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? kDefaultCapacity : capacity),
      owner_thread_(std::this_thread::get_id()) {
  hook_id_ = util::add_check_failure_hook(&FlightRecorder::on_check_failure,
                                          this);
}

FlightRecorder::~FlightRecorder() {
  util::remove_check_failure_hook(hook_id_);
}

void FlightRecorder::bind(Context context, const MetricsRegistry* metrics,
                          const StateDigester* digester) noexcept {
  ring_.clear();
  context_ = std::move(context);
  metrics_ = metrics;
  digester_ = digester;
  owner_thread_ = std::this_thread::get_id();
}

std::string FlightRecorder::dump(const std::string& dir) const {
  TraceMeta meta;
  meta.protocol = context_.protocol;
  meta.adversary = context_.adversary;
  meta.n = context_.n;
  meta.f = context_.f;
  meta.seed = context_.seed;

  const std::string stem =
      dir + "/ugf-flight-n" + std::to_string(context_.n) + "-seed" +
      std::to_string(context_.seed);
  write_ndjson_trace_file(stem + ".ndjson", ring_.events(), meta);
  if (metrics_ != nullptr)
    write_metrics_json_file(stem + ".metrics.json", metrics_->snapshot());
  if (digester_ != nullptr && !digester_->latest_roots().empty()) {
    std::ofstream out(stem + ".digest.ndjson", std::ios::binary);
    if (!out)
      throw std::runtime_error("flight recorder: cannot write digest dump");
    for (const StateDigester::RootSnapshot& snap : digester_->latest_roots()) {
      util::JsonWriter json;
      char hex[17];
      std::snprintf(hex, sizeof hex, "%016llx",
                    static_cast<unsigned long long>(snap.digest));
      json.begin_object()
          .member("subsystem", std::string_view(snap.subsystem))
          .member("step", snap.step)
          .member("digest", std::string_view(hex))
          .end_object();
      out << json.str() << "\n";
    }
  }
  return stem;
}

void FlightRecorder::set_dump_dir(std::string dir) {
  const std::lock_guard<std::mutex> lock(dump_dir_mutex());
  dump_dir_storage() = std::move(dir);
}

void FlightRecorder::on_check_failure(void* self) noexcept {
  const auto* recorder = static_cast<const FlightRecorder*>(self);
  if (recorder->owner_thread_ != std::this_thread::get_id()) return;
  try {
    const std::string stem = recorder->dump(resolved_dump_dir());
    std::fprintf(stderr,
                 "flight recorder: %zu events (%llu dropped) -> %s.ndjson\n",
                 recorder->ring_.size(),
                 static_cast<unsigned long long>(
                     recorder->ring_.dropped_events()),
                 stem.c_str());
    if (recorder->metrics_ != nullptr)
      std::fprintf(stderr, "flight recorder: metrics -> %s.metrics.json\n",
                   stem.c_str());
    if (recorder->digester_ != nullptr &&
        !recorder->digester_->latest_roots().empty())
      std::fprintf(stderr, "flight recorder: digests -> %s.digest.ndjson\n",
                   stem.c_str());
  } catch (const std::exception& err) {
    std::fprintf(stderr, "flight recorder: dump failed: %s\n", err.what());
  }
}

}  // namespace ugf::obs
