#include "obs/profile.hpp"

#include <iomanip>
#include <ostream>

namespace ugf::obs {

void print_phase_table(std::ostream& out, const PhaseProfiler& profiler) {
  const auto saved_flags = out.flags();
  const auto saved_precision = out.precision();
  const PhaseTotals totals = profiler.totals();
  const double engine_ns =
      static_cast<double>(totals.ns_of(Phase::kEngineRun));

  out << "phase profile (" << totals.threads << " thread"
      << (totals.threads == 1 ? "" : "s") << "):\n";
  out << "  " << std::left << std::setw(24) << "phase" << std::right
      << std::setw(12) << "calls" << std::setw(12) << "total ms"
      << std::setw(12) << "ns/call" << std::setw(10) << "% engine" << "\n";

  const auto row = [&](const char* label, std::uint64_t ns,
                       std::uint64_t calls) {
    const double ms = static_cast<double>(ns) / 1e6;
    const double per_call =
        calls != 0 ? static_cast<double>(ns) / static_cast<double>(calls)
                   : 0.0;
    const double share =
        engine_ns > 0.0 ? 100.0 * static_cast<double>(ns) / engine_ns : 0.0;
    out << "  " << std::left << std::setw(24) << label << std::right
        << std::setw(12) << calls << std::setw(12) << std::fixed
        << std::setprecision(2) << ms << std::setw(12) << std::setprecision(0)
        << per_call << std::setw(9) << std::setprecision(1) << share << "%"
        << "\n";
  };

  constexpr Phase kOrder[] = {Phase::kEngineRun,      Phase::kProtocol,
                              Phase::kAdversary,      Phase::kStatsReduction,
                              Phase::kTimeseries,     Phase::kExport};
  for (const Phase phase : kOrder)
    row(to_string(phase), totals.ns_of(phase), totals.calls_of(phase));

  // The engine-only residue: run-loop time not spent in callbacks.
  const std::uint64_t callbacks =
      totals.ns_of(Phase::kProtocol) + totals.ns_of(Phase::kAdversary);
  const std::uint64_t engine_total = totals.ns_of(Phase::kEngineRun);
  row("engine (self)", engine_total > callbacks ? engine_total - callbacks : 0,
      totals.calls_of(Phase::kEngineRun));

  // Scheduler health: the engine's timing-wheel gauges. Maxima are
  // high-water marks over all reporting runs, counters are totals.
  const SchedulerStats sched = profiler.scheduler_totals();
  if (sched.runs != 0) {
    out << "scheduler (timing wheel, " << sched.runs << " run"
        << (sched.runs == 1 ? "" : "s") << "):\n"
        << "  max occupied buckets    " << std::setw(12) << sched.max_buckets
        << "\n"
        << "  max spill-list size     " << std::setw(12) << sched.max_spill
        << "\n"
        << "  max schedule horizon    " << std::setw(12) << sched.max_horizon
        << " steps\n"
        << "  cascades                " << std::setw(12) << sched.cascades
        << "\n"
        << "  spill refiles           " << std::setw(12) << sched.spill_refiles
        << "\n";
  }
  out.flags(saved_flags);
  out.precision(saved_precision);
}

}  // namespace ugf::obs
