#pragma once

/// \file event.hpp
/// The typed event stream of one simulated run — the contract between
/// the engine (producer) and every observability consumer (recorders,
/// time-series derivation, exporters). One `TraceEvent` is one observed
/// fact; the engine emits them in non-decreasing `step` order behind a
/// `sink != nullptr` gate, so a run without an attached sink pays one
/// predicted-not-taken branch per would-be event and nothing else.
///
/// Per-type field meaning (fields not listed are zero / kNoProcess):
///
///   type            step           a (primary)   b (secondary)  v0                     v1
///   --------------  -------------  ------------  -------------  ---------------------  -----------------
///   kEmission       emission step  sender        receiver       sender M_rho (incl.)   d_rho at emission
///   kDelivery       delivery step  receiver      sender         sent_at                arrives_at
///   kDrop           drop step      receiver      sender*        messages dropped       0
///   kOmission       emission step  sender        receiver       0                      0
///   kCrash          crash step     crashed       —              pending inbox wiped    crashes used (incl.)
///   kInfection      step           newly reached —              reached count (incl.)  0
///   kStepBegin      step s         process       —              pending inbox size     0
///   kStepEnd        step s+delta   process       —              messages emitted       delta_rho
///   kSleep          step           process       —              0                      0
///   kDelayChange    step           process       —              new d_rho              old d_rho
///   kStepTimeChange step           process       —              new delta_rho          old delta_rho
///
///   (*) a kDrop with b == kNoProcess is an inbox wipe at a crash; v0
///       carries the number of in-flight messages lost. Emission-time
///       drops (receiver already crashed) have v0 == 1 and a real b.
///
/// Causality (`cause`, 0 = no cause): every emission attempt gets a
/// 1-based id, assigned in emission order by the engine (the same
/// counter that breaks inbox arrival ties, so ids are free). An event's
/// `cause` names the emission that triggered it:
///
///   kEmission        its own emission id
///   kDelivery        the delivering emission's id
///   kOmission        the suppressed emission's id
///   kDrop (b != no)  the dropped emission's id
///   kInfection       the emission whose delivery first handed process
///                    `a` gossip 0 this step (0: infected at run start
///                    or via local protocol state)
///   kCrash, kDrop(wipe), kDelayChange, kStepTimeChange
///                    the emission the adversary was reacting to when
///                    it took the decision (0: decision taken from
///                    on_run_start / on_timer, outside any emission)
///
/// `obs::LineageTracker` (obs/lineage.hpp) folds these ids into the
/// propagation DAG and the run's critical infection path.
///
/// Within one step the producer order is: kStepBegin, deliveries, then
/// (at the end step) one kEmission per queued message followed by the
/// adversary's reaction to it (kDelayChange / kStepTimeChange / kCrash
/// with its inbox-wipe kDrop / kOmission / per-message kDrop), then
/// kStepEnd and possibly kSleep. A kEmission's v1 records d_rho *before*
/// the adversary hook ran; if the hook retargets d_rho, the kDelivery's
/// arrives_at reflects the new value and a kDelayChange documents the
/// switch. kDelayChange / kStepTimeChange fire only when the value
/// actually changes, so counting them counts real adversary decisions.
///
/// "Infection" is rumor spreading measured on the paper's own terms:
/// a process is counted once it holds the gossip that originated at
/// process 0 (`Protocol::has_gossip_of(0)`), and stays counted even if
/// it crashes later, so `infected(t)` is monotone by construction.
///
/// Schema stability: the NDJSON rendering of this table is versioned as
/// `ugf-trace-v1` (see obs/export.hpp). Adding event types or fields is
/// a compatible extension; changing the meaning of an existing field
/// bumps the version. docs/OBSERVABILITY.md is the reference.

#include <compare>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace ugf::obs {

enum class EventType : std::uint8_t {
  kEmission,
  kDelivery,
  kDrop,
  kOmission,
  kCrash,
  kInfection,
  kStepBegin,
  kStepEnd,
  kSleep,
  kDelayChange,
  kStepTimeChange,
};

/// Number of distinct EventType values (for histogram arrays).
inline constexpr std::size_t kNumEventTypes = 11;

/// Stable lowercase identifier used by the exporters ("emission", ...).
[[nodiscard]] constexpr const char* to_string(EventType type) noexcept {
  switch (type) {
    case EventType::kEmission: return "emission";
    case EventType::kDelivery: return "delivery";
    case EventType::kDrop: return "drop";
    case EventType::kOmission: return "omission";
    case EventType::kCrash: return "crash";
    case EventType::kInfection: return "infection";
    case EventType::kStepBegin: return "step-begin";
    case EventType::kStepEnd: return "step-end";
    case EventType::kSleep: return "sleep";
    case EventType::kDelayChange: return "delay-change";
    case EventType::kStepTimeChange: return "step-time-change";
  }
  return "unknown";
}

/// One observed fact of a run. Plain data, 48 bytes, trivially copyable
/// — cheap enough to record by value at tens of millions per run.
/// `cause` sits last so pre-causality aggregate initializers keep
/// meaning what they meant (cause defaults to 0 = none).
struct TraceEvent {
  sim::GlobalStep step = 0;          ///< global step of the observation
  std::uint64_t v0 = 0;              ///< type-specific (see table above)
  std::uint64_t v1 = 0;              ///< type-specific (see table above)
  sim::ProcessId a = sim::kNoProcess;  ///< primary process
  sim::ProcessId b = sim::kNoProcess;  ///< secondary process
  EventType type = EventType::kEmission;
  std::uint64_t cause = 0;  ///< triggering emission id (see header table)

  auto operator<=>(const TraceEvent&) const = default;
};

/// Consumer interface the engine feeds. Implementations are bound to
/// one run at a time (the engine is single-threaded per run), so they
/// need no internal locking — "lock-free per run" by construction.
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// One event; called in non-decreasing `step` order.
  virtual void on_event(const TraceEvent& event) = 0;
};

/// Append-only in-memory recorder; the default sink. With a non-zero
/// `capacity` it degrades to a ring that keeps the `capacity` most
/// recent events and counts the overwritten prefix, bounding memory on
/// adversarially long runs (time-series derived from a clipped ring are
/// best-effort; `dropped_events()` tells you whether clipping happened).
class EventRecorder final : public EventSink {
 public:
  explicit EventRecorder(std::size_t capacity = 0) : capacity_(capacity) {
    if (capacity_ != 0) buffer_.reserve(capacity_);
  }

  void on_event(const TraceEvent& event) override {
    if (capacity_ == 0) {
      buffer_.push_back(event);
    } else if (buffer_.size() < capacity_) {
      buffer_.push_back(event);
    } else {
      buffer_[head_] = event;
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    }
  }

  /// Recorded events in emission order. When the ring wrapped, the
  /// oldest retained event comes first; `dropped_events()` precede it.
  [[nodiscard]] std::vector<TraceEvent> events() const {
    if (head_ == 0) return buffer_;
    std::vector<TraceEvent> ordered;
    ordered.reserve(buffer_.size());
    ordered.insert(ordered.end(), buffer_.begin() + static_cast<std::ptrdiff_t>(head_), buffer_.end());
    ordered.insert(ordered.end(), buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
    return ordered;
  }

  /// Zero-copy access valid only when the ring never wrapped
  /// (`dropped_events() == 0`), which covers the unbounded default.
  [[nodiscard]] const std::vector<TraceEvent>& raw() const noexcept {
    return buffer_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] bool empty() const noexcept { return buffer_.empty(); }
  [[nodiscard]] std::uint64_t dropped_events() const noexcept {
    return dropped_;
  }

  void clear() noexcept {
    buffer_.clear();
    head_ = 0;
    dropped_ = 0;
  }

 private:
  std::vector<TraceEvent> buffer_;
  std::size_t capacity_ = 0;  ///< 0 = unbounded vector
  std::size_t head_ = 0;      ///< ring start when wrapped
  std::uint64_t dropped_ = 0;
};

/// Counts events per type without storing them — the cheapest possible
/// attached sink (used by the overhead benchmarks and quick audits).
class CountingSink final : public EventSink {
 public:
  void on_event(const TraceEvent& event) override {
    ++counts_[static_cast<std::size_t>(event.type)];
    ++total_;
  }

  [[nodiscard]] std::uint64_t count(EventType type) const noexcept {
    return counts_[static_cast<std::size_t>(type)];
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  void clear() noexcept {
    for (std::uint64_t& c : counts_) c = 0;
    total_ = 0;
  }

 private:
  std::uint64_t counts_[kNumEventTypes] = {};
  std::uint64_t total_ = 0;
};

/// Forwards every event to two sinks (e.g. record and count at once).
class TeeSink final : public EventSink {
 public:
  TeeSink(EventSink* first, EventSink* second) noexcept
      : first_(first), second_(second) {}

  void on_event(const TraceEvent& event) override {
    if (first_ != nullptr) first_->on_event(event);
    if (second_ != nullptr) second_->on_event(event);
  }

 private:
  EventSink* first_;
  EventSink* second_;
};

}  // namespace ugf::obs
