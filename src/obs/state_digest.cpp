#include "obs/state_digest.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <string>

#include "obs/export.hpp"
#include "util/json.hpp"

namespace ugf::obs {

namespace {

/// Digests render as fixed-width lowercase hex so streams from two runs
/// can be compared byte-for-byte (and diffed by line tools).
std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

}  // namespace

void StateDigester::write(std::ostream& out, const TraceMeta& meta) const {
  {
    util::JsonWriter json;
    json.begin_object()
        .member("schema", kDigestSchema)
        .member("protocol", std::string_view(meta.protocol))
        .member("adversary", std::string_view(meta.adversary))
        .member("n", meta.n)
        .member("f", meta.f)
        .member("seed", meta.seed)
        .member("cadence", config_.cadence)
        .member("segments", leaves_)
        .member("records", static_cast<std::uint64_t>(records_.size()))
        .end_object();
    out << json.str() << "\n";
  }
  for (const Record& rec : records_) {
    util::JsonWriter json;
    json.begin_object()
        .member("step", rec.step)
        .member("subsystem", std::string_view(names_[rec.subsystem]))
        .member("level", static_cast<std::uint32_t>(rec.level))
        .member("lo", rec.lo)
        .member("hi", rec.hi)
        .member("digest", std::string_view(hex16(rec.digest)))
        .end_object();
    out << json.str() << "\n";
  }
}

bool StateDigester::write_file(const std::string& path,
                               const TraceMeta& meta) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  write(out, meta);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace ugf::obs
