#include "runner/sweep.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace ugf::runner {

std::uint32_t f_for(std::uint32_t n, double f_fraction) {
  if (f_fraction < 0.0 || f_fraction >= 1.0)
    throw std::invalid_argument("f_for: fraction must be in [0, 1)");
  const auto f = static_cast<std::uint32_t>(
      std::llround(f_fraction * static_cast<double>(n)));
  return f >= n ? n - 1 : f;
}

std::vector<double> Curve::ns() const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(static_cast<double>(p.n));
  return out;
}

std::vector<double> Curve::time_medians() const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(p.time.median);
  return out;
}

std::vector<double> Curve::message_medians() const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(p.messages.median);
  return out;
}

Curve sweep_curve(const SweepConfig& config,
                  const sim::ProtocolFactory& protocol,
                  const adversary::AdversaryFactory& adversary,
                  std::string label, const ProgressFn& progress) {
  MonteCarloRunner runner(config.threads);
  Curve curve;
  curve.label = std::move(label);
  curve.adversary = adversary.name();
  curve.points.reserve(config.grid.size());

  for (std::size_t gi = 0; gi < config.grid.size(); ++gi) {
    const std::uint32_t n = config.grid[gi];
    RunSpec spec;
    spec.n = n;
    spec.f = f_for(n, config.f_fraction);
    spec.runs = config.runs;
    // Seed depends on the grid point, never on the curve label, so the
    // same adversary under two labels yields identical results.
    spec.base_seed = util::mix_seed(config.base_seed, n);
    spec.max_steps = config.max_steps;
    spec.max_events = config.max_events;
    spec.collect_timeseries = config.collect_timeseries;
    spec.timeseries_samples = config.timeseries_samples;
    spec.profiler = config.profiler;
    spec.metrics = config.metrics;
    spec.progress = config.progress;
    spec.engine_threads = config.engine_threads;

    const BatchResult batch = runner.run_batch(spec, protocol, adversary);
    CurvePoint point;
    point.n = n;
    point.f = spec.f;
    point.time = batch.time;
    point.messages = batch.messages;
    point.time_samples.reserve(batch.runs.size());
    point.message_samples.reserve(batch.runs.size());
    for (const auto& record : batch.runs) {
      point.time_samples.push_back(record.outcome.time_complexity);
      point.message_samples.push_back(
          static_cast<double>(record.outcome.total_messages));
    }
    point.strategy_counts = batch.strategy_counts;
    point.rumor_failures = batch.rumor_failures;
    point.truncated = batch.truncated;
    point.timeseries = batch.timeseries;
    curve.points.push_back(std::move(point));

    if (progress) progress(curve.label, gi + 1, config.grid.size());
  }
  return curve;
}

std::vector<Curve> sweep_figure(
    const SweepConfig& config, const sim::ProtocolFactory& protocol,
    const std::vector<LabelledAdversary>& adversaries,
    const ProgressFn& progress) {
  std::vector<Curve> curves;
  curves.reserve(adversaries.size());
  for (const auto& labelled : adversaries) {
    if (labelled.factory == nullptr)
      throw std::invalid_argument("sweep_figure: null adversary factory");
    curves.push_back(sweep_curve(config, protocol, *labelled.factory,
                                 labelled.label, progress));
  }
  return curves;
}

}  // namespace ugf::runner
