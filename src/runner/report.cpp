#include "runner/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

#include <fstream>

#include "analysis/ascii_plot.hpp"
#include "analysis/compare.hpp"
#include "analysis/regression.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"

namespace ugf::runner {

namespace {

std::string format_value(double v) {
  std::ostringstream os;
  if (v == 0.0) {
    os << "0";
  } else if (std::abs(v) >= 1e6) {
    os << std::scientific << std::setprecision(2) << v;
  } else if (std::abs(v) >= 100.0) {
    os << std::fixed << std::setprecision(0) << v;
  } else {
    os << std::fixed << std::setprecision(2) << v;
  }
  return os.str();
}

const analysis::Summary& metric_summary(const CurvePoint& point,
                                        Metric metric) {
  return metric == Metric::kTime ? point.time : point.messages;
}

std::string cell(const CurvePoint& point, Metric metric) {
  const auto& s = metric_summary(point, metric);
  return format_value(s.median) + " [" + format_value(s.q1) + ", " +
         format_value(s.q3) + "]";
}

}  // namespace

const char* to_string(Metric metric) noexcept {
  return metric == Metric::kTime ? "time" : "messages";
}

void print_figure(std::ostream& out, const std::string& title,
                  const std::vector<Curve>& curves, Metric metric) {
  out << "=== " << title << " ===\n";
  out << "metric: " << to_string(metric)
      << " complexity, median [Q1, Q3] over runs\n\n";
  if (curves.empty() || curves.front().points.empty()) {
    out << "(no data)\n";
    return;
  }

  // Column widths.
  std::vector<std::size_t> widths;
  widths.push_back(6);  // "N"
  for (const auto& curve : curves) {
    std::size_t w = curve.label.size();
    for (const auto& point : curve.points)
      w = std::max(w, cell(point, metric).size());
    widths.push_back(w + 2);
  }

  out << std::left << std::setw(static_cast<int>(widths[0])) << "N";
  for (std::size_t c = 0; c < curves.size(); ++c)
    out << std::setw(static_cast<int>(widths[c + 1])) << curves[c].label;
  out << "\n";

  const std::size_t rows = curves.front().points.size();
  for (std::size_t r = 0; r < rows; ++r) {
    out << std::setw(static_cast<int>(widths[0]))
        << curves.front().points[r].n;
    for (std::size_t c = 0; c < curves.size(); ++c) {
      const std::string text = r < curves[c].points.size()
                                   ? cell(curves[c].points[r], metric)
                                   : std::string("-");
      out << std::setw(static_cast<int>(widths[c + 1])) << text;
    }
    out << "\n";
  }
  out << "\n";
  print_growth_summary(out, curves, metric);
}

void print_growth_summary(std::ostream& out, const std::vector<Curve>& curves,
                          Metric metric) {
  out << "growth in N (power-law exponent of the median series):\n";
  for (const auto& curve : curves) {
    if (curve.points.size() < 4) {
      out << "  " << curve.label << ": (too few points)\n";
      continue;
    }
    const auto xs = curve.ns();
    const auto ys = metric == Metric::kTime ? curve.time_medians()
                                            : curve.message_medians();
    bool positive = true;
    for (const double y : ys) positive &= (y > 0.0);
    if (!positive) {
      out << "  " << curve.label << ": (non-positive values)\n";
      continue;
    }
    const double b = analysis::growth_exponent(xs, ys);
    const auto cls = analysis::classify_growth(xs, ys);
    out << "  " << curve.label << ": exponent " << std::fixed
        << std::setprecision(2) << b << " -> " << analysis::to_string(cls)
        << "\n";
  }
  out << "\n";
}

void print_dominance(std::ostream& out, const Curve& baseline,
                     const Curve& attacked, Metric metric) {
  out << "dominance of '" << attacked.label << "' over '" << baseline.label
      << "' (" << to_string(metric) << "): median [95% CI], one-sided "
      << "Mann-Whitney z, effect P[attacked > baseline]\n";
  const std::size_t rows =
      std::min(baseline.points.size(), attacked.points.size());
  for (std::size_t r = 0; r < rows; ++r) {
    const auto& base_point = baseline.points[r];
    const auto& att_point = attacked.points[r];
    const auto& base_samples = metric == Metric::kTime
                                   ? base_point.time_samples
                                   : base_point.message_samples;
    const auto& att_samples = metric == Metric::kTime
                                  ? att_point.time_samples
                                  : att_point.message_samples;
    if (base_samples.empty() || att_samples.empty()) continue;
    const auto base_ci = analysis::bootstrap_median_ci(base_samples);
    const auto att_ci = analysis::bootstrap_median_ci(att_samples);
    const auto mw = analysis::mann_whitney_greater(att_samples, base_samples);
    out << "  N=" << base_point.n << ": baseline " << format_value(base_ci.point)
        << " [" << format_value(base_ci.low) << ", "
        << format_value(base_ci.high) << "], attacked "
        << format_value(att_ci.point) << " [" << format_value(att_ci.low)
        << ", " << format_value(att_ci.high) << "], z="
        << format_value(mw.z) << ", effect=" << format_value(mw.effect_size)
        << "\n";
  }
  out << "\n";
}

void print_strategy_histogram(std::ostream& out,
                              const std::vector<Curve>& curves,
                              bool per_curve) {
  std::map<std::string, std::size_t> totals;
  for (const auto& curve : curves)
    for (const auto& point : curve.points)
      for (const auto& [strategy, count] : point.strategy_counts)
        totals[strategy] += count;
  out << "strategy histogram (all curves, all grid points):\n";
  for (const auto& [strategy, count] : totals)
    out << "  " << strategy << ": " << count << "\n";
  out << "\n";

  if (!per_curve) return;
  for (const auto& curve : curves) {
    std::map<std::string, std::size_t> curve_totals;
    for (const auto& point : curve.points)
      for (const auto& [strategy, count] : point.strategy_counts)
        curve_totals[strategy] += count;
    out << "strategy histogram [" << curve.label << "]:\n";
    for (const auto& [strategy, count] : curve_totals)
      out << "  " << strategy << ": " << count << "\n";
    out << "\n";
  }
}

namespace {

void write_summary_json(util::JsonWriter& json, const analysis::Summary& s) {
  json.begin_object();
  json.member("count", static_cast<std::uint64_t>(s.count));
  json.member("min", s.min);
  json.member("q1", s.q1);
  json.member("median", s.median);
  json.member("q3", s.q3);
  json.member("max", s.max);
  json.member("mean", s.mean);
  json.member("stddev", s.stddev);
  json.end_object();
}

}  // namespace

void write_figure_json(const std::string& path, const std::string& figure_id,
                       const std::vector<Curve>& curves) {
  util::JsonWriter json;
  json.begin_object();
  json.member("figure", figure_id);
  json.key("curves").begin_array();
  for (const auto& curve : curves) {
    json.begin_object();
    json.member("label", curve.label);
    json.member("adversary", curve.adversary);
    json.key("points").begin_array();
    for (const auto& point : curve.points) {
      json.begin_object();
      json.member("n", std::uint64_t{point.n});
      json.member("f", std::uint64_t{point.f});
      json.key("time");
      write_summary_json(json, point.time);
      json.key("messages");
      write_summary_json(json, point.messages);
      json.key("strategies").begin_object();
      for (const auto& [strategy, count] : point.strategy_counts)
        json.member(strategy, static_cast<std::uint64_t>(count));
      json.end_object();
      json.member("rumor_failures",
                  static_cast<std::uint64_t>(point.rumor_failures));
      json.member("truncated", static_cast<std::uint64_t>(point.truncated));
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();

  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_figure_json: cannot open " + path);
  out << json.str() << "\n";
}

void write_figure_csv(const std::string& path, const std::string& figure_id,
                      const std::vector<Curve>& curves) {
  util::CsvWriter csv(path, {"figure", "curve", "adversary", "n", "f",
                             "metric", "median", "q1", "q3", "mean", "min",
                             "max", "runs", "rumor_failures", "truncated"});
  for (const auto& curve : curves) {
    for (const auto& point : curve.points) {
      for (const Metric metric : {Metric::kTime, Metric::kMessages}) {
        const auto& s = metric_summary(point, metric);
        csv.row_values(figure_id, curve.label, curve.adversary,
                       std::uint64_t{point.n}, std::uint64_t{point.f},
                       std::string(to_string(metric)), s.median, s.q1, s.q3,
                       s.mean, s.min, s.max,
                       static_cast<std::uint64_t>(s.count),
                       static_cast<std::uint64_t>(point.rumor_failures),
                       static_cast<std::uint64_t>(point.truncated));
      }
    }
  }
}

void print_infection_curves(std::ostream& out,
                            const std::vector<Curve>& curves) {
  out << "=== infection curves: infected(t), median over runs at the "
         "largest N ===\n";
  static constexpr char kMarkers[] = {'*', '+', 'o', 'x', '#', '@'};
  std::vector<analysis::PlotSeries> series;
  for (std::size_t c = 0; c < curves.size(); ++c) {
    const Curve& curve = curves[c];
    if (curve.points.empty()) continue;
    const CurvePoint& point = curve.points.back();
    if (point.timeseries.empty()) {
      out << "  (" << curve.label
          << ": no time-series data; enable collect_timeseries)\n";
      continue;
    }
    analysis::PlotSeries s;
    s.label = curve.label + " (n=" + std::to_string(point.n) + ")";
    s.marker = kMarkers[c % sizeof(kMarkers)];
    s.xs = point.timeseries.t;
    s.ys = point.timeseries.infected_median;
    series.push_back(std::move(s));
  }
  if (series.empty()) {
    out << "(no data)\n";
    return;
  }
  analysis::PlotOptions options;
  options.log_x = false;  // infection curves live on linear time
  options.log_y = false;
  options.x_label = "global step t";
  options.y_label = "infected";
  out << analysis::render_plot(series, options) << "\n";
}

void write_figure_timeseries_csv(const std::string& path,
                                 const std::string& figure_id,
                                 const std::vector<Curve>& curves) {
  util::CsvWriter csv(path,
                      {"figure", "curve", "adversary", "n", "f", "t",
                       "infected_q1", "infected_median", "infected_q3",
                       "in_flight_median", "cumulative_messages_median",
                       "crashes_median", "delay_changes_median", "runs"});
  for (const auto& curve : curves) {
    for (const auto& point : curve.points) {
      const auto& ts = point.timeseries;
      for (std::size_t i = 0; i < ts.t.size(); ++i) {
        csv.row_values(figure_id, curve.label, curve.adversary,
                       std::uint64_t{point.n}, std::uint64_t{point.f}, ts.t[i],
                       ts.infected_q1[i], ts.infected_median[i],
                       ts.infected_q3[i], ts.in_flight_median[i],
                       ts.cumulative_messages_median[i], ts.crashes_median[i],
                       ts.delay_changes_median[i],
                       static_cast<std::uint64_t>(ts.runs));
      }
    }
  }
}

}  // namespace ugf::runner
