#pragma once

/// \file sweep.hpp
/// Parameter sweeps over the system size N (and crash fraction F/N),
/// producing the per-curve series of the paper's Figure 3: for every
/// grid point, the median and quartiles of time and message complexity
/// over `runs` seeded runs.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "adversary/factory.hpp"
#include "analysis/statistics.hpp"
#include "runner/monte_carlo.hpp"
#include "sim/protocol.hpp"

namespace ugf::runner {

struct SweepConfig {
  /// The N grid; paper: {10, 20, 30, 50, 70, 100, 200, 300, 400, 500}.
  std::vector<std::uint32_t> grid = {10, 20, 30, 50, 70, 100, 200, 300, 400, 500};
  /// F = round(f_fraction * N); paper presents F = 0.3 N.
  double f_fraction = 0.3;
  /// Runs per grid point; paper uses 50.
  std::uint32_t runs = 50;
  std::uint64_t base_seed = 0xF16BA5Eull;
  std::size_t threads = 0;
  /// Worker threads inside each engine run (RunSpec::engine_threads);
  /// outcome-neutral by construction, multiplies with `threads`.
  std::uint32_t engine_threads = 1;
  sim::GlobalStep max_steps = 1'000'000'000'000ull;
  std::uint64_t max_events = 50'000'000ull;
  /// Collect aggregated infection/traffic curves per grid point
  /// (CurvePoint::timeseries). Off by default: it records every event
  /// of every run. See RunSpec::collect_timeseries.
  bool collect_timeseries = false;
  std::uint32_t timeseries_samples = 65;
  /// Optional shared phase profiler (thread-safe; must outlive the
  /// sweep). nullptr disables profiling.
  obs::PhaseProfiler* profiler = nullptr;
  /// Optional shared campaign metrics registry (thread-safe; must
  /// outlive the sweep). Forwarded to every batch and engine.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional live progress renderer (thread-safe; must outlive the
  /// sweep). Workers tick it once per finished run; pair it with a
  /// ProgressFn that calls note_batch for the per-batch line.
  obs::SweepProgress* progress = nullptr;
};

/// F for one grid point under a SweepConfig.
[[nodiscard]] std::uint32_t f_for(std::uint32_t n, double f_fraction);

struct CurvePoint {
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  analysis::Summary time;
  analysis::Summary messages;
  /// Raw per-run values backing the summaries (for significance tests).
  std::vector<double> time_samples;
  std::vector<double> message_samples;
  std::map<std::string, std::size_t> strategy_counts;
  std::size_t rumor_failures = 0;
  std::size_t truncated = 0;
  /// Aggregated curves over the runs of this grid point; empty unless
  /// SweepConfig::collect_timeseries.
  obs::AggregateTimeSeries timeseries;
};

struct Curve {
  std::string label;      ///< e.g. "no adversary", "UGF", "max UGF (2.1.1)"
  std::string adversary;  ///< factory name
  std::vector<CurvePoint> points;

  [[nodiscard]] std::vector<double> ns() const;
  [[nodiscard]] std::vector<double> time_medians() const;
  [[nodiscard]] std::vector<double> message_medians() const;
};

/// Progress callback: (curve label, grid points done, grid size).
///
/// Threading contract: invoked on the thread that called
/// sweep_curve/sweep_figure (never from a pool worker), after each grid
/// point's whole batch has completed and its CurvePoint is final. The
/// callback must be cheap — the Monte-Carlo pool is idle while it runs
/// — and exceptions propagate out of the sweep. For sub-batch (per-run)
/// granularity attach a SweepConfig::progress renderer instead, whose
/// note_run_complete is ticked by the workers themselves.
using ProgressFn =
    std::function<void(const std::string&, std::size_t, std::size_t)>;

/// Sweeps one (protocol, adversary) pair over the grid.
[[nodiscard]] Curve sweep_curve(const SweepConfig& config,
                                const sim::ProtocolFactory& protocol,
                                const adversary::AdversaryFactory& adversary,
                                std::string label,
                                const ProgressFn& progress = {});

/// A labelled adversary for multi-curve sweeps. The factory is borrowed
/// (never owned) and must outlive every sweep_figure call using this
/// entry; nullptr means "no adversary" (benign runs). Factories are
/// deliberately *not* stored by reference anywhere in the runner — a
/// reference member silently binds to temporaries (see the
/// DeliveryRecordingFactory lifetime note in sim/instrumentation.hpp).
struct LabelledAdversary {
  std::string label;
  const adversary::AdversaryFactory* factory = nullptr;
};

/// Sweeps several adversaries against the same protocol (one Figure-3
/// panel = one call).
[[nodiscard]] std::vector<Curve> sweep_figure(
    const SweepConfig& config, const sim::ProtocolFactory& protocol,
    const std::vector<LabelledAdversary>& adversaries,
    const ProgressFn& progress = {});

}  // namespace ugf::runner
