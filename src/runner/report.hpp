#pragma once

/// \file report.hpp
/// Text and CSV rendering of sweep results. Each bench binary prints the
/// figure it regenerates as an aligned table (one row per N, one column
/// group per curve: median [Q1, Q3], matching the paper's Fig. 3
/// reporting) plus a growth-law summary, and mirrors everything into a
/// long-format CSV for plotting.

#include <iosfwd>
#include <string>
#include <vector>

#include "runner/sweep.hpp"

namespace ugf::runner {

enum class Metric { kTime, kMessages };

[[nodiscard]] const char* to_string(Metric metric) noexcept;

/// Prints one figure panel: a header, the per-N table of medians and
/// quartiles for each curve, and a growth classification per curve.
void print_figure(std::ostream& out, const std::string& title,
                  const std::vector<Curve>& curves, Metric metric);

/// Prints the UGF strategy histogram accumulated over a sweep (how often
/// each strategy was drawn; interesting for the randomization scheme).
/// The default aggregates over all curves and grid points; `per_curve`
/// additionally prints one block per curve so differing adversaries are
/// not silently merged into one distribution.
void print_strategy_histogram(std::ostream& out,
                              const std::vector<Curve>& curves,
                              bool per_curve = false);

/// Writes all curves and both metrics in long format:
/// figure,curve,adversary,n,f,metric,median,q1,q3,mean,min,max,runs,
/// rumor_failures,truncated.
void write_figure_csv(const std::string& path, const std::string& figure_id,
                      const std::vector<Curve>& curves);

/// Fits and renders "label: exponent b, class" lines for a metric.
void print_growth_summary(std::ostream& out, const std::vector<Curve>& curves,
                          Metric metric);

/// Statistical dominance of `attacked` over `baseline` per grid point:
/// medians with bootstrap CIs, one-sided Mann-Whitney z and the
/// common-language effect size P[attacked > baseline]. Both curves must
/// cover the same grid and carry raw samples. Backs the "UGF dominates
/// the baseline" claims in EXPERIMENTS.md with numbers instead of
/// eyeballing.
void print_dominance(std::ostream& out, const Curve& baseline,
                     const Curve& attacked, Metric metric);

/// Writes the curves as structured JSON:
/// { "figure": ..., "curves": [ { "label", "adversary", "points": [
///   { "n", "f", "time": {summary}, "messages": {summary},
///     "strategies": {...}, "rumor_failures", "truncated" } ] } ] }.
void write_figure_json(const std::string& path, const std::string& figure_id,
                       const std::vector<Curve>& curves);

/// ASCII-plots the median infection curve infected(t) of each curve's
/// largest grid point (requires SweepConfig::collect_timeseries).
/// Curves without time-series data are skipped with a note.
void print_infection_curves(std::ostream& out,
                            const std::vector<Curve>& curves);

/// Writes the aggregated per-grid-point time-series of every curve in
/// long format: figure,curve,adversary,n,f,t,infected_q1,
/// infected_median,infected_q3,in_flight_median,
/// cumulative_messages_median,crashes_median,delay_changes_median,runs.
/// Grid points without time-series data are skipped.
void write_figure_timeseries_csv(const std::string& path,
                                 const std::string& figure_id,
                                 const std::vector<Curve>& curves);

}  // namespace ugf::runner
