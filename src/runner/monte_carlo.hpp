#pragma once

/// \file monte_carlo.hpp
/// Seeded repeated-run execution. One batch = `runs` independent
/// simulations of (protocol, adversary) at fixed (N, F); run i derives
/// its engine and adversary seeds deterministically from the batch's
/// base seed, so batches are reproducible bit-for-bit regardless of the
/// thread count. Each worker keeps one warm engine for its whole share
/// of the batch (Engine::reset between runs) instead of rebuilding one
/// per trial; a reset engine is observationally identical to a fresh
/// one, so this is purely a throughput lever.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adversary/factory.hpp"
#include "analysis/statistics.hpp"
#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/progress.hpp"
#include "obs/timeseries.hpp"
#include "sim/engine.hpp"
#include "sim/outcome.hpp"
#include "sim/protocol.hpp"
#include "util/thread_pool.hpp"

namespace ugf::runner {

struct RunSpec {
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  std::uint32_t runs = 1;
  std::uint64_t base_seed = 0x5EEDBA5Eull;
  sim::GlobalStep max_steps = 1'000'000'000'000ull;
  std::uint64_t max_events = 50'000'000ull;
  /// When true, every run records its event stream and derives a
  /// per-run obs::TimeSeries (RunRecord::series); run_batch then
  /// aggregates them into BatchResult::timeseries. Costs memory
  /// proportional to total events per run — leave off for sweeps that
  /// only need endpoint complexities.
  bool collect_timeseries = false;
  /// Sample-grid size for the aggregated curves (>= 2, see
  /// obs::aggregate_timeseries).
  std::uint32_t timeseries_samples = 65;
  /// Optional phase profiler shared by all runs of the batch (it is
  /// thread-safe); must outlive the batch. nullptr disables profiling.
  obs::PhaseProfiler* profiler = nullptr;
  /// Optional campaign metrics registry shared by all runs (it is
  /// thread-safe); must outlive the batch. The runner publishes
  /// per-run wall time and steps-to-completion histograms plus
  /// run/worker counters, and forwards the registry to every engine.
  /// nullptr disables metrics.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional live progress (thread-safe; must outlive the batch).
  /// Workers tick note_run_complete() once per finished run and mark
  /// themselves active for the utilization display.
  obs::SweepProgress* progress = nullptr;
  /// Worker threads *inside* each engine run
  /// (EngineConfig::intra_run_threads): outcomes are bit-for-bit
  /// identical at every value, so this composes freely with the
  /// runner's own worker pool — total concurrency is the product.
  /// Engines fall back to their serial loop for runs an adversary or
  /// event sink makes order-sensitive.
  std::uint32_t engine_threads = 1;
  /// Optional state digester (obs/state_digest.hpp), attached to run 0
  /// of the batch ONLY — the digester is single-engine state, and run 0
  /// executes exactly once regardless of worker count, so batches stay
  /// deterministic. Must outlive the batch. nullptr disables digests.
  obs::StateDigester* digester = nullptr;
};

/// One run's outcome plus provenance.
struct RunRecord {
  sim::Outcome outcome;
  std::uint64_t seed = 0;
  /// The adversary's per-run strategy descriptor ("none",
  /// "strategy-2.1.1", ...).
  std::string strategy;
  /// Derived per-run series; empty unless RunSpec::collect_timeseries.
  obs::TimeSeries series;
};

/// Aggregate of a batch.
struct BatchResult {
  std::vector<RunRecord> runs;
  analysis::Summary messages;  ///< over M(O)
  analysis::Summary time;      ///< over T(O)
  /// How often each strategy descriptor occurred (interesting for UGF).
  std::map<std::string, std::size_t> strategy_counts;
  std::size_t rumor_failures = 0;
  std::size_t truncated = 0;
  /// Median/quartile curves across runs; empty unless
  /// RunSpec::collect_timeseries.
  obs::AggregateTimeSeries timeseries;
};

/// Executes batches on an internal thread pool.
class MonteCarloRunner {
 public:
  /// threads == 0 -> hardware concurrency.
  explicit MonteCarloRunner(std::size_t threads = 0) : pool_(threads) {}

  /// Runs the batch; deterministic in spec.base_seed.
  [[nodiscard]] BatchResult run_batch(
      const RunSpec& spec, const sim::ProtocolFactory& protocol,
      const adversary::AdversaryFactory& adversary);

  /// Executes a single run (convenience for examples/tests). When
  /// `sink` is non-null it receives the run's full event stream in
  /// addition to (and independent of) RunSpec::collect_timeseries.
  [[nodiscard]] static RunRecord run_once(
      const RunSpec& spec, std::uint32_t run_index,
      const sim::ProtocolFactory& protocol,
      const adversary::AdversaryFactory& adversary,
      obs::EventSink* sink = nullptr);

 private:
  util::ThreadPool pool_;
};

}  // namespace ugf::runner
