#include "runner/monte_carlo.hpp"

#include <atomic>

#include "obs/flight_recorder.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace ugf::runner {

namespace {

/// Runner-side metric handles, resolved once per batch (per-run
/// resolution would take the registry mutex on every run).
struct RunnerMetrics {
  obs::Counter runs;
  obs::Counter rumor_failures;
  obs::Histogram wall_time_us;
  obs::Histogram steps;
  obs::Histogram worker_runs_claimed;
};

RunnerMetrics resolve_runner_metrics(obs::MetricsRegistry* registry) {
  RunnerMetrics m;
  if (registry == nullptr) return m;
  m.runs = registry->counter("runner.runs");
  m.rumor_failures = registry->counter("runner.rumor_failures");
  m.wall_time_us = registry->histogram("runner.run_wall_time_us");
  m.steps = registry->histogram("runner.run_steps");
  m.worker_runs_claimed = registry->histogram("runner.worker_runs_claimed");
  return m;
}

/// Executes run `run_index` of the batch. `engine` is the caller's
/// reusable engine slot: constructed on first use, reset() afterwards —
/// a Monte-Carlo worker passes the same slot for every run it claims,
/// so the engine's grown capacity (process table, inbox lanes, event
/// heap, arena slabs) is recycled across its whole share of the batch.
/// Seeds derive from (base_seed, run_index) only, so the result is
/// bit-for-bit independent of which engine/worker executes the run.
RunRecord execute_run(std::unique_ptr<sim::Engine>& engine,
                      const RunSpec& spec, std::uint32_t run_index,
                      const sim::ProtocolFactory& protocol,
                      const adversary::AdversaryFactory& adversary,
                      obs::EventSink* sink,
                      const RunnerMetrics& metrics) {
  const std::uint64_t run_seed = util::mix_seed(spec.base_seed, run_index);
  const std::uint64_t adversary_seed = util::mix_seed(run_seed, 0xAD7E25A27ull);

  sim::EngineConfig config;
  config.n = spec.n;
  config.f = spec.f;
  config.seed = run_seed;
  config.max_steps = spec.max_steps;
  config.max_events = spec.max_events;
  config.profiler = spec.profiler;
  config.metrics = spec.metrics;
  config.intra_run_threads = spec.engine_threads;
  // One digester, one engine: run 0 executes exactly once whatever the
  // worker count, so attaching it there keeps batches race-free and the
  // digest stream deterministic.
  config.digester = run_index == 0 ? spec.digester : nullptr;

  // The caller's sink and the internal time-series recorder are
  // independent consumers; tee when both are wanted.
  obs::EventRecorder recorder;
  obs::TeeSink tee(&recorder, sink);
  if (spec.collect_timeseries)
    config.sink = sink != nullptr ? static_cast<obs::EventSink*>(&tee)
                                  : static_cast<obs::EventSink*>(&recorder);
  else
    config.sink = sink;

  const auto instance = adversary.create(adversary_seed);

#if UGF_CHECKS_ENABLED
  // Post-mortem ring: if a UGF_ASSERT/UGF_AUDIT fires inside this run,
  // the failure hook dumps the recent event tail plus the metrics
  // snapshot before aborting (obs/flight_recorder.hpp). Sinks observe
  // without affecting outcomes, so attaching it changes no result; at
  // audit level 0 no check can fire and this block compiles out.
  obs::FlightRecorder flight;
  flight.bind({protocol.name(),
               instance != nullptr ? instance->name() : "none", spec.n,
               spec.f, run_seed},
              spec.metrics, config.digester);
  obs::TeeSink flight_tee(&flight, config.sink);
  config.sink = &flight_tee;
#endif

  if (engine == nullptr)
    engine = std::make_unique<sim::Engine>(config, protocol, instance.get());
  else
    engine->reset(config, instance.get());

  RunRecord record;
  if (spec.metrics != nullptr) {
    const util::Stopwatch wall;
    record.outcome = engine->run();
    metrics.wall_time_us.record(
        static_cast<std::uint64_t>(wall.seconds() * 1e6));
    metrics.steps.record(record.outcome.t_end);
    metrics.runs.add(1);
    if (!record.outcome.rumor_gathering_ok) metrics.rumor_failures.add(1);
  } else {
    record.outcome = engine->run();
  }
  if (spec.progress != nullptr) spec.progress->note_run_complete();
  record.seed = run_seed;
  if (spec.collect_timeseries) {
    obs::ScopedPhase phase(spec.profiler, obs::Phase::kTimeseries);
    record.series = obs::build_timeseries(recorder.raw());
  }
  record.strategy =
      instance ? instance->strategy_descriptor() : std::string("none");
  UGF_ASSERT_MSG(record.outcome.per_process_sent.size() == spec.n,
                 "outcome reports %zu processes for n=%u",
                 record.outcome.per_process_sent.size(), spec.n);
  UGF_ASSERT(record.outcome.crashed <= spec.f);
  return record;
}

}  // namespace

RunRecord MonteCarloRunner::run_once(
    const RunSpec& spec, std::uint32_t run_index,
    const sim::ProtocolFactory& protocol,
    const adversary::AdversaryFactory& adversary, obs::EventSink* sink) {
  std::unique_ptr<sim::Engine> engine;
  return execute_run(engine, spec, run_index, protocol, adversary, sink,
                     resolve_runner_metrics(spec.metrics));
}

BatchResult MonteCarloRunner::run_batch(
    const RunSpec& spec, const sim::ProtocolFactory& protocol,
    const adversary::AdversaryFactory& adversary) {
  BatchResult result;
  result.runs.resize(spec.runs);

  // One long-lived task ("share") per worker instead of one task per
  // run: each share keeps a single warm engine and claims run indices
  // off a shared counter, preserving the pool's dynamic load balancing.
  // Run i is a pure function of spec and i, so the claiming order (and
  // thread count) cannot change any result.
  const std::size_t shares =
      std::min<std::size_t>(std::max<std::size_t>(1, pool_.size()), spec.runs);
  std::atomic<std::uint32_t> next_run{0};
  const RunnerMetrics metrics = resolve_runner_metrics(spec.metrics);
  pool_.parallel_for(shares, [&](std::size_t) {
    std::unique_ptr<sim::Engine> engine;
    if (spec.progress != nullptr) spec.progress->note_worker_begin();
    std::uint64_t claimed = 0;
    for (;;) {
      const auto i = next_run.fetch_add(1, std::memory_order_relaxed);
      if (i >= spec.runs) break;
      ++claimed;
      result.runs[i] =
          execute_run(engine, spec, i, protocol, adversary, nullptr, metrics);
    }
    // Per-share claim counts expose load imbalance: with perfect
    // balancing the histogram is a spike at runs/shares.
    if (claimed != 0) metrics.worker_runs_claimed.record(claimed);
    if (spec.progress != nullptr) spec.progress->note_worker_end();
  });

  obs::ScopedPhase phase(spec.profiler, obs::Phase::kStatsReduction);
  std::vector<double> messages;
  std::vector<double> times;
  messages.reserve(spec.runs);
  times.reserve(spec.runs);
  for (const auto& record : result.runs) {
    messages.push_back(static_cast<double>(record.outcome.total_messages));
    times.push_back(record.outcome.time_complexity);
    ++result.strategy_counts[record.strategy];
    if (!record.outcome.rumor_gathering_ok) ++result.rumor_failures;
    if (record.outcome.truncated) ++result.truncated;
  }
  result.messages = analysis::summarize(std::move(messages));
  result.time = analysis::summarize(std::move(times));

  if (spec.collect_timeseries) {
    obs::ScopedPhase agg_phase(spec.profiler, obs::Phase::kTimeseries);
    std::vector<obs::TimeSeries> series;
    series.reserve(result.runs.size());
    for (auto& record : result.runs) series.push_back(record.series);
    result.timeseries =
        obs::aggregate_timeseries(series, spec.timeseries_samples);
  }
  return result;
}

}  // namespace ugf::runner
