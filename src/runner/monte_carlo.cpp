#include "runner/monte_carlo.hpp"

#include <atomic>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ugf::runner {

namespace {

/// Executes run `run_index` of the batch. `engine` is the caller's
/// reusable engine slot: constructed on first use, reset() afterwards —
/// a Monte-Carlo worker passes the same slot for every run it claims,
/// so the engine's grown capacity (process table, inbox lanes, event
/// heap, arena slabs) is recycled across its whole share of the batch.
/// Seeds derive from (base_seed, run_index) only, so the result is
/// bit-for-bit independent of which engine/worker executes the run.
RunRecord execute_run(std::unique_ptr<sim::Engine>& engine,
                      const RunSpec& spec, std::uint32_t run_index,
                      const sim::ProtocolFactory& protocol,
                      const adversary::AdversaryFactory& adversary,
                      obs::EventSink* sink) {
  const std::uint64_t run_seed = util::mix_seed(spec.base_seed, run_index);
  const std::uint64_t adversary_seed = util::mix_seed(run_seed, 0xAD7E25A27ull);

  sim::EngineConfig config;
  config.n = spec.n;
  config.f = spec.f;
  config.seed = run_seed;
  config.max_steps = spec.max_steps;
  config.max_events = spec.max_events;
  config.profiler = spec.profiler;

  // The caller's sink and the internal time-series recorder are
  // independent consumers; tee when both are wanted.
  obs::EventRecorder recorder;
  obs::TeeSink tee(&recorder, sink);
  if (spec.collect_timeseries)
    config.sink = sink != nullptr ? static_cast<obs::EventSink*>(&tee)
                                  : static_cast<obs::EventSink*>(&recorder);
  else
    config.sink = sink;

  const auto instance = adversary.create(adversary_seed);
  if (engine == nullptr)
    engine = std::make_unique<sim::Engine>(config, protocol, instance.get());
  else
    engine->reset(config, instance.get());

  RunRecord record;
  record.outcome = engine->run();
  record.seed = run_seed;
  if (spec.collect_timeseries) {
    obs::ScopedPhase phase(spec.profiler, obs::Phase::kTimeseries);
    record.series = obs::build_timeseries(recorder.raw());
  }
  record.strategy =
      instance ? instance->strategy_descriptor() : std::string("none");
  UGF_ASSERT_MSG(record.outcome.per_process_sent.size() == spec.n,
                 "outcome reports %zu processes for n=%u",
                 record.outcome.per_process_sent.size(), spec.n);
  UGF_ASSERT(record.outcome.crashed <= spec.f);
  return record;
}

}  // namespace

RunRecord MonteCarloRunner::run_once(
    const RunSpec& spec, std::uint32_t run_index,
    const sim::ProtocolFactory& protocol,
    const adversary::AdversaryFactory& adversary, obs::EventSink* sink) {
  std::unique_ptr<sim::Engine> engine;
  return execute_run(engine, spec, run_index, protocol, adversary, sink);
}

BatchResult MonteCarloRunner::run_batch(
    const RunSpec& spec, const sim::ProtocolFactory& protocol,
    const adversary::AdversaryFactory& adversary) {
  BatchResult result;
  result.runs.resize(spec.runs);

  // One long-lived task ("share") per worker instead of one task per
  // run: each share keeps a single warm engine and claims run indices
  // off a shared counter, preserving the pool's dynamic load balancing.
  // Run i is a pure function of spec and i, so the claiming order (and
  // thread count) cannot change any result.
  const std::size_t shares =
      std::min<std::size_t>(std::max<std::size_t>(1, pool_.size()), spec.runs);
  std::atomic<std::uint32_t> next_run{0};
  pool_.parallel_for(shares, [&](std::size_t) {
    std::unique_ptr<sim::Engine> engine;
    for (;;) {
      const auto i = next_run.fetch_add(1, std::memory_order_relaxed);
      if (i >= spec.runs) break;
      result.runs[i] =
          execute_run(engine, spec, i, protocol, adversary, nullptr);
    }
  });

  obs::ScopedPhase phase(spec.profiler, obs::Phase::kStatsReduction);
  std::vector<double> messages;
  std::vector<double> times;
  messages.reserve(spec.runs);
  times.reserve(spec.runs);
  for (const auto& record : result.runs) {
    messages.push_back(static_cast<double>(record.outcome.total_messages));
    times.push_back(record.outcome.time_complexity);
    ++result.strategy_counts[record.strategy];
    if (!record.outcome.rumor_gathering_ok) ++result.rumor_failures;
    if (record.outcome.truncated) ++result.truncated;
  }
  result.messages = analysis::summarize(std::move(messages));
  result.time = analysis::summarize(std::move(times));

  if (spec.collect_timeseries) {
    obs::ScopedPhase agg_phase(spec.profiler, obs::Phase::kTimeseries);
    std::vector<obs::TimeSeries> series;
    series.reserve(result.runs.size());
    for (auto& record : result.runs) series.push_back(record.series);
    result.timeseries =
        obs::aggregate_timeseries(series, spec.timeseries_samples);
  }
  return result;
}

}  // namespace ugf::runner
