#include "runner/monte_carlo.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ugf::runner {

RunRecord MonteCarloRunner::run_once(
    const RunSpec& spec, std::uint32_t run_index,
    const sim::ProtocolFactory& protocol,
    const adversary::AdversaryFactory& adversary) {
  const std::uint64_t run_seed = util::mix_seed(spec.base_seed, run_index);
  const std::uint64_t adversary_seed = util::mix_seed(run_seed, 0xAD7E25A27ull);

  sim::EngineConfig config;
  config.n = spec.n;
  config.f = spec.f;
  config.seed = run_seed;
  config.max_steps = spec.max_steps;
  config.max_events = spec.max_events;

  const auto instance = adversary.create(adversary_seed);
  sim::Engine engine(config, protocol, instance.get());

  RunRecord record;
  record.outcome = engine.run();
  record.seed = run_seed;
  record.strategy =
      instance ? instance->strategy_descriptor() : std::string("none");
  UGF_ASSERT_MSG(record.outcome.per_process_sent.size() == spec.n,
                 "outcome reports %zu processes for n=%u",
                 record.outcome.per_process_sent.size(), spec.n);
  UGF_ASSERT(record.outcome.crashed <= spec.f);
  return record;
}

BatchResult MonteCarloRunner::run_batch(
    const RunSpec& spec, const sim::ProtocolFactory& protocol,
    const adversary::AdversaryFactory& adversary) {
  BatchResult result;
  result.runs.resize(spec.runs);

  pool_.parallel_for(spec.runs, [&](std::size_t i) {
    result.runs[i] =
        run_once(spec, static_cast<std::uint32_t>(i), protocol, adversary);
  });

  std::vector<double> messages;
  std::vector<double> times;
  messages.reserve(spec.runs);
  times.reserve(spec.runs);
  for (const auto& record : result.runs) {
    messages.push_back(static_cast<double>(record.outcome.total_messages));
    times.push_back(record.outcome.time_complexity);
    ++result.strategy_counts[record.strategy];
    if (!record.outcome.rumor_gathering_ok) ++result.rumor_failures;
    if (record.outcome.truncated) ++result.truncated;
  }
  result.messages = analysis::summarize(std::move(messages));
  result.time = analysis::summarize(std::move(times));
  return result;
}

}  // namespace ugf::runner
