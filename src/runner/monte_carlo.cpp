#include "runner/monte_carlo.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ugf::runner {

RunRecord MonteCarloRunner::run_once(
    const RunSpec& spec, std::uint32_t run_index,
    const sim::ProtocolFactory& protocol,
    const adversary::AdversaryFactory& adversary, obs::EventSink* sink) {
  const std::uint64_t run_seed = util::mix_seed(spec.base_seed, run_index);
  const std::uint64_t adversary_seed = util::mix_seed(run_seed, 0xAD7E25A27ull);

  sim::EngineConfig config;
  config.n = spec.n;
  config.f = spec.f;
  config.seed = run_seed;
  config.max_steps = spec.max_steps;
  config.max_events = spec.max_events;
  config.profiler = spec.profiler;

  // The caller's sink and the internal time-series recorder are
  // independent consumers; tee when both are wanted.
  obs::EventRecorder recorder;
  obs::TeeSink tee(&recorder, sink);
  if (spec.collect_timeseries)
    config.sink = sink != nullptr ? static_cast<obs::EventSink*>(&tee)
                                  : static_cast<obs::EventSink*>(&recorder);
  else
    config.sink = sink;

  const auto instance = adversary.create(adversary_seed);
  sim::Engine engine(config, protocol, instance.get());

  RunRecord record;
  record.outcome = engine.run();
  record.seed = run_seed;
  if (spec.collect_timeseries) {
    obs::ScopedPhase phase(spec.profiler, obs::Phase::kTimeseries);
    record.series = obs::build_timeseries(recorder.raw());
  }
  record.strategy =
      instance ? instance->strategy_descriptor() : std::string("none");
  UGF_ASSERT_MSG(record.outcome.per_process_sent.size() == spec.n,
                 "outcome reports %zu processes for n=%u",
                 record.outcome.per_process_sent.size(), spec.n);
  UGF_ASSERT(record.outcome.crashed <= spec.f);
  return record;
}

BatchResult MonteCarloRunner::run_batch(
    const RunSpec& spec, const sim::ProtocolFactory& protocol,
    const adversary::AdversaryFactory& adversary) {
  BatchResult result;
  result.runs.resize(spec.runs);

  pool_.parallel_for(spec.runs, [&](std::size_t i) {
    result.runs[i] =
        run_once(spec, static_cast<std::uint32_t>(i), protocol, adversary);
  });

  obs::ScopedPhase phase(spec.profiler, obs::Phase::kStatsReduction);
  std::vector<double> messages;
  std::vector<double> times;
  messages.reserve(spec.runs);
  times.reserve(spec.runs);
  for (const auto& record : result.runs) {
    messages.push_back(static_cast<double>(record.outcome.total_messages));
    times.push_back(record.outcome.time_complexity);
    ++result.strategy_counts[record.strategy];
    if (!record.outcome.rumor_gathering_ok) ++result.rumor_failures;
    if (record.outcome.truncated) ++result.truncated;
  }
  result.messages = analysis::summarize(std::move(messages));
  result.time = analysis::summarize(std::move(times));

  if (spec.collect_timeseries) {
    obs::ScopedPhase agg_phase(spec.profiler, obs::Phase::kTimeseries);
    std::vector<obs::TimeSeries> series;
    series.reserve(result.runs.size());
    for (auto& record : result.runs) series.push_back(record.series);
    result.timeseries =
        obs::aggregate_timeseries(series, spec.timeseries_samples);
  }
  return result;
}

}  // namespace ugf::runner
