#include "analysis/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace ugf::analysis {

double quantile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty())
    throw std::invalid_argument("quantile_sorted: empty sample");
  if (p <= 0.0) return sorted.front();
  if (p >= 1.0) return sorted.back();
  const double h = p * (static_cast<double>(sorted.size()) - 1.0);
  const auto lo = static_cast<std::size_t>(h);
  const double frac = h - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.q1 = quantile_sorted(values, 0.25);
  s.median = quantile_sorted(values, 0.5);
  s.q3 = quantile_sorted(values, 0.75);
  double sum = 0.0;
  for (const double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double ss = 0.0;
    for (const double v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / (static_cast<double>(values.size()) - 1.0));
  }
  // Order statistics of a sorted sample are themselves ordered, and the
  // mean lies within the range (up to accumulated summation rounding);
  // NaN inputs would silently violate both.
  UGF_AUDIT(s.min <= s.q1 && s.q1 <= s.median && s.median <= s.q3 &&
            s.q3 <= s.max);
  const double slack = 1e-9 * (std::fabs(s.min) + std::fabs(s.max) + 1.0);
  UGF_AUDIT(s.min - slack <= s.mean && s.mean <= s.max + slack);
  UGF_AUDIT(s.stddev >= 0.0);
  return s;
}

double chi_square_statistic(const std::vector<std::size_t>& observed,
                            const std::vector<double>& expected_probability) {
  if (observed.size() != expected_probability.size())
    throw std::invalid_argument("chi_square_statistic: size mismatch");
  std::size_t total = 0;
  for (const auto o : observed) total += o;
  if (total == 0) throw std::invalid_argument("chi_square_statistic: no data");
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected =
        expected_probability[i] * static_cast<double>(total);
    if (expected <= 0.0)
      throw std::invalid_argument("chi_square_statistic: zero expectation");
    const double diff = static_cast<double>(observed[i]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

double chi_square_critical_001(std::size_t degrees_of_freedom) {
  // chi^2_{0.999} quantiles for df = 1..30.
  static constexpr double kTable[] = {
      10.828, 13.816, 16.266, 18.467, 20.515, 22.458, 24.322, 26.124,
      27.877, 29.588, 31.264, 32.909, 34.528, 36.123, 37.697, 39.252,
      40.790, 42.312, 43.820, 45.315, 46.797, 48.268, 49.728, 51.179,
      52.620, 54.052, 55.476, 56.892, 58.301, 59.703};
  if (degrees_of_freedom == 0 || degrees_of_freedom > 30)
    throw std::out_of_range("chi_square_critical_001: df must be 1..30");
  return kTable[degrees_of_freedom - 1];
}

}  // namespace ugf::analysis
