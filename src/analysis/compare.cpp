#include "analysis/compare.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analysis/statistics.hpp"

namespace ugf::analysis {

MannWhitneyResult mann_whitney_greater(const std::vector<double>& a,
                                       const std::vector<double>& b) {
  if (a.empty() || b.empty())
    throw std::invalid_argument("mann_whitney_greater: empty sample");
  const std::size_t na = a.size(), nb = b.size();

  // Pool and midrank.
  struct Tagged {
    double value;
    bool from_a;
  };
  std::vector<Tagged> pooled;
  pooled.reserve(na + nb);
  for (const double v : a) pooled.push_back({v, true});
  for (const double v : b) pooled.push_back({v, false});
  std::sort(pooled.begin(), pooled.end(),
            [](const Tagged& x, const Tagged& y) { return x.value < y.value; });

  double rank_sum_a = 0.0;
  double tie_correction = 0.0;
  std::size_t i = 0;
  while (i < pooled.size()) {
    std::size_t j = i;
    while (j + 1 < pooled.size() && pooled[j + 1].value == pooled[i].value)
      ++j;
    const double midrank =
        (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
    const double ties = static_cast<double>(j - i + 1);
    if (ties > 1.0) tie_correction += ties * ties * ties - ties;
    for (std::size_t k = i; k <= j; ++k)
      if (pooled[k].from_a) rank_sum_a += midrank;
    i = j + 1;
  }

  MannWhitneyResult result;
  const double nad = static_cast<double>(na), nbd = static_cast<double>(nb);
  result.u_statistic = rank_sum_a - nad * (nad + 1.0) / 2.0;
  result.effect_size = result.u_statistic / (nad * nbd);

  const double mean_u = nad * nbd / 2.0;
  const double n = nad + nbd;
  const double variance =
      nad * nbd / 12.0 *
      ((n + 1.0) - tie_correction / (n * (n - 1.0)));
  result.z = variance > 0.0
                 ? (result.u_statistic - mean_u) / std::sqrt(variance)
                 : 0.0;
  return result;
}

BootstrapInterval bootstrap_median_ci(const std::vector<double>& sample,
                                      double confidence,
                                      std::uint32_t resamples,
                                      std::uint64_t seed) {
  if (sample.empty())
    throw std::invalid_argument("bootstrap_median_ci: empty sample");
  if (confidence <= 0.0 || confidence >= 1.0)
    throw std::invalid_argument("bootstrap_median_ci: bad confidence");

  auto sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  BootstrapInterval interval;
  interval.point = quantile_sorted(sorted, 0.5);

  util::Rng rng(seed);
  std::vector<double> medians;
  medians.reserve(resamples);
  std::vector<double> resample(sample.size());
  for (std::uint32_t r = 0; r < resamples; ++r) {
    for (auto& v : resample)
      v = sample[static_cast<std::size_t>(rng.below(sample.size()))];
    std::sort(resample.begin(), resample.end());
    medians.push_back(quantile_sorted(resample, 0.5));
  }
  std::sort(medians.begin(), medians.end());
  const double alpha = (1.0 - confidence) / 2.0;
  interval.low = quantile_sorted(medians, alpha);
  interval.high = quantile_sorted(medians, 1.0 - alpha);
  return interval;
}

}  // namespace ugf::analysis
