#include "analysis/regression.hpp"

#include <cmath>
#include <stdexcept>

namespace ugf::analysis {

LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2)
    throw std::invalid_argument("fit_linear: need >= 2 paired points");
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    fit.slope = 0.0;
    fit.intercept = sy / n;
    fit.r2 = 0.0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - (fit.intercept + fit.slope * xs[i]);
    ss_res += r * r;
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

namespace {

std::vector<double> log_all(const std::vector<double>& values,
                            const char* what) {
  std::vector<double> out;
  out.reserve(values.size());
  for (const double v : values) {
    if (v <= 0.0)
      throw std::invalid_argument(std::string("regression: non-positive ") +
                                  what);
    out.push_back(std::log(v));
  }
  return out;
}

}  // namespace

LinearFit fit_power_law(const std::vector<double>& xs,
                        const std::vector<double>& ys) {
  return fit_linear(log_all(xs, "x"), log_all(ys, "y"));
}

LinearFit fit_logarithmic(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  return fit_linear(log_all(xs, "x"), ys);
}

const char* to_string(GrowthClass g) noexcept {
  switch (g) {
    case GrowthClass::kConstant:
      return "constant";
    case GrowthClass::kLogarithmic:
      return "logarithmic";
    case GrowthClass::kQuasiLinear:
      return "~linear";
    case GrowthClass::kQuadratic:
      return "~quadratic";
    case GrowthClass::kOther:
      return "other";
  }
  return "other";
}

double growth_exponent(const std::vector<double>& xs,
                       const std::vector<double>& ys) {
  return fit_power_law(xs, ys).slope;
}

GrowthClass classify_growth(const std::vector<double>& xs,
                            const std::vector<double>& ys) {
  if (xs.size() < 4)
    throw std::invalid_argument("classify_growth: need >= 4 points");
  const LinearFit power = fit_power_law(xs, ys);
  const double b = power.slope;
  if (b < 0.4) {
    // Nearly flat in log-log space: constant or logarithmic. A
    // logarithmic series grows by a roughly constant amount per decade;
    // compare total relative growth against log growth.
    const LinearFit logfit = fit_logarithmic(xs, ys);
    const double span = ys.back() - ys.front();
    if (logfit.slope > 0.0 && logfit.r2 > 0.7 && span > 0.0)
      return GrowthClass::kLogarithmic;
    return GrowthClass::kConstant;
  }
  if (b >= 0.75 && b < 1.35) return GrowthClass::kQuasiLinear;
  if (b >= 1.65 && b < 2.6) return GrowthClass::kQuadratic;
  return GrowthClass::kOther;
}

}  // namespace ugf::analysis
