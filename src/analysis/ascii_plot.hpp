#pragma once

/// \file ascii_plot.hpp
/// Terminal rendering of complexity series as log-log scatter charts —
/// the paper's Fig. 3 uses log axes, and its qualitative content
/// (complexity classes as straight lines of different slope, crossovers
/// as intersections) survives an 80-column terminal remarkably well.

#include <string>
#include <vector>

namespace ugf::analysis {

struct PlotSeries {
  std::string label;
  char marker = '*';
  std::vector<double> xs;  ///< strictly positive
  std::vector<double> ys;  ///< strictly positive
};

struct PlotOptions {
  std::size_t width = 72;   ///< plot area columns
  std::size_t height = 20;  ///< plot area rows
  bool log_x = true;
  bool log_y = true;
  std::string x_label = "N";
  std::string y_label;
};

/// Renders the series into a multi-line string (axes, tick labels,
/// legend). Overlapping points show the marker of the later series.
/// Throws std::invalid_argument on empty/non-positive data for a log
/// axis.
[[nodiscard]] std::string render_plot(const std::vector<PlotSeries>& series,
                                      const PlotOptions& options = {});

}  // namespace ugf::analysis
