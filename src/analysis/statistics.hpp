#pragma once

/// \file statistics.hpp
/// Descriptive statistics for experiment series. The paper reports the
/// median over 50 runs with first/third quartiles as the shaded area
/// (Fig. 3 caption); `Summary` carries exactly those plus mean/stddev.

#include <cstddef>
#include <vector>

namespace ugf::analysis {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double q1 = 0.0;      ///< first quartile
  double median = 0.0;
  double q3 = 0.0;      ///< third quartile
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1)
};

/// p-quantile (p in [0,1]) of a *sorted* sample, with linear
/// interpolation between order statistics (type-7, the R default).
[[nodiscard]] double quantile_sorted(const std::vector<double>& sorted,
                                     double p);

/// Full summary of a sample (copies and sorts internally).
[[nodiscard]] Summary summarize(std::vector<double> values);

/// Pearson chi-square statistic of observed counts against expected
/// probabilities (sizes must match; probabilities must sum to ~1).
[[nodiscard]] double chi_square_statistic(
    const std::vector<std::size_t>& observed,
    const std::vector<double>& expected_probability);

/// Upper critical values of the chi-square distribution at alpha = 0.001
/// for 1..30 degrees of freedom (used by the statistical tests; a
/// conservative significance level keeps seeded tests deterministic and
/// non-flaky).
[[nodiscard]] double chi_square_critical_001(std::size_t degrees_of_freedom);

}  // namespace ugf::analysis
