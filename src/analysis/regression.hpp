#pragma once

/// \file regression.hpp
/// Growth-law fitting for complexity series. The reproduction does not
/// try to match the paper's absolute numbers (different substrate); what
/// must match is the *shape*: e.g. Push-Pull's time complexity is
/// logarithmic in N without an adversary and becomes linear under UGF,
/// and message complexity becomes quadratic (§V-B). `classify_growth`
/// turns a (N, complexity) series into one of those shapes; it backs the
/// assertions in EXPERIMENTS.md and the integration tests.

#include <cstddef>
#include <string>
#include <vector>

namespace ugf::analysis {

/// Ordinary least squares fit y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

[[nodiscard]] LinearFit fit_linear(const std::vector<double>& xs,
                                   const std::vector<double>& ys);

/// Fit log(y) = intercept + slope * log(x): `slope` estimates the
/// polynomial growth exponent. Requires strictly positive data.
[[nodiscard]] LinearFit fit_power_law(const std::vector<double>& xs,
                                      const std::vector<double>& ys);

/// Fit y = intercept + slope * log(x) (logarithmic growth model).
[[nodiscard]] LinearFit fit_logarithmic(const std::vector<double>& xs,
                                        const std::vector<double>& ys);

enum class GrowthClass {
  kConstant,
  kLogarithmic,
  kQuasiLinear,  ///< exponent in [0.75, 1.35): N, N log N, ...
  kQuadratic,    ///< exponent in [1.65, 2.6)
  kOther,
};

[[nodiscard]] const char* to_string(GrowthClass g) noexcept;

/// Classifies the growth of ys as a function of xs (both positive,
/// at least 4 points, xs increasing). The classifier first estimates the
/// power-law exponent; near-zero exponents are disambiguated into
/// constant vs logarithmic by the fit quality of the log model.
[[nodiscard]] GrowthClass classify_growth(const std::vector<double>& xs,
                                          const std::vector<double>& ys);

/// Convenience: the estimated power-law exponent of the series.
[[nodiscard]] double growth_exponent(const std::vector<double>& xs,
                                     const std::vector<double>& ys);

}  // namespace ugf::analysis
