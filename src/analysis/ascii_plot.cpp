#include "analysis/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace ugf::analysis {

namespace {

double transform(double v, bool log_scale) {
  return log_scale ? std::log10(v) : v;
}

std::string format_tick(double v) {
  std::ostringstream os;
  if (v >= 1e5 || (v > 0 && v < 1e-2)) {
    os << std::scientific << std::setprecision(1) << v;
  } else if (v >= 100.0) {
    os << std::fixed << std::setprecision(0) << v;
  } else {
    os << std::fixed << std::setprecision(2) << v;
  }
  return os.str();
}

}  // namespace

std::string render_plot(const std::vector<PlotSeries>& series,
                        const PlotOptions& options) {
  if (series.empty()) throw std::invalid_argument("render_plot: no series");
  double min_x = std::numeric_limits<double>::infinity(), max_x = -min_x;
  double min_y = min_x, max_y = -min_x;
  for (const auto& s : series) {
    if (s.xs.size() != s.ys.size() || s.xs.empty())
      throw std::invalid_argument("render_plot: bad series " + s.label);
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      if ((options.log_x && s.xs[i] <= 0.0) ||
          (options.log_y && s.ys[i] <= 0.0))
        throw std::invalid_argument(
            "render_plot: non-positive value on a log axis");
      min_x = std::min(min_x, s.xs[i]);
      max_x = std::max(max_x, s.xs[i]);
      min_y = std::min(min_y, s.ys[i]);
      max_y = std::max(max_y, s.ys[i]);
    }
  }
  const double tx0 = transform(min_x, options.log_x);
  const double tx1 = transform(max_x, options.log_x);
  const double ty0 = transform(min_y, options.log_y);
  const double ty1 = transform(max_y, options.log_y);
  const double x_span = tx1 > tx0 ? tx1 - tx0 : 1.0;
  const double y_span = ty1 > ty0 ? ty1 - ty0 : 1.0;

  const std::size_t w = std::max<std::size_t>(16, options.width);
  const std::size_t h = std::max<std::size_t>(6, options.height);
  std::vector<std::string> grid(h, std::string(w, ' '));

  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      const double fx =
          (transform(s.xs[i], options.log_x) - tx0) / x_span;
      const double fy =
          (transform(s.ys[i], options.log_y) - ty0) / y_span;
      const auto col = static_cast<std::size_t>(
          std::lround(fx * static_cast<double>(w - 1)));
      const auto row_from_bottom = static_cast<std::size_t>(
          std::lround(fy * static_cast<double>(h - 1)));
      grid[h - 1 - row_from_bottom][col] = s.marker;
    }
  }

  std::ostringstream out;
  const std::string y_hi = format_tick(max_y);
  const std::string y_lo = format_tick(min_y);
  const std::size_t margin = std::max(y_hi.size(), y_lo.size()) + 1;

  if (!options.y_label.empty())
    out << std::string(margin, ' ') << options.y_label
        << (options.log_y ? " (log)" : "") << "\n";
  for (std::size_t r = 0; r < h; ++r) {
    std::string tick(margin, ' ');
    if (r == 0) tick = y_hi + std::string(margin - y_hi.size(), ' ');
    if (r == h - 1) tick = y_lo + std::string(margin - y_lo.size(), ' ');
    out << tick << "|" << grid[r] << "\n";
  }
  out << std::string(margin, ' ') << "+" << std::string(w, '-') << "\n";
  const std::string x_lo = format_tick(min_x);
  const std::string x_hi = format_tick(max_x);
  out << std::string(margin + 1, ' ') << x_lo
      << std::string(w > x_lo.size() + x_hi.size()
                         ? w - x_lo.size() - x_hi.size()
                         : 1,
                     ' ')
      << x_hi << "\n";
  out << std::string(margin + 1, ' ') << options.x_label
      << (options.log_x ? " (log)" : "") << "   legend:";
  for (const auto& s : series) out << "  " << s.marker << " = " << s.label;
  out << "\n";
  return out.str();
}

}  // namespace ugf::analysis
