#pragma once

/// \file compare.hpp
/// Distribution comparison for attacked-vs-baseline claims. The paper's
/// figures assert dominance visually; EXPERIMENTS.md backs the same
/// statements with a Mann-Whitney U test (does the attacked complexity
/// distribution stochastically dominate the baseline?) and bootstrap
/// confidence intervals for the medians.

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ugf::analysis {

/// Result of a one-sided Mann-Whitney U test of "sample A tends to be
/// GREATER than sample B".
struct MannWhitneyResult {
  double u_statistic = 0.0;  ///< U for sample A
  /// Normal-approximation z score (ties handled by midranks; the
  /// approximation is standard for n >= ~8 per side).
  double z = 0.0;
  /// Common-language effect size P[A > B] + 0.5 P[A == B].
  double effect_size = 0.5;
};

/// One-sided Mann-Whitney U ("A greater than B"); both samples need at
/// least one element. z > 2.33 rejects "no difference" at ~1%.
[[nodiscard]] MannWhitneyResult mann_whitney_greater(
    const std::vector<double>& a, const std::vector<double>& b);

/// Percentile bootstrap confidence interval for the median.
struct BootstrapInterval {
  double low = 0.0;
  double high = 0.0;
  double point = 0.0;  ///< sample median
};

/// `confidence` in (0,1), e.g. 0.95. Deterministic in `seed`.
[[nodiscard]] BootstrapInterval bootstrap_median_ci(
    const std::vector<double>& sample, double confidence = 0.95,
    std::uint32_t resamples = 2000, std::uint64_t seed = 0xB007);

}  // namespace ugf::analysis
