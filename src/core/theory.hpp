#pragma once

/// \file theory.hpp
/// Closed-form quantities from the paper's analysis (§IV): the strategy
/// probabilities of Lemmas 4 and 5, and the complexity envelopes of
/// Theorem 1. These are used by the validation tests (the empirical
/// strategy frequencies must dominate the lemma bounds) and by
/// bench/tradeoff_alpha, which plots the theoretical time/message
/// trade-off next to measured complexities.

#include <cstdint>

namespace ugf::core::theory {

/// ceil(log_tau(t)) for tau > 1, t >= 1 — the paper's ⌈log_tau t⌉.
/// Computed with integer arithmetic (no floating-point log drift).
[[nodiscard]] std::uint32_t ceil_log(std::uint64_t tau, std::uint64_t t);

/// Lemma 4: a lower bound on the probability that UGF applies a
/// strategy 2.k with tau^k >= t:  6 (1-q1) / (pi^2 ceil(log_tau t)).
[[nodiscard]] double lemma4_probability(double q1, std::uint64_t tau,
                                        std::uint64_t t);

/// Lemma 5: given a strategy 2.k, a lower bound on the probability of a
/// strategy 2.k.l with tau^l >= t:  6 (1-q2) / (pi^2 ceil(log_tau t)).
[[nodiscard]] double lemma5_probability(double q2, std::uint64_t tau,
                                        std::uint64_t t);

/// Theorem 1 (Part 1 conclusion): the average time complexity lower
/// bound  (q1 / 2) * alpha * F  of Case (i).
[[nodiscard]] double time_bound_case_i(double q1, std::uint32_t alpha,
                                       std::uint32_t f);

/// Theorem 1 (Part 2.a conclusion): the average time complexity lower
/// bound  (3/4) (1-q1) q2 / (pi^2 ceil(log_tau aF)) * aF ceil(log_tau aF)
/// of Case (ii)+(ii.a); simplifies to (3/4)(1-q1) q2 aF / pi^2.
[[nodiscard]] double time_bound_case_iia(double q1, double q2,
                                         std::uint32_t alpha, std::uint32_t f);

/// Theorem 1 (Part 2.b conclusion): the average message complexity lower
/// bound  (F^2/8) * 9 (1-q1)(1-q2) / (pi^4 ceil(log_tau aF)^2)
/// of Case (ii)+(ii.b).
[[nodiscard]] double message_bound_case_iib(double q1, double q2,
                                            std::uint64_t tau,
                                            std::uint32_t alpha,
                                            std::uint32_t f);

/// The full Theorem-1 message envelope Omega(N + F^2 / log_tau^2(aF)),
/// with the explicit Part-2.b constant: N + message_bound_case_iib.
[[nodiscard]] double message_envelope(double q1, double q2, std::uint64_t tau,
                                      std::uint32_t alpha, std::uint32_t n,
                                      std::uint32_t f);

/// The smaller of the Theorem-1 time lower bounds (the adversary can
/// force at least one of time >= this or messages >= message_envelope).
[[nodiscard]] double time_envelope(double q1, double q2, std::uint32_t alpha,
                                   std::uint32_t f);

}  // namespace ugf::core::theory
