#include "core/ugf.hpp"

#include <stdexcept>

#include "adversary/fixed_strategies.hpp"
#include "util/check.hpp"
#include "util/saturating.hpp"

namespace ugf::core {

using adversary::StrategyChoice;
using adversary::StrategyKind;

UniversalGossipFighter::UniversalGossipFighter(std::uint64_t seed,
                                               const UgfConfig& config)
    : rng_(seed), config_(config), zeta_(config.exponent_cap) {
  if (config_.q1 < 0.0 || config_.q1 > 1.0 || config_.q2 < 0.0 ||
      config_.q2 > 1.0)
    throw std::invalid_argument("UGF: q1, q2 must lie in [0, 1]");
  if (config_.tau == 1)
    throw std::invalid_argument("UGF: tau must be 0 (auto) or > 1");
  if (!config_.sample_exponents &&
      (config_.fixed_k == 0 || config_.fixed_l == 0))
    throw std::invalid_argument("UGF: fixed exponents must be >= 1");
}

std::uint32_t UniversalGossipFighter::draw_exponent(std::uint32_t fixed) {
  const std::uint32_t k = config_.sample_exponents ? zeta_.sample(rng_) : fixed;
  // Remark 2: exponents are drawn from P[k] = 6/(pi^2 k^2) truncated at
  // the cap — a zero or out-of-cap sample would break tau^k saturation.
  UGF_ASSERT_MSG(k >= 1, "strategy exponent must be >= 1, got %u", k);
  UGF_ASSERT_MSG(!config_.sample_exponents || k <= config_.exponent_cap,
                 "sampled exponent %u exceeds cap %u", k,
                 config_.exponent_cap);
  return k;
}

void UniversalGossipFighter::on_run_start(sim::AdversaryControl& ctl) {
  // Algorithm 1, line by line. C is a uniform sample of floor(F/2)
  // processes; all d_rho = delta_rho = 1 initially (the engine default).
  control_set_ = adversary::sample_control_set(rng_, ctl);
  UGF_ASSERT_MSG(control_set_.size() == ctl.crash_budget() / 2,
                 "|C| = %zu, expected floor(F/2) = %u", control_set_.size(),
                 ctl.crash_budget() / 2);
  in_control_.assign(ctl.num_processes(), false);
  for (const auto p : control_set_) {
    UGF_ASSERT_MSG(p < ctl.num_processes(), "control set member %u with n=%u",
                   p, ctl.num_processes());
    in_control_[p] = true;
  }
  const std::uint64_t tau = adversary::resolve_tau(config_.tau, ctl);
  UGF_ASSERT_MSG(tau >= 2, "tau must exceed 1, got %llu",
                 static_cast<unsigned long long>(tau));

  if (rng_.bernoulli(config_.q1)) {
    // Strategy 1: crash all of C.
    choice_ = StrategyChoice{StrategyKind::kCrashC, 0, 0};
    for (const auto p : control_set_) ctl.crash(p);
    return;
  }

  // Type-2 strategy: draw k, slow C down to delta = tau^k.
  const std::uint32_t k = draw_exponent(config_.fixed_k);
  const std::uint64_t delta = util::sat_pow(tau, k);
  for (const auto p : control_set_) ctl.set_local_step_time(p, delta);

  if (rng_.bernoulli(config_.q2)) {
    // Strategy 2.k.0: isolate a random rho-hat of C; crash the rest of C
    // now and the receivers of rho-hat's messages online (see
    // on_message_emitted) until the budget F is exhausted.
    choice_ = StrategyChoice{StrategyKind::kIsolate, k, 0};
    if (control_set_.empty()) return;
    const std::size_t rho_index =
        static_cast<std::size_t>(rng_.below(control_set_.size()));
    UGF_ASSERT_MSG(rho_index < control_set_.size(),
                   "rho-hat index %zu out of |C| = %zu", rho_index,
                   control_set_.size());
    rho_hat_ = control_set_[rho_index];
    UGF_AUDIT(in_control_[rho_hat_]);
    for (const auto p : control_set_)
      if (p != rho_hat_) ctl.crash(p);
    return;
  }

  // Strategy 2.k.l: additionally delay C's messages to d = tau^(k+l) —
  // or, in omission mode (§VII extension), discard the first tau^l
  // messages of each C member instead.
  const std::uint32_t l = draw_exponent(config_.fixed_l);
  choice_ = StrategyChoice{StrategyKind::kDelay, k, l};
  if (config_.omission_mode) {
    omission_quota_ = util::sat_pow(tau, l);
    return;
  }
  const std::uint64_t delivery = util::sat_pow(tau, k + l);
  for (const auto p : control_set_) ctl.set_delivery_time(p, delivery);
}

void UniversalGossipFighter::on_message_emitted(sim::AdversaryControl& ctl,
                                                const sim::SendEvent& event) {
  // The engine only reports well-formed point-to-point emissions; the
  // Def II.5 observation surface never exposes foreign state.
  UGF_ASSERT_MSG(
      event.from < ctl.num_processes() && event.to < ctl.num_processes(),
      "emission %u -> %u outside n=%u", event.from, event.to,
      ctl.num_processes());
  UGF_ASSERT(event.from != event.to);
  UGF_ASSERT_MSG(event.sender_total >= 1,
                 "sender_total counts the reported send itself");
  switch (choice_.kind) {
    case StrategyKind::kIsolate:
      if (event.from != rho_hat_) return;
      if (ctl.crashes_used() >= ctl.crash_budget()) return;
      if (ctl.is_crashed(event.to)) return;
      ctl.crash(event.to);
      return;
    case StrategyKind::kDelay:
      if (omission_quota_ > 0 && in_control_[event.from] &&
          event.sender_total <= omission_quota_) {
        ctl.suppress_message();
      }
      return;
    default:
      return;
  }
}

}  // namespace ugf::core
