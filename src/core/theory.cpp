#include "core/theory.hpp"

#include <algorithm>
#include <numbers>
#include <stdexcept>

#include "util/saturating.hpp"

namespace ugf::core::theory {

namespace {
constexpr double kPi2 = std::numbers::pi * std::numbers::pi;
}

std::uint32_t ceil_log(std::uint64_t tau, std::uint64_t t) {
  if (tau < 2) throw std::invalid_argument("ceil_log: tau must be > 1");
  if (t <= 1) return t == 1 ? 0 : throw std::invalid_argument("ceil_log: t >= 1");
  // smallest k with tau^k >= t
  std::uint32_t k = 0;
  std::uint64_t power = 1;
  while (power < t) {
    power = util::sat_mul(power, tau);
    ++k;
  }
  return k;
}

double lemma4_probability(double q1, std::uint64_t tau, std::uint64_t t) {
  const std::uint32_t logs = std::max<std::uint32_t>(1, ceil_log(tau, t));
  return 6.0 * (1.0 - q1) / (kPi2 * static_cast<double>(logs));
}

double lemma5_probability(double q2, std::uint64_t tau, std::uint64_t t) {
  const std::uint32_t logs = std::max<std::uint32_t>(1, ceil_log(tau, t));
  return 6.0 * (1.0 - q2) / (kPi2 * static_cast<double>(logs));
}

double time_bound_case_i(double q1, std::uint32_t alpha, std::uint32_t f) {
  return 0.5 * q1 * static_cast<double>(alpha) * static_cast<double>(f);
}

double time_bound_case_iia(double q1, double q2, std::uint32_t alpha,
                           std::uint32_t f) {
  return 0.75 * (1.0 - q1) * q2 * static_cast<double>(alpha) *
         static_cast<double>(f) / kPi2;
}

double message_bound_case_iib(double q1, double q2, std::uint64_t tau,
                              std::uint32_t alpha, std::uint32_t f) {
  const std::uint64_t af =
      util::sat_mul(static_cast<std::uint64_t>(alpha), f);
  const std::uint32_t logs = std::max<std::uint32_t>(1, ceil_log(tau, af));
  const double fd = static_cast<double>(f);
  const double logd = static_cast<double>(logs);
  return (fd * fd / 8.0) * 9.0 * (1.0 - q1) * (1.0 - q2) /
         (kPi2 * kPi2 * logd * logd);
}

double message_envelope(double q1, double q2, std::uint64_t tau,
                        std::uint32_t alpha, std::uint32_t n,
                        std::uint32_t f) {
  return static_cast<double>(n) +
         message_bound_case_iib(q1, q2, tau, alpha, f);
}

double time_envelope(double q1, double q2, std::uint32_t alpha,
                     std::uint32_t f) {
  return std::min(time_bound_case_i(q1, alpha, f),
                  time_bound_case_iia(q1, q2, alpha, f));
}

}  // namespace ugf::core::theory
