#pragma once

/// \file ugf.hpp
/// The Universal Gossip Fighter — the paper's Algorithm 1.
///
/// UGF is an adaptive adversary that disrupts *any* all-to-all gossip
/// protocol without prior knowledge of it. Its randomization scheme
/// (Fig. 2) draws one of three strategy families per run:
///
///   with probability q1                 : Strategy 1      (crash C)
///   with probability (1-q1) * q2        : Strategy 2.k.0  (isolate)
///   with probability (1-q1) * (1-q2)    : Strategy 2.k.l  (delay)
///
/// where the exponents k and l are drawn from P[k] = 6/(pi^2 k^2)
/// (Remark 2) and C is a uniform sample of floor(F/2) processes. The
/// indistinguishability lemmas (IV-A) rest on this randomization: during
/// [1, tau^k] no process outside C can tell which strategy is running,
/// so an adaptive protocol cannot counter it.
///
/// Defaults follow the paper's experiments (§V-A.3): q1 = 1/3, q2 = 1/2
/// (all three families equiprobable), tau = F, and k = l = 1 fixed.
/// Sampled exponents (the full Algorithm 1) are available via
/// `UgfConfig::sample_exponents`.

#include <cstdint>
#include <memory>
#include <vector>

#include "adversary/factory.hpp"
#include "adversary/strategy.hpp"
#include "sim/adversary_iface.hpp"
#include "util/rng.hpp"
#include "util/zeta_sampler.hpp"

namespace ugf::core {

struct UgfConfig {
  /// Probability of Strategy 1. The theory holds for any q1 in (0,1).
  double q1 = 1.0 / 3.0;
  /// Probability of Strategy 2.k.0 given a type-2 strategy.
  double q2 = 0.5;
  /// Delay base tau (> 1). 0 resolves to max(F, 2) at run start — the
  /// paper's tau = F.
  std::uint64_t tau = 0;
  /// false (default): use fixed exponents k = fixed_k, l = fixed_l, as
  /// in the paper's experiments. true: draw k and l from 6/(pi^2 k^2).
  bool sample_exponents = false;
  std::uint32_t fixed_k = 1;
  std::uint32_t fixed_l = 1;
  /// Cap for sampled exponents (tail mass collapses onto the cap); keeps
  /// tau^k representable. Ignored for fixed exponents.
  std::uint32_t exponent_cap = 8;
  /// Extension (§VII): replace Strategy 2.k.l's delays with omissions —
  /// instead of delivering C's messages tau^(k+l) steps late, silently
  /// discard the first tau^l messages of each C member. Strictly
  /// stronger: one-shot protocols (Push-Pull, Sequential, BroadcastAll)
  /// can lose gossips for good, so rumor gathering may fail.
  bool omission_mode = false;
};

class UniversalGossipFighter final : public sim::Adversary {
 public:
  UniversalGossipFighter(std::uint64_t seed, const UgfConfig& config = {});

  [[nodiscard]] const char* name() const noexcept override { return "ugf"; }

  /// The strategy drawn this run, e.g. "strategy-1" or "strategy-2.1.1".
  [[nodiscard]] std::string strategy_descriptor() const override {
    return adversary::to_string(choice_);
  }

  void on_run_start(sim::AdversaryControl& ctl) override;
  void on_message_emitted(sim::AdversaryControl& ctl,
                          const sim::SendEvent& event) override;

  /// The strategy drawn for this run (valid after on_run_start).
  [[nodiscard]] const adversary::StrategyChoice& chosen_strategy()
      const noexcept {
    return choice_;
  }
  /// The control set C of this run (valid after on_run_start).
  [[nodiscard]] const std::vector<sim::ProcessId>& control_set()
      const noexcept {
    return control_set_;
  }
  /// Strategy 2.k.0 only: the process kept alive and isolated.
  [[nodiscard]] sim::ProcessId isolated_process() const noexcept {
    return rho_hat_;
  }
  [[nodiscard]] const UgfConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] std::uint32_t draw_exponent(std::uint32_t fixed);

  util::Rng rng_;
  UgfConfig config_;
  util::Zeta2Sampler zeta_;
  adversary::StrategyChoice choice_;
  std::vector<sim::ProcessId> control_set_;
  std::vector<bool> in_control_;
  sim::ProcessId rho_hat_ = sim::kNoProcess;
  std::uint64_t omission_quota_ = 0;  ///< per C member, omission mode only
};

/// Per-run factory for UGF (see adversary::AdversaryFactory).
class UgfFactory final : public adversary::AdversaryFactory {
 public:
  explicit UgfFactory(UgfConfig config = {}) : config_(config) {}

  [[nodiscard]] const char* name() const noexcept override { return "ugf"; }
  [[nodiscard]] std::unique_ptr<sim::Adversary> create(
      std::uint64_t seed) const override {
    return std::make_unique<UniversalGossipFighter>(seed, config_);
  }

  [[nodiscard]] const UgfConfig& config() const noexcept { return config_; }

 private:
  UgfConfig config_;
};

}  // namespace ugf::core
