#pragma once

/// \file adversary_registry.hpp
/// Name-based construction of adversary factories. Names:
///   "none"            — benign baseline
///   "ugf"             — the Universal Gossip Fighter (paper defaults)
///   "ugf-sampled"     — UGF with zeta-sampled exponents (full Alg. 1)
///   "strategy-1"      — crash C
///   "strategy-2.k.0"  — isolation (k from params)
///   "strategy-2.k.l"  — delay (k, l from params)
///   "oblivious"       — non-adaptive schedule baseline
///   "omission"        — omission-failure variant of the delay strategy
///                       (extension, §VII)
///   "ugf-omission"    — UGF with omissions instead of delays (§VII)
///   "informed"        — protocol-classifying adversary (extension, §VII)
///   "jitter"          — benign bounded time-variation (Remark 1)

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "adversary/factory.hpp"
#include "core/ugf.hpp"

namespace ugf::core {

/// Numeric parameters shared by the strategy families.
struct AdversaryParams {
  std::uint64_t tau = 0;  ///< 0 -> F
  std::uint32_t k = 1;
  std::uint32_t l = 1;
  UgfConfig ugf;  ///< used by the "ugf" family
};

/// Creates the factory registered under `name` (see file comment);
/// throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<adversary::AdversaryFactory> make_adversary(
    std::string_view name, const AdversaryParams& params = {});

/// All registered adversary names.
[[nodiscard]] std::vector<std::string> adversary_names();

}  // namespace ugf::core
