#include "core/adversary_registry.hpp"

#include <stdexcept>

#include "adversary/fixed_strategies.hpp"
#include "adversary/informed.hpp"
#include "adversary/jitter.hpp"
#include "adversary/oblivious.hpp"
#include "adversary/omission.hpp"

namespace ugf::core {

using adversary::LambdaAdversaryFactory;

std::unique_ptr<adversary::AdversaryFactory> make_adversary(
    std::string_view name, const AdversaryParams& params) {
  if (name == "none") return std::make_unique<adversary::NoAdversaryFactory>();
  if (name == "ugf") return std::make_unique<UgfFactory>(params.ugf);
  if (name == "ugf-sampled") {
    UgfConfig config = params.ugf;
    config.sample_exponents = true;
    return std::make_unique<UgfFactory>(config);
  }
  if (name == "strategy-1") {
    return std::make_unique<LambdaAdversaryFactory>(
        "strategy-1", [](std::uint64_t seed) {
          return std::make_unique<adversary::Strategy1Adversary>(seed);
        });
  }
  if (name == "strategy-2.k.0" || name == "isolate") {
    return std::make_unique<LambdaAdversaryFactory>(
        "strategy-2." + std::to_string(params.k) + ".0",
        [params](std::uint64_t seed) {
          return std::make_unique<adversary::IsolationAdversary>(
              seed, params.tau, params.k);
        });
  }
  if (name == "strategy-2.k.l" || name == "delay") {
    return std::make_unique<LambdaAdversaryFactory>(
        "strategy-2." + std::to_string(params.k) + "." +
            std::to_string(params.l),
        [params](std::uint64_t seed) {
          return std::make_unique<adversary::DelayAdversary>(
              seed, params.tau, params.k, params.l);
        });
  }
  if (name == "oblivious") {
    return std::make_unique<LambdaAdversaryFactory>(
        "oblivious", [](std::uint64_t seed) {
          return std::make_unique<adversary::ObliviousAdversary>(seed);
        });
  }
  if (name == "ugf-omission") {
    UgfConfig config = params.ugf;
    config.omission_mode = true;
    return std::make_unique<UgfFactory>(config);
  }
  if (name == "omission") {
    return std::make_unique<LambdaAdversaryFactory>(
        "omission", [params](std::uint64_t seed) {
          return std::make_unique<adversary::OmissionAdversary>(
              seed, params.tau, params.k, params.l);
        });
  }
  if (name == "informed") {
    return std::make_unique<LambdaAdversaryFactory>(
        "informed", [params](std::uint64_t seed) {
          adversary::InformedConfig config;
          config.tau = params.tau;
          return std::make_unique<adversary::InformedFighter>(seed, config);
        });
  }
  if (name == "jitter") {
    return std::make_unique<LambdaAdversaryFactory>(
        "jitter", [](std::uint64_t seed) {
          return std::make_unique<adversary::JitterAdversary>(seed);
        });
  }
  throw std::invalid_argument("unknown adversary: " + std::string(name));
}

std::vector<std::string> adversary_names() {
  return {"none",           "ugf",          "ugf-sampled",
          "strategy-1",     "strategy-2.k.0", "strategy-2.k.l",
          "oblivious",      "omission",     "ugf-omission",
          "informed",       "jitter"};
}

}  // namespace ugf::core
