#include "adversary/omission.hpp"

#include "adversary/fixed_strategies.hpp"
#include "util/saturating.hpp"

namespace ugf::adversary {

void OmissionAdversary::on_run_start(sim::AdversaryControl& ctl) {
  control_set_ = sample_control_set(rng_, ctl);
  in_control_.assign(ctl.num_processes(), false);
  for (const auto p : control_set_) in_control_[p] = true;
  const std::uint64_t tau = resolve_tau(tau_, ctl);
  const std::uint64_t delta = util::sat_pow(tau, k_);
  for (const auto p : control_set_) ctl.set_local_step_time(p, delta);
  if (quota_ == 0) quota_ = util::sat_pow(tau, l_);
}

void OmissionAdversary::on_message_emitted(sim::AdversaryControl& ctl,
                                           const sim::SendEvent& event) {
  if (!in_control_[event.from]) return;
  // sender_total counts the message being emitted, so the first `quota`
  // messages of each C member vanish.
  if (event.sender_total <= quota_) {
    ctl.suppress_message();
    ++omitted_;
  }
}

}  // namespace ugf::adversary
