#include "adversary/fixed_strategies.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/saturating.hpp"

namespace ugf::adversary {

std::vector<sim::ProcessId> sample_control_set(
    util::Rng& rng, const sim::AdversaryControl& ctl) {
  const std::uint32_t size = ctl.crash_budget() / 2;
  UGF_ASSERT_MSG(size <= ctl.num_processes(),
                 "control set of %u from only %u processes", size,
                 ctl.num_processes());
  auto set = rng.sample_without_replacement(ctl.num_processes(), size);
  UGF_AUDIT_MSG(
      [&set] {
        auto sorted = set;
        std::sort(sorted.begin(), sorted.end());
        return std::adjacent_find(sorted.begin(), sorted.end()) ==
               sorted.end();
      }(),
      "control set sampled with duplicates");
  return set;
}

std::uint64_t resolve_tau(std::uint64_t tau, const sim::AdversaryControl& ctl) {
  if (tau == 0) tau = ctl.crash_budget();
  return std::max<std::uint64_t>(2, tau);
}

void Strategy1Adversary::on_run_start(sim::AdversaryControl& ctl) {
  control_set_ = sample_control_set(rng_, ctl);
  for (const auto p : control_set_) ctl.crash(p);
}

void IsolationAdversary::on_run_start(sim::AdversaryControl& ctl) {
  control_set_ = sample_control_set(rng_, ctl);
  if (control_set_.empty()) return;
  const std::uint64_t tau = resolve_tau(tau_, ctl);
  const std::uint64_t delta = util::sat_pow(tau, k_);
  for (const auto p : control_set_) ctl.set_local_step_time(p, delta);
  rho_hat_ = control_set_[static_cast<std::size_t>(
      rng_.below(control_set_.size()))];
  for (const auto p : control_set_)
    if (p != rho_hat_) ctl.crash(p);
}

void IsolationAdversary::on_message_emitted(sim::AdversaryControl& ctl,
                                            const sim::SendEvent& event) {
  if (event.from != rho_hat_) return;
  if (ctl.crashes_used() >= ctl.crash_budget()) return;
  if (ctl.is_crashed(event.to)) return;
  ctl.crash(event.to);
}

void DelayAdversary::on_run_start(sim::AdversaryControl& ctl) {
  control_set_ = sample_control_set(rng_, ctl);
  const std::uint64_t tau = resolve_tau(tau_, ctl);
  const std::uint64_t delta = util::sat_pow(tau, k_);
  const std::uint64_t delivery = util::sat_pow(tau, k_ + l_);
  for (const auto p : control_set_) {
    ctl.set_local_step_time(p, delta);
    ctl.set_delivery_time(p, delivery);
  }
}

}  // namespace ugf::adversary
