#pragma once

/// \file no_adversary.hpp
/// The benign adversary: leaves every d_rho = delta_rho = 1 and crashes
/// nobody. This is the paper's experimental baseline (§V-A.4).

#include "sim/adversary_iface.hpp"

namespace ugf::adversary {

class NoAdversary final : public sim::Adversary {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "none"; }
};

}  // namespace ugf::adversary
