#pragma once

/// \file jitter.hpp
/// Benign network jitter — Remark 1 of the paper notes that local-step
/// lengths and delivery times could vary over time; the analysis fixes
/// them only "for presentation simplicity". This adversary exercises
/// exactly that freedom: every `period` global steps it re-draws the
/// local-step and delivery times of a random subset of processes
/// uniformly from [1, amplitude]. It crashes nobody and its delays are
/// bounded by a constant, so a correct protocol must still gather all
/// rumors and quiesce with complexities within a constant factor of the
/// benign baseline — which is what the robustness tests assert.

#include <cstdint>

#include "sim/adversary_iface.hpp"
#include "util/rng.hpp"

namespace ugf::adversary {

struct JitterConfig {
  /// Upper bound for both delta_rho and d_rho (>= 1).
  std::uint64_t amplitude = 4;
  /// Re-draw interval in global steps.
  sim::GlobalStep period = 5;
  /// Fraction of processes re-drawn per period, in [0, 1].
  double churn = 0.5;
  /// Stop re-drawing after this many periods (keeps the timer stream
  /// finite; the system has long quiesced by then in practice).
  std::uint32_t max_periods = 200;
};

class JitterAdversary final : public sim::Adversary {
 public:
  explicit JitterAdversary(std::uint64_t seed, JitterConfig config = {})
      : rng_(seed), config_(config) {}

  [[nodiscard]] const char* name() const noexcept override { return "jitter"; }

  void on_run_start(sim::AdversaryControl& ctl) override;
  void on_timer(sim::AdversaryControl& ctl, sim::GlobalStep step) override;

 private:
  void shake(sim::AdversaryControl& ctl);

  util::Rng rng_;
  JitterConfig config_;
  std::uint32_t periods_done_ = 0;
};

}  // namespace ugf::adversary
