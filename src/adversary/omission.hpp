#pragma once

/// \file omission.hpp
/// Omission-failure adversary — the paper's §VII asks whether an
/// adversary that can *omit* messages (after Kowalski & Strojnowski,
/// IPL 2009) harms dissemination more than one that merely delays them.
///
/// The strategy mirrors Strategy 2.k.l so the two are comparable: the
/// control set C (floor(F/2) random processes) is slowed to
/// delta = tau^k, and instead of delaying C's messages by tau^(k+l),
/// the adversary *silently discards* the first `quota` messages of each
/// C member (default quota = tau^l, i.e. the number of extra sends the
/// delay variant forces before anything useful lands). Omitted messages
/// still count toward M_rho — the send happened — but never arrive, so
/// the protocol has to keep re-sending until the quota is exhausted.
/// The quota is finite, so rumor gathering and quiescence still hold.

#include <cstdint>
#include <vector>

#include "sim/adversary_iface.hpp"
#include "util/rng.hpp"

namespace ugf::adversary {

class OmissionAdversary final : public sim::Adversary {
 public:
  /// tau == 0 resolves to F at run start (as everywhere else).
  /// quota == 0 defaults to tau^l.
  OmissionAdversary(std::uint64_t seed, std::uint64_t tau = 0,
                    std::uint32_t k = 1, std::uint32_t l = 1,
                    std::uint64_t quota = 0)
      : rng_(seed), tau_(tau), k_(k), l_(l), quota_(quota) {}

  [[nodiscard]] const char* name() const noexcept override {
    return "omission";
  }
  void on_run_start(sim::AdversaryControl& ctl) override;
  void on_message_emitted(sim::AdversaryControl& ctl,
                          const sim::SendEvent& event) override;

  [[nodiscard]] const std::vector<sim::ProcessId>& control_set()
      const noexcept {
    return control_set_;
  }
  [[nodiscard]] std::uint64_t quota() const noexcept { return quota_; }
  [[nodiscard]] std::uint64_t omitted() const noexcept { return omitted_; }

 private:
  util::Rng rng_;
  std::uint64_t tau_;
  std::uint32_t k_;
  std::uint32_t l_;
  std::uint64_t quota_;
  std::uint64_t omitted_ = 0;
  std::vector<sim::ProcessId> control_set_;
  std::vector<bool> in_control_;  ///< indexed by process id
};

}  // namespace ugf::adversary
