#include "adversary/oblivious.hpp"

#include <algorithm>

namespace ugf::adversary {

void ObliviousAdversary::on_run_start(sim::AdversaryControl& ctl) {
  const auto n = ctl.num_processes();
  const auto f = ctl.crash_budget();
  const sim::GlobalStep horizon =
      horizon_ == 0 ? sim::GlobalStep{4} * n : horizon_;
  const auto victims = rng_.sample_without_replacement(n, f);
  plan_.reserve(victims.size());
  for (const auto v : victims)
    plan_.push_back(PlannedCrash{rng_.below(horizon + 1), v});
  std::sort(plan_.begin(), plan_.end(),
            [](const PlannedCrash& a, const PlannedCrash& b) {
              return a.at < b.at || (a.at == b.at && a.victim < b.victim);
            });
  for (const auto& planned : plan_) ctl.request_timer(planned.at);
}

void ObliviousAdversary::on_timer(sim::AdversaryControl& ctl,
                                  sim::GlobalStep step) {
  while (next_ < plan_.size() && plan_[next_].at <= step) {
    ctl.crash(plan_[next_].victim);
    ++next_;
  }
}

}  // namespace ugf::adversary
