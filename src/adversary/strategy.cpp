#include "adversary/strategy.hpp"

namespace ugf::adversary {

std::string to_string(const StrategyChoice& choice) {
  switch (choice.kind) {
    case StrategyKind::kNone:
      return "none";
    case StrategyKind::kCrashC:
      return "strategy-1";
    case StrategyKind::kIsolate:
      return "strategy-2." + std::to_string(choice.k) + ".0";
    case StrategyKind::kDelay:
      return "strategy-2." + std::to_string(choice.k) + "." +
             std::to_string(choice.l);
  }
  return "unknown";
}

}  // namespace ugf::adversary
