#pragma once

/// \file factory.hpp
/// Per-run adversary construction. Adversaries are stateful (they track
/// their control set, crash progress, timers), so the Monte-Carlo runner
/// creates a fresh instance per run, seeded from the run's seed stream.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "sim/adversary_iface.hpp"

namespace ugf::adversary {

class AdversaryFactory {
 public:
  virtual ~AdversaryFactory() = default;

  /// Human-readable name for reports.
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Creates one run's adversary. May return nullptr for "no adversary"
  /// (the engine treats nullptr as benign).
  [[nodiscard]] virtual std::unique_ptr<sim::Adversary> create(
      std::uint64_t seed) const = 0;
};

/// Wraps a callable plus a name; convenient for benches and tests.
class LambdaAdversaryFactory final : public AdversaryFactory {
 public:
  using Maker =
      std::function<std::unique_ptr<sim::Adversary>(std::uint64_t seed)>;

  LambdaAdversaryFactory(std::string name, Maker maker)
      : name_(std::move(name)), maker_(std::move(maker)) {}

  [[nodiscard]] const char* name() const noexcept override {
    return name_.c_str();
  }
  [[nodiscard]] std::unique_ptr<sim::Adversary> create(
      std::uint64_t seed) const override {
    return maker_(seed);
  }

 private:
  std::string name_;
  Maker maker_;
};

/// Factory for the benign baseline.
class NoAdversaryFactory final : public AdversaryFactory {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "none"; }
  [[nodiscard]] std::unique_ptr<sim::Adversary> create(
      std::uint64_t /*seed*/) const override {
    return nullptr;
  }
};

}  // namespace ugf::adversary
