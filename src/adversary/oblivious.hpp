#pragma once

/// \file oblivious.hpp
/// An oblivious (non-adaptive) adversary: it commits to its entire
/// schedule — which processes to crash and when — before the run starts,
/// without ever observing the dissemination. §VI recalls the result of
/// Georgiou et al. that oblivious adversaries are *not* powerful enough
/// to harm gossip; this adversary exists to reproduce that contrast
/// empirically (see bench/strategy_breakdown).

#include <cstdint>
#include <vector>

#include "sim/adversary_iface.hpp"
#include "util/rng.hpp"

namespace ugf::adversary {

class ObliviousAdversary final : public sim::Adversary {
 public:
  /// Crashes `budget` (= F by default) random processes at independent
  /// uniformly random steps in [0, horizon]. horizon == 0 picks 4*N,
  /// a window comfortably covering a benign dissemination.
  explicit ObliviousAdversary(std::uint64_t seed, sim::GlobalStep horizon = 0)
      : rng_(seed), horizon_(horizon) {}

  [[nodiscard]] const char* name() const noexcept override {
    return "oblivious";
  }
  void on_run_start(sim::AdversaryControl& ctl) override;
  void on_timer(sim::AdversaryControl& ctl, sim::GlobalStep step) override;

 private:
  struct PlannedCrash {
    sim::GlobalStep at = 0;
    sim::ProcessId victim = sim::kNoProcess;
  };

  util::Rng rng_;
  sim::GlobalStep horizon_;
  std::vector<PlannedCrash> plan_;  ///< sorted by `at`
  std::size_t next_ = 0;
};

}  // namespace ugf::adversary
