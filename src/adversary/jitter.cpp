#include "adversary/jitter.hpp"

#include <algorithm>

namespace ugf::adversary {

void JitterAdversary::on_run_start(sim::AdversaryControl& ctl) {
  shake(ctl);
  if (config_.max_periods > 0) ctl.request_timer(config_.period);
}

void JitterAdversary::on_timer(sim::AdversaryControl& ctl,
                               sim::GlobalStep step) {
  shake(ctl);
  if (++periods_done_ < config_.max_periods)
    ctl.request_timer(step + config_.period);
}

void JitterAdversary::shake(sim::AdversaryControl& ctl) {
  const auto n = ctl.num_processes();
  const auto count = static_cast<std::uint32_t>(
      std::clamp(config_.churn, 0.0, 1.0) * static_cast<double>(n));
  const auto victims = rng_.sample_without_replacement(n, count);
  const std::uint64_t amplitude = std::max<std::uint64_t>(1, config_.amplitude);
  for (const auto p : victims) {
    if (ctl.is_crashed(p)) continue;
    ctl.set_local_step_time(p, rng_.between(1, amplitude));
    ctl.set_delivery_time(p, rng_.between(1, amplitude));
  }
}

}  // namespace ugf::adversary
