#include "adversary/informed.hpp"

#include "adversary/fixed_strategies.hpp"
#include "util/saturating.hpp"

namespace ugf::adversary {

void InformedFighter::on_run_start(sim::AdversaryControl& ctl) {
  ctl.request_timer(config_.warmup);
}

void InformedFighter::on_timer(sim::AdversaryControl& ctl,
                               sim::GlobalStep step) {
  if (applied_) return;
  applied_ = true;

  const auto n = ctl.num_processes();
  std::uint64_t total = 0;
  for (sim::ProcessId p = 0; p < n; ++p) total += ctl.messages_sent_by(p);
  rate_ = static_cast<double>(total) /
          (static_cast<double>(n) * static_cast<double>(std::max<sim::GlobalStep>(1, step)));

  control_set_ = sample_control_set(rng_, ctl);
  const std::uint64_t tau = resolve_tau(config_.tau, ctl);

  if (rate_ > config_.fanout_threshold) {
    // Fan-out family (SEARS-like): time is already constant-ish, so the
    // only damage worth doing is message inflation via delays.
    choice_ = StrategyChoice{StrategyKind::kDelay, 1, 1};
    for (const auto p : control_set_) {
      ctl.set_local_step_time(p, tau);
      ctl.set_delivery_time(p, util::sat_mul(tau, tau));
    }
    return;
  }
  if (rate_ > config_.pushpull_threshold) {
    // Push-Pull-like: crashing C forces every survivor to burn a pull
    // request per crashed process — linear time (the paper's max for
    // Push-Pull time).
    choice_ = StrategyChoice{StrategyKind::kCrashC, 0, 0};
    for (const auto p : control_set_) ctl.crash(p);
    return;
  }
  // One-message-per-step family (EARS-like): isolation hurts the most.
  choice_ = StrategyChoice{StrategyKind::kIsolate, 1, 0};
  if (control_set_.empty()) return;
  for (const auto p : control_set_) ctl.set_local_step_time(p, tau);
  rho_hat_ =
      control_set_[static_cast<std::size_t>(rng_.below(control_set_.size()))];
  for (const auto p : control_set_)
    if (p != rho_hat_) ctl.crash(p);
}

void InformedFighter::on_message_emitted(sim::AdversaryControl& ctl,
                                         const sim::SendEvent& event) {
  if (!applied_ || choice_.kind != StrategyKind::kIsolate) return;
  if (event.from != rho_hat_) return;
  if (ctl.crashes_used() >= ctl.crash_budget()) return;
  if (ctl.is_crashed(event.to)) return;
  ctl.crash(event.to);
}

}  // namespace ugf::adversary
