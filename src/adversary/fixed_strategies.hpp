#pragma once

/// \file fixed_strategies.hpp
/// The three strategy families of Algorithm 1, each packaged as a
/// standalone adversary so they can be (a) composed by UGF's
/// randomization scheme and (b) benchmarked individually — the paper's
/// "max UGF" curves are exactly these adversaries.
///
/// Every strategy first draws the control set C: a uniform sample of
/// floor(F/2) processes (F = the crash budget the engine enforces).
/// `tau == 0` means "resolve tau to F at run start", the instantiation
/// used throughout the paper's experiments (tau = F, k = l = 1).

#include <cstdint>
#include <vector>

#include "adversary/strategy.hpp"
#include "sim/adversary_iface.hpp"
#include "util/rng.hpp"

namespace ugf::adversary {

/// Samples the control set C (floor(F/2) distinct processes).
[[nodiscard]] std::vector<sim::ProcessId> sample_control_set(
    util::Rng& rng, const sim::AdversaryControl& ctl);

/// Resolves a tau parameter: 0 -> max(F, 2) (tau must exceed 1 for the
/// indistinguishability lemmas), anything else passes through.
[[nodiscard]] std::uint64_t resolve_tau(std::uint64_t tau,
                                        const sim::AdversaryControl& ctl);

/// Strategy 1: crash every process of C before the first global step.
class Strategy1Adversary final : public sim::Adversary {
 public:
  explicit Strategy1Adversary(std::uint64_t seed) : rng_(seed) {}

  [[nodiscard]] const char* name() const noexcept override {
    return "strategy-1";
  }
  void on_run_start(sim::AdversaryControl& ctl) override;

  [[nodiscard]] const std::vector<sim::ProcessId>& control_set()
      const noexcept {
    return control_set_;
  }

 private:
  util::Rng rng_;
  std::vector<sim::ProcessId> control_set_;
};

/// Strategy 2.k.0: slow C down to delta = tau^k, keep a single random
/// rho-hat of C alive, crash everyone rho-hat sends to until the crash
/// budget F is exhausted.
class IsolationAdversary final : public sim::Adversary {
 public:
  /// tau == 0 resolves to F at run start (the paper's choice).
  IsolationAdversary(std::uint64_t seed, std::uint64_t tau = 0,
                     std::uint32_t k = 1)
      : rng_(seed), tau_(tau), k_(k) {}

  [[nodiscard]] const char* name() const noexcept override {
    return "strategy-2.k.0";
  }
  void on_run_start(sim::AdversaryControl& ctl) override;
  void on_message_emitted(sim::AdversaryControl& ctl,
                          const sim::SendEvent& event) override;

  [[nodiscard]] sim::ProcessId isolated_process() const noexcept {
    return rho_hat_;
  }
  [[nodiscard]] const std::vector<sim::ProcessId>& control_set()
      const noexcept {
    return control_set_;
  }

 private:
  util::Rng rng_;
  std::uint64_t tau_;
  std::uint32_t k_;
  sim::ProcessId rho_hat_ = sim::kNoProcess;
  std::vector<sim::ProcessId> control_set_;
};

/// Strategy 2.k.l (l >= 1): slow C down to delta = tau^k and delay its
/// messages to d = tau^(k+l). No crashes at all — the damage is message
/// overhead on the processes that keep gossiping into the void.
class DelayAdversary final : public sim::Adversary {
 public:
  /// tau == 0 resolves to F at run start (the paper's choice).
  DelayAdversary(std::uint64_t seed, std::uint64_t tau = 0,
                 std::uint32_t k = 1, std::uint32_t l = 1)
      : rng_(seed), tau_(tau), k_(k), l_(l) {}

  [[nodiscard]] const char* name() const noexcept override {
    return "strategy-2.k.l";
  }
  void on_run_start(sim::AdversaryControl& ctl) override;

  [[nodiscard]] const std::vector<sim::ProcessId>& control_set()
      const noexcept {
    return control_set_;
  }

 private:
  util::Rng rng_;
  std::uint64_t tau_;
  std::uint32_t k_;
  std::uint32_t l_;
  std::vector<sim::ProcessId> control_set_;
};

}  // namespace ugf::adversary
