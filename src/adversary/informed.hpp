#pragma once

/// \file informed.hpp
/// The informed fighter — §VII asks "whether some realistic additional
/// information about the gossip could improve the performance of our
/// algorithm". This adversary answers with the cheapest realistic
/// information there is: the observable per-process send rate.
///
/// It watches the dissemination for a short warm-up window, classifies
/// the protocol family by its traffic signature and then plays the
/// strategy the paper identifies as maximal for that family:
///
///   rate > fanout_threshold  (many msgs/step)  -> SEARS-like  -> delay
///   rate > pushpull_threshold (2 msgs/step)    -> Push-Pull   -> crash C
///   otherwise                 (1 msg/step)     -> EARS-like   -> isolate
///
/// Unlike UGF it is *not* universal-by-randomization — it bets on its
/// classification — but when the guess is right it should match or beat
/// the "max UGF" curves without a lucky draw. bench/informed_vs_ugf
/// quantifies the gap.

#include <cstdint>
#include <vector>

#include "adversary/strategy.hpp"
#include "sim/adversary_iface.hpp"
#include "util/rng.hpp"

namespace ugf::adversary {

struct InformedConfig {
  /// Warm-up observation window in global steps.
  sim::GlobalStep warmup = 3;
  /// tau for the chosen strategy; 0 -> F.
  std::uint64_t tau = 0;
  /// Per-process per-step rate above which the protocol is classified
  /// as fan-out (SEARS-like). Rates are measured as total sends /
  /// (N * warmup); with emissions at the *ends* of local steps a
  /// 1-message-per-step protocol measures ~(warmup-1)/warmup, a
  /// 2-message protocol ~2(warmup-1)/warmup — the thresholds sit
  /// between those bands.
  double fanout_threshold = 3.0;
  /// Rate above which it is classified as Push-Pull-like.
  double pushpull_threshold = 1.05;
};

class InformedFighter final : public sim::Adversary {
 public:
  explicit InformedFighter(std::uint64_t seed, InformedConfig config = {})
      : rng_(seed), config_(config) {}

  [[nodiscard]] const char* name() const noexcept override {
    return "informed";
  }
  [[nodiscard]] std::string strategy_descriptor() const override {
    return applied_ ? "informed+" + to_string(choice_) : "informed(warmup)";
  }

  void on_run_start(sim::AdversaryControl& ctl) override;
  void on_timer(sim::AdversaryControl& ctl, sim::GlobalStep step) override;
  void on_message_emitted(sim::AdversaryControl& ctl,
                          const sim::SendEvent& event) override;

  /// The observed per-process per-step rate (valid after the warm-up).
  [[nodiscard]] double observed_rate() const noexcept { return rate_; }
  [[nodiscard]] const adversary::StrategyChoice& chosen_strategy()
      const noexcept {
    return choice_;
  }

 private:
  util::Rng rng_;
  InformedConfig config_;
  bool applied_ = false;
  double rate_ = 0.0;
  StrategyChoice choice_;
  std::vector<sim::ProcessId> control_set_;
  sim::ProcessId rho_hat_ = sim::kNoProcess;
};

}  // namespace ugf::adversary
