#pragma once

/// \file strategy.hpp
/// Taxonomy of UGF's adversarial strategies (§III-B, Fig. 1):
///   * Strategy 1      — crash the control set C outright; hurts
///                       protocols whose remaining processes gossip
///                       slowly (forces high *time* complexity);
///   * Strategy 2.k.0  — slow C down (delta = tau^k), keep one process
///                       rho-hat of C alive and crash the receivers of
///                       its messages (isolation; forces high *time*
///                       complexity against slow-sending C);
///   * Strategy 2.k.l  — slow C down and additionally delay its messages
///                       (d = tau^(k+l)); fast-sending processes are
///                       forced to emit many messages (high *message*
///                       complexity).

#include <cstdint>
#include <string>

namespace ugf::adversary {

enum class StrategyKind : std::uint8_t {
  kNone,     ///< no adversarial action
  kCrashC,   ///< Strategy 1
  kIsolate,  ///< Strategy 2.k.0
  kDelay,    ///< Strategy 2.k.l (l >= 1)
};

/// A fully instantiated strategy choice (k and l are meaningful only
/// for the strategy families that use them).
struct StrategyChoice {
  StrategyKind kind = StrategyKind::kNone;
  std::uint32_t k = 0;
  std::uint32_t l = 0;

  friend bool operator==(const StrategyChoice&,
                         const StrategyChoice&) = default;
};

/// "none", "strategy-1", "strategy-2.3.0", "strategy-2.1.2", ...
[[nodiscard]] std::string to_string(const StrategyChoice& choice);

}  // namespace ugf::adversary
