#include "util/thread_pool.hpp"

#include <algorithm>

namespace ugf::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this]() { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    MoveOnlyTask task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& f) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  std::exception_ptr first_error;
  try {
    for (std::size_t i = 0; i < n; ++i)
      futures.push_back(submit([&f, i]() { f(i); }));
  } catch (...) {
    first_error = std::current_exception();
  }
  // Every submitted task captures `f` by reference, so ALL of them must
  // have finished before any exception may propagate out of this frame
  // — rethrowing on the first failed future would let still-queued
  // workers run against a dead closure.
  for (auto& fut : futures) {
    try {
      fut.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for(
    const std::vector<std::size_t>& bounds,
    const std::function<void(std::size_t chunk, std::size_t begin,
                             std::size_t end)>& f) {
  if (bounds.size() < 2) return;
  const std::size_t chunks = bounds.size() - 1;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks - 1);
  std::exception_ptr first_error;
  try {
    for (std::size_t c = 1; c < chunks; ++c) {
      const std::size_t lo = bounds[c];
      const std::size_t hi = bounds[c + 1];
      futures.push_back(submit([&f, c, lo, hi]() { f(c, lo, hi); }));
    }
  } catch (...) {
    first_error = std::current_exception();
  }
  // The coordinator takes chunk 0 itself; error precedence matches the
  // dynamic overload (submission failure, then earliest chunk), and
  // every path still waits for the full join below.
  try {
    f(0, bounds[0], bounds[1]);
  } catch (...) {
    if (!first_error) first_error = std::current_exception();
  }
  for (auto& fut : futures) {
    try {
      fut.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ugf::util
