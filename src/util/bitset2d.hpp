#pragma once

/// \file bitset2d.hpp
/// A dense rows x cols bit matrix backed by a single contiguous buffer.
///
/// EARS/SEARS carry the relation I = {(rho', g) : rho' knows g}; at
/// N = 500 that is a 500x500 bit matrix (~31 KiB), merged by word-wise
/// OR. Rows are word-aligned so row operations never straddle rows.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/dynamic_bitset.hpp"

namespace ugf::util {

class Bitset2D {
 public:
  Bitset2D() = default;
  Bitset2D(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  void set(std::size_t r, std::size_t c) noexcept;
  void reset(std::size_t r, std::size_t c) noexcept;
  [[nodiscard]] bool test(std::size_t r, std::size_t c) const noexcept;

  /// Sets every bit in row r.
  void set_row(std::size_t r) noexcept;
  /// True iff every bit in row r is set.
  [[nodiscard]] bool row_all(std::size_t r) const noexcept;
  /// Number of set bits in row r.
  [[nodiscard]] std::size_t row_count(std::size_t r) const noexcept;

  /// this |= other; sizes must match. Returns true iff this changed.
  bool or_with(const Bitset2D& other) noexcept;

  /// True iff every set bit of `bits` (size == cols) is set in row r.
  [[nodiscard]] bool row_contains(std::size_t r,
                                  const DynamicBitset& bits) const noexcept;

  /// row r |= bits (size == cols). Returns true iff the row changed.
  bool or_row_with(std::size_t r, const DynamicBitset& bits) noexcept;

  /// True iff row r has at least one set bit.
  [[nodiscard]] bool row_any(std::size_t r) const noexcept;

  /// Total number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;
  /// True iff every bit in the matrix is set.
  [[nodiscard]] bool all() const noexcept;

  friend bool operator==(const Bitset2D&, const Bitset2D&) = default;

  /// Read-only view of the backing words (row-major, word-aligned rows);
  /// used by state digests to fold the matrix without bit-level iteration.
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

 private:
  static constexpr std::size_t kWordBits = 64;
  [[nodiscard]] std::size_t word_index(std::size_t r,
                                       std::size_t c) const noexcept {
    return r * words_per_row_ + c / kWordBits;
  }
  [[nodiscard]] std::uint64_t tail_mask() const noexcept;

  std::vector<std::uint64_t> words_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t words_per_row_ = 0;
};

}  // namespace ugf::util
