#pragma once

/// \file json.hpp
/// A minimal streaming JSON writer for experiment exports — no external
/// dependencies, no DOM. Values are written in document order; the
/// writer validates nesting (closing an array as an object throws).
/// Doubles are emitted with shortest round-trip formatting; NaN and
/// infinities become null (JSON has no representation for them).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ugf::util {

class JsonWriter {
 public:
  JsonWriter();

  /// The finished document; valid once all scopes are closed.
  [[nodiscard]] const std::string& str() const;

  // --- scopes --------------------------------------------------------------
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be directly inside an object.
  JsonWriter& key(std::string_view name);

  // --- values --------------------------------------------------------------
  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint32_t number);
  JsonWriter& value(int number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Shorthand for key(name).value(v).
  template <typename T>
  JsonWriter& member(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

  [[nodiscard]] static std::string escape(std::string_view text);

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  void before_value();
  void finish_value();
  void raw(std::string_view text);

  std::string out_;
  std::vector<Scope> stack_;
  bool expecting_key_ = false;  ///< inside an object, next token is a key
  bool first_in_scope_ = true;
  bool done_ = false;
};

}  // namespace ugf::util
