#include "util/csv.hpp"

#include <charconv>
#include <stdexcept>

namespace ugf::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::vector<std::string> csv_parse_line(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::size_t CsvTable::column(std::string_view name) const {
  for (std::size_t i = 0; i < header.size(); ++i)
    if (header[i] == name) return i;
  throw std::out_of_range("CsvTable: no column named " + std::string(name));
}

const std::string& CsvTable::at(std::size_t row, std::string_view name) const {
  return rows.at(row).at(column(name));
}

CsvTable read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path);
  CsvTable table;
  std::string line;
  if (!std::getline(in, line))
    throw std::runtime_error("read_csv: empty file " + path);
  table.header = csv_parse_line(line);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = csv_parse_line(line);
    if (fields.size() != table.header.size())
      throw std::runtime_error("read_csv: ragged row in " + path);
    table.rows.push_back(std::move(fields));
  }
  return table;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), path_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  row(header);
  rows_ = 0;  // header does not count as a data row
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (fields.size() != columns_)
    throw std::runtime_error("CsvWriter: row width mismatch in " + path_);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
  ++rows_;
}

std::string CsvWriter::format_field(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return ec == std::errc{} ? std::string(buf, ptr) : std::string("nan");
}

std::string CsvWriter::format_field(std::uint64_t v) {
  return std::to_string(v);
}
std::string CsvWriter::format_field(std::int64_t v) { return std::to_string(v); }
std::string CsvWriter::format_field(std::uint32_t v) { return std::to_string(v); }
std::string CsvWriter::format_field(int v) { return std::to_string(v); }

}  // namespace ugf::util
