#pragma once

/// \file saturating.hpp
/// Saturating 64-bit arithmetic. UGF sets local-step and delivery times
/// to tau^k and tau^(k+l); with sampled exponents these overflow quickly,
/// so all delay computations saturate at a large sentinel instead of
/// wrapping. The sentinel is far beyond any simulation horizon, so a
/// saturated delay simply means "longer than the run".

#include <cstdint>
#include <limits>

namespace ugf::util {

/// Saturation ceiling for simulated global steps. Kept well below
/// UINT64_MAX so that adding small offsets to a saturated value cannot
/// wrap either.
inline constexpr std::uint64_t kStepInfinity =
    std::numeric_limits<std::uint64_t>::max() / 4;

[[nodiscard]] constexpr std::uint64_t sat_add(std::uint64_t a,
                                              std::uint64_t b) noexcept {
  const std::uint64_t s = a + b;
  return (s < a || s > kStepInfinity) ? kStepInfinity : s;
}

[[nodiscard]] constexpr std::uint64_t sat_mul(std::uint64_t a,
                                              std::uint64_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  if (a > kStepInfinity / b) return kStepInfinity;
  return a * b;
}

/// base^exp with saturation; 0^0 == 1.
[[nodiscard]] constexpr std::uint64_t sat_pow(std::uint64_t base,
                                              std::uint32_t exp) noexcept {
  std::uint64_t result = 1;
  std::uint64_t b = base;
  std::uint32_t e = exp;
  while (e > 0) {
    if ((e & 1u) != 0) result = sat_mul(result, b);
    e >>= 1u;
    if (e > 0) b = sat_mul(b, b);
    if (result == kStepInfinity) return kStepInfinity;
  }
  return result;
}

}  // namespace ugf::util
