#pragma once

/// \file stopwatch.hpp
/// Monotonic wall-clock timer for harness progress reporting.

#include <chrono>

namespace ugf::util {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ugf::util
