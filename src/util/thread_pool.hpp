#pragma once

/// \file thread_pool.hpp
/// A fixed-size work-queue thread pool used by the Monte-Carlo runner to
/// execute independent simulation runs in parallel. Each run owns its
/// seed-derived RNG and its own engine, so tasks share no mutable state
/// (CP.2/CP.3: no data races, minimal sharing); the pool only
/// synchronises on the queue itself.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ugf::util {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future observes its result/exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      const std::scoped_lock lock(mutex_);
      if (stopping_)
        throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs f(i) for i in [0, n), blocking until every submitted task has
  /// completed — even when some throw. The first exception (submission
  /// failure, else lowest task index) is rethrown only after all tasks
  /// are joined, so no worker can outlive the closure it references.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& f);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace ugf::util
