#pragma once

/// \file thread_pool.hpp
/// A fixed-size work-queue thread pool used by the Monte-Carlo runner to
/// execute independent simulation runs in parallel. Each run owns its
/// seed-derived RNG and its own engine, so tasks share no mutable state
/// (CP.2/CP.3: no data races, minimal sharing); the pool only
/// synchronises on the queue itself.
///
/// The queue stores move-only type-erased callables (MoveOnlyTask):
/// std::function requires copyability, which used to force submit() to
/// wrap every packaged_task in a shared_ptr — one extra allocation and
/// refcount per task. The small-buffer wrapper erases the callable in
/// place instead.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <new>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ugf::util {

/// Type-erased move-only nullary callable with small-buffer storage.
/// Fills the gap between std::function (copyable-only callables) and
/// C++23 std::move_only_function: a std::packaged_task or a lambda
/// owning a std::unique_ptr goes straight into the inline buffer with
/// no heap allocation; larger callables fall back to one.
class MoveOnlyTask {
 public:
  /// Inline storage; fits std::packaged_task and capture-rich lambdas.
  static constexpr std::size_t kInlineBytes = 6 * sizeof(void*);

  MoveOnlyTask() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, MoveOnlyTask>>>
  MoveOnlyTask(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  MoveOnlyTask(MoveOnlyTask&& other) noexcept : vtable_(other.vtable_) {
    if (vtable_ != nullptr) vtable_->relocate(other.storage_, storage_);
    other.vtable_ = nullptr;
  }

  MoveOnlyTask& operator=(MoveOnlyTask&& other) noexcept {
    if (this != &other) {
      destroy();
      vtable_ = other.vtable_;
      if (vtable_ != nullptr) vtable_->relocate(other.storage_, storage_);
      other.vtable_ = nullptr;
    }
    return *this;
  }

  MoveOnlyTask(const MoveOnlyTask&) = delete;
  MoveOnlyTask& operator=(const MoveOnlyTask&) = delete;

  ~MoveOnlyTask() { destroy(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vtable_ != nullptr;
  }

  void operator()() {
    vtable_->invoke(storage_);
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-constructs src's callable into dst, then destroys src's.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= kInlineBytes && alignof(F) <= alignof(std::max_align_t);
  }

  template <typename F>
  static const VTable* vtable_for() {
    static constexpr VTable vt{
        [](void* p) { (*static_cast<F*>(p))(); },
        [](void* src, void* dst) noexcept {
          ::new (dst) F(std::move(*static_cast<F*>(src)));
          static_cast<F*>(src)->~F();
        },
        [](void* p) noexcept { static_cast<F*>(p)->~F(); }};
    return &vt;
  }

  template <typename Raw>
  void emplace(Raw&& raw) {
    using F = std::decay_t<Raw>;
    if constexpr (fits_inline<F>()) {
      ::new (static_cast<void*>(storage_)) F(std::forward<Raw>(raw));
      vtable_ = vtable_for<F>();
    } else {
      // Box oversized callables; the box itself is a small move-only
      // lambda, so it recurses into the inline branch.
      emplace([boxed = std::make_unique<F>(std::forward<Raw>(raw))]() {
        (*boxed)();
      });
    }
  }

  void destroy() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
};

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future observes its result/exception.
  /// F may be move-only and may return a move-only type.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    std::packaged_task<R()> task(std::forward<F>(f));
    std::future<R> fut = task.get_future();
    {
      const std::scoped_lock lock(mutex_);
      if (stopping_)
        throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace(std::move(task));
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs f(i) for i in [0, n), blocking until every submitted task has
  /// completed — even when some throw. The first exception (submission
  /// failure, else lowest task index) is rethrown only after all tasks
  /// are joined, so no worker can outlive the closure it references.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& f);

  /// Static-partition variant for callers that need a *fixed* work→
  /// worker assignment instead of the dynamic claiming above (the
  /// parallel step executor partitions processes into contiguous pid
  /// shards so each shard's pooled storage has exactly one writer).
  ///
  /// `bounds` lists chunk boundaries: chunk c covers [bounds[c],
  /// bounds[c+1]), so bounds must be non-decreasing with
  /// bounds.size() - 1 chunks; an empty or single-entry list is a
  /// no-op. Chunk 0 runs inline on the calling thread (the coordinator
  /// participates instead of idling); chunks 1.. are submitted to the
  /// pool. Empty chunks are still invoked — callers key per-chunk
  /// state (RNGs, arenas) off the chunk index. Blocks until every
  /// chunk finished; the first exception (submission failure, then the
  /// inline chunk, then the lowest submitted chunk) is rethrown after
  /// the join.
  void parallel_for(
      const std::vector<std::size_t>& bounds,
      const std::function<void(std::size_t chunk, std::size_t begin,
                               std::size_t end)>& f);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<MoveOnlyTask> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace ugf::util
