#pragma once

/// \file csv.hpp
/// Minimal CSV emission for experiment outputs. Every bench binary
/// writes the series it prints as a CSV so figures can be re-plotted
/// without re-running the sweep. Fields containing separators/quotes
/// are quoted per RFC 4180.

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace ugf::util {

/// Escapes a single CSV field per RFC 4180.
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Parses one RFC 4180 CSV record (quotes, escaped quotes, embedded
/// separators). Trailing CR is stripped. Multi-line quoted fields are
/// not supported (the writers in this project never emit them).
[[nodiscard]] std::vector<std::string> csv_parse_line(std::string_view line);

/// A parsed CSV file: header plus rows, with name-based column lookup.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column; throws std::out_of_range if absent.
  [[nodiscard]] std::size_t column(std::string_view name) const;
  /// Field of `row` under the named column.
  [[nodiscard]] const std::string& at(std::size_t row,
                                      std::string_view name) const;
};

/// Reads a CSV file written by CsvWriter; throws std::runtime_error on
/// I/O failure or ragged rows.
[[nodiscard]] CsvTable read_csv(const std::string& path);

/// Streams rows to a file; the header row is written on construction.
class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row; must have as many fields as the header.
  void row(const std::vector<std::string>& fields);

  /// Convenience: formats arithmetic values with shortest round-trip
  /// representation and passes strings through.
  template <typename... Ts>
  void row_values(const Ts&... values) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(values));
    (fields.push_back(format_field(values)), ...);
    row(fields);
  }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  static std::string format_field(const std::string& s) { return s; }
  static std::string format_field(const char* s) { return s; }
  static std::string format_field(double v);
  static std::string format_field(std::uint64_t v);
  static std::string format_field(std::int64_t v);
  static std::string format_field(std::uint32_t v);
  static std::string format_field(int v);

  std::ofstream out_;
  std::string path_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace ugf::util
