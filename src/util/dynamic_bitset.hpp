#pragma once

/// \file dynamic_bitset.hpp
/// A compact runtime-sized bitset used for gossip-knowledge bookkeeping.
///
/// Protocol state such as "which gossips do I know" and "which processes
/// have I pull-requested" is one bit per process; at N = 500 a set is
/// 8 words, so unions (the hot path of EARS/SEARS merges) are word-wise
/// ORs. `count()` is cached-free but cheap (popcount); callers that need
/// saturation checks use `all()`.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ugf::util {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t size, bool value = false);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void set(std::size_t i) noexcept;
  void reset(std::size_t i) noexcept;
  void assign(std::size_t i, bool value) noexcept;
  [[nodiscard]] bool test(std::size_t i) const noexcept;

  void set_all() noexcept;
  void reset_all() noexcept;

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;
  /// True iff every bit is set.
  [[nodiscard]] bool all() const noexcept;
  /// True iff no bit is set.
  [[nodiscard]] bool none() const noexcept;
  /// True iff at least one bit is set.
  [[nodiscard]] bool any() const noexcept { return !none(); }

  /// this |= other. Sizes must match. Returns true iff this changed.
  bool or_with(const DynamicBitset& other) noexcept;
  /// this &= other. Sizes must match.
  void and_with(const DynamicBitset& other) noexcept;
  /// True iff other is a subset of this (other & ~this == 0).
  [[nodiscard]] bool contains(const DynamicBitset& other) const noexcept;

  /// True iff (a | b) has every bit set; allocation-free.
  [[nodiscard]] static bool union_all(const DynamicBitset& a,
                                      const DynamicBitset& b) noexcept;

  /// Index of the first clear bit, or size() if all set.
  [[nodiscard]] std::size_t find_first_clear() const noexcept;
  /// Index of the first set bit, or size() if none set.
  [[nodiscard]] std::size_t find_first_set() const noexcept;

  /// Number of clear bits (size() - count()).
  [[nodiscard]] std::size_t clear_count() const noexcept {
    return size_ - count();
  }
  /// Index of the k-th (0-based, ascending) clear bit; size() if fewer
  /// than k + 1 bits are clear. Equivalent to clear_indices()[k]
  /// without materializing the vector.
  [[nodiscard]] std::size_t nth_clear(std::size_t k) const noexcept;

  /// Number of clear bits of (a | b); allocation-free.
  [[nodiscard]] static std::size_t union_clear_count(
      const DynamicBitset& a, const DynamicBitset& b) noexcept;
  /// Index of the k-th (0-based, ascending) clear bit of (a | b);
  /// a.size() if fewer than k + 1 bits are clear. Sizes must match.
  [[nodiscard]] static std::size_t nth_clear_of_union(
      const DynamicBitset& a, const DynamicBitset& b,
      std::size_t k) noexcept;

  /// Indices of all set bits, ascending.
  [[nodiscard]] std::vector<std::uint32_t> to_indices() const;
  /// Indices of all clear bits, ascending.
  [[nodiscard]] std::vector<std::uint32_t> clear_indices() const;

  /// Calls f(index) for each set bit, ascending.
  template <typename F>
  void for_each_set(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        f(static_cast<std::uint32_t>(w * 64 + static_cast<std::size_t>(b)));
        bits &= bits - 1;
      }
    }
  }

  friend bool operator==(const DynamicBitset&, const DynamicBitset&) = default;

  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

 private:
  static constexpr std::size_t kWordBits = 64;
  [[nodiscard]] std::uint64_t tail_mask() const noexcept;

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace ugf::util
