#pragma once

/// \file zeta_sampler.hpp
/// Sampler for the discrete distribution P[k] = 6 / (pi^2 k^2), k >= 1,
/// used by UGF (Algorithm 1) to pick the delay exponents k and l.
///
/// The paper (Remark 2) notes that any infinite sequence of
/// probabilities summing to 1 would do; the Basel weights 6/(pi^2 k^2)
/// are used because they guarantee the indistinguishability lemmas with
/// a heavy enough tail. We sample exactly via the inverse CDF: the CDF
/// at k is (6/pi^2) * H2(k) with H2(k) = sum_{i<=k} 1/i^2, and the tail
/// beyond any k is bounded using 1/k - 1/(k+1) <= 1/k^2, so the search
/// terminates after O(1/u_tail) iterations which has finite expectation.
///
/// A cap can be supplied so that tau^k stays representable; probability
/// mass beyond the cap is assigned to the cap itself (truncated law).
/// The paper's own experiments fix k = l = 1, which corresponds to
/// cap = 1.

#include <cstdint>

#include "util/rng.hpp"

namespace ugf::util {

/// Exact probability P[k] = 6/(pi^2 k^2) for k >= 1 (0 for k == 0).
[[nodiscard]] double zeta2_pmf(std::uint32_t k) noexcept;

/// CDF P[K <= k] of the untruncated law.
[[nodiscard]] double zeta2_cdf(std::uint32_t k) noexcept;

/// Draws from P[k] ∝ 1/k^2 on {1, ..., cap}; mass above `cap` collapses
/// onto `cap`. With `cap == 0` the law is untruncated (cap = 2^32-1 in
/// practice, far beyond what saturating arithmetic distinguishes).
class Zeta2Sampler {
 public:
  explicit Zeta2Sampler(std::uint32_t cap = 0) noexcept;

  [[nodiscard]] std::uint32_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::uint32_t cap() const noexcept { return cap_; }

  /// PMF of the *truncated* law this sampler realises.
  [[nodiscard]] double pmf(std::uint32_t k) const noexcept;

 private:
  std::uint32_t cap_;
};

}  // namespace ugf::util
