#include "util/check.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace ugf::util {

namespace {

struct HookEntry {
  std::size_t id;
  CheckFailureHook hook;
  void* ctx;
};

// Function-local statics so hook registration works during static
// initialization of other translation units.
std::mutex& hook_mutex() {
  // ugf-analyzer: allow(shared-state): process-wide failure-hook lock, outlives runs
  static std::mutex m;
  return m;
}

std::vector<HookEntry>& hook_entries() {
  // ugf-analyzer: allow(shared-state): hook registry is process-global; guarded by hook_mutex()
  static std::vector<HookEntry> entries;
  return entries;
}

// A hook that itself fails a check must not re-enter the hook list.
// ugf-analyzer: allow(shared-state): per-thread abort-path reentrancy latch, never shared
thread_local bool in_failure_hooks = false;

void run_failure_hooks() noexcept {
  if (in_failure_hooks) return;
  in_failure_hooks = true;
  // Copy under the lock, run unlocked: a hook may unregister itself
  // (FlightRecorder's destructor never runs once we abort, but dump
  // paths shared with tests do).
  std::vector<HookEntry> entries;
  {
    const std::lock_guard<std::mutex> lock(hook_mutex());
    entries = hook_entries();
  }
  for (const HookEntry& entry : entries) entry.hook(entry.ctx);
  in_failure_hooks = false;
}

}  // namespace

std::size_t add_check_failure_hook(CheckFailureHook hook, void* ctx) {
  const std::lock_guard<std::mutex> lock(hook_mutex());
  // ugf-analyzer: allow(shared-state): id counter under hook_mutex(); process-global by design
  static std::size_t next_id = 1;
  const std::size_t id = next_id++;
  hook_entries().push_back({id, hook, ctx});
  return id;
}

void remove_check_failure_hook(std::size_t id) {
  const std::lock_guard<std::mutex> lock(hook_mutex());
  auto& entries = hook_entries();
  for (auto it = entries.begin(); it != entries.end(); ++it) {
    if (it->id == id) {
      entries.erase(it);
      return;
    }
  }
}

}  // namespace ugf::util

namespace ugf::util::detail {

namespace {

void report_header(const char* kind, const char* expr, const char* file,
                   int line, const char* func) noexcept {
  std::fprintf(stderr, "%s failed: %s\n  at %s:%d in %s\n", kind, expr, file,
               line, func);
}

}  // namespace

void check_failed(const char* kind, const char* expr, const char* file,
                  int line, const char* func) noexcept {
  report_header(kind, expr, file, line, func);
  std::fflush(stderr);
  run_failure_hooks();
  std::fflush(stderr);
  std::abort();
}

void check_failed_msg(const char* kind, const char* expr, const char* file,
                      int line, const char* func, const char* fmt,
                      ...) noexcept {
  report_header(kind, expr, file, line, func);
  std::fprintf(stderr, "  ");
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  run_failure_hooks();
  std::fflush(stderr);
  std::abort();
}

}  // namespace ugf::util::detail
