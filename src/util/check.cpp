#include "util/check.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ugf::util::detail {

namespace {

void report_header(const char* kind, const char* expr, const char* file,
                   int line, const char* func) noexcept {
  std::fprintf(stderr, "%s failed: %s\n  at %s:%d in %s\n", kind, expr, file,
               line, func);
}

}  // namespace

void check_failed(const char* kind, const char* expr, const char* file,
                  int line, const char* func) noexcept {
  report_header(kind, expr, file, line, func);
  std::fflush(stderr);
  std::abort();
}

void check_failed_msg(const char* kind, const char* expr, const char* file,
                      int line, const char* func, const char* fmt,
                      ...) noexcept {
  report_header(kind, expr, file, line, func);
  std::fprintf(stderr, "  ");
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace ugf::util::detail
