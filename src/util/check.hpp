#pragma once

/// \file check.hpp
/// The invariant-audit layer: UGF_ASSERT / UGF_ASSERT_MSG for cheap
/// always-reasonable invariants and UGF_AUDIT / UGF_AUDIT_MSG for
/// expensive whole-structure scans, both controlled by UGF_AUDIT_LEVEL:
///
///   level 0 — every check compiles to nothing (release default);
///   level 1 — UGF_ASSERT* active (cheap invariants; debug default);
///   level 2 — UGF_ASSERT* and UGF_AUDIT* active (audit builds; the
///             sanitizer presets build at this level).
///
/// A failed check prints the expression, file:line, enclosing function
/// and an optional printf-formatted message to stderr, then aborts —
/// unlike the standard `assert`, the report is emitted even when the
/// process is running under a test harness that swallows stdout, and
/// the macros cannot be silently disabled by a stray NDEBUG alone.
///
/// Disabled checks do NOT evaluate their arguments (they fold into an
/// unevaluated `sizeof`), so conditions may be arbitrarily expensive.
/// This is the only header in `src/` allowed to reach for abort-style
/// checking; `tools/lint_ugf.py` rejects naked `assert(` elsewhere.

#ifndef UGF_AUDIT_LEVEL
#ifdef NDEBUG
#define UGF_AUDIT_LEVEL 0
#else
#define UGF_AUDIT_LEVEL 1
#endif
#endif

/// 1 iff UGF_ASSERT / UGF_ASSERT_MSG evaluate and enforce.
#define UGF_CHECKS_ENABLED (UGF_AUDIT_LEVEL >= 1)
/// 1 iff UGF_AUDIT / UGF_AUDIT_MSG evaluate and enforce.
#define UGF_AUDITS_ENABLED (UGF_AUDIT_LEVEL >= 2)

#include <cstddef>

namespace ugf::util {

/// Callback run (once, on the failing thread) after a failed check has
/// printed its report and before the process aborts. Hooks must be
/// async-abort-friendly: no locks shared with arbitrary code, no
/// throwing. `ctx` is the pointer passed at registration. A check
/// failure *inside* a hook does not recurse — nested failures abort
/// immediately. Used by obs::FlightRecorder to dump its event ring.
using CheckFailureHook = void (*)(void* ctx) noexcept;

/// Registers a hook; returns an id for remove_check_failure_hook.
/// Thread-safe; hooks run in registration order.
std::size_t add_check_failure_hook(CheckFailureHook hook, void* ctx);

/// Unregisters a hook by id (no-op for unknown ids). Thread-safe.
void remove_check_failure_hook(std::size_t id);

}  // namespace ugf::util

namespace ugf::util::detail {

/// Reports a failed check and aborts. `kind` is the macro name.
[[noreturn]] void check_failed(const char* kind, const char* expr,
                               const char* file, int line,
                               const char* func) noexcept;

/// As check_failed, with a printf-formatted trailing message.
[[noreturn]] __attribute__((format(printf, 6, 7))) void check_failed_msg(
    const char* kind, const char* expr, const char* file, int line,
    const char* func, const char* fmt, ...) noexcept;

}  // namespace ugf::util::detail

// `(void)sizeof(...)` keeps the operands syntactically alive (no
// unused-variable warnings at call sites) without evaluating them.
#define UGF_DETAIL_DISCARD(expr) (static_cast<void>(sizeof((expr) ? 1 : 0)))

#if UGF_CHECKS_ENABLED
#define UGF_ASSERT(expr)                                            \
  ((expr) ? static_cast<void>(0)                                    \
          : ::ugf::util::detail::check_failed("UGF_ASSERT", #expr,  \
                                              __FILE__, __LINE__,   \
                                              __func__))
#define UGF_ASSERT_MSG(expr, ...)                                   \
  ((expr) ? static_cast<void>(0)                                    \
          : ::ugf::util::detail::check_failed_msg(                  \
                "UGF_ASSERT", #expr, __FILE__, __LINE__, __func__,  \
                __VA_ARGS__))
#else
#define UGF_ASSERT(expr) UGF_DETAIL_DISCARD(expr)
#define UGF_ASSERT_MSG(expr, ...) UGF_DETAIL_DISCARD(expr)
#endif

#if UGF_AUDITS_ENABLED
#define UGF_AUDIT(expr)                                             \
  ((expr) ? static_cast<void>(0)                                    \
          : ::ugf::util::detail::check_failed("UGF_AUDIT", #expr,   \
                                              __FILE__, __LINE__,   \
                                              __func__))
#define UGF_AUDIT_MSG(expr, ...)                                    \
  ((expr) ? static_cast<void>(0)                                    \
          : ::ugf::util::detail::check_failed_msg(                  \
                "UGF_AUDIT", #expr, __FILE__, __LINE__, __func__,   \
                __VA_ARGS__))
#else
#define UGF_AUDIT(expr) UGF_DETAIL_DISCARD(expr)
#define UGF_AUDIT_MSG(expr, ...) UGF_DETAIL_DISCARD(expr)
#endif
