#pragma once

/// \file rng.hpp
/// Deterministic, seedable random number generation for the simulator.
///
/// Every stochastic component in this library (protocols, adversaries,
/// Monte-Carlo runners) draws from an explicitly passed `Rng` so that a
/// run is a pure function of its seed. The generator is xoshiro256**
/// seeded through splitmix64, which is fast, has 256 bits of state and
/// passes BigCrush; the standard library engines are avoided because
/// their distributions are not reproducible across implementations.

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace ugf::util {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Mixes two 64-bit values into one (for deriving child seeds).
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) noexcept;

/// Chains `count` words into digest `h` via mix_seed (order-sensitive);
/// the word-at-a-time primitive of the state-digest observability layer.
[[nodiscard]] inline std::uint64_t mix_words(std::uint64_t h,
                                             const std::uint64_t* words,
                                             std::size_t count) noexcept {
  for (std::size_t i = 0; i < count; ++i) h = mix_seed(h, words[i]);
  return h;
}

/// xoshiro256** pseudo random generator with convenience draws.
///
/// Satisfies `std::uniform_random_bit_generator`, so it can also be used
/// with standard algorithms, but the member draws below are preferred:
/// they are guaranteed stable across platforms and compiler versions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0xA11ACE55u) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Raw 64 random bits.
  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// nearly-divisionless method; unbiased.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform01() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Derives an independent child generator. Children with distinct
  /// stream ids are statistically independent of each other and of the
  /// parent's future output.
  [[nodiscard]] Rng child(std::uint64_t stream) const noexcept;

  /// k distinct values sampled uniformly from {0, 1, ..., n-1}
  /// (partial Fisher-Yates; O(n) memory, O(n + k) time). k must be <= n.
  [[nodiscard]] std::vector<std::uint32_t> sample_without_replacement(
      std::uint32_t n, std::uint32_t k);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// The seed this generator was constructed with (for diagnostics).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// 64-bit digest of the current stream position (all 256 state bits
  /// folded via mix_seed). Two generators with equal digests have, with
  /// overwhelming probability, consumed the same draws from the same
  /// seed — the state-digest observability layer uses this to detect a
  /// process whose RNG stream drifted.
  [[nodiscard]] std::uint64_t state_digest() const noexcept {
    return mix_seed(mix_seed(state_[0], state_[1]),
                    mix_seed(state_[2], state_[3]));
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_ = 0;
};

}  // namespace ugf::util
