#include "util/bitset2d.hpp"

#include <bit>

#include "util/check.hpp"

namespace ugf::util {

Bitset2D::Bitset2D(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), words_per_row_((cols + kWordBits - 1) / kWordBits) {
  words_.assign(rows_ * words_per_row_, 0);
}

std::uint64_t Bitset2D::tail_mask() const noexcept {
  const std::size_t rem = cols_ % kWordBits;
  return rem == 0 ? ~std::uint64_t{0} : ((std::uint64_t{1} << rem) - 1);
}

void Bitset2D::set(std::size_t r, std::size_t c) noexcept {
  UGF_ASSERT_MSG(r < rows_ && c < cols_, "cell (%zu, %zu) out of range (%zu x %zu)",
                 r, c, rows_, cols_);
  words_[word_index(r, c)] |= std::uint64_t{1} << (c % kWordBits);
}

void Bitset2D::reset(std::size_t r, std::size_t c) noexcept {
  UGF_ASSERT_MSG(r < rows_ && c < cols_, "cell (%zu, %zu) out of range (%zu x %zu)",
                 r, c, rows_, cols_);
  words_[word_index(r, c)] &= ~(std::uint64_t{1} << (c % kWordBits));
}

bool Bitset2D::test(std::size_t r, std::size_t c) const noexcept {
  UGF_ASSERT_MSG(r < rows_ && c < cols_, "cell (%zu, %zu) out of range (%zu x %zu)",
                 r, c, rows_, cols_);
  return (words_[word_index(r, c)] >> (c % kWordBits)) & 1u;
}

void Bitset2D::set_row(std::size_t r) noexcept {
  UGF_ASSERT_MSG(r < rows_, "row %zu out of range (%zu rows)", r, rows_);
  const std::size_t base = r * words_per_row_;
  for (std::size_t w = 0; w < words_per_row_; ++w)
    words_[base + w] = ~std::uint64_t{0};
  if (words_per_row_ > 0) words_[base + words_per_row_ - 1] &= tail_mask();
}

bool Bitset2D::row_all(std::size_t r) const noexcept {
  UGF_ASSERT_MSG(r < rows_, "row %zu out of range (%zu rows)", r, rows_);
  const std::size_t base = r * words_per_row_;
  for (std::size_t w = 0; w + 1 < words_per_row_; ++w)
    if (words_[base + w] != ~std::uint64_t{0}) return false;
  return words_per_row_ == 0 || words_[base + words_per_row_ - 1] == tail_mask();
}

std::size_t Bitset2D::row_count(std::size_t r) const noexcept {
  UGF_ASSERT_MSG(r < rows_, "row %zu out of range (%zu rows)", r, rows_);
  const std::size_t base = r * words_per_row_;
  std::size_t n = 0;
  for (std::size_t w = 0; w < words_per_row_; ++w)
    n += static_cast<std::size_t>(std::popcount(words_[base + w]));
  return n;
}

bool Bitset2D::or_with(const Bitset2D& other) noexcept {
  UGF_ASSERT_MSG(rows_ == other.rows_ && cols_ == other.cols_,
                 "shape mismatch: %zux%zu vs %zux%zu", rows_, cols_,
                 other.rows_, other.cols_);
  bool changed = false;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t merged = words_[i] | other.words_[i];
    changed |= (merged != words_[i]);
    words_[i] = merged;
  }
  return changed;
}

bool Bitset2D::row_contains(std::size_t r,
                            const DynamicBitset& bits) const noexcept {
  UGF_ASSERT_MSG(r < rows_ && bits.size() == cols_,
                 "row %zu / width %zu incompatible with %zux%zu", r,
                 bits.size(), rows_, cols_);
  const std::size_t base = r * words_per_row_;
  for (std::size_t w = 0; w < words_per_row_ && w < bits.words().size(); ++w)
    if ((bits.words()[w] & ~words_[base + w]) != 0) return false;
  return true;
}

bool Bitset2D::or_row_with(std::size_t r, const DynamicBitset& bits) noexcept {
  UGF_ASSERT_MSG(r < rows_ && bits.size() == cols_,
                 "row %zu / width %zu incompatible with %zux%zu", r,
                 bits.size(), rows_, cols_);
  const std::size_t base = r * words_per_row_;
  bool changed = false;
  for (std::size_t w = 0; w < words_per_row_ && w < bits.words().size(); ++w) {
    const std::uint64_t merged = words_[base + w] | bits.words()[w];
    changed |= (merged != words_[base + w]);
    words_[base + w] = merged;
  }
  return changed;
}

bool Bitset2D::row_any(std::size_t r) const noexcept {
  UGF_ASSERT_MSG(r < rows_, "row %zu out of range (%zu rows)", r, rows_);
  const std::size_t base = r * words_per_row_;
  for (std::size_t w = 0; w < words_per_row_; ++w)
    if (words_[base + w] != 0) return true;
  return false;
}

std::size_t Bitset2D::count() const noexcept {
  std::size_t n = 0;
  for (const auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool Bitset2D::all() const noexcept {
  return count() == rows_ * cols_;
}

}  // namespace ugf::util
