#include "util/rng.hpp"

namespace ugf::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (0x9E3779B97F4A7C15ull + (b << 6) + (b >> 2));
  std::uint64_t out = splitmix64(s);
  s ^= b;
  return out ^ splitmix64(s);
}

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // xoshiro must not start in the all-zero state; splitmix64 of any seed
  // never yields four zero words, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's method: multiply-shift with rejection of the biased zone.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::between(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + below(hi - lo + 1);
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Rng Rng::child(std::uint64_t stream) const noexcept {
  return Rng(mix_seed(seed_, stream + 0x51ED2701u));
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  std::vector<std::uint32_t> pool(n);
  for (std::uint32_t i = 0; i < n; ++i) pool[i] = i;
  if (k > n) k = n;
  for (std::uint32_t i = 0; i < k; ++i) {
    const auto j =
        static_cast<std::uint32_t>(between(i, static_cast<std::uint64_t>(n) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace ugf::util
