#pragma once

/// \file cli.hpp
/// Tiny command-line flag parser shared by benches and examples.
/// Accepts `--name=value`, `--name value` and boolean `--name`.
/// Unknown flags are collected so harnesses can reject typos.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ugf::util {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// True iff the flag appeared at all (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& name,
                                       std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Parses `--name` as a process count. The value is read as a full
  /// 64-bit unsigned integer (no silent truncation) and must satisfy
  /// 2 <= N <= 2^32 - 1 — an engine run needs at least two processes
  /// and ProcessId is 32-bit. Garbage, trailing junk, overflow and
  /// out-of-range values print a one-line error and exit(2) instead of
  /// throwing, so every figure binary rejects bad input the same way.
  [[nodiscard]] std::uint32_t get_process_count(const std::string& name,
                                                std::uint32_t fallback) const;

  /// Parses `--name` as a thread count (runner workers or
  /// --engine-threads). Same discipline as get_process_count: full
  /// 64-bit parse, then 1 <= T <= 2^32 - 1 — 0 is rejected rather than
  /// treated as "auto" so a typo can't silently fan out to every core.
  /// Garbage, trailing junk, overflow and out-of-range values print a
  /// one-line error and exit(2). Values above the machine's hardware
  /// concurrency are accepted (oversubscription is legal and sometimes
  /// wanted) with a one-line stderr note.
  [[nodiscard]] std::uint32_t get_thread_count(const std::string& name,
                                               std::uint32_t fallback) const;

  /// Comma-separated list of unsigned integers, e.g. --grid=10,20,50.
  [[nodiscard]] std::vector<std::uint64_t> get_uint_list(
      const std::string& name, const std::vector<std::uint64_t>& fallback) const;

  /// Comma-separated list of doubles, e.g. --fracs=0.1,0.3,0.5.
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& name, const std::vector<double>& fallback) const;

  /// Resolves an output artifact path. The flag's value (or
  /// `default_name`) is joined under the `--out-dir` directory
  /// (default "results"), which is created on demand; absolute paths
  /// and paths with an explicit directory component (`./x.csv`,
  /// `sub/x.csv`) are used as-is. `--out-dir=.` writes to the
  /// working directory, matching the pre-flag behaviour.
  [[nodiscard]] std::string out_path(const std::string& flag,
                                     const std::string& default_name) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  [[nodiscard]] std::optional<std::string> raw(const std::string& name) const;

  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ugf::util
