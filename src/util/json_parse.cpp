#include "util/json_parse.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace ugf::util {

namespace {

[[noreturn]] void type_error(const char* want, JsonValue::Type got) {
  static constexpr const char* kNames[] = {"null",   "bool",  "number",
                                           "string", "array", "object"};
  throw std::runtime_error(std::string("JsonValue: expected ") + want +
                           ", got " + kNames[static_cast<int>(got)]);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double JsonValue::as_double() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

std::uint64_t JsonValue::as_uint64() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  if (!has_u64_)
    throw std::runtime_error("JsonValue: number is not an exact uint64");
  return u64_;
}

std::int64_t JsonValue::as_int64() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  if (!has_i64_)
    throw std::runtime_error("JsonValue: number is not an exact int64");
  return i64_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (type_ != Type::kObject) type_error("object", type_);
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : members_)
    if (name == key) return &value;
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr)
    throw std::runtime_error("JsonValue: missing key \"" + std::string(key) +
                             "\"");
  return *v;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() noexcept {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type_ = JsonValue::Type::kBool;
        if (consume_literal("true")) {
          v.bool_ = true;
        } else if (consume_literal("false")) {
          v.bool_ = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items_.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("bad escape character");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    return code;
  }

  void append_unicode_escape(std::string& out) {
    std::uint32_t code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // Surrogate pair: a low surrogate must follow immediately.
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u')
        fail("unpaired high surrogate");
      pos_ += 2;
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") fail("bad number");

    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    char* end = nullptr;
    errno = 0;
    v.number_ = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE)
      fail("bad number \"" + token + "\"");

    // Keep exact 64-bit integer values when the token is plain decimal.
    if (token.find_first_of(".eE") == std::string::npos) {
      errno = 0;
      if (token[0] != '-') {
        const std::uint64_t u = std::strtoull(token.c_str(), &end, 10);
        if (end == token.c_str() + token.size() && errno != ERANGE) {
          v.has_u64_ = true;
          v.u64_ = u;
        }
      }
      errno = 0;
      const std::int64_t i = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size() && errno != ERANGE) {
        v.has_i64_ = true;
        v.i64_ = i;
      }
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

JsonValue parse_json_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    throw std::runtime_error("cannot open JSON file: " + path);
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) throw std::runtime_error("cannot read JSON file: " + path);
  try {
    return parse_json(text);
  } catch (const std::exception& err) {
    throw std::runtime_error(path + ": " + err.what());
  }
}

}  // namespace ugf::util
