#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ugf::util {

JsonWriter::JsonWriter() { out_.reserve(256); }

const std::string& JsonWriter::str() const {
  if (!stack_.empty() || !done_)
    throw std::logic_error("JsonWriter: document not finished");
  return out_;
}

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::raw(std::string_view text) { out_.append(text); }

void JsonWriter::before_value() {
  if (done_) throw std::logic_error("JsonWriter: document already finished");
  if (stack_.empty()) {
    if (!out_.empty())
      throw std::logic_error("JsonWriter: multiple root values");
    return;
  }
  if (stack_.back() == Scope::kObject) {
    if (expecting_key_)
      throw std::logic_error("JsonWriter: expected key(), got value");
    return;  // key() already wrote the separator
  }
  if (!first_in_scope_) raw(",");
}

void JsonWriter::finish_value() {
  if (stack_.empty()) {
    done_ = true;
    return;
  }
  first_in_scope_ = false;
  if (stack_.back() == Scope::kObject) expecting_key_ = true;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (done_) throw std::logic_error("JsonWriter: document already finished");
  if (stack_.empty() || stack_.back() != Scope::kObject || !expecting_key_)
    throw std::logic_error("JsonWriter: key() outside object");
  if (!first_in_scope_) raw(",");
  raw("\"");
  raw(escape(name));
  raw("\":");
  expecting_key_ = false;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  raw("{");
  stack_.push_back(Scope::kObject);
  expecting_key_ = true;
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Scope::kObject || !expecting_key_)
    throw std::logic_error("JsonWriter: end_object mismatch");
  raw("}");
  stack_.pop_back();
  // Restore the parent scope's expectations.
  expecting_key_ = false;
  finish_value();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  raw("[");
  stack_.push_back(Scope::kArray);
  expecting_key_ = false;
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Scope::kArray)
    throw std::logic_error("JsonWriter: end_array mismatch");
  raw("]");
  stack_.pop_back();
  finish_value();
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  raw("\"");
  raw(escape(text));
  raw("\"");
  finish_value();
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view(text));
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    raw("null");
  } else {
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, number);
    raw(ec == std::errc{}
            ? std::string_view(buf, static_cast<std::size_t>(ptr - buf))
            : std::string_view("null"));
  }
  finish_value();
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  raw(std::to_string(number));
  finish_value();
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  raw(std::to_string(number));
  finish_value();
  return *this;
}

JsonWriter& JsonWriter::value(std::uint32_t number) {
  return value(static_cast<std::uint64_t>(number));
}

JsonWriter& JsonWriter::value(int number) {
  return value(static_cast<std::int64_t>(number));
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  raw(flag ? "true" : "false");
  finish_value();
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  raw("null");
  finish_value();
  return *this;
}

}  // namespace ugf::util
