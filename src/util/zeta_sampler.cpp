#include "util/zeta_sampler.hpp"

#include <cmath>
#include <limits>
#include <numbers>

namespace ugf::util {

namespace {
constexpr double kBasel = 6.0 / (std::numbers::pi * std::numbers::pi);
}

double zeta2_pmf(std::uint32_t k) noexcept {
  if (k == 0) return 0.0;
  const double kd = static_cast<double>(k);
  return kBasel / (kd * kd);
}

double zeta2_cdf(std::uint32_t k) noexcept {
  double h2 = 0.0;
  for (std::uint32_t i = 1; i <= k; ++i) {
    const double id = static_cast<double>(i);
    h2 += 1.0 / (id * id);
  }
  return kBasel * h2;
}

Zeta2Sampler::Zeta2Sampler(std::uint32_t cap) noexcept
    : cap_(cap == 0 ? std::numeric_limits<std::uint32_t>::max() : cap) {}

std::uint32_t Zeta2Sampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  double cdf = 0.0;
  for (std::uint32_t k = 1;; ++k) {
    if (k >= cap_) return cap_;  // remaining tail mass collapses here
    cdf += zeta2_pmf(k);
    if (u < cdf) return k;
    // The untruncated tail mass below machine epsilon cannot be hit by a
    // 53-bit uniform; bail out defensively.
    if (cdf >= 1.0 - 1e-15) return k;
  }
}

double Zeta2Sampler::pmf(std::uint32_t k) const noexcept {
  if (k == 0 || k > cap_) return 0.0;
  if (k < cap_) return zeta2_pmf(k);
  // All mass at and above the cap.
  return 1.0 - zeta2_cdf(cap_ - 1);
}

}  // namespace ugf::util
