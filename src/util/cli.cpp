#include "util/cli.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <stdexcept>
#include <thread>

namespace ugf::util {

namespace {

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "";  // bare boolean flag
    }
  }
}

std::optional<std::string> CliArgs::raw(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

bool CliArgs::has(const std::string& name) const {
  return flags_.contains(name);
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  return raw(name).value_or(fallback);
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto v = raw(name);
  if (!v || v->empty()) return fallback;
  return std::stoll(*v);
}

std::uint64_t CliArgs::get_uint(const std::string& name,
                                std::uint64_t fallback) const {
  const auto v = raw(name);
  if (!v || v->empty()) return fallback;
  return std::stoull(*v);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto v = raw(name);
  if (!v || v->empty()) return fallback;
  return std::stod(*v);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  if (v->empty() || *v == "1" || *v == "true" || *v == "yes" || *v == "on")
    return true;
  if (*v == "0" || *v == "false" || *v == "no" || *v == "off") return false;
  throw std::invalid_argument("CliArgs: bad boolean for --" + name + ": " + *v);
}

std::uint32_t CliArgs::get_process_count(const std::string& name,
                                         std::uint32_t fallback) const {
  const auto v = raw(name);
  if (!v || v->empty()) return fallback;
  const std::string tool = std::filesystem::path(program_).filename().string();
  std::uint64_t parsed = 0;
  const char* first = v->data();
  const char* last = first + v->size();
  const auto [ptr, ec] = std::from_chars(first, last, parsed);
  if (ec != std::errc{} || ptr != last) {
    std::fprintf(stderr, "%s: --%s expects an unsigned integer, got \"%s\"\n",
                 tool.c_str(), name.c_str(), v->c_str());
    std::exit(2);
  }
  if (parsed < 2 || parsed > std::numeric_limits<std::uint32_t>::max()) {
    std::fprintf(stderr,
                 "%s: --%s=%llu out of range: need 2 <= N <= 4294967295\n",
                 tool.c_str(), name.c_str(),
                 static_cast<unsigned long long>(parsed));
    std::exit(2);
  }
  return static_cast<std::uint32_t>(parsed);
}

std::uint32_t CliArgs::get_thread_count(const std::string& name,
                                        std::uint32_t fallback) const {
  const auto v = raw(name);
  if (!v || v->empty()) return fallback;
  const std::string tool = std::filesystem::path(program_).filename().string();
  std::uint64_t parsed = 0;
  const char* first = v->data();
  const char* last = first + v->size();
  const auto [ptr, ec] = std::from_chars(first, last, parsed);
  if (ec != std::errc{} || ptr != last) {
    std::fprintf(stderr, "%s: --%s expects an unsigned integer, got \"%s\"\n",
                 tool.c_str(), name.c_str(), v->c_str());
    std::exit(2);
  }
  if (parsed < 1 || parsed > std::numeric_limits<std::uint32_t>::max()) {
    std::fprintf(stderr,
                 "%s: --%s=%llu out of range: need 1 <= T <= 4294967295\n",
                 tool.c_str(), name.c_str(),
                 static_cast<unsigned long long>(parsed));
    std::exit(2);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw != 0 && parsed > hw) {
    std::fprintf(stderr,
                 "%s: note: --%s=%llu exceeds hardware concurrency (%u); "
                 "threads will be oversubscribed\n",
                 tool.c_str(), name.c_str(),
                 static_cast<unsigned long long>(parsed), hw);
  }
  return static_cast<std::uint32_t>(parsed);
}

std::string CliArgs::out_path(const std::string& flag,
                              const std::string& default_name) const {
  std::string value = get_string(flag, default_name);
  if (value.empty()) value = default_name;  // bare `--flag` keeps the default
  const std::filesystem::path name = value;
  // Paths that already say where to go are honoured verbatim.
  if (name.is_absolute() || name.has_parent_path()) return name.string();
  const std::filesystem::path dir = get_string("out-dir", "results");
  std::filesystem::create_directories(dir);
  return (dir / name).string();
}

std::vector<std::uint64_t> CliArgs::get_uint_list(
    const std::string& name, const std::vector<std::uint64_t>& fallback) const {
  const auto v = raw(name);
  if (!v || v->empty()) return fallback;
  std::vector<std::uint64_t> out;
  for (const auto& part : split_commas(*v))
    if (!part.empty()) out.push_back(std::stoull(part));
  return out;
}

std::vector<double> CliArgs::get_double_list(
    const std::string& name, const std::vector<double>& fallback) const {
  const auto v = raw(name);
  if (!v || v->empty()) return fallback;
  std::vector<double> out;
  for (const auto& part : split_commas(*v))
    if (!part.empty()) out.push_back(std::stod(part));
  return out;
}

}  // namespace ugf::util
