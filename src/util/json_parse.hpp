#pragma once

/// \file json_parse.hpp
/// A minimal recursive-descent JSON parser — the read side of json.hpp.
/// It exists so campaign artifacts (run manifests, metrics snapshots)
/// can be loaded back for reproduction and validation without external
/// dependencies. Scope matches what JsonWriter emits plus standard
/// JSON: objects, arrays, strings (with escapes), numbers, booleans,
/// null. Integer-looking numbers keep exact 64-bit values — a
/// round-tripped base seed must not pass through a double.
///
/// Objects preserve document order; `find`/`at` do a linear scan, which
/// is fine for the small documents this repo produces. Parse errors
/// throw std::runtime_error with the byte offset of the problem.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ugf::util {

class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }

  /// Value accessors throw std::runtime_error on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  /// Exact when the token was integral and in range; throws otherwise.
  [[nodiscard]] std::uint64_t as_uint64() const;
  [[nodiscard]] std::int64_t as_int64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const;

  /// Object lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;
  /// Object lookup; throws std::runtime_error naming the missing key.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  // Set when the number token was a decimal integer representable in
  // the corresponding 64-bit type (both flags for small positives).
  bool has_u64_ = false;
  bool has_i64_ = false;
  std::uint64_t u64_ = 0;
  std::int64_t i64_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one complete JSON document; trailing non-whitespace throws.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Reads and parses a whole file; throws std::runtime_error on I/O or
/// parse failure (the message includes the path).
[[nodiscard]] JsonValue parse_json_file(const std::string& path);

}  // namespace ugf::util
