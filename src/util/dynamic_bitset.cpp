#include "util/dynamic_bitset.hpp"

#include <bit>

#include "util/check.hpp"

namespace ugf::util {

DynamicBitset::DynamicBitset(std::size_t size, bool value)
    : words_((size + kWordBits - 1) / kWordBits,
             value ? ~std::uint64_t{0} : std::uint64_t{0}),
      size_(size) {
  if (value && !words_.empty()) words_.back() &= tail_mask();
}

std::uint64_t DynamicBitset::tail_mask() const noexcept {
  const std::size_t rem = size_ % kWordBits;
  return rem == 0 ? ~std::uint64_t{0} : ((std::uint64_t{1} << rem) - 1);
}

void DynamicBitset::set(std::size_t i) noexcept {
  UGF_ASSERT_MSG(i < size_, "bit %zu out of range (size %zu)", i, size_);
  words_[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
}

void DynamicBitset::reset(std::size_t i) noexcept {
  UGF_ASSERT_MSG(i < size_, "bit %zu out of range (size %zu)", i, size_);
  words_[i / kWordBits] &= ~(std::uint64_t{1} << (i % kWordBits));
}

void DynamicBitset::assign(std::size_t i, bool value) noexcept {
  if (value)
    set(i);
  else
    reset(i);
}

bool DynamicBitset::test(std::size_t i) const noexcept {
  UGF_ASSERT_MSG(i < size_, "bit %zu out of range (size %zu)", i, size_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void DynamicBitset::set_all() noexcept {
  for (auto& w : words_) w = ~std::uint64_t{0};
  if (!words_.empty()) words_.back() &= tail_mask();
}

void DynamicBitset::reset_all() noexcept {
  for (auto& w : words_) w = 0;
}

std::size_t DynamicBitset::count() const noexcept {
  std::size_t n = 0;
  for (const auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool DynamicBitset::all() const noexcept {
  if (words_.empty()) return true;
  for (std::size_t i = 0; i + 1 < words_.size(); ++i)
    if (words_[i] != ~std::uint64_t{0}) return false;
  return words_.back() == tail_mask();
}

bool DynamicBitset::none() const noexcept {
  for (const auto w : words_)
    if (w != 0) return false;
  return true;
}

bool DynamicBitset::or_with(const DynamicBitset& other) noexcept {
  UGF_ASSERT_MSG(size_ == other.size_, "size mismatch: %zu vs %zu", size_,
                 other.size_);
  bool changed = false;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t merged = words_[i] | other.words_[i];
    changed |= (merged != words_[i]);
    words_[i] = merged;
  }
  return changed;
}

void DynamicBitset::and_with(const DynamicBitset& other) noexcept {
  UGF_ASSERT_MSG(size_ == other.size_, "size mismatch: %zu vs %zu", size_,
                 other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

bool DynamicBitset::contains(const DynamicBitset& other) const noexcept {
  UGF_ASSERT_MSG(size_ == other.size_, "size mismatch: %zu vs %zu", size_,
                 other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((other.words_[i] & ~words_[i]) != 0) return false;
  return true;
}

bool DynamicBitset::union_all(const DynamicBitset& a,
                              const DynamicBitset& b) noexcept {
  UGF_ASSERT_MSG(a.size_ == b.size_, "size mismatch: %zu vs %zu", a.size_,
                 b.size_);
  if (a.words_.empty()) return true;
  for (std::size_t i = 0; i + 1 < a.words_.size(); ++i)
    if ((a.words_[i] | b.words_[i]) != ~std::uint64_t{0}) return false;
  return (a.words_.back() | b.words_.back()) == a.tail_mask();
}

std::size_t DynamicBitset::find_first_clear() const noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const std::uint64_t inv =
        ~words_[w] & (w + 1 == words_.size() ? tail_mask() : ~std::uint64_t{0});
    if (inv != 0) {
      const std::size_t i =
          w * kWordBits + static_cast<std::size_t>(std::countr_zero(inv));
      return i < size_ ? i : size_;
    }
  }
  return size_;
}

std::size_t DynamicBitset::find_first_set() const noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0)
      return w * kWordBits +
             static_cast<std::size_t>(std::countr_zero(words_[w]));
  }
  return size_;
}

namespace {

/// Index of the k-th (0-based) set bit of `word`; k < popcount(word).
std::size_t select_bit(std::uint64_t word, std::size_t k) noexcept {
  for (; k > 0; --k) word &= word - 1;  // drop the k lowest set bits
  return static_cast<std::size_t>(std::countr_zero(word));
}

}  // namespace

std::size_t DynamicBitset::nth_clear(std::size_t k) const noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const std::uint64_t inv =
        ~words_[w] & (w + 1 == words_.size() ? tail_mask() : ~std::uint64_t{0});
    const auto pc = static_cast<std::size_t>(std::popcount(inv));
    if (k < pc) return w * kWordBits + select_bit(inv, k);
    k -= pc;
  }
  return size_;
}

std::size_t DynamicBitset::union_clear_count(const DynamicBitset& a,
                                             const DynamicBitset& b) noexcept {
  UGF_ASSERT_MSG(a.size_ == b.size_, "size mismatch: %zu vs %zu", a.size_,
                 b.size_);
  std::size_t set = 0;
  for (std::size_t w = 0; w < a.words_.size(); ++w)
    set += static_cast<std::size_t>(std::popcount(a.words_[w] | b.words_[w]));
  return a.size_ - set;
}

std::size_t DynamicBitset::nth_clear_of_union(const DynamicBitset& a,
                                              const DynamicBitset& b,
                                              std::size_t k) noexcept {
  UGF_ASSERT_MSG(a.size_ == b.size_, "size mismatch: %zu vs %zu", a.size_,
                 b.size_);
  for (std::size_t w = 0; w < a.words_.size(); ++w) {
    const std::uint64_t inv =
        ~(a.words_[w] | b.words_[w]) &
        (w + 1 == a.words_.size() ? a.tail_mask() : ~std::uint64_t{0});
    const auto pc = static_cast<std::size_t>(std::popcount(inv));
    if (k < pc) return w * kWordBits + select_bit(inv, k);
    k -= pc;
  }
  return a.size_;
}

std::vector<std::uint32_t> DynamicBitset::to_indices() const {
  std::vector<std::uint32_t> out;
  out.reserve(count());
  for_each_set([&out](std::uint32_t i) { out.push_back(i); });
  return out;
}

std::vector<std::uint32_t> DynamicBitset::clear_indices() const {
  std::vector<std::uint32_t> out;
  out.reserve(size_ - count());
  for (std::size_t i = 0; i < size_; ++i)
    if (!test(i)) out.push_back(static_cast<std::uint32_t>(i));
  return out;
}

}  // namespace ugf::util
