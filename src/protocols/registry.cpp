#include "protocols/registry.hpp"

#include <stdexcept>

#include "protocols/broadcast_all.hpp"
#include "protocols/push_average.hpp"
#include "protocols/ears.hpp"
#include "protocols/push_pull.hpp"
#include "protocols/push_pull_counting.hpp"
#include "protocols/sequential.hpp"

namespace ugf::protocols {

std::unique_ptr<sim::ProtocolFactory> make_protocol(std::string_view name) {
  if (name == "push-pull" || name == "push_pull")
    return std::make_unique<PushPullFactory>();
  if (name == "ears") return std::make_unique<EarsFactory>();
  if (name == "sears") return std::make_unique<SearsFactory>();
  // Scale modes: O(N)-bounded per-process state for engine-envelope
  // runs at N >= 10^5. Deliberately absent from protocol_names() — the
  // figure panels and sweep tests enumerate that list, and these modes
  // are approximations of protocols already in it.
  if (name == "push-pull-counting" || name == "push_pull_counting")
    return std::make_unique<PushPullCountingFactory>();
  if (name == "ears-summary" || name == "ears_summary") {
    EarsConfig config;
    config.exact_bookkeeping = false;
    return std::make_unique<EarsFactory>(config);
  }
  if (name == "sears-summary" || name == "sears_summary") {
    SearsConfig config;
    config.base.exact_bookkeeping = false;
    return std::make_unique<SearsFactory>(config);
  }
  if (name == "sequential") return std::make_unique<SequentialFactory>();
  if (name == "broadcast-all" || name == "broadcast_all")
    return std::make_unique<BroadcastAllFactory>();
  if (name == "push-average" || name == "push_average")
    return std::make_unique<PushAverageFactory>();
  throw std::invalid_argument("unknown protocol: " + std::string(name));
}

std::vector<std::string> protocol_names() {
  return {"push-pull", "ears",           "sears",
          "sequential", "broadcast-all", "push-average"};
}

}  // namespace ugf::protocols
