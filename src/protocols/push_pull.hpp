#pragma once

/// \file push_pull.hpp
/// The Push-Pull all-to-all gossip protocol (§V-A.2a, after Karp et
/// al., FOCS 2000).
///
/// Per local step every process:
///  1. answers each pull request delivered since its previous step with
///     a message containing every gossip it knows;
///  2. sends a pull request to one process chosen uniformly among those
///     whose gossip it does not know *and* that it has not already
///     pull-requested;
///  3. pushes every gossip it knows to one process chosen uniformly
///     among those to which it has not yet sent its own gossip (pushes
///     and pull replies both carry the sender's own gossip, so both mark
///     the receiver as served).
///
/// A process falls asleep once, for every other process, it has either
/// pull-requested it or knows its gossip, and no replies are pending
/// (the paper's sleep rule). A later delivery wakes it: new gossips are
/// merged and fresh pull requests may be answered.

#include <memory>
#include <vector>

#include "protocols/payloads.hpp"
#include "sim/protocol.hpp"
#include "util/dynamic_bitset.hpp"

namespace ugf::protocols {

class PushPullProcess final : public sim::Protocol {
 public:
  PushPullProcess(sim::ProcessId self, const sim::SystemInfo& info);

  void on_message(sim::ProcessContext& ctx, const sim::Message& msg) override;
  void on_local_step(sim::ProcessContext& ctx) override;
  [[nodiscard]] bool wants_sleep() const noexcept override;
  [[nodiscard]] bool completed() const noexcept override;
  [[nodiscard]] bool has_gossip_of(
      sim::ProcessId origin) const noexcept override;
  [[nodiscard]] const util::DynamicBitset* gossip_bits()
      const noexcept override {
    return &known_;
  }
  void digest_into(std::uint64_t& h) const noexcept override {
    h = util::mix_words(h, known_.words().data(), known_.words().size());
    h = util::mix_words(h, pulled_.words().data(), pulled_.words().size());
    h = util::mix_words(h, served_.words().data(), served_.words().size());
    h = util::mix_seed(h, pending_replies_.size());
    for (const sim::ProcessId p : pending_replies_) h = util::mix_seed(h, p);
  }

  /// Exposed for white-box tests.
  [[nodiscard]] const util::DynamicBitset& known() const noexcept {
    return known_;
  }
  [[nodiscard]] const util::DynamicBitset& pulled() const noexcept {
    return pulled_;
  }

 private:
  [[nodiscard]] bool satisfied() const noexcept;
  [[nodiscard]] sim::PayloadRef known_snapshot(sim::ProcessContext& ctx);

  sim::ProcessId self_;
  std::uint32_t n_;
  util::DynamicBitset known_;   ///< gossips held (bit = origin)
  util::DynamicBitset pulled_;  ///< processes already pull-requested
  util::DynamicBitset served_;  ///< processes that received our gossip
  std::vector<sim::ProcessId> pending_replies_;
  /// Arena ref of the last snapshot sent; null after a state change.
  /// Safe to cache: the protocol instance never outlives the run's
  /// arena (fresh instances per Engine::reset()).
  sim::PayloadRef snapshot_;
};

class PushPullFactory final : public sim::ProtocolFactory {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "push-pull";
  }
  [[nodiscard]] std::unique_ptr<sim::Protocol> create(
      sim::ProcessId self, const sim::SystemInfo& info) const override {
    return std::make_unique<PushPullProcess>(self, info);
  }
  [[nodiscard]] std::unique_ptr<sim::ProtocolPlane> create_plane(
      const sim::SystemInfo& info) const override {
    return std::make_unique<sim::VectorPlane<PushPullProcess>>(
        info.n,
        [&info](sim::ProcessId p) { return PushPullProcess(p, info); });
  }
};

}  // namespace ugf::protocols
