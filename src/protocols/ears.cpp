#include "protocols/ears.hpp"

#include <algorithm>
#include <cmath>

namespace ugf::protocols {

namespace {

std::uint32_t silence_threshold_for(std::uint32_t n, std::uint32_t f,
                                    double multiplier) {
  // ceil((N / (N - F)) * ln N) local steps of silence (paper, §V-A.2b).
  const double ratio =
      static_cast<double>(n) / static_cast<double>(n - std::min(f, n - 1));
  const double steps = multiplier * ratio * std::log(static_cast<double>(n));
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(std::ceil(steps)));
}

}  // namespace

EarsProcess::EarsProcess(sim::ProcessId self, const sim::SystemInfo& info,
                         const EarsConfig& config, std::uint32_t fanout)
    : self_(self),
      n_(info.n),
      fanout_(std::clamp<std::uint32_t>(fanout, 1, info.n - 1)),
      silence_threshold_(
          silence_threshold_for(info.n, info.f, config.silence_multiplier)),
      bookkeeping_fallback_(silence_threshold_ *
                            std::max<std::uint32_t>(1,
                                                    config.fallback_factor)),
      // The own-gossip gate must outlast any adversarial silence window:
      // the isolated rho-hat of Strategy 2.k.0 needs F/2 silent local
      // steps to exhaust the crash budget, and a delayed process of
      // Strategy 2.k.l hears its first acknowledgment after tau^(k+l)
      // global steps = F local steps (tau = F, k = l = 1). F (known to
      // the protocol, cf. the N/(N-F) timer) plus the bookkeeping
      // fallback covers both without stretching benign tails to Theta(N).
      own_fallback_(info.f + bookkeeping_fallback_),
      gossips_(info.n),
      knows_(info.n, info.n),
      seen_versions_(info.n, 0) {
  gossips_.set(self_);
  knows_.set(self_, self_);
}

sim::PayloadRef EarsProcess::snapshot(sim::ProcessContext& ctx) {
  if (!snapshot_)
    snapshot_ =
        ctx.make_payload<KnowledgePayload>(self_, version_, gossips_, knows_);
  return snapshot_;
}

void EarsProcess::on_message(sim::ProcessContext& /*ctx*/,
                             const sim::Message& msg) {
  const auto* payload = payload_as<KnowledgePayload>(msg);
  if (payload == nullptr) return;
  // Snapshot dedup: a slow sender (Strategy 2.k.l) emits the same
  // (sender, version) snapshot for many steps; merging it again is a
  // no-op, so skip the word-heavy OR entirely.
  if (seen_versions_[payload->sender()] >= payload->version()) return;
  seen_versions_[payload->sender()] = payload->version();

  // Courtesy reply (see class comment): a completed process answers each
  // first-seen snapshot version once, so stragglers can still collect
  // the acknowledgments their completion condition needs after the bulk
  // of the system has quiesced. Deduplication above makes this finite.
  if (completed_) pending_replies_.push_back(msg.from);

  const bool gossip_news = gossips_.or_with(payload->gossips());
  bool changed = gossip_news;
  changed |= knows_.or_with(payload->knows());
  // Self-acknowledgment: having received these gossips, this process now
  // knows them — record (self, g) so the fact can spread and the
  // knowledge condition of our peers can eventually hold.
  changed |= knows_.or_row_with(self_, gossips_);
  if (changed) {
    snapshot_ = {};
    ++version_;
  }
  if (gossip_news) {
    // Only a genuinely new *gossip* counts as news: it resets the
    // silence timer and revives a completed process (quiescence is only
    // promised "unless new information arrives"; late adversarially
    // delayed gossips must still spread). Acknowledgment-bit updates are
    // merged and forwarded lazily but neither reset the timer nor wake
    // anyone — otherwise every bookkeeping ripple would re-excite the
    // whole system and the fan-out protocols would never quiesce
    // cheaply.
    news_pending_ = true;
    completed_ = false;
  }
}

void EarsProcess::on_local_step(sim::ProcessContext& ctx) {
  if (completed_) {
    // Woken while quiescent: serve the courtesy replies and go back to
    // sleep without touching the silence machinery.
    for (const auto requester : pending_replies_)
      ctx.send(requester, snapshot(ctx));
    pending_replies_.clear();
    return;
  }
  pending_replies_.clear();  // an active process gossips anyway

  if (news_pending_) {
    silent_steps_ = 0;
    news_pending_ = false;
  } else {
    ++silent_steps_;
  }

  // Share (G, I) with `fanout_` distinct uniformly random other processes.
  if (fanout_ == 1) {
    auto target = static_cast<sim::ProcessId>(ctx.rng().below(n_ - 1));
    if (target >= self_) ++target;  // uniform over everyone but self
    ctx.send(target, snapshot(ctx));
  } else {
    // Sample from {0..n-2} and shift past self to exclude it.
    const auto raw = ctx.rng().sample_without_replacement(n_ - 1, fanout_);
    const auto payload = snapshot(ctx);
    for (const auto r : raw) {
      const auto target = static_cast<sim::ProcessId>(r >= self_ ? r + 1 : r);
      ctx.send(target, payload);
    }
  }

  if (silent_steps_ >= silence_threshold_ &&
      (own_gossip_acknowledged() || silent_steps_ >= own_fallback_) &&
      (knowledge_condition() || silent_steps_ >= bookkeeping_fallback_)) {
    completed_ = true;
  }
}

bool EarsProcess::knowledge_condition() const noexcept {
  // Every gossip we hold must be known by every process according to I.
  // Quantified over the processes we have ever seen acknowledge
  // something (non-empty row): a process that crashed before
  // acknowledging anything can never satisfy the condition and is
  // rightly excluded, which keeps the condition satisfiable under
  // crashes (see the class comment).
  for (std::uint32_t row = 0; row < n_; ++row) {
    if (!knows_.row_any(row)) continue;
    if (!knows_.row_contains(row, gossips_)) return false;
  }
  return true;
}

bool EarsProcess::own_gossip_acknowledged() const noexcept {
  // Every process ever seen acknowledging something must have
  // acknowledged this process's own gossip.
  for (std::uint32_t row = 0; row < n_; ++row) {
    if (row == self_) continue;
    if (knows_.row_any(row) && !knows_.test(row, self_)) return false;
  }
  return true;
}

bool EarsProcess::wants_sleep() const noexcept { return completed_; }
bool EarsProcess::completed() const noexcept { return completed_; }

bool EarsProcess::has_gossip_of(sim::ProcessId origin) const noexcept {
  return gossips_.test(origin);
}

std::unique_ptr<sim::Protocol> EarsFactory::create(
    sim::ProcessId self, const sim::SystemInfo& info) const {
  return std::make_unique<EarsProcess>(self, info, config_, /*fanout=*/1);
}

std::uint32_t SearsFactory::fanout_for(std::uint32_t n, double c, double eps) {
  const double nd = static_cast<double>(n);
  const double raw = c * std::pow(nd, eps) * std::log(nd);
  const auto fanout = static_cast<std::uint32_t>(std::ceil(raw));
  return std::clamp<std::uint32_t>(fanout, 1, n - 1);
}

std::unique_ptr<sim::Protocol> SearsFactory::create(
    sim::ProcessId self, const sim::SystemInfo& info) const {
  return std::make_unique<EarsProcess>(
      self, info, config_.base, fanout_for(info.n, config_.c, config_.eps));
}

}  // namespace ugf::protocols
