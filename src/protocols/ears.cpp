#include "protocols/ears.hpp"

#include <algorithm>
#include <cmath>

namespace ugf::protocols {

namespace {

std::uint32_t silence_threshold_for(std::uint32_t n, std::uint32_t f,
                                    double multiplier) {
  // ceil((N / (N - F)) * ln N) local steps of silence (paper, §V-A.2b).
  const double ratio =
      static_cast<double>(n) / static_cast<double>(n - std::min(f, n - 1));
  const double steps = multiplier * ratio * std::log(static_cast<double>(n));
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(std::ceil(steps)));
}

}  // namespace

EarsProcess::EarsProcess(sim::ProcessId self, const sim::SystemInfo& info,
                         const EarsConfig& config, std::uint32_t fanout)
    : self_(self),
      n_(info.n),
      fanout_(std::clamp<std::uint32_t>(fanout, 1, info.n - 1)),
      silence_threshold_(
          silence_threshold_for(info.n, info.f, config.silence_multiplier)),
      bookkeeping_fallback_(silence_threshold_ *
                            std::max<std::uint32_t>(1,
                                                    config.fallback_factor)),
      // The own-gossip gate must outlast any adversarial silence window:
      // the isolated rho-hat of Strategy 2.k.0 needs F/2 silent local
      // steps to exhaust the crash budget, and a delayed process of
      // Strategy 2.k.l hears its first acknowledgment after tau^(k+l)
      // global steps = F local steps (tau = F, k = l = 1). F (known to
      // the protocol, cf. the N/(N-F) timer) plus the bookkeeping
      // fallback covers both without stretching benign tails to Theta(N).
      own_fallback_(info.f + bookkeeping_fallback_),
      gossips_(info.n),
      knows_(info.n, info.n),
      seen_versions_(info.n, 0) {
  gossips_.set(self_);
  knows_.set(self_, self_);
}

sim::PayloadRef EarsProcess::snapshot(sim::ProcessContext& ctx) {
  if (!snapshot_)
    snapshot_ =
        ctx.make_payload<KnowledgePayload>(self_, version_, gossips_, knows_);
  return snapshot_;
}

void EarsProcess::on_message(sim::ProcessContext& /*ctx*/,
                             const sim::Message& msg) {
  const auto* payload = payload_as<KnowledgePayload>(msg);
  if (payload == nullptr) return;
  // Snapshot dedup: a slow sender (Strategy 2.k.l) emits the same
  // (sender, version) snapshot for many steps; merging it again is a
  // no-op, so skip the word-heavy OR entirely.
  if (seen_versions_[payload->sender()] >= payload->version()) return;
  seen_versions_[payload->sender()] = payload->version();

  // Courtesy reply (see class comment): a completed process answers each
  // first-seen snapshot version once, so stragglers can still collect
  // the acknowledgments their completion condition needs after the bulk
  // of the system has quiesced. Deduplication above makes this finite.
  if (completed_) pending_replies_.push_back(msg.from);

  const bool gossip_news = gossips_.or_with(payload->gossips());
  bool changed = gossip_news;
  changed |= knows_.or_with(payload->knows());
  // Self-acknowledgment: having received these gossips, this process now
  // knows them — record (self, g) so the fact can spread and the
  // knowledge condition of our peers can eventually hold.
  changed |= knows_.or_row_with(self_, gossips_);
  if (changed) {
    snapshot_ = {};
    ++version_;
  }
  if (gossip_news) {
    // Only a genuinely new *gossip* counts as news: it resets the
    // silence timer and revives a completed process (quiescence is only
    // promised "unless new information arrives"; late adversarially
    // delayed gossips must still spread). Acknowledgment-bit updates are
    // merged and forwarded lazily but neither reset the timer nor wake
    // anyone — otherwise every bookkeeping ripple would re-excite the
    // whole system and the fan-out protocols would never quiesce
    // cheaply.
    news_pending_ = true;
    completed_ = false;
  }
}

void EarsProcess::on_local_step(sim::ProcessContext& ctx) {
  if (completed_) {
    // Woken while quiescent: serve the courtesy replies and go back to
    // sleep without touching the silence machinery.
    for (const auto requester : pending_replies_)
      ctx.send(requester, snapshot(ctx));
    pending_replies_.clear();
    return;
  }
  pending_replies_.clear();  // an active process gossips anyway

  if (news_pending_) {
    silent_steps_ = 0;
    news_pending_ = false;
  } else {
    ++silent_steps_;
  }

  // Share (G, I) with `fanout_` distinct uniformly random other processes.
  if (fanout_ == 1) {
    auto target = static_cast<sim::ProcessId>(ctx.rng().below(n_ - 1));
    if (target >= self_) ++target;  // uniform over everyone but self
    ctx.send(target, snapshot(ctx));
  } else {
    // Sample from {0..n-2} and shift past self to exclude it.
    const auto raw = ctx.rng().sample_without_replacement(n_ - 1, fanout_);
    const auto payload = snapshot(ctx);
    for (const auto r : raw) {
      const auto target = static_cast<sim::ProcessId>(r >= self_ ? r + 1 : r);
      ctx.send(target, payload);
    }
  }

  if (silent_steps_ >= silence_threshold_ &&
      (own_gossip_acknowledged() || silent_steps_ >= own_fallback_) &&
      (knowledge_condition() || silent_steps_ >= bookkeeping_fallback_)) {
    completed_ = true;
  }
}

bool EarsProcess::knowledge_condition() const noexcept {
  // Every gossip we hold must be known by every process according to I.
  // Quantified over the processes we have ever seen acknowledge
  // something (non-empty row): a process that crashed before
  // acknowledging anything can never satisfy the condition and is
  // rightly excluded, which keeps the condition satisfiable under
  // crashes (see the class comment).
  for (std::uint32_t row = 0; row < n_; ++row) {
    if (!knows_.row_any(row)) continue;
    if (!knows_.row_contains(row, gossips_)) return false;
  }
  return true;
}

bool EarsProcess::own_gossip_acknowledged() const noexcept {
  // Every process ever seen acknowledging something must have
  // acknowledged this process's own gossip.
  for (std::uint32_t row = 0; row < n_; ++row) {
    if (row == self_) continue;
    if (knows_.row_any(row) && !knows_.test(row, self_)) return false;
  }
  return true;
}

bool EarsProcess::wants_sleep() const noexcept { return completed_; }
bool EarsProcess::completed() const noexcept { return completed_; }

bool EarsProcess::has_gossip_of(sim::ProcessId origin) const noexcept {
  return gossips_.test(origin);
}

// ---- EarsSummaryProcess ---------------------------------------------------

EarsSummaryProcess::EarsSummaryProcess(sim::ProcessId self,
                                       const sim::SystemInfo& info,
                                       const EarsConfig& config,
                                       std::uint32_t fanout)
    : self_(self),
      n_(info.n),
      fanout_(std::clamp<std::uint32_t>(fanout, 1, info.n - 1)),
      silence_threshold_(
          silence_threshold_for(info.n, info.f, config.silence_multiplier)),
      bookkeeping_fallback_(silence_threshold_ *
                            std::max<std::uint32_t>(1,
                                                    config.fallback_factor)),
      own_fallback_(info.f + bookkeeping_fallback_),
      gossips_(info.n),
      ack_count_(info.n, 0),
      acked_me_(info.n),
      seen_versions_(info.n, 0) {
  gossips_.set(self_);
  // The exact mode's knows_(self, self): this process acknowledges its
  // own gossip, so its row count is 1 and its own-gossip bit is set.
  ack_count_[self_] = 1;
  acked_me_.set(self_);
}

sim::PayloadRef EarsSummaryProcess::snapshot(sim::ProcessContext& ctx) {
  if (!snapshot_)
    snapshot_ = ctx.make_payload<KnowledgeSummaryPayload>(self_, version_,
                                                          gossips_, ack_count_);
  return snapshot_;
}

void EarsSummaryProcess::on_message(sim::ProcessContext& /*ctx*/,
                                    const sim::Message& msg) {
  const auto* payload = payload_as<KnowledgeSummaryPayload>(msg);
  if (payload == nullptr) return;
  if (seen_versions_[payload->sender()] >= payload->version()) return;
  seen_versions_[payload->sender()] = payload->version();

  // Courtesy reply, exactly as in the exact mode (finite via the
  // version dedup above).
  if (completed_) pending_replies_.push_back(msg.from);

  const bool gossip_news = gossips_.or_with(payload->gossips());
  bool changed = gossip_news;
  // Max-merge the acknowledgment-set sizes the sender knew of.
  const auto& counts = payload->ack_counts();
  for (std::uint32_t r = 0; r < n_; ++r) {
    if (counts[r] > ack_count_[r]) {
      ack_count_[r] = counts[r];
      changed = true;
    }
  }
  // Direct evidence from the sender itself: it holds its gossip set, so
  // (by self-acknowledgment) it has acked all of it — including ours,
  // if our bit is in it.
  const auto sender_acks =
      static_cast<std::uint32_t>(payload->gossips().count());
  if (sender_acks > ack_count_[payload->sender()]) {
    ack_count_[payload->sender()] = sender_acks;
    changed = true;
  }
  if (payload->gossips().test(self_) && !acked_me_.test(payload->sender())) {
    acked_me_.set(payload->sender());
    changed = true;
  }
  // Self-acknowledgment of the (possibly grown) own gossip set.
  const auto own_acks = static_cast<std::uint32_t>(gossips_.count());
  if (own_acks > ack_count_[self_]) {
    ack_count_[self_] = own_acks;
    changed = true;
  }
  if (changed) {
    snapshot_ = {};
    ++version_;
  }
  if (gossip_news) {
    // Same news rule as the exact mode: only a new gossip resets the
    // silence timer and revives a completed process.
    news_pending_ = true;
    completed_ = false;
  }
}

void EarsSummaryProcess::on_local_step(sim::ProcessContext& ctx) {
  if (completed_) {
    for (const auto requester : pending_replies_)
      ctx.send(requester, snapshot(ctx));
    pending_replies_.clear();
    return;
  }
  pending_replies_.clear();

  if (news_pending_) {
    silent_steps_ = 0;
    news_pending_ = false;
  } else {
    ++silent_steps_;
  }

  if (fanout_ == 1) {
    auto target = static_cast<sim::ProcessId>(ctx.rng().below(n_ - 1));
    if (target >= self_) ++target;
    ctx.send(target, snapshot(ctx));
  } else {
    const auto raw = ctx.rng().sample_without_replacement(n_ - 1, fanout_);
    const auto payload = snapshot(ctx);
    for (const auto r : raw) {
      const auto target = static_cast<sim::ProcessId>(r >= self_ ? r + 1 : r);
      ctx.send(target, payload);
    }
  }

  if (silent_steps_ >= silence_threshold_ &&
      (own_gossip_acknowledged() || silent_steps_ >= own_fallback_) &&
      (knowledge_condition() || silent_steps_ >= bookkeeping_fallback_)) {
    completed_ = true;
  }
}

bool EarsSummaryProcess::knowledge_condition() const noexcept {
  // Counting projection of the exact gate: a seen row (count > 0) must
  // have acknowledged at least as many gossips as we hold. Cannot
  // over-claim per row size — a row that acked |G| gossips may still
  // miss one of ours — but is monotone and reaches the same fixpoint
  // once everyone acked everything.
  const auto mine = static_cast<std::uint32_t>(gossips_.count());
  for (std::uint32_t r = 0; r < n_; ++r) {
    if (ack_count_[r] != 0 && ack_count_[r] < mine) return false;
  }
  return true;
}

bool EarsSummaryProcess::own_gossip_acknowledged() const noexcept {
  // Every seen row must have direct evidence of holding our gossip.
  // Strictly harder than the exact gate (no transitive matrix
  // evidence) — the own_fallback_ silence window bounds the wait.
  for (std::uint32_t r = 0; r < n_; ++r) {
    if (r == self_) continue;
    if (ack_count_[r] != 0 && !acked_me_.test(r)) return false;
  }
  return true;
}

bool EarsSummaryProcess::wants_sleep() const noexcept { return completed_; }
bool EarsSummaryProcess::completed() const noexcept { return completed_; }

bool EarsSummaryProcess::has_gossip_of(sim::ProcessId origin) const noexcept {
  return gossips_.test(origin);
}

// ---- Factories ------------------------------------------------------------

std::unique_ptr<sim::Protocol> EarsFactory::create(
    sim::ProcessId self, const sim::SystemInfo& info) const {
  if (!config_.exact_bookkeeping)
    return std::make_unique<EarsSummaryProcess>(self, info, config_,
                                                /*fanout=*/1);
  return std::make_unique<EarsProcess>(self, info, config_, /*fanout=*/1);
}

std::unique_ptr<sim::ProtocolPlane> EarsFactory::create_plane(
    const sim::SystemInfo& info) const {
  if (!config_.exact_bookkeeping) {
    return std::make_unique<sim::VectorPlane<EarsSummaryProcess>>(
        info.n, [this, &info](sim::ProcessId p) {
          return EarsSummaryProcess(p, info, config_, /*fanout=*/1);
        });
  }
  return std::make_unique<sim::VectorPlane<EarsProcess>>(
      info.n, [this, &info](sim::ProcessId p) {
        return EarsProcess(p, info, config_, /*fanout=*/1);
      });
}

std::uint32_t SearsFactory::fanout_for(std::uint32_t n, double c, double eps) {
  const double nd = static_cast<double>(n);
  const double raw = c * std::pow(nd, eps) * std::log(nd);
  const auto fanout = static_cast<std::uint32_t>(std::ceil(raw));
  return std::clamp<std::uint32_t>(fanout, 1, n - 1);
}

std::unique_ptr<sim::Protocol> SearsFactory::create(
    sim::ProcessId self, const sim::SystemInfo& info) const {
  const std::uint32_t fanout = fanout_for(info.n, config_.c, config_.eps);
  if (!config_.base.exact_bookkeeping)
    return std::make_unique<EarsSummaryProcess>(self, info, config_.base,
                                                fanout);
  return std::make_unique<EarsProcess>(self, info, config_.base, fanout);
}

std::unique_ptr<sim::ProtocolPlane> SearsFactory::create_plane(
    const sim::SystemInfo& info) const {
  const std::uint32_t fanout = fanout_for(info.n, config_.c, config_.eps);
  if (!config_.base.exact_bookkeeping) {
    return std::make_unique<sim::VectorPlane<EarsSummaryProcess>>(
        info.n, [this, &info, fanout](sim::ProcessId p) {
          return EarsSummaryProcess(p, info, config_.base, fanout);
        });
  }
  return std::make_unique<sim::VectorPlane<EarsProcess>>(
      info.n, [this, &info, fanout](sim::ProcessId p) {
        return EarsProcess(p, info, config_.base, fanout);
      });
}

}  // namespace ugf::protocols
