#include "protocols/push_average.hpp"

#include <algorithm>
#include <cmath>

#include "sim/message.hpp"

namespace ugf::protocols {

namespace {

std::uint32_t silence_threshold_for(std::uint32_t n, std::uint32_t f,
                                    double multiplier) {
  const double ratio =
      static_cast<double>(n) / static_cast<double>(n - std::min(f, n - 1));
  const double steps = multiplier * ratio * std::log(static_cast<double>(n));
  return std::max<std::uint32_t>(1,
                                 static_cast<std::uint32_t>(std::ceil(steps)));
}

}  // namespace

PushAverageProcess::PushAverageProcess(sim::ProcessId self,
                                       const sim::SystemInfo& info,
                                       const PushAverageConfig& config,
                                       std::vector<double> initial)
    : self_(self),
      n_(info.n),
      // F + 2 distinct targets: at most F can ever be crashed, so at
      // least two floor pushes deterministically reach live processes.
      min_sends_(std::min<std::uint64_t>(std::uint64_t{info.f} + 2,
                                         info.n - 1)),
      silence_threshold_(
          silence_threshold_for(info.n, info.f, config.silence_multiplier)),
      s_(std::move(initial)),
      origins_(info.n),
      courtesy_budget_(2 * silence_threshold_) {
  origins_.set(self_);
}

void PushAverageProcess::on_message(sim::ProcessContext& /*ctx*/,
                                    const sim::Message& msg) {
  const auto* mass = payload_as<MassPayload>(msg);
  if (mass == nullptr) return;
  for (std::size_t j = 0; j < s_.size() && j < mass->s().size(); ++j)
    s_[j] += mass->s()[j];
  w_ += mass->w();
  if (origins_.or_with(mass->origins())) {
    news_pending_ = true;
    // A brand-new contribution (e.g. the isolated process finally
    // breaking through) must keep spreading: resume gossiping until the
    // silence timer expires again. Mass-only deliveries are absorbed
    // silently — the sender halved its share regardless, so the global
    // sums stay conserved either way.
    completed_ = false;
  } else if (completed_ && courtesy_budget_ > 0) {
    // Courtesy push (see class comment): a straggler still gossiping at
    // us is probably missing origins we hold; push once back to it.
    reply_to_ = msg.from;
  }
}

void PushAverageProcess::on_local_step(sim::ProcessContext& ctx) {
  if (completed_) {
    if (reply_to_ != sim::kNoProcess && courtesy_budget_ > 0) {
      --courtesy_budget_;
      std::vector<double> half(s_.size());
      for (std::size_t j = 0; j < s_.size(); ++j) {
        s_[j] *= 0.5;
        half[j] = s_[j];
      }
      w_ *= 0.5;
      ctx.send(reply_to_,
               ctx.make_payload<MassPayload>(std::move(half), w_, origins_));
    }
    reply_to_ = sim::kNoProcess;
    return;
  }
  reply_to_ = sim::kNoProcess;

  if (news_pending_) {
    silent_steps_ = 0;
    news_pending_ = false;
  } else {
    ++silent_steps_;
  }

  // Halve (s, w) and push one half: the first min_sends_ pushes follow
  // a shuffled list of distinct targets (the deterministic robustness
  // floor), later ones pick uniformly at random.
  std::vector<double> half(s_.size());
  for (std::size_t j = 0; j < s_.size(); ++j) {
    s_[j] *= 0.5;
    half[j] = s_[j];
  }
  w_ *= 0.5;
  sim::ProcessId target;
  if (sent_ < min_sends_) {
    if (floor_targets_.empty()) {
      floor_targets_.reserve(n_ - 1);
      for (sim::ProcessId q = 0; q < n_; ++q)
        if (q != self_) floor_targets_.push_back(q);
      ctx.rng().shuffle(floor_targets_);
    }
    target = floor_targets_[static_cast<std::size_t>(sent_)];
  } else {
    target = static_cast<sim::ProcessId>(ctx.rng().below(n_ - 1));
    if (target >= self_) ++target;
  }
  ctx.send(target,
           ctx.make_payload<MassPayload>(std::move(half), w_, origins_));
  ++sent_;

  if (sent_ >= min_sends_ && silent_steps_ >= silence_threshold_)
    completed_ = true;
}

bool PushAverageProcess::wants_sleep() const noexcept { return completed_; }
bool PushAverageProcess::completed() const noexcept { return completed_; }

bool PushAverageProcess::has_gossip_of(
    sim::ProcessId origin) const noexcept {
  return origins_.test(origin);
}

std::vector<double> PushAverageProcess::estimate() const {
  std::vector<double> out(s_.size());
  for (std::size_t j = 0; j < s_.size(); ++j) out[j] = s_[j] / w_;
  return out;
}

std::vector<double> PushAverageFactory::default_initializer(
    sim::ProcessId self, std::uint32_t dimension) {
  std::vector<double> x(dimension);
  for (std::uint32_t j = 0; j < dimension; ++j)
    x[j] = static_cast<double>(self + 1) * static_cast<double>(j + 1);
  return x;
}

std::unique_ptr<sim::Protocol> PushAverageFactory::create(
    sim::ProcessId self, const sim::SystemInfo& info) const {
  auto initial = initializer_ != nullptr
                     ? initializer_(self, config_.dimension)
                     : default_initializer(self, config_.dimension);
  initial.resize(config_.dimension, 0.0);
  return std::make_unique<PushAverageProcess>(self, info, config_,
                                              std::move(initial));
}

std::unique_ptr<sim::ProtocolPlane> PushAverageFactory::create_plane(
    const sim::SystemInfo& info) const {
  return std::make_unique<sim::VectorPlane<PushAverageProcess>>(
      info.n, [this, &info](sim::ProcessId p) {
        auto initial = initializer_ != nullptr
                           ? initializer_(p, config_.dimension)
                           : default_initializer(p, config_.dimension);
        initial.resize(config_.dimension, 0.0);
        return PushAverageProcess(p, info, config_, std::move(initial));
      });
}

}  // namespace ugf::protocols
