#pragma once

/// \file sequential.hpp
/// The deterministic protocol of the paper's Example 1: every process
/// fixes an order over the other processes and sends its own gossip to
/// one of them per local step, for N-1 steps. It has
/// M(O) = N(N-1) = Theta(N^2) and T(O) = Theta(N) for every outcome —
/// the paper's reference point for an inefficient dissemination — and,
/// being deterministic, it anchors the metric-pipeline unit tests.

#include <memory>

#include "protocols/payloads.hpp"
#include "sim/protocol.hpp"
#include "util/dynamic_bitset.hpp"

namespace ugf::protocols {

class SequentialProcess final : public sim::Protocol {
 public:
  SequentialProcess(sim::ProcessId self, const sim::SystemInfo& info);

  void on_message(sim::ProcessContext& ctx, const sim::Message& msg) override;
  void on_local_step(sim::ProcessContext& ctx) override;
  [[nodiscard]] bool wants_sleep() const noexcept override;
  [[nodiscard]] bool completed() const noexcept override;
  [[nodiscard]] bool has_gossip_of(
      sim::ProcessId origin) const noexcept override;
  void digest_into(std::uint64_t& h) const noexcept override {
    h = util::mix_seed(h, next_offset_);
    h = util::mix_words(h, known_.words().data(), known_.words().size());
  }

 private:
  sim::ProcessId self_;
  std::uint32_t n_;
  std::uint32_t next_offset_ = 1;  ///< send to (self + next_offset) mod n
  util::DynamicBitset known_;
  /// Own-gossip payload, made lazily on the first step (the constructor
  /// has no arena access) and reused for all N-1 sends.
  sim::PayloadRef own_gossip_;
};

class SequentialFactory final : public sim::ProtocolFactory {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "sequential";
  }
  [[nodiscard]] std::unique_ptr<sim::Protocol> create(
      sim::ProcessId self, const sim::SystemInfo& info) const override {
    return std::make_unique<SequentialProcess>(self, info);
  }
  [[nodiscard]] std::unique_ptr<sim::ProtocolPlane> create_plane(
      const sim::SystemInfo& info) const override {
    return std::make_unique<sim::VectorPlane<SequentialProcess>>(
        info.n,
        [&info](sim::ProcessId p) { return SequentialProcess(p, info); });
  }
};

}  // namespace ugf::protocols
