#pragma once

/// \file push_pull_counting.hpp
/// Push-Pull with O(1) per-process state — the million-process scale
/// mode of the bundled Push-Pull protocol (push_pull.hpp).
///
/// The exact protocol keeps three N-bit sets per process (known /
/// pulled / served), i.e. Theta(N) bytes per process and Theta(N^2)
/// for a run — ~375 GB at N = 10^6. This variant replaces all of them
/// with a single *gossip count* a = |G(rho)| and a pull counter:
///
///  * a push / pull reply carries the sender's count c, not its set;
///  * the receiver merges u = min(N, a + c - floor(a * c / N)) — the
///    expected union size of two independent uniform random subsets of
///    sizes a and c, the same mean-field estimate push-pull analyses
///    use. The merge is monotone, saturates at N, and strictly
///    increases while a < N (floor(a c / N) <= c - 1 for a < N), so a
///    process that keeps hearing counts reaches N in at most N merges
///    (in practice O(log N): counts grow epidemically);
///  * pull / push targets are uniform over everyone else (no
///    already-pulled / already-served tracking); a process gives up
///    pulling after N - 1 pull requests — the same exhaustion bound at
///    which the exact protocol's pulled-set fills up — so quiescence
///    survives crash-induced starvation.
///
/// A process reports rumor gathering via `claims_all_gossip()` (count
/// saturated at N): with F = 0 every pull is answered, every reply
/// strictly increases the count, and the verdict matches the exact
/// protocol. Under crashes the count may stick below N — the summary
/// then *under*-claims and the run reports rumor gathering false, which
/// is the conservative direction. Use the exact protocol where
/// per-origin verdicts matter; this mode exists for the N = 10^6
/// engine-scale envelope (bench/perf_scale.cpp).

#include <memory>
#include <vector>

#include "protocols/payloads.hpp"
#include "sim/protocol.hpp"

namespace ugf::protocols {

class PushPullCountingProcess final : public sim::Protocol {
 public:
  PushPullCountingProcess(sim::ProcessId self, const sim::SystemInfo& info);

  void on_message(sim::ProcessContext& ctx, const sim::Message& msg) override;
  void on_local_step(sim::ProcessContext& ctx) override;
  [[nodiscard]] bool wants_sleep() const noexcept override;
  [[nodiscard]] bool completed() const noexcept override;
  [[nodiscard]] bool has_gossip_of(
      sim::ProcessId origin) const noexcept override;
  /// O(1) rumor-gathering verdict (see file comment).
  [[nodiscard]] bool claims_all_gossip() const noexcept {
    return known_count_ >= n_;
  }
  void digest_into(std::uint64_t& h) const noexcept override {
    h = util::mix_seed(h, known_count_);
    h = util::mix_seed(h, pulls_sent_);
    h = util::mix_seed(h, pending_replies_.size());
    for (const sim::ProcessId p : pending_replies_) h = util::mix_seed(h, p);
  }

  /// White-box accessors for tests.
  [[nodiscard]] std::uint64_t known_count() const noexcept {
    return known_count_;
  }
  [[nodiscard]] std::uint64_t pulls_sent() const noexcept {
    return pulls_sent_;
  }

 private:
  [[nodiscard]] bool satisfied() const noexcept;
  [[nodiscard]] sim::PayloadRef count_snapshot(sim::ProcessContext& ctx);
  void merge(std::uint64_t other_count);
  [[nodiscard]] sim::ProcessId random_other(sim::ProcessContext& ctx);

  sim::ProcessId self_;
  std::uint32_t n_;
  std::uint64_t known_count_ = 1;  ///< a = |G(rho)|, starts at {own gossip}
  std::uint64_t pulls_sent_ = 0;
  std::vector<sim::ProcessId> pending_replies_;
  /// Cached count snapshot / pull request (invalidated on count change;
  /// the instance dies with the run's arena, so caching cannot dangle).
  sim::PayloadRef snapshot_;
  sim::PayloadRef pull_req_;
};

class PushPullCountingFactory final : public sim::ProtocolFactory {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "push-pull-counting";
  }
  [[nodiscard]] std::unique_ptr<sim::Protocol> create(
      sim::ProcessId self, const sim::SystemInfo& info) const override {
    return std::make_unique<PushPullCountingProcess>(self, info);
  }
  [[nodiscard]] std::unique_ptr<sim::ProtocolPlane> create_plane(
      const sim::SystemInfo& info) const override {
    return std::make_unique<sim::VectorPlane<PushPullCountingProcess>>(
        info.n, [&info](sim::ProcessId p) {
          return PushPullCountingProcess(p, info);
        });
  }
};

}  // namespace ugf::protocols
