#include "protocols/push_pull.hpp"

namespace ugf::protocols {

PushPullProcess::PushPullProcess(sim::ProcessId self,
                                 const sim::SystemInfo& info)
    : self_(self),
      n_(info.n),
      known_(info.n),
      pulled_(info.n),
      served_(info.n) {
  known_.set(self_);
  // Never pull or push to oneself.
  pulled_.set(self_);
  served_.set(self_);
}

sim::PayloadRef PushPullProcess::known_snapshot(sim::ProcessContext& ctx) {
  if (!snapshot_) snapshot_ = ctx.make_payload<GossipSetPayload>(known_);
  return snapshot_;
}

void PushPullProcess::on_message(sim::ProcessContext& /*ctx*/,
                                 const sim::Message& msg) {
  if (payload_as<PullRequestPayload>(msg) != nullptr) {
    pending_replies_.push_back(msg.from);
    return;
  }
  if (const auto* gossips = payload_as<GossipSetPayload>(msg)) {
    if (known_.or_with(gossips->gossips())) snapshot_ = {};
  }
}

void PushPullProcess::on_local_step(sim::ProcessContext& ctx) {
  // 1. Answer pull requests with everything we know.
  for (const sim::ProcessId requester : pending_replies_) {
    ctx.send(requester, known_snapshot(ctx));
    served_.set(requester);  // the reply carries our own gossip
  }
  pending_replies_.clear();

  // Once the sleep condition holds (every other process known or
  // pull-requested) the process stops *initiating* traffic for good; a
  // wake-up only merges gossips and answers pull requests. Without this
  // guard a single push would chain wake-ups through the whole system
  // and the benign dissemination would degenerate to Theta(N^2) time.
  if (satisfied()) return;

  // 2. Pull: one request to a uniformly random process whose gossip we
  //    miss and have not asked yet — the clear bits of known_ | pulled_,
  //    sampled in place. Drawing below(count) and selecting the k-th
  //    clear bit (ascending) picks exactly the element the old
  //    candidate-vector build would have, with the same single RNG draw.
  const std::size_t pull_count =
      util::DynamicBitset::union_clear_count(known_, pulled_);
  if (pull_count != 0) {
    const auto k = static_cast<std::size_t>(ctx.rng().below(pull_count));
    const auto pick = static_cast<sim::ProcessId>(
        util::DynamicBitset::nth_clear_of_union(known_, pulled_, k));
    ctx.send(pick, ctx.make_payload<PullRequestPayload>());
    pulled_.set(pick);
  }

  // 3. Push: everything we know to a uniformly random process that has
  //    not received our gossip from us yet (a clear bit of served_).
  const std::size_t push_count = served_.clear_count();
  if (push_count != 0) {
    const auto k = static_cast<std::size_t>(ctx.rng().below(push_count));
    const auto pick = static_cast<sim::ProcessId>(served_.nth_clear(k));
    ctx.send(pick, known_snapshot(ctx));
    served_.set(pick);
  }
}

bool PushPullProcess::satisfied() const noexcept {
  // Every other process is either known or already pull-requested.
  // known_ and pulled_ both have the self bit set, so the union covering
  // everything is exactly the paper's sleep condition.
  return util::DynamicBitset::union_all(known_, pulled_);
}

bool PushPullProcess::wants_sleep() const noexcept {
  return pending_replies_.empty() && satisfied();
}

bool PushPullProcess::completed() const noexcept { return wants_sleep(); }

bool PushPullProcess::has_gossip_of(sim::ProcessId origin) const noexcept {
  return known_.test(origin);
}

}  // namespace ugf::protocols
