#include "protocols/push_pull_counting.hpp"

#include <algorithm>

namespace ugf::protocols {

PushPullCountingProcess::PushPullCountingProcess(sim::ProcessId self,
                                                 const sim::SystemInfo& info)
    : self_(self), n_(info.n) {}

bool PushPullCountingProcess::satisfied() const noexcept {
  // Count saturated, or pull budget exhausted — the counting analogue
  // of "for every other process: known or already pull-requested"
  // (the exact protocol's pulled-set holds at most N - 1 others).
  return known_count_ >= n_ || pulls_sent_ + 1 >= n_;
}

sim::PayloadRef PushPullCountingProcess::count_snapshot(
    sim::ProcessContext& ctx) {
  if (!snapshot_)
    snapshot_ = ctx.make_payload<GossipCountPayload>(known_count_);
  return snapshot_;
}

void PushPullCountingProcess::merge(std::uint64_t other_count) {
  // Expected-union merge: u = min(N, a + c - floor(a c / N)). Strictly
  // increasing while a < N and c >= 1 (floor(a c / N) <= c - 1), so
  // merging can never stall short of saturation.
  const std::uint64_t a = known_count_;
  const std::uint64_t c = other_count;
  const std::uint64_t u = std::min<std::uint64_t>(n_, a + c - (a * c) / n_);
  if (u != known_count_) {
    known_count_ = u;
    snapshot_ = {};  // stale count; next send re-snapshots
  }
}

sim::ProcessId PushPullCountingProcess::random_other(sim::ProcessContext& ctx) {
  auto target = static_cast<sim::ProcessId>(ctx.rng().below(n_ - 1));
  if (target >= self_) ++target;  // uniform over everyone but self
  return target;
}

void PushPullCountingProcess::on_message(sim::ProcessContext& /*ctx*/,
                                         const sim::Message& msg) {
  if (payload_as<PullRequestPayload>(msg) != nullptr) {
    pending_replies_.push_back(msg.from);
    return;
  }
  if (const auto* payload = payload_as<GossipCountPayload>(msg))
    merge(payload->count());
}

void PushPullCountingProcess::on_local_step(sim::ProcessContext& ctx) {
  // Answer every pull delivered since the previous step — also while
  // satisfied, so stragglers still get their replies (each reply is
  // solicited, hence finite).
  for (const auto requester : pending_replies_)
    ctx.send(requester, count_snapshot(ctx));
  pending_replies_.clear();

  if (satisfied()) return;

  // One pull and one push per step, both to uniformly random others
  // (the exact protocol restricts targets via its pulled/served sets;
  // tracking those is exactly the Theta(N) state this mode sheds).
  if (!pull_req_) pull_req_ = ctx.make_payload<PullRequestPayload>();
  ctx.send(random_other(ctx), pull_req_);
  ++pulls_sent_;
  ctx.send(random_other(ctx), count_snapshot(ctx));
}

bool PushPullCountingProcess::wants_sleep() const noexcept {
  return pending_replies_.empty() && satisfied();
}

bool PushPullCountingProcess::completed() const noexcept {
  return wants_sleep();
}

bool PushPullCountingProcess::has_gossip_of(
    sim::ProcessId origin) const noexcept {
  return origin == self_ || known_count_ >= n_;
}

}  // namespace ugf::protocols
