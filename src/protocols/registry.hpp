#pragma once

/// \file registry.hpp
/// Name-based construction of the bundled protocols, used by benches,
/// examples and sweep configurations ("push-pull", "ears", "sears",
/// "sequential", "broadcast-all").

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/protocol.hpp"

namespace ugf::protocols {

/// Creates the factory registered under `name`; throws
/// std::invalid_argument for unknown names. Accepted spellings are
/// case-sensitive and use dashes ("push-pull").
[[nodiscard]] std::unique_ptr<sim::ProtocolFactory> make_protocol(
    std::string_view name);

/// All registered protocol names.
[[nodiscard]] std::vector<std::string> protocol_names();

}  // namespace ugf::protocols
