#pragma once

/// \file payloads.hpp
/// Message payload types shared by the bundled all-to-all gossip
/// protocols. Payloads are immutable, constructed into the run's
/// PayloadArena via `ctx.make_payload<T>(...)`; a sender that fans the
/// same state out to many receivers (SEARS) shares one arena slot.
/// Message complexity ignores payload size (Def II.3), so carrying a
/// whole knowledge snapshot still counts as a single message.

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/message.hpp"
#include "util/bitset2d.hpp"
#include "util/dynamic_bitset.hpp"

namespace ugf::protocols {

/// A pull request (Push-Pull): "please send me everything you know".
class PullRequestPayload final : public sim::Payload {
 public:
  static constexpr std::uint32_t kKind = 0x50554C4C;  // 'PULL'

  PullRequestPayload() noexcept : Payload(kKind) {}
};

/// A set of gossips, identified by the originating process of each
/// gossip (bit g set == "the gossip that originated at process g").
class GossipSetPayload final : public sim::Payload {
 public:
  static constexpr std::uint32_t kKind = 0x474F5353;  // 'GOSS'

  explicit GossipSetPayload(util::DynamicBitset gossips)
      : Payload(kKind), gossips_(std::move(gossips)) {}

  [[nodiscard]] const util::DynamicBitset& gossips() const noexcept {
    return gossips_;
  }

 private:
  util::DynamicBitset gossips_;
};

/// A gossip *count* (counting push-pull): "my gossip set has at least
/// this many members". The scale-mode stand-in for GossipSetPayload —
/// O(1) instead of O(N) bits, at the price of not knowing *which*
/// gossips the sender holds.
class GossipCountPayload final : public sim::Payload {
 public:
  static constexpr std::uint32_t kKind = 0x47434E54;  // 'GCNT'

  explicit GossipCountPayload(std::uint64_t count) noexcept
      : Payload(kKind), count_(count) {}

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  std::uint64_t count_;
};

/// An EARS/SEARS knowledge snapshot: the sender's gossip set G and its
/// receipt relation I = {(rho', g) : rho' knows g} (row = knower,
/// column = gossip). `saturated()` is precomputed so receivers that are
/// already saturated can skip the merge entirely.
class KnowledgePayload final : public sim::Payload {
 public:
  static constexpr std::uint32_t kKind = 0x4B4E4F57;  // 'KNOW'

  /// (sender, version) identifies the snapshot content: `version` is the
  /// sender's state-change counter. Receivers use it to skip re-merging
  /// a snapshot they have already absorbed — under Strategy 2.k.l a slow
  /// sender emits the *same* snapshot for many steps.
  KnowledgePayload(sim::ProcessId sender, std::uint64_t version,
                   util::DynamicBitset gossips, util::Bitset2D knows)
      : Payload(kKind),
        gossips_(std::move(gossips)),
        knows_(std::move(knows)),
        version_(version),
        sender_(sender) {}

  [[nodiscard]] const util::DynamicBitset& gossips() const noexcept {
    return gossips_;
  }
  [[nodiscard]] const util::Bitset2D& knows() const noexcept { return knows_; }
  [[nodiscard]] sim::ProcessId sender() const noexcept { return sender_; }
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

 private:
  util::DynamicBitset gossips_;
  util::Bitset2D knows_;
  std::uint64_t version_;
  sim::ProcessId sender_;
};

/// The O(N) summary-mode stand-in for KnowledgePayload: the sender's
/// gossip set G plus, per process, the *size* of that process's
/// acknowledgment set as far as the sender knows — a counting-threshold
/// projection of the receipt relation I (row r carries |I row r|, not
/// the row itself). Receivers max-merge the counts; the N x N matrix
/// never travels and never exists at either end.
class KnowledgeSummaryPayload final : public sim::Payload {
 public:
  static constexpr std::uint32_t kKind = 0x4B53554D;  // 'KSUM'

  KnowledgeSummaryPayload(sim::ProcessId sender, std::uint64_t version,
                          util::DynamicBitset gossips,
                          std::vector<std::uint32_t> ack_counts)
      : Payload(kKind),
        gossips_(std::move(gossips)),
        ack_counts_(std::move(ack_counts)),
        version_(version),
        sender_(sender) {}

  [[nodiscard]] const util::DynamicBitset& gossips() const noexcept {
    return gossips_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& ack_counts() const noexcept {
    return ack_counts_;
  }
  [[nodiscard]] sim::ProcessId sender() const noexcept { return sender_; }
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

 private:
  util::DynamicBitset gossips_;
  std::vector<std::uint32_t> ack_counts_;
  std::uint64_t version_;
  sim::ProcessId sender_;
};

}  // namespace ugf::protocols
