#pragma once

/// \file payloads.hpp
/// Message payload types shared by the bundled all-to-all gossip
/// protocols. Payloads are immutable, constructed into the run's
/// PayloadArena via `ctx.make_payload<T>(...)`; a sender that fans the
/// same state out to many receivers (SEARS) shares one arena slot.
/// Message complexity ignores payload size (Def II.3), so carrying a
/// whole knowledge snapshot still counts as a single message.

#include "sim/message.hpp"
#include "util/bitset2d.hpp"
#include "util/dynamic_bitset.hpp"

namespace ugf::protocols {

/// A pull request (Push-Pull): "please send me everything you know".
class PullRequestPayload final : public sim::Payload {
 public:
  static constexpr std::uint32_t kKind = 0x50554C4C;  // 'PULL'

  PullRequestPayload() noexcept : Payload(kKind) {}
};

/// A set of gossips, identified by the originating process of each
/// gossip (bit g set == "the gossip that originated at process g").
class GossipSetPayload final : public sim::Payload {
 public:
  static constexpr std::uint32_t kKind = 0x474F5353;  // 'GOSS'

  explicit GossipSetPayload(util::DynamicBitset gossips)
      : Payload(kKind), gossips_(std::move(gossips)) {}

  [[nodiscard]] const util::DynamicBitset& gossips() const noexcept {
    return gossips_;
  }

 private:
  util::DynamicBitset gossips_;
};

/// An EARS/SEARS knowledge snapshot: the sender's gossip set G and its
/// receipt relation I = {(rho', g) : rho' knows g} (row = knower,
/// column = gossip). `saturated()` is precomputed so receivers that are
/// already saturated can skip the merge entirely.
class KnowledgePayload final : public sim::Payload {
 public:
  static constexpr std::uint32_t kKind = 0x4B4E4F57;  // 'KNOW'

  /// (sender, version) identifies the snapshot content: `version` is the
  /// sender's state-change counter. Receivers use it to skip re-merging
  /// a snapshot they have already absorbed — under Strategy 2.k.l a slow
  /// sender emits the *same* snapshot for many steps.
  KnowledgePayload(sim::ProcessId sender, std::uint64_t version,
                   util::DynamicBitset gossips, util::Bitset2D knows)
      : Payload(kKind),
        gossips_(std::move(gossips)),
        knows_(std::move(knows)),
        version_(version),
        sender_(sender) {}

  [[nodiscard]] const util::DynamicBitset& gossips() const noexcept {
    return gossips_;
  }
  [[nodiscard]] const util::Bitset2D& knows() const noexcept { return knows_; }
  [[nodiscard]] sim::ProcessId sender() const noexcept { return sender_; }
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

 private:
  util::DynamicBitset gossips_;
  util::Bitset2D knows_;
  std::uint64_t version_;
  sim::ProcessId sender_;
};

}  // namespace ugf::protocols
