#pragma once

/// \file ears.hpp
/// Epidemic Asynchronous Rumor Spreading — EARS (§V-A.2b, after
/// Georgiou, Gilbert, Guerraoui, Kowalski, PODC 2008) and its spamming
/// variant SEARS (§V-A.2c).
///
/// Every process rho maintains a gossip set G(rho) and the receipt
/// relation I(rho) = {(rho', g) : rho' knows g}. At each local step it
/// sends (G, I) to `fanout` processes chosen uniformly at random
/// (fanout = 1 for EARS; ceil(c * N^eps * ln N) distinct targets for
/// SEARS, defaults c = 1, eps = 0.5 as in the paper's experiments).
///
/// Completion: the paper completes a process after it has received no
/// new message for ceil((N/(N-F)) * ln N) local steps, provided the
/// knowledge condition holds — every gossip in G is known by every
/// process according to I. Stated literally the condition is
/// unsatisfiable once any process crashes (a crashed process never
/// acknowledges anything), which would break Quiescence (Def II.2).
/// This implementation therefore restricts and splits the condition
/// (see DESIGN.md, "Substitutions"):
///
///  * quantification runs over the processes this one has ever seen
///    acknowledge something (non-empty row in I) — a process that
///    crashed before acknowledging anything is rightly ignored;
///  * the *own-gossip* gate — every such process has acknowledged MY
///    gossip — is the process's primary duty and is only overridden
///    after max(N, fallback_factor * threshold) silent local steps.
///    This is what keeps the isolated rho-hat of Strategy 2.k.0 sending
///    through its F/2-message crash-out phase (F < N), preserving the
///    paper's linear-time effect;
///  * the *bookkeeping* gate — every gossip I hold is acknowledged by
///    every such process — is best-effort and is overridden after
///    fallback_factor * threshold silent steps, so third-party gaps
///    created by mid-run crashes or long delays cannot stall the whole
///    system for Theta(N) steps.
///
/// Receiving a message that carries a new *gossip* resets the silence
/// counter and un-completes a completed process, so late (adversarially
/// delayed) gossips still disseminate. A *completed* process that
/// receives a snapshot version it has not seen before answers it with a
/// single courtesy reply carrying its own snapshot (deduplicated per
/// (sender, version), hence loop-free and finite): this keeps the
/// acknowledgment epidemic alive for stragglers whose completion
/// condition would otherwise starve once the bulk of the system has
/// quiesced, without the unbounded re-excitation that reviving on every
/// acknowledgment ripple would cause.

#include <cstdint>
#include <memory>
#include <vector>

#include "protocols/payloads.hpp"
#include "sim/protocol.hpp"
#include "util/bitset2d.hpp"
#include "util/dynamic_bitset.hpp"

namespace ugf::protocols {

struct EarsConfig {
  /// Silence threshold multiplier k in k * (N/(N-F)) * ln N; the paper
  /// uses k = 1.
  double silence_multiplier = 1.0;
  /// Quiescence fallback multiplier (must be >= 1): the bookkeeping gate
  /// yields after fallback_factor * threshold silent local steps, the
  /// own-gossip gate after max(N, fallback_factor * threshold).
  std::uint32_t fallback_factor = 3;
  /// true (default): the paper-faithful N x N receipt relation I (an
  /// EarsProcess per process — Theta(N^2) bits each, Theta(N^3) per
  /// run). false: the O(N)-per-process counting summary of I (an
  /// EarsSummaryProcess per process) — same silence / fallback gates,
  /// same gossip dissemination, bounded state; completion decisions may
  /// lean on the fallbacks where the exact mode's matrix would have
  /// decided earlier. The goldens pin the exact mode; the summary mode
  /// is verified against it at small N (tests/test_ears_summary.cpp).
  bool exact_bookkeeping = true;
};

struct SearsConfig {
  EarsConfig base;
  /// Fan-out coefficient c (paper: 1).
  double c = 1.0;
  /// Fan-out exponent eps in c * N^eps * ln N (paper: 0.5).
  double eps = 0.5;
};

/// Shared implementation; EARS is fanout == 1.
class EarsProcess : public sim::Protocol {
 public:
  EarsProcess(sim::ProcessId self, const sim::SystemInfo& info,
              const EarsConfig& config, std::uint32_t fanout);

  void on_message(sim::ProcessContext& ctx, const sim::Message& msg) override;
  void on_local_step(sim::ProcessContext& ctx) override;
  [[nodiscard]] bool wants_sleep() const noexcept override;
  [[nodiscard]] bool completed() const noexcept override;
  [[nodiscard]] bool has_gossip_of(
      sim::ProcessId origin) const noexcept override;
  [[nodiscard]] const util::DynamicBitset* gossip_bits()
      const noexcept override {
    return &gossips_;
  }
  void digest_into(std::uint64_t& h) const noexcept override {
    h = util::mix_words(h, gossips_.words().data(), gossips_.words().size());
    h = util::mix_words(h, knows_.words().data(), knows_.words().size());
    h = util::mix_seed(h, silent_steps_);
    h = util::mix_seed(h, (std::uint64_t{news_pending_} << 1) |
                              std::uint64_t{completed_});
    h = util::mix_seed(h, version_);
    h = util::mix_words(h, seen_versions_.data(), seen_versions_.size());
    h = util::mix_seed(h, pending_replies_.size());
    for (const sim::ProcessId p : pending_replies_) h = util::mix_seed(h, p);
  }

  /// White-box accessors for tests.
  [[nodiscard]] const util::DynamicBitset& gossips() const noexcept {
    return gossips_;
  }
  [[nodiscard]] const util::Bitset2D& knows() const noexcept { return knows_; }
  [[nodiscard]] std::uint32_t silence_threshold() const noexcept {
    return silence_threshold_;
  }
  [[nodiscard]] bool knowledge_condition() const noexcept;
  [[nodiscard]] bool own_gossip_acknowledged() const noexcept;

 private:
  [[nodiscard]] sim::PayloadRef snapshot(sim::ProcessContext& ctx);

  sim::ProcessId self_;
  std::uint32_t n_;
  std::uint32_t fanout_;
  std::uint32_t silence_threshold_;
  std::uint32_t bookkeeping_fallback_;
  std::uint32_t own_fallback_;

  util::DynamicBitset gossips_;  ///< G(rho)
  util::Bitset2D knows_;         ///< I(rho): row = knower, col = gossip
  std::uint32_t silent_steps_ = 0;
  bool news_pending_ = false;  ///< state changed since last local step
  bool completed_ = false;
  std::uint64_t version_ = 1;  ///< state-change counter for snapshot dedup
  /// Last merged snapshot version per sender (0 = none yet); lets
  /// receivers skip re-merging identical snapshots from slow senders.
  std::vector<std::uint64_t> seen_versions_;
  /// Senders owed a courtesy reply at the next (wake) step.
  std::vector<sim::ProcessId> pending_replies_;
  /// Arena ref of the last (G, I) snapshot; null after a state change.
  /// The instance dies with the run, so the cached ref cannot dangle.
  sim::PayloadRef snapshot_;
};

/// The O(N)-per-process summary variant (EarsConfig::exact_bookkeeping
/// == false). Gossip dissemination is identical to EarsProcess; the
/// receipt relation I is projected to counting thresholds:
///
///  * ack_count_[r] — the largest acknowledgment-set size process r has
///    been seen with (max-merged from incoming summaries; a sender
///    holding G acknowledges all of G, so its own row is |G|);
///    (a row is "seen" — the exact mode's row_any() — iff its count is
///    nonzero);
///  * acked_me_ — processes with *direct* evidence of holding this
///    process's gossip: a summary whose gossip set contains self came
///    from a sender that (by self-acknowledgment) has acked it.
///
/// The gates translate to: knowledge condition — every seen row's count
/// reaches |G(rho)|; own-gossip — every seen row is in acked_me_.
/// Both are monotone under-approximations of the exact gates (counts
/// can under-estimate which gossips a row acked; acked_me_ lacks the
/// matrix's transitive evidence), so the summary completes no earlier
/// than the exact mode on the same evidence — and at the latest at the
/// same silence fallbacks, which is what guarantees quiescence.
class EarsSummaryProcess : public sim::Protocol {
 public:
  EarsSummaryProcess(sim::ProcessId self, const sim::SystemInfo& info,
                     const EarsConfig& config, std::uint32_t fanout);

  void on_message(sim::ProcessContext& ctx, const sim::Message& msg) override;
  void on_local_step(sim::ProcessContext& ctx) override;
  [[nodiscard]] bool wants_sleep() const noexcept override;
  [[nodiscard]] bool completed() const noexcept override;
  [[nodiscard]] bool has_gossip_of(
      sim::ProcessId origin) const noexcept override;
  [[nodiscard]] const util::DynamicBitset* gossip_bits()
      const noexcept override {
    return &gossips_;
  }
  void digest_into(std::uint64_t& h) const noexcept override {
    h = util::mix_words(h, gossips_.words().data(), gossips_.words().size());
    for (const std::uint32_t c : ack_count_) h = util::mix_seed(h, c);
    h = util::mix_words(h, acked_me_.words().data(),
                        acked_me_.words().size());
    h = util::mix_seed(h, silent_steps_);
    h = util::mix_seed(h, (std::uint64_t{news_pending_} << 1) |
                              std::uint64_t{completed_});
    h = util::mix_seed(h, version_);
    h = util::mix_words(h, seen_versions_.data(), seen_versions_.size());
    h = util::mix_seed(h, pending_replies_.size());
    for (const sim::ProcessId p : pending_replies_) h = util::mix_seed(h, p);
  }

  /// White-box accessors for tests.
  [[nodiscard]] const util::DynamicBitset& gossips() const noexcept {
    return gossips_;
  }
  [[nodiscard]] std::uint32_t silence_threshold() const noexcept {
    return silence_threshold_;
  }
  [[nodiscard]] bool knowledge_condition() const noexcept;
  [[nodiscard]] bool own_gossip_acknowledged() const noexcept;

 private:
  [[nodiscard]] sim::PayloadRef snapshot(sim::ProcessContext& ctx);

  sim::ProcessId self_;
  std::uint32_t n_;
  std::uint32_t fanout_;
  std::uint32_t silence_threshold_;
  std::uint32_t bookkeeping_fallback_;
  std::uint32_t own_fallback_;

  util::DynamicBitset gossips_;  ///< G(rho) — exact, as in EarsProcess
  std::vector<std::uint32_t> ack_count_;  ///< max-merged |I row r|
  util::DynamicBitset acked_me_;
  std::uint32_t silent_steps_ = 0;
  bool news_pending_ = false;
  bool completed_ = false;
  std::uint64_t version_ = 1;
  std::vector<std::uint64_t> seen_versions_;
  std::vector<sim::ProcessId> pending_replies_;
  sim::PayloadRef snapshot_;
};

class EarsFactory final : public sim::ProtocolFactory {
 public:
  explicit EarsFactory(EarsConfig config = {}) : config_(config) {}
  [[nodiscard]] const char* name() const noexcept override { return "ears"; }
  [[nodiscard]] std::unique_ptr<sim::Protocol> create(
      sim::ProcessId self, const sim::SystemInfo& info) const override;
  [[nodiscard]] std::unique_ptr<sim::ProtocolPlane> create_plane(
      const sim::SystemInfo& info) const override;

 private:
  EarsConfig config_;
};

class SearsFactory final : public sim::ProtocolFactory {
 public:
  explicit SearsFactory(SearsConfig config = {}) : config_(config) {}
  [[nodiscard]] const char* name() const noexcept override { return "sears"; }
  [[nodiscard]] std::unique_ptr<sim::Protocol> create(
      sim::ProcessId self, const sim::SystemInfo& info) const override;
  [[nodiscard]] std::unique_ptr<sim::ProtocolPlane> create_plane(
      const sim::SystemInfo& info) const override;

  /// The SEARS per-step fan-out ceil(c * n^eps * ln n), clamped to
  /// [1, n-1]; exposed for tests and reports.
  [[nodiscard]] static std::uint32_t fanout_for(std::uint32_t n, double c,
                                                double eps);

 private:
  SearsConfig config_;
};

}  // namespace ugf::protocols
