#include "protocols/sequential.hpp"

namespace ugf::protocols {

SequentialProcess::SequentialProcess(sim::ProcessId self,
                                     const sim::SystemInfo& info)
    : self_(self), n_(info.n), known_(info.n) {
  known_.set(self_);
}

void SequentialProcess::on_message(sim::ProcessContext& /*ctx*/,
                                   const sim::Message& msg) {
  if (const auto* gossips = payload_as<GossipSetPayload>(msg))
    known_.or_with(gossips->gossips());
}

void SequentialProcess::on_local_step(sim::ProcessContext& ctx) {
  if (next_offset_ >= n_) return;  // all N-1 sends done; woken for merges only
  if (!own_gossip_) {
    util::DynamicBitset own(n_);
    own.set(self_);
    own_gossip_ = ctx.make_payload<GossipSetPayload>(std::move(own));
  }
  const auto target = static_cast<sim::ProcessId>((self_ + next_offset_) % n_);
  ctx.send(target, own_gossip_);
  ++next_offset_;
}

bool SequentialProcess::wants_sleep() const noexcept {
  return next_offset_ >= n_;
}

bool SequentialProcess::completed() const noexcept { return wants_sleep(); }

bool SequentialProcess::has_gossip_of(sim::ProcessId origin) const noexcept {
  return known_.test(origin);
}

}  // namespace ugf::protocols
