#include "protocols/broadcast_all.hpp"

namespace ugf::protocols {

BroadcastAllProcess::BroadcastAllProcess(sim::ProcessId self,
                                         const sim::SystemInfo& info)
    : self_(self), n_(info.n), known_(info.n) {
  known_.set(self_);
}

void BroadcastAllProcess::on_message(sim::ProcessContext& /*ctx*/,
                                     const sim::Message& msg) {
  if (const auto* gossips = payload_as<GossipSetPayload>(msg))
    known_.or_with(gossips->gossips());
}

void BroadcastAllProcess::on_local_step(sim::ProcessContext& ctx) {
  if (done_) return;
  util::DynamicBitset own(n_);
  own.set(self_);
  const auto payload = ctx.make_payload<GossipSetPayload>(std::move(own));
  for (sim::ProcessId q = 0; q < n_; ++q)
    if (q != self_) ctx.send(q, payload);
  done_ = true;
}

}  // namespace ugf::protocols
