#pragma once

/// \file push_average.hpp
/// Push-sum gossip averaging (after Kempe, Dobra, Gehrke FOCS'03) cast
/// as an all-to-all gossip protocol — the substrate for the paper's
/// §VII collaborative-learning scenario, where UGF models "an
/// adversarial system provider that fights against the design of
/// personalized machine learning models by slowing the network".
///
/// Every process holds a model vector x_i and maintains push-sum mass
/// (s, w), initially (x_i, 1). Per local step it keeps half of (s, w)
/// and sends the other half to one uniformly random peer; merging is
/// addition. The running estimate s/w converges to the average of the
/// surviving contributions. Each message also carries the union of
/// contributing origins, which makes the protocol a bona-fide
/// all-to-all gossip (the "gossip" of process i is its contribution;
/// has_gossip_of(i) == "my estimate incorporates x_i").
///
/// Completion: a process keeps gossiping until (a) it has pushed to at
/// least `min(F + 2, N - 1)` *distinct* targets (in a random order) —
/// at most F processes can ever be crashed, so at least two of those
/// pushes deterministically reach live processes even when Strategy
/// 2.k.0 spends its whole budget crashing this process's receivers —
/// and (b) it has seen no new origin for ceil((N/(N-F)) ln N) local
/// steps. A sleeping process absorbs late (delayed) mass silently, but a
/// delivery carrying a brand-new origin resumes it, so late-breaking
/// contributions keep spreading (rumor gathering holds even under the
/// isolation strategy). A completed process additionally answers a small
/// bounded number of incoming pushes with one push back to the sender:
/// a straggler that is still missing an origin keeps soliciting the
/// (long since completed) rest of the system and receives the missing
/// origin set with the reply; the bounded budget keeps quiescence. Mass
/// stays conserved throughout because a sender always halves its own
/// share regardless of the receiver's state.

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/protocol.hpp"
#include "util/dynamic_bitset.hpp"

namespace ugf::protocols {

/// Push-sum mass in flight.
class MassPayload final : public sim::Payload {
 public:
  static constexpr std::uint32_t kKind = 0x4D415353;  // 'MASS'

  MassPayload(std::vector<double> s, double w, util::DynamicBitset origins)
      : Payload(kKind), s_(std::move(s)), w_(w), origins_(std::move(origins)) {}

  [[nodiscard]] const std::vector<double>& s() const noexcept { return s_; }
  [[nodiscard]] double w() const noexcept { return w_; }
  [[nodiscard]] const util::DynamicBitset& origins() const noexcept {
    return origins_;
  }

 private:
  std::vector<double> s_;
  double w_;
  util::DynamicBitset origins_;
};

struct PushAverageConfig {
  /// Model dimension (each process contributes a vector of this size).
  std::uint32_t dimension = 1;
  /// Silence threshold multiplier (as in EARS). Push-average has no
  /// acknowledgment machinery, so it defaults to a longer window than
  /// EARS to keep origin gathering reliable.
  double silence_multiplier = 2.0;
};

class PushAverageProcess final : public sim::Protocol {
 public:
  PushAverageProcess(sim::ProcessId self, const sim::SystemInfo& info,
                     const PushAverageConfig& config,
                     std::vector<double> initial);

  void on_message(sim::ProcessContext& ctx, const sim::Message& msg) override;
  void on_local_step(sim::ProcessContext& ctx) override;
  [[nodiscard]] bool wants_sleep() const noexcept override;
  [[nodiscard]] bool completed() const noexcept override;
  [[nodiscard]] bool has_gossip_of(
      sim::ProcessId origin) const noexcept override;

  void digest_into(std::uint64_t& h) const noexcept override {
    for (const double v : s_) h = util::mix_seed(h, std::bit_cast<std::uint64_t>(v));
    h = util::mix_seed(h, std::bit_cast<std::uint64_t>(w_));
    h = util::mix_words(h, origins_.words().data(), origins_.words().size());
    h = util::mix_seed(h, sent_);
    h = util::mix_seed(h, silent_steps_);
    h = util::mix_seed(h, (std::uint64_t{news_pending_} << 1) |
                              std::uint64_t{completed_});
    h = util::mix_seed(h, courtesy_budget_);
    h = util::mix_seed(h, reply_to_);
    h = util::mix_seed(h, floor_targets_.size());
    for (const sim::ProcessId p : floor_targets_) h = util::mix_seed(h, p);
  }

  /// Current model estimate s/w (well-defined: w > 0 always).
  [[nodiscard]] std::vector<double> estimate() const;
  [[nodiscard]] double weight() const noexcept { return w_; }
  [[nodiscard]] std::uint64_t min_sends() const noexcept { return min_sends_; }
  [[nodiscard]] std::uint32_t silence_threshold() const noexcept {
    return silence_threshold_;
  }

 private:
  sim::ProcessId self_;
  std::uint32_t n_;
  std::uint64_t min_sends_;
  std::uint32_t silence_threshold_;
  std::vector<double> s_;
  double w_ = 1.0;
  util::DynamicBitset origins_;
  std::uint64_t sent_ = 0;
  std::uint32_t silent_steps_ = 0;
  bool news_pending_ = false;
  bool completed_ = false;
  std::uint32_t courtesy_budget_;          ///< replies left while completed
  sim::ProcessId reply_to_ = sim::kNoProcess;  ///< pending courtesy target
  /// Shuffled distinct targets for the first min_sends_ pushes (lazily
  /// initialised from the process's own random stream).
  std::vector<sim::ProcessId> floor_targets_;
};

/// Factory; initial contributions are produced by a deterministic
/// per-process generator so runs stay a pure function of the seed.
class PushAverageFactory final : public sim::ProtocolFactory {
 public:
  using Initializer =
      std::vector<double> (*)(sim::ProcessId self, std::uint32_t dimension);

  explicit PushAverageFactory(PushAverageConfig config = {},
                              Initializer initializer = nullptr)
      : config_(config), initializer_(initializer) {}

  [[nodiscard]] const char* name() const noexcept override {
    return "push-average";
  }
  [[nodiscard]] std::unique_ptr<sim::Protocol> create(
      sim::ProcessId self, const sim::SystemInfo& info) const override;
  [[nodiscard]] std::unique_ptr<sim::ProtocolPlane> create_plane(
      const sim::SystemInfo& info) const override;

  /// Default contribution: dimension-d vector with entries
  /// (self + 1) * (j + 1), a spread-out deterministic profile whose
  /// exact average is easy to compute in tests.
  static std::vector<double> default_initializer(sim::ProcessId self,
                                                 std::uint32_t dimension);

 private:
  PushAverageConfig config_;
  Initializer initializer_;
};

}  // namespace ugf::protocols
