#pragma once

/// \file broadcast_all.hpp
/// The trivial one-round protocol from §I / §III-A: every process sends
/// its gossip to everyone in its first local step. Constant time,
/// N(N-1) messages — the "logical limit" corner of the time/message
/// trade-off that SEARS approaches, and a useful worst-case fixture.

#include <memory>

#include "protocols/payloads.hpp"
#include "sim/protocol.hpp"
#include "util/dynamic_bitset.hpp"

namespace ugf::protocols {

class BroadcastAllProcess final : public sim::Protocol {
 public:
  BroadcastAllProcess(sim::ProcessId self, const sim::SystemInfo& info);

  void on_message(sim::ProcessContext& ctx, const sim::Message& msg) override;
  void on_local_step(sim::ProcessContext& ctx) override;
  [[nodiscard]] bool wants_sleep() const noexcept override { return done_; }
  [[nodiscard]] bool completed() const noexcept override { return done_; }
  [[nodiscard]] bool has_gossip_of(
      sim::ProcessId origin) const noexcept override {
    return known_.test(origin);
  }
  void digest_into(std::uint64_t& h) const noexcept override {
    h = util::mix_seed(h, std::uint64_t{done_});
    h = util::mix_words(h, known_.words().data(), known_.words().size());
  }

 private:
  sim::ProcessId self_;
  std::uint32_t n_;
  bool done_ = false;
  util::DynamicBitset known_;
};

class BroadcastAllFactory final : public sim::ProtocolFactory {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "broadcast-all";
  }
  [[nodiscard]] std::unique_ptr<sim::Protocol> create(
      sim::ProcessId self, const sim::SystemInfo& info) const override {
    return std::make_unique<BroadcastAllProcess>(self, info);
  }
  [[nodiscard]] std::unique_ptr<sim::ProtocolPlane> create_plane(
      const sim::SystemInfo& info) const override {
    return std::make_unique<sim::VectorPlane<BroadcastAllProcess>>(
        info.n,
        [&info](sim::ProcessId p) { return BroadcastAllProcess(p, info); });
  }
};

}  // namespace ugf::protocols
