// Ablation over the delay parameter tau and the exponent mode
// (Remark 2): the paper's experiments fix tau = F and k = l = 1, but
// Algorithm 1 allows any tau > 1 and draws k, l from 6/(pi^2 k^2). This
// bench compares fixed-exponent UGF at several tau against the fully
// sampled variant (with an exponent cap), showing how the delay
// magnitude trades time damage against message damage.
//
// Flags: --n=100 --fraction=0.3 --runs=24 --csv=ablation_tau.csv

#include <cmath>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "adversary/factory.hpp"
#include "bench/campaign.hpp"
#include "core/ugf.hpp"
#include "protocols/registry.hpp"
#include "runner/monte_carlo.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

namespace {

struct Variant {
  std::string label;
  ugf::core::UgfConfig config;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ugf;
  const util::CliArgs args(argc, argv);
  const auto n = args.get_process_count("n", 100);
  const double fraction = args.get_double("fraction", 0.3);
  const auto runs = static_cast<std::uint32_t>(args.get_uint("runs", 24));
  const auto csv_path = args.out_path("csv", "ablation_tau.csv");

  runner::RunSpec spec;
  spec.n = n;
  spec.f = static_cast<std::uint32_t>(fraction * n);
  spec.runs = runs;
  spec.base_seed = 0x7A0;
  spec.engine_threads = args.get_thread_count("engine-threads", 1);

  const auto f = spec.f;
  const std::vector<std::uint64_t> taus = {
      2, 8, static_cast<std::uint64_t>(std::sqrt(static_cast<double>(f))),
      f, std::uint64_t{2} * f};
  std::vector<Variant> variants;
  for (const std::uint64_t tau : taus) {
    Variant v;
    v.config.tau = tau;
    v.label = "tau=" + std::to_string(tau) + " k=l=1";
    variants.push_back(v);
  }
  for (const std::uint32_t cap : {2u, 4u, 8u}) {
    Variant v;
    v.config.sample_exponents = true;
    v.config.exponent_cap = cap;
    v.label = "tau=F sampled k,l<=" + std::to_string(cap);
    variants.push_back(v);
  }

  bench::CampaignScope campaign(args, "ablation_tau");
  campaign.set_protocol("push-pull,ears");
  campaign.add_adversary(bench::describe_adversary("baseline", "none"));
  for (const auto& variant : variants) {
    core::AdversaryParams params;
    params.ugf = variant.config;
    campaign.add_adversary(
        bench::describe_adversary(variant.label, "ugf", params));
  }
  campaign.add_param("n", bench::format_param(std::uint64_t{n}));
  campaign.add_param("fraction", bench::format_param(fraction));
  campaign.add_param("runs", bench::format_param(std::uint64_t{runs}));
  campaign.add_param("seed", bench::format_param(spec.base_seed));
  campaign.attach(spec, 2 * (1 + variants.size()));

  util::CsvWriter csv(csv_path, {"protocol", "variant", "messages_median",
                                 "messages_q3", "time_median", "time_q3",
                                 "truncated"});
  runner::MonteCarloRunner runner;

  for (const char* protocol_name : {"push-pull", "ears"}) {
    const auto protocol = protocols::make_protocol(protocol_name);
    const adversary::NoAdversaryFactory none;
    const auto baseline = runner.run_batch(spec, *protocol, none);
    std::cout << "== " << protocol_name << " at N=" << n << ", F=" << f
              << " — baseline messages="
              << static_cast<std::uint64_t>(baseline.messages.median)
              << ", time=" << std::fixed << std::setprecision(1)
              << baseline.time.median << " ==\n";
    std::cout << std::left << std::setw(26) << "variant" << std::setw(24)
              << "messages med (q3)" << std::setw(20) << "time med (q3)"
              << "\n";
    for (const auto& variant : variants) {
      const core::UgfFactory factory(variant.config);
      const auto batch = runner.run_batch(spec, *protocol, factory);
      std::ostringstream m, t;
      m << static_cast<std::uint64_t>(batch.messages.median) << " ("
        << static_cast<std::uint64_t>(batch.messages.q3) << ")";
      t << std::fixed << std::setprecision(1) << batch.time.median << " ("
        << batch.time.q3 << ")";
      std::cout << std::setw(26) << variant.label << std::setw(24) << m.str()
                << std::setw(20) << t.str()
                << (batch.truncated > 0
                        ? " truncated=" + std::to_string(batch.truncated)
                        : "")
                << "\n";
      csv.row_values(std::string(protocol_name), variant.label,
                     batch.messages.median, batch.messages.q3,
                     batch.time.median, batch.time.q3,
                     static_cast<std::uint64_t>(batch.truncated));
    }
    std::cout << "\n";
  }
  if (campaign.lineage_enabled()) {
    const auto protocol = protocols::make_protocol("push-pull");
    const core::UgfFactory factory(core::UgfConfig{});
    campaign.export_lineage(spec, *protocol, factory, "push-pull", std::cout);
  }
  if (campaign.digest_enabled()) {
    const auto protocol = protocols::make_protocol("push-pull");
    const auto none = core::make_adversary("none");
    campaign.export_digest(spec, *protocol, *none, "push-pull", std::cout);
  }
  campaign.note_artifact("csv", csv_path);
  campaign.finish(std::cout);
  std::cout << "csv: " << csv_path << "\n"
            << "Expected: small tau weakens the delay strategies (delays "
               "are absorbed by the tau+tau^2 normalization sooner), while "
               "tau ~ F maximizes the damage; sampled exponents spread the "
               "damage across runs (heavier upper quartiles).\n";
  return 0;
}
