#pragma once

/// \file campaign.hpp
/// Campaign observability glue for the bench binaries: one object that
/// owns the metrics registry, the live progress renderer, and the run
/// manifest for a whole figure run, driven by CLI flags every binary
/// shares. The scope is created right after argument parsing, attached
/// to the SweepConfig/RunSpec of each sweep, fed the artifacts the
/// binary writes, and finished once at the end — which stamps the wall
/// time and writes the provenance record (docs/OBSERVABILITY.md).
///
/// Shared flags:
///   --manifest[=PATH|off]  provenance manifest (ugf-manifest-v1; ON by
///                          default, written as <id>.manifest.json under
///                          --out-dir; `--manifest=off` disables it)
///   --metrics[=PATH]       merged metrics snapshot as ugf-metrics-v1
///                          JSON (default <id>.metrics.json)
///   --prom[=PATH]          same snapshot, Prometheus text exposition
///                          (default <id>.prom)
///   --progress[=0|1]       live status line on stderr; default: on iff
///                          stderr is a TTY and $CI is unset
///   --lineage[=PATH|off]   causal lineage of one representative run as
///                          ugf-lineage-v1 NDJSON (default
///                          <id>.lineage.ndjson; see obs/lineage.hpp)
///   --lineage-chrome[=PATH] same run's infection DAG as Chrome
///                          trace_event flow arrows (default
///                          <id>.lineage.chrome.json)
///   --digest[=PATH|off]    per-step subsystem state digests of one
///                          representative run as ugf-digest-v1 NDJSON
///                          (default <id>.digest.ndjson; see
///                          obs/state_digest.hpp and
///                          tools/divergence_bisect.py)
///   --digest-cadence=N     sample every N global steps (default 1; the
///                          final step is always sampled)
///
/// This header also hosts the manifest <-> runner conversions (sweep
/// configs, adversary parameters) that obs cannot provide itself — obs
/// knows nothing about runner or core types — so the manifest
/// round-trip test can rebuild a sweep from a parsed manifest alone.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/adversary_registry.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "runner/monte_carlo.hpp"
#include "runner/sweep.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"

namespace ugf::bench {

/// Exact-round-trip manifest string for a double (shortest %.17g form
/// that parses back bit-for-bit) / an unsigned integer.
[[nodiscard]] std::string format_param(double value);
[[nodiscard]] std::string format_param(std::uint64_t value);

/// Mirrors a SweepConfig into its manifest form. Observability
/// pointers (profiler, metrics, progress) are presentation, not
/// parameters, and are dropped.
[[nodiscard]] obs::ManifestSweep to_manifest_sweep(
    const runner::SweepConfig& config);

/// Inverse of to_manifest_sweep; the pointers stay null and `threads`
/// is restored as recorded (0 = hardware concurrency). Results are
/// thread-count invariant, so replaying with a different pool still
/// reproduces the CSV bit-for-bit.
[[nodiscard]] runner::SweepConfig sweep_from_manifest(
    const obs::ManifestSweep& sweep);

/// Describes a registry adversary for the manifest: records tau/k/l and
/// the UGF probability knobs as exact strings, sorted by key.
[[nodiscard]] obs::ManifestAdversary describe_adversary(
    std::string label, std::string factory,
    const core::AdversaryParams& params = {});

/// Inverse of describe_adversary: reconstructs the numeric parameters
/// so `core::make_adversary(adversary.factory, ...)` rebuilds the
/// factory the manifest describes. Unknown keys throw
/// std::runtime_error — a manifest from a newer writer should fail
/// loudly, not replay subtly wrong.
[[nodiscard]] core::AdversaryParams adversary_params_from(
    const obs::ManifestAdversary& adversary);

/// The per-binary campaign scope. Non-copyable; everything it hands
/// out (registry, renderer) lives exactly as long as the scope, which
/// must therefore outlive every sweep attached to it.
class CampaignScope {
 public:
  CampaignScope(const util::CliArgs& args, std::string figure_id);

  CampaignScope(const CampaignScope&) = delete;
  CampaignScope& operator=(const CampaignScope&) = delete;

  /// Registry to attach to sweeps; nullptr when every campaign output
  /// (manifest, metrics, prom) is disabled, so the engines skip metric
  /// publication entirely.
  [[nodiscard]] obs::MetricsRegistry* metrics() noexcept {
    return registry_enabled_ ? &registry_ : nullptr;
  }

  /// Live renderer; nullptr when the status line is off.
  [[nodiscard]] obs::SweepProgress* progress() noexcept {
    return progress_.enabled() ? &progress_ : nullptr;
  }

  void set_protocol(std::string name) {
    manifest_.protocol = std::move(name);
  }
  void add_adversary(obs::ManifestAdversary adversary) {
    manifest_.adversaries.push_back(std::move(adversary));
  }
  void set_sweep(const runner::SweepConfig& config) {
    manifest_.has_sweep = true;
    manifest_.sweep = to_manifest_sweep(config);
  }
  void add_param(std::string key, std::string value) {
    manifest_.params.emplace_back(std::move(key), std::move(value));
  }
  void note_artifact(std::string kind, std::string path) {
    manifest_.artifacts.emplace_back(std::move(kind), std::move(path));
  }

  /// Attaches registry + renderer to a sweep and plans
  /// `curves * grid * runs` runs so the ETA is meaningful.
  void attach(runner::SweepConfig& config, std::size_t curves);

  /// Same for a flat batch spec; `batches` is how many run_batch calls
  /// the binary will issue with this spec.
  void attach(runner::RunSpec& spec, std::size_t batches = 1);

  /// True when --lineage and/or --lineage-chrome asked for the causal
  /// export, i.e. export_lineage() will actually run something.
  [[nodiscard]] bool lineage_enabled() const noexcept {
    return !lineage_path_.empty() || !lineage_chrome_path_.empty();
  }

  /// Runs run 0 of `spec` once more with an obs::LineageTracker
  /// attached, writes the configured ugf-lineage-v1 / Chrome-flow
  /// artifacts, publishes the lineage metric series into the campaign
  /// registry and prints the paths to `out`. No-op unless
  /// lineage_enabled(). The spec should reproduce a run the figure
  /// actually contains (same seeding discipline as its sweep).
  void export_lineage(const runner::RunSpec& spec,
                      const sim::ProtocolFactory& protocol,
                      const adversary::AdversaryFactory& adversary,
                      const std::string& protocol_name, std::ostream& out);

  /// True when --digest asked for the state-digest export.
  [[nodiscard]] bool digest_enabled() const noexcept {
    return !digest_path_.empty();
  }

  /// Re-executes run 0 of `spec` with an obs::StateDigester attached
  /// and writes the ugf-digest-v1 stream. The engine is constructed
  /// directly (not through the runner) so `spec.engine_threads` drives
  /// the real parallel step path even in checked builds — the digest
  /// stream is the cross-thread determinism witness, so it must come
  /// from whichever loop the thread count selects. Publishes digest.*
  /// metrics into the campaign registry and prints the path to `out`.
  /// No-op unless digest_enabled().
  void export_digest(const runner::RunSpec& spec,
                     const sim::ProtocolFactory& protocol,
                     const adversary::AdversaryFactory& adversary,
                     const std::string& protocol_name, std::ostream& out);

  /// Batch-level progress callback for sweep_figure/sweep_curve: feeds
  /// the live renderer when it is active, otherwise prints the classic
  /// per-grid-point stderr line. See the ProgressFn threading contract
  /// in runner/sweep.hpp — this runs on the sweep thread only.
  [[nodiscard]] runner::ProgressFn progress_fn();

  /// Stops the clock, finalizes the renderer, writes every configured
  /// output (manifest with the merged metrics snapshot, metrics JSON,
  /// Prometheus text) and prints their paths to `out`. Idempotent.
  void finish(std::ostream& out);

 private:
  std::string figure_id_;
  bool registry_enabled_ = false;
  std::string manifest_path_;  ///< empty = disabled
  std::string metrics_path_;   ///< empty = disabled
  std::string prom_path_;      ///< empty = disabled
  std::string lineage_path_;   ///< empty = disabled
  std::string lineage_chrome_path_;  ///< empty = disabled
  std::string digest_path_;    ///< empty = disabled
  std::uint64_t digest_cadence_ = 1;
  obs::MetricsRegistry registry_;
  obs::SweepProgress progress_;
  obs::RunManifest manifest_;
  util::Stopwatch watch_;
  bool finished_ = false;
};

}  // namespace ugf::bench
