// F-sweep (§V-A.1): the paper varies F in {0.1N ... 0.5N} and reports
// that "the higher F, the stronger the adversary" while the main
// takeaway is consistent across F. This bench reproduces that claim:
// for each crash fraction, median UGF-attacked message and time
// complexities (Push-Pull and EARS), against the benign baseline.
//
// Flags: --n-grid=50,100,200  --fracs=0.1,0.2,0.3,0.4,0.5  --runs=20
//        --seed=...           --csv=fsweep.csv

#include <iostream>
#include <sstream>

#include "bench/campaign.hpp"
#include "core/adversary_registry.hpp"
#include "protocols/registry.hpp"
#include "runner/report.hpp"
#include "runner/sweep.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

template <typename T>
std::string join_list(const std::vector<T>& values) {
  std::ostringstream out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out << ",";
    out << values[i];
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ugf;
  const util::CliArgs args(argc, argv);
  std::vector<std::uint32_t> grid;
  for (const auto n : args.get_uint_list("n-grid", {50, 100, 200}))
    grid.push_back(static_cast<std::uint32_t>(n));
  const auto fracs =
      args.get_double_list("fracs", {0.1, 0.2, 0.3, 0.4, 0.5});
  const auto runs = static_cast<std::uint32_t>(args.get_uint("runs", 20));
  const auto seed = args.get_uint("seed", 0xF5EEull);
  const auto csv_path = args.out_path("csv", "fsweep.csv");

  bench::CampaignScope campaign(args, "fsweep");
  campaign.set_protocol("push-pull,ears");
  campaign.add_adversary(bench::describe_adversary("baseline", "none"));
  campaign.add_adversary(bench::describe_adversary("ugf", "ugf"));
  campaign.add_param("n-grid", join_list(grid));
  campaign.add_param("fracs", join_list(fracs));
  campaign.add_param("runs", bench::format_param(std::uint64_t{runs}));
  campaign.add_param("seed", bench::format_param(seed));

  std::cout << "F-sweep: UGF strength as a function of the crash budget\n"
            << "runs=" << runs << " per point; values are medians\n\n";

  util::CsvWriter csv(csv_path,
                      {"protocol", "f_fraction", "n", "f", "adversary",
                       "messages_median", "time_median"});
  util::Stopwatch watch;

  for (const char* protocol_name : {"push-pull", "ears"}) {
    const auto protocol = protocols::make_protocol(protocol_name);
    std::cout << "== " << protocol_name << " ==\n";
    std::cout << "frac   ";
    for (const auto n : grid) std::cout << "N=" << n << " msgs/time        ";
    std::cout << "\n";
    for (const double frac : fracs) {
      runner::SweepConfig config;
      config.grid = grid;
      config.f_fraction = frac;
      config.runs = runs;
      config.base_seed = seed;
      campaign.attach(config, 2);
      const auto none = core::make_adversary("none");
      const auto ugf = core::make_adversary("ugf");
      const auto baseline =
          runner::sweep_curve(config, *protocol, *none, "baseline");
      const auto attacked = runner::sweep_curve(config, *protocol, *ugf, "ugf");
      std::cout << frac << "    ";
      for (std::size_t i = 0; i < attacked.points.size(); ++i) {
        const auto& p = attacked.points[i];
        std::cout << static_cast<std::uint64_t>(p.messages.median) << "/"
                  << static_cast<std::uint64_t>(p.time.median) << " (base "
                  << static_cast<std::uint64_t>(
                         baseline.points[i].messages.median)
                  << "/"
                  << static_cast<std::uint64_t>(baseline.points[i].time.median)
                  << ")   ";
        csv.row_values(std::string(protocol_name), frac, std::uint64_t{p.n},
                       std::uint64_t{p.f}, std::string("ugf"),
                       p.messages.median, p.time.median);
        csv.row_values(std::string(protocol_name), frac, std::uint64_t{p.n},
                       std::uint64_t{p.f}, std::string("none"),
                       baseline.points[i].messages.median,
                       baseline.points[i].time.median);
      }
      std::cout << "\n";
    }
    std::cout << "\n";
  }
  if (campaign.lineage_enabled()) {
    const auto protocol = protocols::make_protocol("push-pull");
    const auto ugf = core::make_adversary("ugf");
    runner::RunSpec one;
    one.n = grid.front();
    one.f = runner::f_for(one.n, fracs.front());
    one.base_seed = util::mix_seed(seed, one.n);
    campaign.export_lineage(one, *protocol, *ugf, "push-pull", std::cout);
  }
  if (campaign.digest_enabled()) {
    const auto protocol = protocols::make_protocol("push-pull");
    const auto none = core::make_adversary("none");
    runner::RunSpec one;
    one.n = grid.front();
    one.f = runner::f_for(one.n, fracs.front());
    one.base_seed = util::mix_seed(seed, one.n);
    campaign.export_digest(one, *protocol, *none, "push-pull", std::cout);
  }
  campaign.note_artifact("csv", csv_path);
  campaign.finish(std::cout);
  std::cout << "csv: " << csv_path << "  (" << watch.seconds() << "s)\n"
            << "\nExpected reading: attacked medians grow with the crash "
               "fraction at every N, while the baseline is flat in F — the "
               "paper's 'higher F, stronger adversary'.\n";
  return 0;
}
