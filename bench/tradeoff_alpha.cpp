// Theorem-1 trade-off check: for every integer alpha, UGF forces
//   E[T] >= time_envelope(alpha)  OR  E[M] >= message_envelope(alpha)
// with the explicit constants of the proof (Parts 1, 2.a, 2.b). This
// bench measures E[T] and E[M] for each protocol under UGF and verifies
// the disjunction along an alpha ladder — the empirical counterpart of
// the paper's headline result, including the alpha = 1 / tau = F corner
// that recovers Georgiou et al. (PODC'08).
//
// Flags: --n=200 --fraction=0.3 --runs=30 --alphas=1,2,4,8,16
//        --csv=tradeoff_alpha.csv

#include <iomanip>
#include <iostream>

#include "bench/campaign.hpp"
#include "core/adversary_registry.hpp"
#include "core/theory.hpp"
#include "protocols/registry.hpp"
#include "runner/monte_carlo.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace ugf;
  namespace theory = core::theory;
  const util::CliArgs args(argc, argv);
  const auto n = args.get_process_count("n", 200);
  const double fraction = args.get_double("fraction", 0.3);
  const auto runs = static_cast<std::uint32_t>(args.get_uint("runs", 30));
  const auto alphas = args.get_uint_list("alphas", {1, 2, 4, 8, 16});
  const auto csv_path = args.out_path("csv", "tradeoff_alpha.csv");

  const auto f = static_cast<std::uint32_t>(fraction * n);
  const std::uint64_t tau = f;  // the paper's instantiation
  const double q1 = 1.0 / 3.0, q2 = 0.5;

  std::cout << "Theorem 1 empirical check: N=" << n << ", F=" << f
            << ", tau=F, " << runs << " UGF runs per protocol\n"
            << "For every alpha the attacked protocol must beat at least "
               "one envelope (time OR messages).\n\n";

  util::CsvWriter csv(csv_path,
                      {"protocol", "alpha", "mean_time", "mean_messages",
                       "time_bound", "message_bound", "satisfied"});

  runner::MonteCarloRunner runner;
  const auto ugf_factory = core::make_adversary("ugf");
  bool all_ok = true;

  const auto protocol_names = protocols::protocol_names();
  bench::CampaignScope campaign(args, "tradeoff_alpha");
  {
    std::string joined;
    for (const auto& name : protocol_names)
      joined += (joined.empty() ? "" : ",") + name;
    campaign.set_protocol(joined);
  }
  campaign.add_adversary(bench::describe_adversary("ugf", "ugf"));
  campaign.add_param("n", bench::format_param(std::uint64_t{n}));
  campaign.add_param("fraction", bench::format_param(fraction));
  campaign.add_param("runs", bench::format_param(std::uint64_t{runs}));
  campaign.add_param("seed", bench::format_param(std::uint64_t{0xA1FA}));
  {
    std::string joined;
    for (const auto alpha : alphas)
      joined += (joined.empty() ? "" : ",") + std::to_string(alpha);
    campaign.add_param("alphas", joined);
  }

  for (const auto& protocol_name : protocol_names) {
    const auto protocol = protocols::make_protocol(protocol_name);
    runner::RunSpec spec;
    spec.n = n;
    spec.f = f;
    spec.runs = runs;
    spec.base_seed = 0xA1FA;
    spec.engine_threads = args.get_thread_count("engine-threads", 1);
    campaign.attach(spec);
    const auto batch = runner.run_batch(spec, *protocol, *ugf_factory);
    const double mean_time = batch.time.mean;
    const double mean_messages = batch.messages.mean;

    std::cout << "== " << protocol_name << ": E[T]=" << std::fixed
              << std::setprecision(1) << mean_time
              << ", E[M]=" << std::setprecision(0) << mean_messages << "\n";
    std::cout << std::left << std::setw(8) << "alpha" << std::setw(14)
              << "T bound" << std::setw(16) << "M bound" << std::setw(10)
              << "holds?" << "\n";
    for (const auto alpha_u64 : alphas) {
      const auto alpha = static_cast<std::uint32_t>(alpha_u64);
      const double tb = theory::time_envelope(q1, q2, alpha, f);
      const double mb = theory::message_envelope(q1, q2, tau, alpha, n, f);
      const bool ok = (mean_time >= tb) || (mean_messages >= mb);
      all_ok &= ok;
      std::cout << std::setw(8) << alpha << std::setw(14)
                << std::setprecision(1) << tb << std::setw(16)
                << std::setprecision(0) << mb << std::setw(10)
                << (ok ? "yes" : "NO") << "\n";
      csv.row_values(std::string(protocol->name()),
                     std::uint64_t{alpha}, mean_time, mean_messages, tb, mb,
                     std::string(ok ? "yes" : "no"));
    }
    std::cout << "\n";
  }

  if (campaign.lineage_enabled()) {
    const auto protocol = protocols::make_protocol(protocol_names.front());
    runner::RunSpec one;
    one.n = n;
    one.f = f;
    one.base_seed = 0xA1FA;
    campaign.export_lineage(one, *protocol, *ugf_factory,
                            protocol_names.front(), std::cout);
  }
  if (campaign.digest_enabled()) {
    const auto protocol = protocols::make_protocol(protocol_names.front());
    const auto none = core::make_adversary("none");
    runner::RunSpec one;
    one.n = n;
    one.f = f;
    one.base_seed = 0xA1FA;
    campaign.export_digest(one, *protocol, *none, protocol_names.front(),
                           std::cout);
  }
  campaign.note_artifact("csv", csv_path);
  campaign.finish(std::cout);
  std::cout << "csv: " << csv_path << "\n"
            << (all_ok ? "All protocols satisfy the Theorem-1 disjunction "
                         "at every alpha.\n"
                       : "WARNING: some (protocol, alpha) cell violated the "
                         "envelope — inspect the table above.\n");
  return all_ok ? 0 : 1;
}
