// Observability overhead micro-bench and baseline emitter.
//
// Measures the engine's step-loop cost (ns per executed local step,
// push-pull, benign, fixed N) in six configurations:
//
//   detached   no sink, no profiler — the default everyone pays
//   counting   obs::CountingSink attached (virtual call per event)
//   recording  obs::EventRecorder attached (call + vector append)
//   profiled   obs::PhaseProfiler attached, no sink
//   metrics    obs::MetricsRegistry attached (one publication per run)
//   lineage    obs::LineageTracker attached (online DAG + finalize)
//
// plus a state-digest block (obs::StateDigester attached compute-only
// at cadence 1 and 64 — the cadence-64 cost gates via bench_delta.py;
// digest-off is the detached rows, a single untaken branch).
//
// The configurations run interleaved with identical seeds (paired
// comparison), repeated --reps times; medians are reported, printed as
// a table and optionally written as JSON (--json=BENCH_baseline.json).
// `--reference=NS` embeds an externally measured pre-observability
// baseline (ns/step) so the JSON records the "disabled observability
// is free" claim against the commit that had no gates at all.
//
// `--check` turns the binary into a perf smoke test: it exits non-zero
// when the attached-counting-sink overhead over detached exceeds
// --max-overhead percent. The detached configuration's own overhead
// (the untaken branches) is strictly smaller than that, so the check
// bounds both. Registered in ctest with a generous margin — CI boxes
// are noisy; the committed BENCH_baseline.json holds the honest local
// numbers.

#include <algorithm>
#include <cmath>
#include <exception>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include <thread>

#include "obs/event.hpp"
#include "obs/lineage.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/state_digest.hpp"
#include "protocols/push_pull.hpp"
#include "protocols/push_pull_counting.hpp"
#include "reference_heap.hpp"
#include "sim/engine.hpp"
#include "sim/timing_wheel.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace ugf;

struct Sample {
  double ns_per_step = 0.0;
  std::uint64_t steps = 0;
  std::uint64_t messages = 0;
  std::uint64_t events = 0;  ///< observed events (attached variants)
};

/// Per-run sink ownership for `measure`: detached/shared sink, a fresh
/// EventRecorder per run, or a fresh LineageTracker per run (the shape
/// `--lineage` uses: build the DAG online, then finalize()).
enum class Attach { kShared, kFreshRecorder, kFreshLineage };

/// One timed pass: `runs` benign push-pull runs at size n, seeds
/// base_seed..base_seed+runs-1, with the given sink/profiler attached.
Sample measure(std::uint32_t n, std::uint32_t runs, std::uint64_t base_seed,
               obs::EventSink* sink, obs::PhaseProfiler* profiler,
               Attach attach = Attach::kShared,
               obs::MetricsRegistry* metrics = nullptr) {
  protocols::PushPullFactory factory;
  Sample sample;
  util::Stopwatch watch;
  for (std::uint32_t i = 0; i < runs; ++i) {
    obs::EventRecorder recorder;
    obs::LineageTracker tracker;
    sim::EngineConfig cfg;
    cfg.n = n;
    cfg.f = n * 3 / 10;
    cfg.seed = base_seed + i;
    cfg.sink = attach == Attach::kFreshRecorder  ? &recorder
               : attach == Attach::kFreshLineage ? static_cast<obs::EventSink*>(
                                                       &tracker)
                                                 : sink;
    cfg.profiler = profiler;
    cfg.metrics = metrics;
    sim::Engine engine(cfg, factory, nullptr);
    const auto out = engine.run();
    if (attach == Attach::kFreshLineage) tracker.finalize();
    sample.steps += out.local_steps_executed;
    sample.messages += out.total_messages;
    if (attach == Attach::kFreshRecorder) sample.events += recorder.size();
  }
  sample.ns_per_step = watch.seconds() * 1e9 /
                       static_cast<double>(std::max<std::uint64_t>(1, sample.steps));
  return sample;
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t m = xs.size() / 2;
  return xs.size() % 2 == 1 ? xs[m] : 0.5 * (xs[m - 1] + xs[m]);
}

/// Cold-vs-warm engine pass: `runs` benign push-pull runs, either
/// constructing a fresh engine per run (cold — what the runner did
/// before engine reuse) or reset()ing one warm engine (steady state of
/// a Monte-Carlo worker's batch share). Small n on purpose: that's the
/// construction-heavy regime (the Fig. 3 sweeps start at N = 10) where
/// the per-run setup tax is visible next to the step loop; at large n
/// the step loop dominates and the two paths converge.
Sample measure_engine(bool warm, std::uint32_t n, std::uint32_t runs,
                      std::uint64_t base_seed) {
  protocols::PushPullFactory factory;
  Sample sample;
  sim::EngineConfig cfg;
  cfg.n = n;
  cfg.f = n * 3 / 10;
  cfg.seed = base_seed;
  sim::Engine reused(cfg, factory, nullptr);
  if (warm) (void)reused.run();  // pre-grow capacity (untimed)
  util::Stopwatch watch;
  for (std::uint32_t i = 0; i < runs; ++i) {
    cfg.seed = base_seed + i;
    if (warm) {
      reused.reset(cfg, nullptr);
      const auto out = reused.run();
      sample.steps += out.local_steps_executed;
      sample.messages += out.total_messages;
    } else {
      sim::Engine engine(cfg, factory, nullptr);
      const auto out = engine.run();
      sample.steps += out.local_steps_executed;
      sample.messages += out.total_messages;
    }
  }
  sample.ns_per_step =
      watch.seconds() * 1e9 /
      static_cast<double>(std::max<std::uint64_t>(1, sample.steps));
  return sample;
}

struct SoaSample {
  double ns_per_step = 0.0;
  std::uint64_t bytes_per_process = 0;
};

/// SoA engine-core pass: `runs` benign counting push-pull runs (O(1)
/// protocol state per process) at size n against one warm engine, with
/// a metrics registry attached. Reports ns/step plus the published
/// "engine.table.bytes_per_process" gauge — the two numbers the
/// million-process envelope is guarded by (bench/perf_scale.cpp runs
/// the full sweep; this block pins the mid-size point in the baseline).
SoaSample measure_soa(std::uint32_t n, std::uint32_t runs,
                      std::uint64_t base_seed) {
  protocols::PushPullCountingFactory factory;
  obs::MetricsRegistry registry;
  SoaSample sample;
  std::uint64_t steps = 0;
  sim::EngineConfig cfg;
  cfg.n = n;
  cfg.f = 0;
  cfg.seed = base_seed;
  cfg.metrics = &registry;
  sim::Engine engine(cfg, factory, nullptr);
  (void)engine.run();  // pre-grow capacity (untimed)
  util::Stopwatch watch;
  for (std::uint32_t i = 0; i < runs; ++i) {
    cfg.seed = base_seed + 1 + i;
    engine.reset(cfg, nullptr);
    steps += engine.run().local_steps_executed;
  }
  sample.ns_per_step =
      watch.seconds() * 1e9 /
      static_cast<double>(std::max<std::uint64_t>(1, steps));
  const auto snap = registry.snapshot();
  if (const auto* gauge = snap.find_gauge("engine.table.bytes_per_process"))
    sample.bytes_per_process = gauge->value;
  return sample;
}

struct ParallelSample {
  double speedup_x = 0.0;
  double merge_ns_per_step = 0.0;
};

/// Partitioned-executor pass: paired serial vs parallel wall time on
/// one warm engine (counting push-pull, benign, f=0, identical seeds).
/// `speedup_x` is serial/parallel wall time — on a box with fewer
/// hardware threads than `threads` it honestly lands at or below 1.0;
/// the committed baseline records whatever this machine can do, and
/// bench/perf_parallel.cpp holds the hard >=2x gate (with a skip on
/// starved boxes). `merge_ns_per_step` is the coordinator's seq-ordered
/// merge cost (engine.parallel.merge_ns counter over executed local
/// steps) — the serial fraction that bounds scaling, so it gates like
/// any other hot-path cost.
ParallelSample measure_parallel(std::uint32_t n, std::uint32_t runs,
                                std::uint32_t threads,
                                std::uint64_t base_seed) {
  protocols::PushPullCountingFactory factory;
  ParallelSample sample;
  sim::EngineConfig serial_cfg;
  serial_cfg.n = n;
  serial_cfg.f = 0;
  serial_cfg.seed = base_seed;
  sim::EngineConfig wide_cfg = serial_cfg;
  wide_cfg.intra_run_threads = threads;
  obs::MetricsRegistry registry;
  wide_cfg.metrics = &registry;
  sim::Engine engine(serial_cfg, factory, nullptr);
  (void)engine.run();  // pre-grow serial capacity (untimed)
  engine.reset(wide_cfg, nullptr);
  (void)engine.run();  // pre-grow shard geometry + worker arenas (untimed)
  const std::uint64_t warm_merge_ns = [&registry] {
    const auto snap = registry.snapshot();
    const auto* c = snap.find_counter("engine.parallel.merge_ns");
    return c != nullptr ? c->value : 0ull;
  }();

  util::Stopwatch serial_watch;
  for (std::uint32_t i = 0; i < runs; ++i) {
    serial_cfg.seed = base_seed + 1 + i;
    engine.reset(serial_cfg, nullptr);
    (void)engine.run();
  }
  const double serial_s = serial_watch.seconds();

  std::uint64_t parallel_steps = 0;
  util::Stopwatch parallel_watch;
  for (std::uint32_t i = 0; i < runs; ++i) {
    wide_cfg.seed = base_seed + 1 + i;
    engine.reset(wide_cfg, nullptr);
    parallel_steps += engine.run().local_steps_executed;
  }
  const double parallel_s = parallel_watch.seconds();

  sample.speedup_x = serial_s / std::max(1e-12, parallel_s);
  const auto snap = registry.snapshot();
  if (const auto* c = snap.find_counter("engine.parallel.merge_ns"))
    sample.merge_ns_per_step =
        static_cast<double>(c->value - warm_merge_ns) /
        static_cast<double>(std::max<std::uint64_t>(1, parallel_steps));
  return sample;
}

/// State-digest probe pass: `runs` benign push-pull runs with one
/// compute-only obs::StateDigester attached at the given cadence (the
/// digester is reset per run by Engine::run, so reuse is free). The
/// digest-off cost is the detached rows above: EngineConfig::digester
/// defaults to nullptr and the sampling guard is one pointer compare.
Sample measure_digest(std::uint32_t n, std::uint32_t runs,
                      std::uint64_t base_seed, std::uint64_t cadence) {
  protocols::PushPullFactory factory;
  obs::StateDigester digester({cadence});
  Sample sample;
  util::Stopwatch watch;
  for (std::uint32_t i = 0; i < runs; ++i) {
    sim::EngineConfig cfg;
    cfg.n = n;
    cfg.f = n * 3 / 10;
    cfg.seed = base_seed + i;
    cfg.digester = &digester;
    sim::Engine engine(cfg, factory, nullptr);
    const auto out = engine.run();
    sample.steps += out.local_steps_executed;
    sample.messages += out.total_messages;
  }
  sample.ns_per_step =
      watch.seconds() * 1e9 /
      static_cast<double>(std::max<std::uint64_t>(1, sample.steps));
  return sample;
}

/// Steady-state scheduler cost (ns per pop+push cycle) with `inflight`
/// events pending and uniform delays up to `horizon` steps ahead of the
/// popped event — the schedule shape Strategy 2.k.l produces, where a
/// delivery can be pushed out by up to tau^(k+l) <= F^2 steps. Both
/// scheduler types see the identical event sequence (same Rng seed), so
/// the ratio isolates the data structure.
template <typename Scheduler>
double measure_scheduler(std::uint64_t horizon, std::uint64_t inflight,
                         std::uint64_t ops) {
  Scheduler sched;
  util::Rng rng(0xD15EA5Eull);
  std::uint64_t seq = 0;
  for (std::uint64_t i = 0; i < inflight; ++i)
    sched.push(sim::ScheduledEvent{1 + rng.below(horizon), seq++, 0, 0, 0});
  util::Stopwatch watch;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const sim::ScheduledEvent ev = sched.pop();
    sched.push(
        sim::ScheduledEvent{ev.step + 1 + rng.below(horizon), seq++, 0, 0, 0});
  }
  const double ns = watch.seconds() * 1e9 / static_cast<double>(ops);
  while (!sched.empty()) (void)sched.pop();
  return ns;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::CliArgs args(argc, argv);
    const auto n = args.get_process_count("n", 100);
    const auto runs = static_cast<std::uint32_t>(args.get_uint("runs", 30));
    const auto reps = static_cast<std::uint32_t>(args.get_uint("reps", 5));
    const std::uint64_t seed = args.get_uint("seed", 0x0B5EED5ull);
    const std::string json_path = args.get_string("json", "");
    const bool check = args.get_bool("check", false);
    const double max_overhead = args.get_double("max-overhead", 5.0);
    const double reference = args.get_double("reference", 0.0);
    const auto engine_n =
        static_cast<std::uint32_t>(args.get_uint("engine-n", 12));
    const auto engine_runs =
        static_cast<std::uint32_t>(args.get_uint("engine-runs", 400));
    const auto large_n =
        static_cast<std::uint32_t>(args.get_uint("large-n", 1000));
    const auto large_runs =
        static_cast<std::uint32_t>(args.get_uint("large-runs", 5));
    const auto soa_n = args.get_process_count("soa-n", 10'000);
    const auto soa_runs =
        static_cast<std::uint32_t>(args.get_uint("soa-runs", 3));
    const auto par_n = args.get_process_count("par-n", 10'000);
    const auto par_runs =
        static_cast<std::uint32_t>(args.get_uint("par-runs", 3));
    const auto par_threads = args.get_thread_count("par-threads", 4);
    const std::uint64_t sched_horizon =
        args.get_uint("sched-horizon", 1'000'000);
    const std::uint64_t sched_inflight =
        args.get_uint("sched-inflight", 100'000);
    const std::uint64_t sched_ops = args.get_uint("sched-ops", 2'000'000);

    obs::CountingSink counting;
    obs::PhaseProfiler profiler;
    obs::MetricsRegistry registry;

    // Warmup (untimed): plain runs only, so the pristine block below
    // sees a process the pre-observability baseline could have seen.
    (void)measure(n, std::max(1u, runs / 4), seed, nullptr, nullptr);

    // Pristine block: detached cost measured before any attached
    // variant has run. The recording passes grow the allocator by tens
    // of MB; interleaved detached passes after them are systematically
    // slower, which would smear the "disabled observability is free"
    // number the --reference comparison is about.
    std::vector<double> pristine;
    std::uint64_t steps = 0, messages = 0, events = 0;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      const Sample d = measure(n, runs, seed, nullptr, nullptr);
      pristine.push_back(d.ns_per_step);
      steps = d.steps;
      messages = d.messages;
    }

    // Paired block: attached variants interleaved with fresh detached
    // passes under identical seeds; overheads are relative within this
    // (hotter) process state.
    std::vector<double> detached, with_counting, with_recording, with_profiler,
        with_metrics, with_lineage;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      const Sample d = measure(n, runs, seed, nullptr, nullptr);
      const Sample c = measure(n, runs, seed, &counting, nullptr);
      const Sample r =
          measure(n, runs, seed, nullptr, nullptr, Attach::kFreshRecorder);
      const Sample p = measure(n, runs, seed, nullptr, &profiler);
      // Metrics registry attached: the engine publishes counters and
      // gauges once per finished run, never per event, so this must
      // sit within noise of detached (the "enabled <2%" claim).
      const Sample g = measure(n, runs, seed, nullptr, nullptr,
                               Attach::kShared, &registry);
      // Lineage tracker attached: per-event DAG fold plus a per-run
      // finalize() (critical path + attribution) — the cost `--lineage`
      // pays on its single presentation run.
      const Sample l =
          measure(n, runs, seed, nullptr, nullptr, Attach::kFreshLineage);
      detached.push_back(d.ns_per_step);
      with_counting.push_back(c.ns_per_step);
      with_recording.push_back(r.ns_per_step);
      with_profiler.push_back(p.ns_per_step);
      with_metrics.push_back(g.ns_per_step);
      with_lineage.push_back(l.ns_per_step);
      events = r.events;
    }

    // Cold-vs-warm engine block (paired, identical seeds): the
    // steady-state win of Engine::reset over per-run construction.
    std::vector<double> engine_cold, engine_warm;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      engine_cold.push_back(
          measure_engine(false, engine_n, engine_runs, seed).ns_per_step);
      engine_warm.push_back(
          measure_engine(true, engine_n, engine_runs, seed).ns_per_step);
    }

    // Large-N detached block: the regime the timing wheel targets —
    // once thousands of events are in flight, scheduler pops and inbox
    // scans dominate the step loop, not protocol logic.
    std::vector<double> large_detached;
    std::uint64_t large_steps = 0;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      const Sample d = measure(large_n, large_runs, seed, nullptr, nullptr);
      large_detached.push_back(d.ns_per_step);
      large_steps = d.steps;
    }

    // SoA block: warm engine, counting push-pull (O(1) protocol state)
    // — the step-loop and bytes/process figures of the refactored
    // process table at a size where table/pool traffic dominates.
    std::vector<double> soa_ns;
    std::uint64_t soa_bytes = 0;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      const SoaSample s = measure_soa(soa_n, soa_runs, seed);
      soa_ns.push_back(s.ns_per_step);
      soa_bytes = s.bytes_per_process;
    }

    // Parallel block: partitioned step execution vs serial on the same
    // warm engine — the speedup this box delivers plus the merge cost
    // the coordinator pays per step (the serial fraction of the design).
    std::vector<double> par_speedup, par_merge;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      const ParallelSample s =
          measure_parallel(par_n, par_runs, par_threads, seed);
      par_speedup.push_back(s.speedup_x);
      par_merge.push_back(s.merge_ns_per_step);
    }

    // Digest block: state-digest probe attached (compute-only) at
    // cadence 1 (every completed global step) and 64 (the relaxed
    // monitoring cadence the baseline gate records). Digest-off is the
    // detached rows above — a null digester costs one untaken branch.
    std::vector<double> digest_c1, digest_c64;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      digest_c1.push_back(measure_digest(n, runs, seed, 1).ns_per_step);
      digest_c64.push_back(measure_digest(n, runs, seed, 64).ns_per_step);
    }

    // Scheduler block: pop+push steady state at a Strategy-2.k.l
    // horizon, timing wheel vs the pre-wheel binary heap
    // (bench/reference_heap.hpp), identical event sequences.
    std::vector<double> sched_wheel, sched_heap;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      sched_wheel.push_back(measure_scheduler<sim::TimingWheel>(
          sched_horizon, sched_inflight, sched_ops));
      sched_heap.push_back(measure_scheduler<bench::ReferenceEventHeap>(
          sched_horizon, sched_inflight, sched_ops));
    }

    const double pristine_med = median(pristine);
    const double d_med = median(detached);
    const double c_med = median(with_counting);
    const double r_med = median(with_recording);
    const double p_med = median(with_profiler);
    const double g_med = median(with_metrics);
    const double l_med = median(with_lineage);
    const double counting_overhead = (c_med - d_med) / d_med * 100.0;
    const double recording_overhead = (r_med - d_med) / d_med * 100.0;
    const double profiler_overhead = (p_med - d_med) / d_med * 100.0;
    const double metrics_overhead = (g_med - d_med) / d_med * 100.0;
    const double lineage_overhead = (l_med - d_med) / d_med * 100.0;
    const double reference_overhead =
        reference > 0.0 ? (pristine_med - reference) / reference * 100.0 : 0.0;
    const double cold_med = median(engine_cold);
    const double warm_med = median(engine_warm);
    /// Step-loop throughput gain of the warm engine over the cold path.
    const double warm_speedup = (cold_med / warm_med - 1.0) * 100.0;
    const double large_med = median(large_detached);
    const double soa_med = median(soa_ns);
    const double par_speedup_med = median(par_speedup);
    const double par_merge_med = median(par_merge);
    const double digest1_med = median(digest_c1);
    const double digest64_med = median(digest_c64);
    const double digest1_overhead = (digest1_med - d_med) / d_med * 100.0;
    const double digest64_overhead = (digest64_med - d_med) / d_med * 100.0;
    const std::uint64_t hardware_threads =
        std::max(1u, std::thread::hardware_concurrency());
    const double wheel_med = median(sched_wheel);
    const double heap_med = median(sched_heap);
    /// Wheel cost relative to the heap; negative means the wheel wins.
    const double wheel_vs_heap =
        (wheel_med - heap_med) / heap_med * 100.0;

    std::cout << "micro_obs: push-pull benign, n=" << n << ", f=" << n * 3 / 10
              << ", " << runs << " runs x " << reps << " reps ("
              << steps << " steps, " << messages << " msgs, " << events
              << " events per pass)\n";
    const auto row = [](const char* label, double ns, double overhead) {
      std::cout << "  " << std::left << std::setw(22) << label << std::right
                << std::fixed << std::setprecision(1) << std::setw(9) << ns
                << " ns/step   " << std::showpos << std::setprecision(2)
                << overhead << "%" << std::noshowpos << "\n";
    };
    row("detached (pristine)", pristine_med, 0.0);
    row("detached (paired)", d_med, 0.0);
    row("counting sink", c_med, counting_overhead);
    row("event recorder", r_med, recording_overhead);
    row("phase profiler", p_med, profiler_overhead);
    row("metrics registry", g_med, metrics_overhead);
    row("lineage tracker", l_med, lineage_overhead);
    if (reference > 0.0)
      row("pristine vs reference", reference, reference_overhead);
    std::cout << "engine reuse: push-pull benign, n=" << engine_n << ", "
              << engine_runs << " runs x " << reps << " reps\n";
    row("cold engine per run", cold_med, 0.0);
    row("warm engine (reset)", warm_med, 0.0);
    std::cout << "  warm speedup          " << std::fixed
              << std::setprecision(2) << std::showpos << warm_speedup
              << "%" << std::noshowpos << " step-loop throughput\n";
    std::cout << "large-N detached: push-pull benign, n=" << large_n << ", f="
              << large_n * 3 / 10 << ", " << large_runs << " runs x " << reps
              << " reps (" << large_steps << " steps per pass)\n";
    row("detached large-N", large_med, 0.0);
    std::cout << "SoA engine core: push-pull-counting benign, n=" << soa_n
              << ", f=0, " << soa_runs << " runs x " << reps << " reps\n";
    row("soa warm engine", soa_med, 0.0);
    std::cout << "  bytes/process         " << std::setw(9) << soa_bytes
              << " (engine.table.bytes_per_process gauge)\n";
    std::cout << "parallel step execution: push-pull-counting benign, n="
              << par_n << ", f=0, " << par_threads << " threads, "
              << par_runs << " runs x " << reps << " reps\n";
    std::cout << "  speedup vs serial     " << std::setw(9) << std::fixed
              << std::setprecision(2) << par_speedup_med << " x\n";
    std::cout << "  merge cost            " << std::setw(9)
              << std::setprecision(1) << par_merge_med
              << " ns/step (engine.parallel.merge_ns counter)\n";
    std::cout << "state-digest probe: push-pull benign, n=" << n << ", f="
              << n * 3 / 10 << ", " << runs << " runs x " << reps
              << " reps (overhead vs detached paired)\n";
    row("digest cadence 1", digest1_med, digest1_overhead);
    row("digest cadence 64", digest64_med, digest64_overhead);
    std::cout << "scheduler steady state: " << sched_inflight
              << " in-flight, horizon " << sched_horizon << " steps, "
              << sched_ops << " pop+push ops x " << reps << " reps\n";
    const auto sched_row = [](const char* label, double ns, double pct) {
      std::cout << "  " << std::left << std::setw(22) << label << std::right
                << std::fixed << std::setprecision(1) << std::setw(9) << ns
                << " ns/op     " << std::showpos << std::setprecision(2)
                << pct << "%" << std::noshowpos << "\n";
    };
    sched_row("timing wheel", wheel_med, wheel_vs_heap);
    sched_row("binary heap (ref)", heap_med, 0.0);

    if (!json_path.empty()) {
      util::JsonWriter json;
      json.begin_object()
          .member("schema", "ugf-bench-baseline-v1")
          .member("benchmark", "micro_obs")
          .member("protocol", "push-pull")
          .member("n", n)
          .member("runs", runs)
          .member("reps", reps)
          .member("seed", seed)
          .member("steps_per_pass", steps)
          .member("messages_per_pass", messages)
          .member("events_per_pass", events)
          .member("detached_pristine_ns_per_step", pristine_med)
          .member("detached_paired_ns_per_step", d_med)
          .member("counting_sink_ns_per_step", c_med)
          .member("event_recorder_ns_per_step", r_med)
          .member("phase_profiler_ns_per_step", p_med)
          .member("metrics_registry_ns_per_step", g_med)
          .member("lineage_tracker_ns_per_step", l_med)
          .member("counting_overhead_pct", counting_overhead)
          .member("recording_overhead_pct", recording_overhead)
          .member("profiler_overhead_pct", profiler_overhead)
          .member("metrics_overhead_pct", metrics_overhead)
          .member("lineage_overhead_pct", lineage_overhead)
          .member("reference_ns_per_step", reference)
          .member("detached_vs_reference_pct", reference_overhead)
          .member("engine_n", engine_n)
          .member("engine_runs_per_pass", engine_runs)
          .member("engine_cold_ns_per_step", cold_med)
          .member("engine_warm_ns_per_step", warm_med)
          .member("warm_speedup_pct", warm_speedup)
          .member("large_n", large_n)
          .member("large_n_runs_per_pass", large_runs)
          .member("large_n_detached_ns_per_step", large_med)
          .member("soa_n", soa_n)
          .member("soa_runs_per_pass", soa_runs)
          .member("soa_step_ns", soa_med)
          .member("bytes_per_process", soa_bytes)
          .member("par_n", par_n)
          .member("par_runs_per_pass", par_runs)
          .member("par_threads", par_threads)
          .member("hardware_threads", hardware_threads)
          .member("parallel_step_speedup_x", par_speedup_med)
          .member("parallel_merge_ns_per_step", par_merge_med)
          .member("digest_cadence1_ns_per_step", digest1_med)
          .member("digest_cadence1_overhead_pct", digest1_overhead)
          .member("digest_ns_per_step", digest64_med)
          .member("digest_overhead_pct", digest64_overhead)
          .member("sched_horizon_steps", sched_horizon)
          .member("sched_inflight_events", sched_inflight)
          .member("sched_ops", sched_ops)
          .member("sched_wheel_ns_per_op", wheel_med)
          .member("sched_heap_ns_per_op", heap_med)
          .member("sched_wheel_vs_heap_pct", wheel_vs_heap)
          .end_object();
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "error: cannot open " << json_path << "\n";
        return 1;
      }
      out << json.str() << "\n";
      std::cout << "baseline json: " << json_path << "\n";
    }

    if (check) {
      if (!std::isfinite(counting_overhead) ||
          counting_overhead > max_overhead) {
        std::cerr << "FAIL: counting-sink overhead "
                  << std::setprecision(2) << std::fixed << counting_overhead
                  << "% exceeds " << max_overhead
                  << "% (detached overhead is bounded by it)\n";
        return 1;
      }
      if (!std::isfinite(metrics_overhead) ||
          metrics_overhead > max_overhead) {
        std::cerr << "FAIL: metrics-registry overhead "
                  << std::setprecision(2) << std::fixed << metrics_overhead
                  << "% exceeds " << max_overhead
                  << "% (publication is once per run, not per event)\n";
        return 1;
      }
      std::cout << "OK: counting-sink overhead " << std::setprecision(2)
                << std::fixed << counting_overhead << "% <= " << max_overhead
                << "%; metrics-registry overhead " << metrics_overhead
                << "% <= " << max_overhead << "%\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
