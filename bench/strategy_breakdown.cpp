// Strategy breakdown (the Fig. 1 narrative, quantified): which of UGF's
// strategy families does the most damage to which protocol? For each
// protocol the bench runs the benign baseline, each fixed strategy, the
// oblivious baseline and full UGF, then reports the medians and marks
// the empirical "max UGF" strategy per metric — reproducing the paper's
// designation (Strategy 1 for Push-Pull time, 2.1.0 for EARS time,
// 2.1.1 for message complexity everywhere).
//
// Flags: --n=150 --fraction=0.3 --runs=20 --csv=strategy_breakdown.csv

#include <iomanip>
#include <iostream>
#include <map>

#include "bench/campaign.hpp"
#include "core/adversary_registry.hpp"
#include "protocols/registry.hpp"
#include "runner/monte_carlo.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace ugf;
  const util::CliArgs args(argc, argv);
  const auto n = args.get_process_count("n", 150);
  const double fraction = args.get_double("fraction", 0.3);
  const auto runs = static_cast<std::uint32_t>(args.get_uint("runs", 20));
  const auto csv_path = args.out_path("csv", "strategy_breakdown.csv");

  runner::RunSpec spec;
  spec.n = n;
  spec.f = static_cast<std::uint32_t>(fraction * n);
  spec.runs = runs;
  spec.base_seed = 0x57A7;
  spec.engine_threads = args.get_thread_count("engine-threads", 1);

  const std::vector<std::string> adversaries = {
      "none", "strategy-1", "strategy-2.k.0", "strategy-2.k.l", "oblivious",
      "ugf"};

  bench::CampaignScope campaign(args, "strategy_breakdown");
  const auto protocol_names = protocols::protocol_names();
  {
    std::string joined;
    for (const auto& name : protocol_names)
      joined += (joined.empty() ? "" : ",") + name;
    campaign.set_protocol(joined);
  }
  for (const auto& name : adversaries)
    campaign.add_adversary(bench::describe_adversary(name, name));
  campaign.add_param("n", bench::format_param(std::uint64_t{n}));
  campaign.add_param("fraction", bench::format_param(fraction));
  campaign.add_param("runs", bench::format_param(std::uint64_t{runs}));
  campaign.add_param("seed", bench::format_param(spec.base_seed));
  campaign.attach(spec, adversaries.size() * protocol_names.size());

  std::cout << "Strategy breakdown at N=" << n << ", F=" << spec.f << ", "
            << runs << " runs per cell (medians)\n\n";
  util::CsvWriter csv(csv_path, {"protocol", "adversary", "messages_median",
                                 "messages_q3", "time_median", "time_q3"});

  runner::MonteCarloRunner runner;
  for (const auto& protocol_name : protocol_names) {
    const auto protocol = protocols::make_protocol(protocol_name);
    std::map<std::string, runner::BatchResult> results;
    for (const auto& adversary_name : adversaries) {
      const auto adversary = core::make_adversary(adversary_name);
      results[adversary_name] = runner.run_batch(spec, *protocol, *adversary);
    }

    std::string max_time = "none", max_msgs = "none";
    double best_time = -1, best_msgs = -1;
    std::cout << "== " << protocol_name << " ==\n"
              << std::left << std::setw(18) << "adversary" << std::setw(22)
              << "messages (median)" << std::setw(18) << "time (median)"
              << "\n";
    for (const auto& adversary_name : adversaries) {
      const auto& batch = results[adversary_name];
      std::cout << std::setw(18) << adversary_name << std::setw(22)
                << static_cast<std::uint64_t>(batch.messages.median)
                << std::fixed << std::setprecision(1) << std::setw(18)
                << batch.time.median << "\n";
      csv.row_values(std::string(protocol_name), adversary_name,
                     batch.messages.median, batch.messages.q3,
                     batch.time.median, batch.time.q3);
      if (adversary_name.rfind("strategy-", 0) == 0) {
        if (batch.time.median > best_time) {
          best_time = batch.time.median;
          max_time = adversary_name;
        }
        if (batch.messages.median > best_msgs) {
          best_msgs = batch.messages.median;
          max_msgs = adversary_name;
        }
      }
    }
    std::cout << "-> max-UGF strategy for time: " << max_time
              << "; for messages: " << max_msgs << "\n\n";
  }
  if (campaign.lineage_enabled()) {
    const auto protocol = protocols::make_protocol(protocol_names.front());
    const auto ugf = core::make_adversary("ugf");
    campaign.export_lineage(spec, *protocol, *ugf, protocol_names.front(),
                            std::cout);
  }
  if (campaign.digest_enabled()) {
    const auto protocol = protocols::make_protocol(protocol_names.front());
    const auto none = core::make_adversary("none");
    campaign.export_digest(spec, *protocol, *none, protocol_names.front(),
                           std::cout);
  }
  campaign.note_artifact("csv", csv_path);
  campaign.finish(std::cout);
  std::cout << "csv: " << csv_path << "\n"
            << "Paper's designations (§V-B / Fig. 3): Push-Pull time -> "
               "strategy-1, EARS time -> strategy-2.1.0, messages -> "
               "strategy-2.1.1 for all three protocols.\n";
  return 0;
}
