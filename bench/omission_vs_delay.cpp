// Omission vs delay (§VII: "would this kind of adversary harm the
// dissemination even more?"). Head-to-head comparison of Strategy 2.1.1
// (delay C's messages by tau^2) against its omission twin (discard the
// first tau messages of each C member) across the protocol suite.
//
// Metrics per cell: median messages, median time, and the dissemination
// failure rate — the share of runs in which some correct process never
// obtained some correct gossip. Delays can never cause such failures;
// omissions can (and do, for every protocol that never re-sends).
//
// Flags: --n=150 --fraction=0.3 --runs=20 --csv=omission_vs_delay.csv

#include <iomanip>
#include <iostream>

#include "bench/campaign.hpp"
#include "core/adversary_registry.hpp"
#include "protocols/registry.hpp"
#include "runner/monte_carlo.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace ugf;
  const util::CliArgs args(argc, argv);
  const auto n = args.get_process_count("n", 150);
  const double fraction = args.get_double("fraction", 0.3);
  const auto runs = static_cast<std::uint32_t>(args.get_uint("runs", 20));
  const auto csv_path = args.out_path("csv", "omission_vs_delay.csv");

  runner::RunSpec spec;
  spec.n = n;
  spec.f = static_cast<std::uint32_t>(fraction * n);
  spec.runs = runs;
  spec.base_seed = 0x0515;
  spec.engine_threads = args.get_thread_count("engine-threads", 1);

  std::cout << "Omission vs delay at N=" << n << ", F=" << spec.f << ", "
            << runs << " runs per cell\n\n";
  std::cout << std::left << std::setw(14) << "protocol" << std::setw(12)
            << "adversary" << std::setw(12) << "messages" << std::setw(10)
            << "time" << std::setw(12) << "omitted" << std::setw(14)
            << "fail rate" << "\n";

  const auto protocol_names = protocols::protocol_names();
  bench::CampaignScope campaign(args, "omission_vs_delay");
  {
    std::string joined;
    for (const auto& name : protocol_names)
      joined += (joined.empty() ? "" : ",") + name;
    campaign.set_protocol(joined);
  }
  for (const char* name : {"none", "strategy-2.k.l", "omission"})
    campaign.add_adversary(bench::describe_adversary(name, name));
  campaign.add_param("n", bench::format_param(std::uint64_t{n}));
  campaign.add_param("fraction", bench::format_param(fraction));
  campaign.add_param("runs", bench::format_param(std::uint64_t{runs}));
  campaign.add_param("seed", bench::format_param(spec.base_seed));
  campaign.attach(spec, 3 * protocol_names.size());

  util::CsvWriter csv(csv_path,
                      {"protocol", "adversary", "messages_median",
                       "time_median", "omitted_mean", "failure_rate"});
  runner::MonteCarloRunner runner;

  for (const auto& protocol_name : protocol_names) {
    const auto protocol = protocols::make_protocol(protocol_name);
    for (const char* adversary_name : {"none", "strategy-2.k.l", "omission"}) {
      const auto adversary = core::make_adversary(adversary_name);
      const auto batch = runner.run_batch(spec, *protocol, *adversary);
      double omitted = 0.0;
      for (const auto& record : batch.runs)
        omitted += static_cast<double>(record.outcome.omitted_messages);
      omitted /= static_cast<double>(batch.runs.size());
      const double fail_rate = static_cast<double>(batch.rumor_failures) /
                               static_cast<double>(batch.runs.size());
      std::cout << std::setw(14) << protocol_name << std::setw(12)
                << adversary_name << std::setw(12)
                << static_cast<std::uint64_t>(batch.messages.median)
                << std::fixed << std::setprecision(1) << std::setw(10)
                << batch.time.median << std::setw(12)
                << static_cast<std::uint64_t>(omitted) << std::setw(14)
                << fail_rate << "\n";
      csv.row_values(std::string(protocol_name), std::string(adversary_name),
                     batch.messages.median, batch.time.median, omitted,
                     fail_rate);
    }
  }
  campaign.note_artifact("csv", csv_path);
  std::cout << "\n";
  if (campaign.lineage_enabled()) {
    const auto protocol = protocols::make_protocol(protocol_names.front());
    const auto omission = core::make_adversary("omission");
    campaign.export_lineage(spec, *protocol, *omission,
                            protocol_names.front(), std::cout);
  }
  if (campaign.digest_enabled()) {
    const auto protocol = protocols::make_protocol(protocol_names.front());
    const auto none = core::make_adversary("none");
    campaign.export_digest(spec, *protocol, *none, protocol_names.front(),
                           std::cout);
  }
  campaign.finish(std::cout);
  std::cout << "csv: " << csv_path << "\n"
            << "Expected: the omission twin matches the delay strategy's "
               "overhead on retrying protocols (EARS/SEARS) and, unlike "
               "delays, *permanently* defeats dissemination for protocols "
               "that never re-send (Push-Pull / Sequential / BroadcastAll / "
               "push-average) — the affirmative answer to §VII.\n";
  return 0;
}
