// Figure 3b: time complexity of EARS — no adversary vs UGF vs the most
// damaging fixed strategy for EARS time, which the paper reports to be
// Strategy 2.1.0 (isolation). Expected shape: logarithmic baseline,
// ~linear under UGF / Strategy 2.1.0.

#include "bench/figure_common.hpp"

int main(int argc, char** argv) {
  ugf::bench::PanelSpec spec;
  spec.figure_id = "fig3b";
  spec.title = "Fig. 3b - EARS time complexity";
  spec.protocol = "ears";
  spec.metric = ugf::runner::Metric::kTime;
  spec.max_label = "max UGF (strategy 2.1.0)";
  spec.max_adversary = "strategy-2.k.0";
  spec.max_k = 1;
  return ugf::bench::run_panel(argc, argv, spec);
}
