// Micro-benchmarks (google-benchmark) for the substrate's hot paths:
// the event-driven engine, the knowledge-set merges and the samplers.
// These guard the constants behind the figure benches — a regression
// here multiplies directly into the Fig. 3 harness wall time.

#include <benchmark/benchmark.h>

#include "adversary/fixed_strategies.hpp"
#include "core/ugf.hpp"
#include "obs/event.hpp"
#include "protocols/ears.hpp"
#include "protocols/push_pull.hpp"
#include "sim/engine.hpp"
#include "util/bitset2d.hpp"
#include "util/dynamic_bitset.hpp"
#include "util/rng.hpp"
#include "util/zeta_sampler.hpp"

namespace {

using namespace ugf;

void BM_RngBelow(benchmark::State& state) {
  util::Rng rng(1);
  std::uint64_t sink = 0;
  for (auto _ : state) sink += rng.below(1000);
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngBelow);

void BM_ZetaSample(benchmark::State& state) {
  util::Rng rng(2);
  util::Zeta2Sampler sampler(0);
  std::uint64_t sink = 0;
  for (auto _ : state) sink += sampler.sample(rng);
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ZetaSample);

void BM_BitsetOr(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::DynamicBitset a(n), b(n);
  util::Rng rng(3);
  for (std::size_t i = 0; i < n / 3; ++i) b.set(rng.below(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.or_with(b));
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BitsetOr)->Arg(100)->Arg(500)->Arg(2000);

void BM_Bitset2DOr(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Bitset2D a(n, n), b(n, n);
  util::Rng rng(4);
  for (std::size_t i = 0; i < n; ++i) b.set(rng.below(n), rng.below(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.or_with(b));
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_Bitset2DOr)->Arg(100)->Arg(500);

void BM_PushPullRunBenign(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  protocols::PushPullFactory factory;
  std::uint64_t seed = 1;
  std::uint64_t messages = 0;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    sim::EngineConfig cfg;
    cfg.n = n;
    cfg.f = n * 3 / 10;
    cfg.seed = seed++;
    sim::Engine engine(cfg, factory, nullptr);
    const auto out = engine.run();
    messages += out.total_messages;
    steps += out.local_steps_executed;
  }
  state.counters["msgs/run"] =
      static_cast<double>(messages) / static_cast<double>(state.iterations());
  // items/s in the report = local steps/s; its inverse is ns/step, the
  // number micro_obs guards against observability overhead.
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_PushPullRunBenign)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_PushPullRunWithCountingSink(benchmark::State& state) {
  // Same workload as BM_PushPullRunBenign with the cheapest possible
  // sink attached: the gap between the two is the per-event virtual
  // dispatch cost of observability (compare items/s).
  const auto n = static_cast<std::uint32_t>(state.range(0));
  protocols::PushPullFactory factory;
  obs::CountingSink sink;
  std::uint64_t seed = 1;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    sim::EngineConfig cfg;
    cfg.n = n;
    cfg.f = n * 3 / 10;
    cfg.seed = seed++;
    cfg.sink = &sink;
    sim::Engine engine(cfg, factory, nullptr);
    const auto out = engine.run();
    steps += out.local_steps_executed;
  }
  state.counters["events/run"] = static_cast<double>(sink.total()) /
                                 static_cast<double>(state.iterations());
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_PushPullRunWithCountingSink)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_PushPullRunWithRecorder(benchmark::State& state) {
  // Full trace recording (vector append per event) — what --trace pays.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  protocols::PushPullFactory factory;
  std::uint64_t seed = 1;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    obs::EventRecorder recorder;
    sim::EngineConfig cfg;
    cfg.n = n;
    cfg.f = n * 3 / 10;
    cfg.seed = seed++;
    cfg.sink = &recorder;
    sim::Engine engine(cfg, factory, nullptr);
    const auto out = engine.run();
    steps += out.local_steps_executed;
    benchmark::DoNotOptimize(recorder.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_PushPullRunWithRecorder)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_PushPullRunUnderUgf(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  protocols::PushPullFactory factory;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::EngineConfig cfg;
    cfg.n = n;
    cfg.f = n * 3 / 10;
    cfg.seed = seed;
    core::UniversalGossipFighter ugf(seed ^ 0xADu);
    ++seed;
    sim::Engine engine(cfg, factory, &ugf);
    benchmark::DoNotOptimize(engine.run());
  }
}
BENCHMARK(BM_PushPullRunUnderUgf)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_EarsRunBenign(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  protocols::EarsFactory factory;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::EngineConfig cfg;
    cfg.n = n;
    cfg.f = n * 3 / 10;
    cfg.seed = seed++;
    sim::Engine engine(cfg, factory, nullptr);
    benchmark::DoNotOptimize(engine.run());
  }
}
BENCHMARK(BM_EarsRunBenign)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_SearsRunUnderDelay(benchmark::State& state) {
  // The heaviest realistic workload: SEARS with delayed C (Strategy
  // 2.1.1) — the cost driver of the Fig. 3e harness.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  protocols::SearsFactory factory;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::EngineConfig cfg;
    cfg.n = n;
    cfg.f = n * 3 / 10;
    cfg.seed = seed;
    adversary::DelayAdversary delay(seed ^ 0xDE1u);
    ++seed;
    sim::Engine engine(cfg, factory, &delay);
    benchmark::DoNotOptimize(engine.run());
  }
}
BENCHMARK(BM_SearsRunUnderDelay)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
