// Micro-benchmarks (google-benchmark) for the substrate's hot paths:
// the event-driven engine, the knowledge-set merges and the samplers.
// These guard the constants behind the figure benches — a regression
// here multiplies directly into the Fig. 3 harness wall time.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include <algorithm>
#include <vector>

#include "adversary/fixed_strategies.hpp"
#include "core/ugf.hpp"
#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "protocols/ears.hpp"
#include "protocols/push_pull.hpp"
#include "protocols/push_pull_counting.hpp"
#include "reference_heap.hpp"
#include "sim/engine.hpp"
#include "sim/timing_wheel.hpp"
#include "util/bitset2d.hpp"
#include "util/dynamic_bitset.hpp"
#include "util/rng.hpp"
#include "util/zeta_sampler.hpp"

// Heap-allocation counter for the allocation-count variants below: the
// bench binary replaces global operator new/delete with counting
// versions, so a run's allocation count is an exact, deterministic
// number rather than a profiler estimate.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

// GCC flags free() inside a replaced operator delete as a mismatched
// pair; it cannot see that the matching operator new mallocs.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size))
    return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#pragma GCC diagnostic pop

namespace {

using namespace ugf;

void BM_RngBelow(benchmark::State& state) {
  util::Rng rng(1);
  std::uint64_t sink = 0;
  for (auto _ : state) sink += rng.below(1000);
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngBelow);

void BM_ZetaSample(benchmark::State& state) {
  util::Rng rng(2);
  util::Zeta2Sampler sampler(0);
  std::uint64_t sink = 0;
  for (auto _ : state) sink += sampler.sample(rng);
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ZetaSample);

void BM_BitsetOr(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::DynamicBitset a(n), b(n);
  util::Rng rng(3);
  for (std::size_t i = 0; i < n / 3; ++i) b.set(rng.below(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.or_with(b));
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BitsetOr)->Arg(100)->Arg(500)->Arg(2000);

void BM_Bitset2DOr(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Bitset2D a(n, n), b(n, n);
  util::Rng rng(4);
  for (std::size_t i = 0; i < n; ++i) b.set(rng.below(n), rng.below(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.or_with(b));
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_Bitset2DOr)->Arg(100)->Arg(500);

// ---- Scheduler: timing wheel vs the pre-wheel binary heap ------------
//
// Steady-state pop-one/push-one at a fixed in-flight population, the
// scheduler's workload shape inside Engine::run. The Arg is the delay
// horizon in steps: 16 is benign traffic, 10^6 ≈ F^2 with F = 1000
// (Strategy 2.k.l's tau^(k+l) delays), 1.6 * 10^7 is F = 4000. The
// wheel's ns/op must be flat across the horizon column; the heap's
// (bench/reference_heap.hpp) grows with log(population) comparisons on
// cold memory.

template <typename Scheduler>
void scheduler_steady_state(benchmark::State& state, Scheduler& sched) {
  const auto horizon = static_cast<std::uint64_t>(state.range(0));
  constexpr std::size_t kInFlight = 100'000;
  util::Rng rng(7);
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < kInFlight; ++i)
    sched.push(sim::ScheduledEvent{1 + rng.below(horizon), seq++, 0, 0, 0});
  for (auto _ : state) {
    const sim::ScheduledEvent ev = sched.pop();
    sched.push(
        sim::ScheduledEvent{ev.step + 1 + rng.below(horizon), seq++, 0, 0, 0});
    benchmark::DoNotOptimize(seq);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_SchedulerWheelSteadyState(benchmark::State& state) {
  sim::TimingWheel wheel;
  scheduler_steady_state(state, wheel);
}
BENCHMARK(BM_SchedulerWheelSteadyState)
    ->Arg(16)->Arg(1'000'000)->Arg(16'000'000);

void BM_SchedulerHeapSteadyState(benchmark::State& state) {
  bench::ReferenceEventHeap heap;
  scheduler_steady_state(state, heap);
}
BENCHMARK(BM_SchedulerHeapSteadyState)
    ->Arg(16)->Arg(1'000'000)->Arg(16'000'000);

void BM_PushPullRunBenign(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  protocols::PushPullFactory factory;
  std::uint64_t seed = 1;
  std::uint64_t messages = 0;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    sim::EngineConfig cfg;
    cfg.n = n;
    cfg.f = n * 3 / 10;
    cfg.seed = seed++;
    sim::Engine engine(cfg, factory, nullptr);
    const auto out = engine.run();
    messages += out.total_messages;
    steps += out.local_steps_executed;
  }
  state.counters["msgs/run"] =
      static_cast<double>(messages) / static_cast<double>(state.iterations());
  // items/s in the report = local steps/s; its inverse is ns/step, the
  // number micro_obs guards against observability overhead.
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
// The n >= 1000 args are the large-N detached scaling block: per-step
// cost must stay near the n = 100 figure as the event population and
// the per-process bitsets grow.
BENCHMARK(BM_PushPullRunBenign)->Arg(50)->Arg(100)->Arg(200)->Arg(1000)
    ->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_PushPullRunWarmEngine(benchmark::State& state) {
  // Steady-state variant of BM_PushPullRunBenign: one engine reused via
  // reset() across all iterations (the Monte-Carlo worker's loop), so
  // slab/lane/heap capacity is warm. Compare items/s against the cold
  // variant — the gap is the per-run construction + allocation tax.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  protocols::PushPullFactory factory;
  std::uint64_t seed = 1;
  std::uint64_t steps = 0;
  sim::EngineConfig cfg;
  cfg.n = n;
  cfg.f = n * 3 / 10;
  cfg.seed = seed++;
  sim::Engine engine(cfg, factory, nullptr);
  (void)engine.run();  // warm the capacity before timing
  const std::uint64_t allocs_before = g_alloc_count.load();
  for (auto _ : state) {
    cfg.seed = seed++;
    engine.reset(cfg, nullptr);
    const auto out = engine.run();
    steps += out.local_steps_executed;
  }
  state.counters["allocs/run"] =
      static_cast<double>(g_alloc_count.load() - allocs_before) /
      static_cast<double>(state.iterations());
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_PushPullRunWarmEngine)->Arg(16)->Arg(50)->Arg(100)->Arg(200)
    ->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_PushPullRunColdEngine(benchmark::State& state) {
  // Cold path at the same sizes as the warm variant (construction per
  // run), with the allocation counter attached.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  protocols::PushPullFactory factory;
  std::uint64_t seed = 1;
  std::uint64_t steps = 0;
  const std::uint64_t allocs_before = g_alloc_count.load();
  for (auto _ : state) {
    sim::EngineConfig cfg;
    cfg.n = n;
    cfg.f = n * 3 / 10;
    cfg.seed = seed++;
    sim::Engine engine(cfg, factory, nullptr);
    const auto out = engine.run();
    steps += out.local_steps_executed;
  }
  state.counters["allocs/run"] =
      static_cast<double>(g_alloc_count.load() - allocs_before) /
      static_cast<double>(state.iterations());
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_PushPullRunColdEngine)->Arg(16)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_SoaScaleSweep(benchmark::State& state) {
  // The SoA engine-core N-sweep (10^3 → 10^6): benign counting
  // push-pull — O(1) protocol state per process, so the run exercises
  // exactly the table/pool/plane machinery the refactor flattened.
  // ns/step (the inverse of items/s) must stay near-flat down the
  // sweep and bytes/proc bounded; bench/perf_scale.cpp asserts both,
  // this benchmark is the place to look when it trips.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  protocols::PushPullCountingFactory factory;
  obs::MetricsRegistry registry;
  std::uint64_t seed = 1;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    sim::EngineConfig cfg;
    cfg.n = n;
    cfg.f = 0;
    cfg.seed = seed++;
    // ~n log n local steps with a handful of events each; the default
    // 50M event cap is too tight for n = 10^6.
    cfg.max_events = 4'000'000'000ull;
    cfg.metrics = &registry;
    sim::Engine engine(cfg, factory, nullptr);
    const auto out = engine.run();
    steps += out.local_steps_executed;
  }
  const auto snap = registry.snapshot();
  if (const auto* gauge = snap.find_gauge("engine.table.bytes_per_process"))
    state.counters["bytes/proc"] = static_cast<double>(gauge->value);
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_SoaScaleSweep)->Arg(1'000)->Arg(10'000)->Arg(100'000)
    ->Arg(1'000'000)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_ParallelEngineSweep(benchmark::State& state) {
  // Intra-run parallelism sweep: the same benign counting run as
  // BM_SoaScaleSweep, partitioned across Args(n, threads) — items/s at
  // threads=1 (the serial loop) is the baseline each thread count is
  // judged against. bench/perf_parallel.cpp gates the 4-thread point;
  // this sweep shows the whole curve (and where it flattens out).
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto threads = static_cast<std::uint32_t>(state.range(1));
  protocols::PushPullCountingFactory factory;
  obs::MetricsRegistry registry;
  std::uint64_t seed = 1;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    sim::EngineConfig cfg;
    cfg.n = n;
    cfg.f = 0;
    cfg.seed = seed++;
    cfg.max_events = 4'000'000'000ull;
    cfg.metrics = &registry;
    cfg.intra_run_threads = threads;
    sim::Engine engine(cfg, factory, nullptr);
    const auto out = engine.run();
    steps += out.local_steps_executed;
  }
  const auto snap = registry.snapshot();
  if (const auto* merge = snap.find_counter("engine.parallel.merge_ns"))
    state.counters["merge_ns/step"] =
        static_cast<double>(merge->value) /
        static_cast<double>(std::max<std::uint64_t>(1, steps));
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_ParallelEngineSweep)
    ->ArgsProduct({{100'000, 1'000'000}, {1, 2, 3, 4, 5, 6, 7, 8}})
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

void BM_ArenaMakeReset(benchmark::State& state) {
  // Raw arena throughput: payloads per second through make<T>() with a
  // periodic reset, the allocation pattern of one warm run.
  constexpr std::size_t kBatch = 1024;
  sim::PayloadArena arena;
  util::DynamicBitset gossips(64);
  gossips.set(1);
  std::uint64_t produced = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kBatch; ++i)
      benchmark::DoNotOptimize(
          arena.make<protocols::GossipSetPayload>(gossips));
    arena.reset();
    produced += kBatch;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(produced));
}
BENCHMARK(BM_ArenaMakeReset);

void BM_PushPullRunWithCountingSink(benchmark::State& state) {
  // Same workload as BM_PushPullRunBenign with the cheapest possible
  // sink attached: the gap between the two is the per-event virtual
  // dispatch cost of observability (compare items/s).
  const auto n = static_cast<std::uint32_t>(state.range(0));
  protocols::PushPullFactory factory;
  obs::CountingSink sink;
  std::uint64_t seed = 1;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    sim::EngineConfig cfg;
    cfg.n = n;
    cfg.f = n * 3 / 10;
    cfg.seed = seed++;
    cfg.sink = &sink;
    sim::Engine engine(cfg, factory, nullptr);
    const auto out = engine.run();
    steps += out.local_steps_executed;
  }
  state.counters["events/run"] = static_cast<double>(sink.total()) /
                                 static_cast<double>(state.iterations());
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_PushPullRunWithCountingSink)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_PushPullRunWithRecorder(benchmark::State& state) {
  // Full trace recording (vector append per event) — what --trace pays.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  protocols::PushPullFactory factory;
  std::uint64_t seed = 1;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    obs::EventRecorder recorder;
    sim::EngineConfig cfg;
    cfg.n = n;
    cfg.f = n * 3 / 10;
    cfg.seed = seed++;
    cfg.sink = &recorder;
    sim::Engine engine(cfg, factory, nullptr);
    const auto out = engine.run();
    steps += out.local_steps_executed;
    benchmark::DoNotOptimize(recorder.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_PushPullRunWithRecorder)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_PushPullRunUnderUgf(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  protocols::PushPullFactory factory;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::EngineConfig cfg;
    cfg.n = n;
    cfg.f = n * 3 / 10;
    cfg.seed = seed;
    core::UniversalGossipFighter ugf(seed ^ 0xADu);
    ++seed;
    sim::Engine engine(cfg, factory, &ugf);
    benchmark::DoNotOptimize(engine.run());
  }
}
BENCHMARK(BM_PushPullRunUnderUgf)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_EarsRunBenign(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  protocols::EarsFactory factory;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::EngineConfig cfg;
    cfg.n = n;
    cfg.f = n * 3 / 10;
    cfg.seed = seed++;
    sim::Engine engine(cfg, factory, nullptr);
    benchmark::DoNotOptimize(engine.run());
  }
}
BENCHMARK(BM_EarsRunBenign)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_SearsRunUnderDelay(benchmark::State& state) {
  // The heaviest realistic workload: SEARS with delayed C (Strategy
  // 2.1.1) — the cost driver of the Fig. 3e harness.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  protocols::SearsFactory factory;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::EngineConfig cfg;
    cfg.n = n;
    cfg.f = n * 3 / 10;
    cfg.seed = seed;
    adversary::DelayAdversary delay(seed ^ 0xDE1u);
    ++seed;
    sim::Engine engine(cfg, factory, &delay);
    benchmark::DoNotOptimize(engine.run());
  }
}
BENCHMARK(BM_SearsRunUnderDelay)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
