// Figure 3c: message complexity of Push-Pull — no adversary vs UGF vs
// Strategy 2.1.1 (delay), the paper's most damaging strategy for message
// complexity on all three protocols. Expected: ~N log N baseline,
// ~quadratic under UGF / Strategy 2.1.1.

#include "bench/figure_common.hpp"

int main(int argc, char** argv) {
  ugf::bench::PanelSpec spec;
  spec.figure_id = "fig3c";
  spec.title = "Fig. 3c - Push-Pull message complexity";
  spec.protocol = "push-pull";
  spec.metric = ugf::runner::Metric::kMessages;
  spec.max_label = "max UGF (strategy 2.1.1)";
  spec.max_adversary = "strategy-2.k.l";
  spec.max_k = 1;
  spec.max_l = 1;
  return ugf::bench::run_panel(argc, argv, spec);
}
