// Figure 3e: message complexity of SEARS (c = 1, eps = 0.5) — no
// adversary vs UGF vs Strategy 2.1.1. The paper's takeaway: SEARS is
// already ~quadratic *without* an adversary (it trades message
// complexity for constant time), so all three curves sit near N^2.

#include "bench/figure_common.hpp"

int main(int argc, char** argv) {
  ugf::bench::PanelSpec spec;
  spec.figure_id = "fig3e";
  spec.title = "Fig. 3e - SEARS message complexity";
  spec.protocol = "sears";
  spec.metric = ugf::runner::Metric::kMessages;
  spec.max_label = "max UGF (strategy 2.1.1)";
  spec.max_adversary = "strategy-2.k.l";
  spec.max_k = 1;
  spec.max_l = 1;
  // A delayed SEARS run at N=500 moves ~13M messages; 20 runs keep the
  // default invocation under a few minutes. Pass --runs=50 for the
  // paper's exact run count (medians are already stable at 20).
  spec.default_runs = 20;
  return ugf::bench::run_panel(argc, argv, spec);
}
