// Informed vs universal (§VII: "whether some realistic additional
// information about the gossip could improve the performance of our
// algorithm"). The informed fighter watches a short warm-up window,
// classifies the protocol by its traffic rate, and commits to the
// strategy the paper identifies as maximal for that family; UGF draws a
// strategy blindly. Per protocol we compare their damage on both
// metrics against the benign baseline and report which strategy the
// informed fighter picked.
//
// Flags: --n=150 --fraction=0.3 --runs=20 --csv=informed_vs_ugf.csv

#include <iomanip>
#include <iostream>

#include "bench/campaign.hpp"
#include "core/adversary_registry.hpp"
#include "protocols/registry.hpp"
#include "runner/monte_carlo.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace ugf;
  const util::CliArgs args(argc, argv);
  const auto n = args.get_process_count("n", 150);
  const double fraction = args.get_double("fraction", 0.3);
  const auto runs = static_cast<std::uint32_t>(args.get_uint("runs", 20));
  const auto csv_path = args.out_path("csv", "informed_vs_ugf.csv");

  runner::RunSpec spec;
  spec.n = n;
  spec.f = static_cast<std::uint32_t>(fraction * n);
  spec.runs = runs;
  spec.base_seed = 0x1F0;
  spec.engine_threads = args.get_thread_count("engine-threads", 1);

  std::cout << "Informed vs universal at N=" << n << ", F=" << spec.f << ", "
            << runs << " runs per cell (medians; q3 in brackets)\n\n";
  std::cout << std::left << std::setw(14) << "protocol" << std::setw(10)
            << "adversary" << std::setw(22) << "messages" << std::setw(20)
            << "time" << "picked strategy\n";

  const auto protocol_names = protocols::protocol_names();
  bench::CampaignScope campaign(args, "informed_vs_ugf");
  {
    std::string joined;
    for (const auto& name : protocol_names)
      joined += (joined.empty() ? "" : ",") + name;
    campaign.set_protocol(joined);
  }
  for (const char* name : {"none", "ugf", "informed"})
    campaign.add_adversary(bench::describe_adversary(name, name));
  campaign.add_param("n", bench::format_param(std::uint64_t{n}));
  campaign.add_param("fraction", bench::format_param(fraction));
  campaign.add_param("runs", bench::format_param(std::uint64_t{runs}));
  campaign.add_param("seed", bench::format_param(spec.base_seed));
  campaign.attach(spec, 3 * protocol_names.size());

  util::CsvWriter csv(csv_path, {"protocol", "adversary", "messages_median",
                                 "messages_q3", "time_median", "time_q3",
                                 "strategies"});
  runner::MonteCarloRunner runner;

  for (const auto& protocol_name : protocol_names) {
    const auto protocol = protocols::make_protocol(protocol_name);
    for (const char* adversary_name : {"none", "ugf", "informed"}) {
      const auto adversary = core::make_adversary(adversary_name);
      const auto batch = runner.run_batch(spec, *protocol, *adversary);
      std::ostringstream m, t, strategies;
      m << static_cast<std::uint64_t>(batch.messages.median) << " ("
        << static_cast<std::uint64_t>(batch.messages.q3) << ")";
      t << std::fixed << std::setprecision(1) << batch.time.median << " ("
        << batch.time.q3 << ")";
      bool first = true;
      for (const auto& [strategy, count] : batch.strategy_counts) {
        if (!first) strategies << " ";
        strategies << strategy << ":" << count;
        first = false;
      }
      std::cout << std::setw(14) << protocol_name << std::setw(10)
                << adversary_name << std::setw(22) << m.str() << std::setw(20)
                << t.str() << strategies.str() << "\n";
      csv.row_values(std::string(protocol_name), std::string(adversary_name),
                     batch.messages.median, batch.messages.q3,
                     batch.time.median, batch.time.q3, strategies.str());
    }
    std::cout << "\n";
  }
  if (campaign.lineage_enabled()) {
    const auto protocol = protocols::make_protocol(protocol_names.front());
    const auto ugf = core::make_adversary("ugf");
    campaign.export_lineage(spec, *protocol, *ugf, protocol_names.front(),
                            std::cout);
  }
  if (campaign.digest_enabled()) {
    const auto protocol = protocols::make_protocol(protocol_names.front());
    const auto none = core::make_adversary("none");
    campaign.export_digest(spec, *protocol, *none, protocol_names.front(),
                           std::cout);
  }
  campaign.note_artifact("csv", csv_path);
  campaign.finish(std::cout);
  std::cout << "csv: " << csv_path << "\n"
            << "Expected: the informed fighter's medians match the per-"
               "protocol 'max UGF' curves (it always plays the right "
               "strategy), while UGF's medians sit lower because only ~1/3 "
               "of its draws hit that strategy — information helps, exactly "
               "as §VII anticipates, at the price of universality.\n";
  return 0;
}
