// Schedule-shape stress test for the timing wheel (registered as the
// perf_wheel ctest; skipped under sanitizers).
//
// Strategy 2.k.l delays deliveries by tau^(k+l) <= F^2 global steps, so
// the scheduler's population runs deep (~10^6 events in flight at the
// Fig. 5 scales) and its horizon stretches with F. A binary heap pays
// log(population) comparisons per op no matter what; the wheel must pay
// amortized O(1) per op *independent of the horizon* — including the
// F = 40000 case whose F^2 = 1.6e9-step delays overflow the wheel's
// 2^30-step level-2 window into the spill list.
//
// Two gates:
//   1. horizon independence: steady-state ns/op across horizons
//      {1e6, 2.5e7, 1.6e9} may spread by at most --max-ratio (loose on
//      purpose — CI boxes are noisy; the honest numbers are printed).
//   2. order equivalence: a randomized push/pop replay must pop the
//      exact same (step, seq) sequence from the wheel and from the
//      pre-wheel binary heap (bench/reference_heap.hpp).

#include <cstdint>
#include <exception>
#include <iomanip>
#include <iostream>

#include "reference_heap.hpp"
#include "sim/timing_wheel.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace ugf;

struct StressResult {
  double ns_per_op = 0.0;
  sim::TimingWheel::Stats stats;
};

/// Steady state: `inflight` events pending, then `ops` pop+push cycles
/// with uniform delays up to `horizon` steps past the popped event.
StressResult stress(std::uint64_t horizon, std::uint64_t inflight,
                    std::uint64_t ops, std::uint64_t seed) {
  sim::TimingWheel wheel;
  util::Rng rng(seed);
  std::uint64_t seq = 0;
  for (std::uint64_t i = 0; i < inflight; ++i)
    wheel.push(sim::ScheduledEvent{1 + rng.below(horizon), seq++, 0, 0, 0});
  util::Stopwatch watch;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const sim::ScheduledEvent ev = wheel.pop();
    wheel.push(
        sim::ScheduledEvent{ev.step + 1 + rng.below(horizon), seq++, 0, 0, 0});
  }
  StressResult res;
  res.ns_per_op = watch.seconds() * 1e9 / static_cast<double>(ops);
  res.stats = wheel.stats();
  return res;
}

/// Randomized interleaved push/pop replay against the reference heap;
/// delays span every level of the wheel plus the spill range. Pops must
/// agree exactly, including the final drain.
bool replay_matches(std::uint64_t ops, std::uint64_t seed) {
  sim::TimingWheel wheel;
  bench::ReferenceEventHeap heap;
  util::Rng rng(seed);
  std::uint64_t seq = 0;
  sim::GlobalStep cursor = 0;
  const auto pops_agree = [&wheel, &heap, &cursor] {
    const sim::ScheduledEvent a = wheel.pop();
    const sim::ScheduledEvent b = heap.pop();
    cursor = a.step;
    return a.step == b.step && a.seq == b.seq && a.token == b.token;
  };
  for (std::uint64_t i = 0; i < ops; ++i) {
    if (wheel.empty() || rng.below(100) < 55) {
      std::uint64_t delay = 0;
      switch (rng.below(5)) {
        case 0: delay = rng.below(4); break;
        case 1: delay = rng.below(1ull << 10); break;
        case 2: delay = rng.below(1ull << 20); break;
        case 3: delay = rng.below(1ull << 30); break;
        default: delay = (1ull << 30) + rng.below(1ull << 32); break;
      }
      const sim::ScheduledEvent ev{cursor + delay, seq, seq * 7 + 3,
                                   static_cast<sim::ProcessId>(seq % 101),
                                   static_cast<std::uint8_t>(seq % 3)};
      ++seq;
      wheel.push(ev);
      heap.push(ev);
    } else if (!pops_agree()) {
      return false;
    }
  }
  while (!wheel.empty())
    if (heap.empty() || !pops_agree()) return false;
  return heap.empty();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::CliArgs args(argc, argv);
    const std::uint64_t inflight = args.get_uint("inflight", 1'000'000);
    const std::uint64_t ops = args.get_uint("ops", 1'000'000);
    const std::uint64_t replay_ops = args.get_uint("replay-ops", 150'000);
    const std::uint64_t seed = args.get_uint("seed", 0x5EEDF00Dull);
    const double max_ratio = args.get_double("max-ratio", 4.0);

    struct Horizon {
      const char* label;
      std::uint64_t steps;
    };
    const Horizon horizons[] = {
        {"F=1000  (F^2=1e6)", 1'000'000ull},
        {"F=5000  (F^2=2.5e7)", 25'000'000ull},
        {"F=40000 (F^2=1.6e9, spill)", 1'600'000'000ull},
    };

    std::cout << "perf_wheel: " << inflight << " in-flight, " << ops
              << " pop+push ops per horizon\n";
    double best = 0.0, worst = 0.0;
    for (const auto& h : horizons) {
      const StressResult r = stress(h.steps, inflight, ops, seed);
      std::cout << "  " << std::left << std::setw(28) << h.label << std::right
                << std::fixed << std::setprecision(1) << std::setw(8)
                << r.ns_per_op << " ns/op   buckets<=" << r.stats.max_buckets
                << " spill<=" << r.stats.max_spill
                << " cascades=" << r.stats.cascades
                << " refiles=" << r.stats.spill_refiles << "\n";
      if (best == 0.0 || r.ns_per_op < best) best = r.ns_per_op;
      if (r.ns_per_op > worst) worst = r.ns_per_op;
    }
    const double ratio = worst / best;
    std::cout << "  horizon spread " << std::setprecision(2) << ratio
              << "x (limit " << max_ratio << "x)\n";
    if (!(ratio <= max_ratio)) {
      std::cerr << "FAIL: per-op cost is not horizon-independent\n";
      return 1;
    }

    if (!replay_matches(replay_ops, seed)) {
      std::cerr << "FAIL: wheel pop order diverged from the reference heap\n";
      return 1;
    }
    std::cout << "OK: pop order identical to the reference binary heap over "
              << replay_ops << " randomized ops\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
