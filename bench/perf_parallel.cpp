// Parallel step-execution speedup gate.
//
// Runs counting push-pull (benign, f=0) at --n twice on the same
// engine: once serial (intra_run_threads=1) and once partitioned
// across --threads workers, and asserts the parallel run is at least
// --min-speedup times faster. Determinism is not re-checked here (the
// ThreadInvariance tests pin bit-for-bit equality); this test exists
// so the executor cannot silently rot into a slower-than-serial
// curiosity — the outcome totals are still compared as a cheap
// tripwire.
//
// Registered in ctest as perf_parallel (LABELS perf, RUN_SERIAL,
// SKIP_RETURN_CODE 77) and skipped under sanitizers like the other
// perf tests. On machines with fewer than --threads hardware threads
// the speedup target is physically unreachable, so the test exits 77
// (ctest SKIP) instead of failing: a 1-core CI runner must not paint
// the gate red.
//
// Flags: --n=1000000 --threads=4 --min-speedup=2.0 --seed=S
//        --reps=1 (best-of-k timing for noisy boxes)

#include <algorithm>
#include <cstdint>
#include <exception>
#include <iomanip>
#include <iostream>
#include <thread>

#include "protocols/push_pull_counting.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace ugf;

/// Best-of-`reps` wall time of one full run at `threads`; the engine is
/// reset (warm) between reps, so allocation noise drops out of the
/// comparison after the first rep.
double best_run_seconds(sim::Engine& engine, const sim::EngineConfig& cfg,
                        std::uint32_t reps, std::uint64_t& out_messages) {
  double best = 0.0;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    engine.reset(cfg, nullptr);
    const util::Stopwatch watch;
    const auto outcome = engine.run();
    const double seconds = watch.seconds();
    out_messages = outcome.total_messages;
    if (rep == 0 || seconds < best) best = seconds;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::CliArgs args(argc, argv);
    const auto n = args.get_process_count("n", 1'000'000);
    const auto threads = args.get_thread_count("threads", 4);
    const double min_speedup = args.get_double("min-speedup", 2.0);
    const auto seed = args.get_uint("seed", 0x9A11E1ull);
    const auto reps =
        static_cast<std::uint32_t>(std::max<std::uint64_t>(
            1, args.get_uint("reps", 1)));

    const unsigned hw = std::thread::hardware_concurrency();
    if (hw != 0 && hw < threads) {
      std::cout << "perf_parallel: SKIP — " << threads
                << " engine threads requested but only " << hw
                << " hardware thread(s) available; a speedup target is "
                   "unreachable here\n";
      return 77;  // ctest SKIP_RETURN_CODE
    }

    protocols::PushPullCountingFactory factory;
    sim::EngineConfig cfg;
    cfg.n = n;
    cfg.f = 0;
    cfg.seed = seed;
    cfg.max_events = 4'000'000'000ull;  // default 50M is sized for N <= 10^4

    sim::Engine engine(cfg, factory, nullptr);
    std::uint64_t serial_messages = 0;
    const double serial_s = best_run_seconds(engine, cfg, reps,
                                             serial_messages);

    sim::EngineConfig wide = cfg;
    wide.intra_run_threads = threads;
    std::uint64_t parallel_messages = 0;
    const double parallel_s = best_run_seconds(engine, wide, reps,
                                               parallel_messages);

    const double speedup = serial_s / std::max(1e-9, parallel_s);
    std::cout << "perf_parallel: counting push-pull benign, n=" << n
              << ", threads=" << threads << "\n"
              << std::fixed << std::setprecision(3)
              << "  serial:   " << serial_s << " s\n"
              << "  parallel: " << parallel_s << " s\n"
              << "  speedup:  " << std::setprecision(2) << speedup << "x\n";

    if (parallel_messages != serial_messages) {
      std::cerr << "perf_parallel: FAIL — outcome diverged: "
                << parallel_messages << " messages parallel vs "
                << serial_messages << " serial\n";
      return 1;
    }
    if (speedup < min_speedup) {
      std::cerr << "perf_parallel: FAIL — speedup " << std::fixed
                << std::setprecision(2) << speedup << "x < required "
                << min_speedup << "x at " << threads << " threads\n";
      return 1;
    }
    std::cout << "perf_parallel: OK — speedup " << std::fixed
              << std::setprecision(2) << speedup << "x >= " << min_speedup
              << "x\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "perf_parallel: error: " << e.what() << "\n";
    return 2;
  }
}
