// Million-process engine-core envelope check.
//
// Runs counting push-pull (O(1) protocol state per process) benign at
// every N in --ns (default 10^4, 10^5, 10^6) on a warm engine and
// asserts two properties of the SoA process table:
//
//   1. ns/step stays flat in N: max/min ratio across the grid must not
//      exceed --max-ratio. The margin is loose on purpose — past L2 the
//      random-peer access pattern is cache-miss bound and a few x of
//      drift between 10^4 and 10^6 is physics, not a regression. What
//      the gate catches is accidental O(N) work per step (a scan over
//      the table, an inbox walk proportional to N) which shows up as a
//      10-100x blowup, far outside the margin.
//
//   2. bytes/process stays bounded: the engine.table.bytes_per_process
//      gauge (resident columns + pools + protocol plane + event arena,
//      divided by N) must stay under --max-bytes at every grid point.
//      The pre-refactor array-of-structs table held an N x N knowledge
//      matrix in the EARS family and per-process inbox vectors; any
//      reintroduced per-process O(N) state blows this bound immediately
//      at 10^6.
//
// Registered in ctest as perf_scale (LABELS perf, RUN_SERIAL) and
// skipped under sanitizers like the other perf tests; the 10^6 point
// takes on the order of minutes on one core, which is why this is not
// part of the default label-less test sweep.
//
// Flags: --ns=10000,100000,1000000 --seed=S --max-ratio=12
//        --max-bytes=16384

#include <algorithm>
#include <cstdint>
#include <exception>
#include <iomanip>
#include <iostream>
#include <vector>

#include "obs/metrics.hpp"
#include "protocols/push_pull_counting.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace ugf;

struct Point {
  std::uint32_t n = 0;
  double ns_per_step = 0.0;
  std::uint64_t steps = 0;
  std::uint64_t bytes_per_process = 0;
};

/// One benign counting push-pull run at size n on a fresh engine; the
/// whole run is timed (no warm-up pass — at these sizes the step loop
/// dwarfs construction, and a second 10^6 run would double the test's
/// wall time for nothing).
Point measure(std::uint32_t n, std::uint64_t seed) {
  protocols::PushPullCountingFactory factory;
  obs::MetricsRegistry registry;
  sim::EngineConfig cfg;
  cfg.n = n;
  cfg.f = 0;
  cfg.seed = seed;
  cfg.max_events = 4'000'000'000ull;  // default 50M is sized for N <= 10^4
  cfg.metrics = &registry;
  Point point;
  point.n = n;
  util::Stopwatch watch;
  sim::Engine engine(cfg, factory, nullptr);
  point.steps = engine.run().local_steps_executed;
  point.ns_per_step = watch.seconds() * 1e9 /
                      static_cast<double>(std::max<std::uint64_t>(1, point.steps));
  const auto snap = registry.snapshot();
  if (const auto* gauge = snap.find_gauge("engine.table.bytes_per_process"))
    point.bytes_per_process = gauge->value;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::CliArgs args(argc, argv);
    const auto grid =
        args.get_uint_list("ns", {10'000, 100'000, 1'000'000});
    const auto seed = args.get_uint("seed", 0x5CA1Eull);
    const double max_ratio = args.get_double("max-ratio", 12.0);
    const auto max_bytes = args.get_uint("max-bytes", 16'384);

    std::cout << "perf_scale: counting push-pull benign, f=0, "
              << grid.size() << " grid points\n"
              << std::left << std::setw(12) << "n" << std::setw(14)
              << "ns/step" << std::setw(14) << "steps" << std::setw(14)
              << "bytes/proc" << "\n";

    std::vector<Point> points;
    for (const auto n : grid) {
      if (n < 2 || n > 0xFFFFFFFFull) {
        std::cerr << "perf_scale: --ns entry " << n
                  << " out of range: need 2 <= N <= 4294967295\n";
        return 2;
      }
      const Point p = measure(static_cast<std::uint32_t>(n), seed);
      std::cout << std::setw(12) << p.n << std::setw(14) << std::fixed
                << std::setprecision(1) << p.ns_per_step << std::setw(14)
                << p.steps << std::setw(14) << p.bytes_per_process << "\n"
                << std::flush;
      points.push_back(p);
    }

    bool ok = true;
    double lo = points.front().ns_per_step, hi = lo;
    for (const Point& p : points) {
      lo = std::min(lo, p.ns_per_step);
      hi = std::max(hi, p.ns_per_step);
      if (p.bytes_per_process == 0) {
        std::cerr << "perf_scale: FAIL n=" << p.n
                  << " engine.table.bytes_per_process gauge missing\n";
        ok = false;
      } else if (p.bytes_per_process > max_bytes) {
        std::cerr << "perf_scale: FAIL n=" << p.n << " bytes/process "
                  << p.bytes_per_process << " > " << max_bytes << "\n";
        ok = false;
      }
    }
    const double ratio = hi / std::max(1e-9, lo);
    if (ratio > max_ratio) {
      std::cerr << "perf_scale: FAIL ns/step spread " << std::fixed
                << std::setprecision(2) << ratio << "x > " << max_ratio
                << "x (" << lo << " .. " << hi << " ns/step)\n";
      ok = false;
    }
    if (ok)
      std::cout << "perf_scale: OK — ns/step spread " << std::fixed
                << std::setprecision(2) << ratio << "x <= " << max_ratio
                << "x, bytes/process <= " << max_bytes << "\n";
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "perf_scale: error: " << e.what() << "\n";
    return 2;
  }
}
