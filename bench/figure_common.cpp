#include "bench/figure_common.hpp"

#include <exception>
#include <iostream>

#include "core/adversary_registry.hpp"
#include "protocols/registry.hpp"
#include "runner/sweep.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"

namespace ugf::bench {

int run_panel(int argc, const char* const* argv, const PanelSpec& spec) {
  try {
    const util::CliArgs args(argc, argv);

    runner::SweepConfig config;
    config.grid = [&] {
      std::vector<std::uint64_t> fallback;
      for (const auto n : config.grid) fallback.push_back(n);
      std::vector<std::uint32_t> grid;
      for (const auto n : args.get_uint_list("grid", fallback))
        grid.push_back(static_cast<std::uint32_t>(n));
      return grid;
    }();
    config.runs =
        static_cast<std::uint32_t>(args.get_uint("runs", spec.default_runs));
    config.f_fraction = args.get_double("fraction", 0.3);
    config.base_seed = args.get_uint("seed", 0xF16BA5Eull);
    if (args.get_bool("quick", false)) {
      config.grid = {10, 20, 30, 50, 70, 100};
      config.runs = 10;
    }

    const auto protocol = protocols::make_protocol(spec.protocol);
    const auto none = core::make_adversary("none");
    const auto ugf = core::make_adversary("ugf");
    core::AdversaryParams max_params;
    max_params.k = spec.max_k;
    max_params.l = spec.max_l;
    const auto max_ugf = core::make_adversary(spec.max_adversary, max_params);

    const std::vector<runner::LabelledAdversary> adversaries = {
        {"no adversary", none.get()},
        {"UGF", ugf.get()},
        {spec.max_label, max_ugf.get()},
    };

    std::cout << spec.figure_id << ": " << spec.title << "\n"
              << "protocol=" << spec.protocol << " runs=" << config.runs
              << " F=" << config.f_fraction << "N"
              << " grid-max=" << config.grid.back() << "\n"
              << std::flush;

    util::Stopwatch watch;
    const auto curves = runner::sweep_figure(
        config, *protocol, adversaries,
        [&](const std::string& label, std::size_t done, std::size_t total) {
          std::cerr << "  [" << label << "] " << done << "/" << total
                    << " grid points (" << watch.seconds() << "s)\n";
        });

    runner::print_figure(std::cout, spec.title, curves, spec.metric);
    runner::print_strategy_histogram(std::cout, curves);
    // Statistical backing for the "UGF dominates the baseline" claim.
    runner::print_dominance(std::cout, curves[0], curves[1], spec.metric);

    const std::string csv_path =
        args.get_string("csv", spec.figure_id + ".csv");
    runner::write_figure_csv(csv_path, spec.figure_id, curves);
    const std::string json_path =
        args.get_string("json", spec.figure_id + ".json");
    runner::write_figure_json(json_path, spec.figure_id, curves);
    std::cout << "csv: " << csv_path << "  json: " << json_path << "  ("
              << watch.seconds() << "s total)\n\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace ugf::bench
