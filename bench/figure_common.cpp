#include "bench/figure_common.hpp"

#include <exception>
#include <iostream>
#include <stdexcept>

#include "bench/campaign.hpp"
#include "core/adversary_registry.hpp"
#include "obs/event.hpp"
#include "obs/export.hpp"
#include "obs/profile.hpp"
#include "protocols/registry.hpp"
#include "runner/monte_carlo.hpp"
#include "runner/sweep.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace ugf::bench {

int run_panel(int argc, const char* const* argv, const PanelSpec& spec) {
  try {
    const util::CliArgs args(argc, argv);

    runner::SweepConfig config;
    config.grid = [&] {
      std::vector<std::uint64_t> fallback;
      for (const auto n : config.grid) fallback.push_back(n);
      std::vector<std::uint32_t> grid;
      for (const auto n : args.get_uint_list("grid", fallback)) {
        if (n < 2 || n > 0xFFFFFFFFull)
          throw std::invalid_argument(
              "--grid entry " + std::to_string(n) +
              " out of range: need 2 <= N <= 4294967295");
        grid.push_back(static_cast<std::uint32_t>(n));
      }
      return grid;
    }();
    config.runs =
        static_cast<std::uint32_t>(args.get_uint("runs", spec.default_runs));
    config.f_fraction = args.get_double("fraction", 0.3);
    config.base_seed = args.get_uint("seed", 0xF16BA5Eull);
    config.engine_threads = args.get_thread_count("engine-threads", 1);
    if (args.get_bool("quick", false)) {
      config.grid = {10, 20, 30, 50, 70, 100};
      config.runs = 10;
    }

    const std::string timeseries_path =
        args.has("timeseries") ? args.out_path("timeseries", "") : "";
    config.collect_timeseries = !timeseries_path.empty();
    obs::PhaseProfiler profiler;
    const bool profile = args.get_bool("profile", false);
    if (profile) config.profiler = &profiler;

    // --state-mode=exact keeps the paper-faithful per-process protocol
    // (the default); --state-mode=counting swaps in the O(N)-bounded
    // scale variant (push-pull-counting / ears-summary / sears-summary)
    // so the same panel harness can drive N >= 10^5 envelope runs.
    const std::string state_mode = args.get_string("state-mode", "exact");
    std::string protocol_name = spec.protocol;
    if (state_mode == "counting") {
      if (spec.protocol == "push-pull")
        protocol_name = "push-pull-counting";
      else if (spec.protocol == "ears")
        protocol_name = "ears-summary";
      else if (spec.protocol == "sears")
        protocol_name = "sears-summary";
      else
        throw std::invalid_argument("--state-mode=counting has no scale "
                                    "variant for protocol " + spec.protocol);
    } else if (state_mode != "exact") {
      throw std::invalid_argument("--state-mode must be exact or counting, "
                                  "got " + state_mode);
    }
    const auto protocol = protocols::make_protocol(protocol_name);
    const auto none = core::make_adversary("none");
    const auto ugf = core::make_adversary("ugf");
    core::AdversaryParams max_params;
    max_params.k = spec.max_k;
    max_params.l = spec.max_l;
    const auto max_ugf = core::make_adversary(spec.max_adversary, max_params);

    const std::vector<runner::LabelledAdversary> adversaries = {
        {"no adversary", none.get()},
        {"UGF", ugf.get()},
        {spec.max_label, max_ugf.get()},
    };

    // Campaign observability: metrics registry, live progress line, and
    // the provenance manifest all hang off this scope (campaign.hpp).
    CampaignScope campaign(args, spec.figure_id);
    campaign.set_protocol(protocol_name);
    campaign.add_adversary(describe_adversary("no adversary", "none"));
    campaign.add_adversary(describe_adversary("UGF", "ugf"));
    campaign.add_adversary(
        describe_adversary(spec.max_label, spec.max_adversary, max_params));
    campaign.set_sweep(config);
    campaign.add_param("metric", runner::to_string(spec.metric));
    campaign.attach(config, adversaries.size());

    std::cout << spec.figure_id << ": " << spec.title << "\n"
              << "protocol=" << protocol_name << " runs=" << config.runs
              << " F=" << config.f_fraction << "N"
              << " grid-max=" << config.grid.back() << "\n"
              << std::flush;

    util::Stopwatch watch;
    const auto curves = runner::sweep_figure(config, *protocol, adversaries,
                                             campaign.progress_fn());

    runner::print_figure(std::cout, spec.title, curves, spec.metric);
    runner::print_strategy_histogram(
        std::cout, curves, args.get_bool("per-curve-histogram", false));
    // Statistical backing for the "UGF dominates the baseline" claim.
    runner::print_dominance(std::cout, curves[0], curves[1], spec.metric);
    if (config.collect_timeseries)
      runner::print_infection_curves(std::cout, curves);

    {
      obs::ScopedPhase phase(config.profiler, obs::Phase::kExport);
      const std::string csv_path =
          args.out_path("csv", spec.figure_id + ".csv");
      runner::write_figure_csv(csv_path, spec.figure_id, curves);
      campaign.note_artifact("csv", csv_path);
      const std::string json_path =
          args.out_path("json", spec.figure_id + ".json");
      runner::write_figure_json(json_path, spec.figure_id, curves);
      campaign.note_artifact("json", json_path);
      std::cout << "csv: " << csv_path << "  json: " << json_path;
      if (config.collect_timeseries) {
        runner::write_figure_timeseries_csv(timeseries_path, spec.figure_id,
                                            curves);
        campaign.note_artifact("timeseries", timeseries_path);
        std::cout << "  timeseries: " << timeseries_path;
      }
      std::cout << "  (" << watch.seconds() << "s total)\n\n";
    }

    // Single-run trace exports: run 0 at the smallest grid N under UGF,
    // seeded exactly as the sweep seeds that grid point, so the trace
    // reproduces a run the figure actually contains.
    const std::string trace_path =
        args.has("trace") ? args.out_path("trace", "") : "";
    const std::string chrome_path =
        args.has("chrome-trace") ? args.out_path("chrome-trace", "") : "";
    if (!trace_path.empty() || !chrome_path.empty() ||
        campaign.lineage_enabled() || campaign.digest_enabled()) {
      obs::ScopedPhase phase(config.profiler, obs::Phase::kExport);
      runner::RunSpec one;
      one.n = config.grid.front();
      one.f = runner::f_for(one.n, config.f_fraction);
      one.runs = 1;
      one.base_seed = util::mix_seed(config.base_seed, one.n);
      one.max_steps = config.max_steps;
      one.max_events = config.max_events;
      one.engine_threads = config.engine_threads;
      if (profile) one.profiler = &profiler;
      if (!trace_path.empty() || !chrome_path.empty()) {
        obs::EventRecorder recorder;
        const auto record = runner::MonteCarloRunner::run_once(
            one, 0, *protocol, *ugf, &recorder);
        obs::TraceMeta meta;
        meta.protocol = protocol_name;
        meta.adversary = record.strategy;
        meta.n = one.n;
        meta.f = one.f;
        meta.seed = record.seed;
        if (!trace_path.empty()) {
          obs::write_ndjson_trace_file(trace_path, recorder.raw(), meta);
          campaign.note_artifact("trace", trace_path);
          std::cout << "trace: " << trace_path << " (" << recorder.size()
                    << " events, n=" << one.n << ", " << record.strategy
                    << ")\n";
        }
        if (!chrome_path.empty()) {
          obs::ChromeTraceOptions chrome_options;
          chrome_options.delivery_flow_steps =
              args.get_bool("chrome-flow", false);
          obs::write_chrome_trace_file(chrome_path, recorder.raw(), meta,
                                       chrome_options);
          campaign.note_artifact("chrome-trace", chrome_path);
          std::cout << "chrome-trace: " << chrome_path
                    << " (open in chrome://tracing or ui.perfetto.dev)\n";
        }
      }
      campaign.export_lineage(one, *protocol, *ugf, protocol_name, std::cout);
      // The digest run is benign (no adversary) so --engine-threads
      // selects the real parallel step path: the stream is the
      // cross-thread determinism witness, not an attack record.
      campaign.export_digest(one, *protocol, *none, protocol_name, std::cout);
    }

    campaign.finish(std::cout);
    if (profile) obs::print_phase_table(std::cout, profiler);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace ugf::bench
