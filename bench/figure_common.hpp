#pragma once

/// \file figure_common.hpp
/// Shared harness for the Figure-3 panel benches. Every panel compares,
/// for one protocol and one metric, three curves over the paper's N grid
/// (§V-A.1): no adversary, UGF (q1 = 1/3, q2 = 1/2, tau = F, k = l = 1),
/// and the single fixed strategy the paper reports as "max UGF" for that
/// panel. Results are printed as a median/[Q1,Q3] table with growth-law
/// fits and mirrored to a CSV next to the binary.
///
/// Flags (all optional):
///   --grid=10,20,...   N values            (default: the paper's grid)
///   --runs=K           runs per grid point (default: paper's 50)
///   --fraction=0.3     F = fraction * N    (default: 0.3, as in Fig. 3)
///   --seed=S           base seed
///   --engine-threads=T worker threads *inside* each engine run
///                      (deterministic partitioned step execution;
///                      outcomes are bit-for-bit identical at every T,
///                      and runs an adversary or trace sink makes
///                      order-sensitive fall back to the serial loop)
///   --csv=path         CSV output path     (default: <figure_id>.csv)
///   --json=path        JSON output path    (default: <figure_id>.json)
///   --out-dir=dir      directory for output artifacts (default:
///                      results/, created on demand); bare filenames —
///                      defaults included — land there, while paths
///                      with a directory component are used verbatim
///   --quick            small grid + few runs (CI-friendly)
///   --state-mode=exact|counting
///                      exact (default) runs the paper-faithful
///                      protocol; counting swaps in the O(N)-bounded
///                      scale variant (push-pull-counting,
///                      ears-summary, sears-summary) for envelope runs
///                      at N >= 10^5
///
/// Observability flags (see docs/OBSERVABILITY.md):
///   --timeseries=path  collect per-run event streams, ascii-plot the
///                      median infection curve of the largest N, and
///                      write aggregated curves to `path` as CSV
///   --trace=path       NDJSON event trace (ugf-trace-v1) of one run:
///                      run 0 at the smallest grid N under UGF
///   --chrome-trace=p   same run as chrome://tracing / Perfetto JSON
///   --chrome-flow      route each Chrome-trace message arrow through
///                      its physical arrival step (flow "t" events);
///                      off by default so existing traces stay
///                      byte-identical
///   --profile          per-phase wall-time table (engine / protocol /
///                      adversary / stats / export) over the whole panel
///   --per-curve-histogram  print the strategy histogram per curve in
///                      addition to the aggregate block
///
/// Campaign flags (bench/campaign.hpp): --manifest[=PATH|off] (run
/// provenance, ON by default), --metrics[=PATH] (ugf-metrics-v1 JSON),
/// --prom[=PATH] (Prometheus text), --progress[=0|1] (live status
/// line; default on iff stderr is a TTY and $CI is unset),
/// --lineage[=PATH|off] (causal lineage of the same representative run
/// as ugf-lineage-v1 NDJSON), --lineage-chrome[=PATH] (its infection
/// DAG as Chrome flow arrows), --digest[=PATH|off] (per-step subsystem
/// state digests of the same representative run — but benign, so the
/// --engine-threads parallel path engages — as ugf-digest-v1 NDJSON;
/// compare streams with tools/divergence_bisect.py) and
/// --digest-cadence=N (sample every N global steps).

#include <string>

#include "runner/report.hpp"

namespace ugf::bench {

struct PanelSpec {
  std::string figure_id;      ///< e.g. "fig3a"
  std::string title;          ///< printed header
  std::string protocol;       ///< protocols::make_protocol name
  runner::Metric metric;      ///< the metric the paper plots in the panel
  std::string max_label;      ///< e.g. "max UGF (strategy 1)"
  std::string max_adversary;  ///< core::make_adversary name for "max UGF"
  std::uint32_t max_k = 1;    ///< k of the max strategy (if applicable)
  std::uint32_t max_l = 1;    ///< l of the max strategy (if applicable)
  /// Default --runs. The paper uses 50; panels whose attacked runs are
  /// expensive (SEARS under delays) default lower and document it.
  std::uint32_t default_runs = 50;
};

/// Runs a panel; returns a process exit code.
int run_panel(int argc, const char* const* argv, const PanelSpec& spec);

}  // namespace ugf::bench
