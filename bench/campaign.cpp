#include "bench/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <stdexcept>

#include "obs/export.hpp"
#include "obs/lineage.hpp"
#include "obs/state_digest.hpp"
#include "util/rng.hpp"

namespace ugf::bench {

namespace {

/// `--manifest=off` (and friends) disables an output that is otherwise
/// on by default; mirrors CliArgs::get_bool's false spellings.
bool is_off(const std::string& value) {
  return value == "0" || value == "false" || value == "no" || value == "off";
}

std::uint64_t parse_u64(const std::string& value) {
  return std::stoull(value);
}

double parse_double(const std::string& value) { return std::stod(value); }

bool parse_flag(const std::string& value) {
  if (value == "1") return true;
  if (value == "0") return false;
  throw std::runtime_error("manifest adversary: bad boolean '" + value + "'");
}

}  // namespace

std::string format_param(double value) {
  char buf[32];
  // Shortest decimal form that parses back to the same bits, so the
  // manifest round trip is exact without always paying 17 digits.
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::string format_param(std::uint64_t value) { return std::to_string(value); }

obs::ManifestSweep to_manifest_sweep(const runner::SweepConfig& config) {
  obs::ManifestSweep sweep;
  sweep.grid = config.grid;
  sweep.f_fraction = config.f_fraction;
  sweep.runs = config.runs;
  sweep.base_seed = config.base_seed;
  sweep.threads = config.threads;
  sweep.max_steps = config.max_steps;
  sweep.max_events = config.max_events;
  sweep.collect_timeseries = config.collect_timeseries;
  sweep.timeseries_samples = config.timeseries_samples;
  return sweep;
}

runner::SweepConfig sweep_from_manifest(const obs::ManifestSweep& sweep) {
  runner::SweepConfig config;
  config.grid = sweep.grid;
  config.f_fraction = sweep.f_fraction;
  config.runs = sweep.runs;
  config.base_seed = sweep.base_seed;
  config.threads = static_cast<std::size_t>(sweep.threads);
  config.max_steps = sweep.max_steps;
  config.max_events = sweep.max_events;
  config.collect_timeseries = sweep.collect_timeseries;
  config.timeseries_samples = sweep.timeseries_samples;
  return config;
}

obs::ManifestAdversary describe_adversary(std::string label,
                                          std::string factory,
                                          const core::AdversaryParams& params) {
  obs::ManifestAdversary out;
  out.label = std::move(label);
  out.factory = std::move(factory);
  // Every knob is recorded, defaults included, so a replay never
  // depends on the defaults staying what they were at write time.
  out.params = {
      {"k", format_param(std::uint64_t{params.k})},
      {"l", format_param(std::uint64_t{params.l})},
      {"tau", format_param(params.tau)},
      {"ugf.exponent_cap", format_param(std::uint64_t{params.ugf.exponent_cap})},
      {"ugf.fixed_k", format_param(std::uint64_t{params.ugf.fixed_k})},
      {"ugf.fixed_l", format_param(std::uint64_t{params.ugf.fixed_l})},
      {"ugf.omission_mode", params.ugf.omission_mode ? "1" : "0"},
      {"ugf.q1", format_param(params.ugf.q1)},
      {"ugf.q2", format_param(params.ugf.q2)},
      {"ugf.sample_exponents", params.ugf.sample_exponents ? "1" : "0"},
      {"ugf.tau", format_param(params.ugf.tau)},
  };
  return out;
}

core::AdversaryParams adversary_params_from(
    const obs::ManifestAdversary& adversary) {
  core::AdversaryParams params;
  for (const auto& [key, value] : adversary.params) {
    if (key == "k") {
      params.k = static_cast<std::uint32_t>(parse_u64(value));
    } else if (key == "l") {
      params.l = static_cast<std::uint32_t>(parse_u64(value));
    } else if (key == "tau") {
      params.tau = parse_u64(value);
    } else if (key == "ugf.exponent_cap") {
      params.ugf.exponent_cap = static_cast<std::uint32_t>(parse_u64(value));
    } else if (key == "ugf.fixed_k") {
      params.ugf.fixed_k = static_cast<std::uint32_t>(parse_u64(value));
    } else if (key == "ugf.fixed_l") {
      params.ugf.fixed_l = static_cast<std::uint32_t>(parse_u64(value));
    } else if (key == "ugf.omission_mode") {
      params.ugf.omission_mode = parse_flag(value);
    } else if (key == "ugf.q1") {
      params.ugf.q1 = parse_double(value);
    } else if (key == "ugf.q2") {
      params.ugf.q2 = parse_double(value);
    } else if (key == "ugf.sample_exponents") {
      params.ugf.sample_exponents = parse_flag(value);
    } else if (key == "ugf.tau") {
      params.ugf.tau = parse_u64(value);
    } else {
      throw std::runtime_error("manifest adversary: unknown param key '" +
                               key + "'");
    }
  }
  return params;
}

CampaignScope::CampaignScope(const util::CliArgs& args, std::string figure_id)
    : figure_id_(std::move(figure_id)),
      progress_(obs::SweepProgress::auto_options(
          args.has("progress") ? (args.get_bool("progress", true) ? 1 : -1)
                               : 0)) {
  manifest_.figure = figure_id_;
  manifest_.build = obs::current_build_info();
  manifest_.host = obs::current_host_info();
  if (!is_off(args.get_string("manifest", "")))
    manifest_path_ = args.out_path("manifest", figure_id_ + ".manifest.json");
  if (args.has("metrics") && !is_off(args.get_string("metrics", "")))
    metrics_path_ = args.out_path("metrics", figure_id_ + ".metrics.json");
  if (args.has("prom") && !is_off(args.get_string("prom", "")))
    prom_path_ = args.out_path("prom", figure_id_ + ".prom");
  if (args.has("lineage") && !is_off(args.get_string("lineage", "")))
    lineage_path_ = args.out_path("lineage", figure_id_ + ".lineage.ndjson");
  if (args.has("lineage-chrome") &&
      !is_off(args.get_string("lineage-chrome", "")))
    lineage_chrome_path_ =
        args.out_path("lineage-chrome", figure_id_ + ".lineage.chrome.json");
  if (args.has("digest") && !is_off(args.get_string("digest", "")))
    digest_path_ = args.out_path("digest", figure_id_ + ".digest.ndjson");
  digest_cadence_ =
      std::max<std::uint64_t>(1, args.get_uint("digest-cadence", 1));
  registry_enabled_ = !manifest_path_.empty() || !metrics_path_.empty() ||
                      !prom_path_.empty();
}

void CampaignScope::attach(runner::SweepConfig& config, std::size_t curves) {
  config.metrics = metrics();
  config.progress = progress();
  if (progress() != nullptr)
    progress_.add_planned_runs(static_cast<std::uint64_t>(curves) *
                               config.grid.size() * config.runs);
}

void CampaignScope::attach(runner::RunSpec& spec, std::size_t batches) {
  spec.metrics = metrics();
  spec.progress = progress();
  if (progress() != nullptr)
    progress_.add_planned_runs(static_cast<std::uint64_t>(batches) *
                               spec.runs);
}

void CampaignScope::export_lineage(const runner::RunSpec& spec,
                                   const sim::ProtocolFactory& protocol,
                                   const adversary::AdversaryFactory& adversary,
                                   const std::string& protocol_name,
                                   std::ostream& out) {
  if (!lineage_enabled()) return;
  // Re-run run 0 of the spec in isolation: the lineage replay is
  // presentation, so it must not perturb campaign metrics, progress
  // accounting or the per-run time-series of the sweep proper.
  runner::RunSpec one = spec;
  one.runs = 1;
  one.metrics = nullptr;
  one.progress = nullptr;
  one.collect_timeseries = false;
  obs::LineageTracker tracker;
  const auto record =
      runner::MonteCarloRunner::run_once(one, 0, protocol, adversary,
                                         &tracker);
  tracker.finalize();
  obs::TraceMeta meta;
  meta.protocol = protocol_name;
  meta.adversary = record.strategy;
  meta.n = spec.n;
  meta.f = spec.f;
  meta.seed = record.seed;
  if (!lineage_path_.empty()) {
    obs::write_lineage_ndjson_file(lineage_path_, tracker, meta);
    note_artifact("lineage", lineage_path_);
    out << "lineage: " << lineage_path_ << " (" << tracker.nodes().size()
        << " infected, critical path " << tracker.critical_path().size()
        << " hops, n=" << spec.n << ", " << record.strategy << ")\n";
  }
  if (!lineage_chrome_path_.empty()) {
    obs::write_lineage_chrome_file(lineage_chrome_path_, tracker, meta);
    note_artifact("lineage-chrome", lineage_chrome_path_);
    out << "lineage-chrome: " << lineage_chrome_path_
        << " (open in chrome://tracing or ui.perfetto.dev)\n";
  }
  if (registry_enabled_) tracker.publish_metrics(registry_);
}

void CampaignScope::export_digest(const runner::RunSpec& spec,
                                  const sim::ProtocolFactory& protocol,
                                  const adversary::AdversaryFactory& adversary,
                                  const std::string& protocol_name,
                                  std::ostream& out) {
  if (!digest_enabled()) return;
  // Same seeding discipline as the runner's run 0, but the engine is
  // built directly: the runner's checked-build flight recorder installs
  // an event sink, which forces the serial loop — and the whole point
  // of the digest stream is to witness the loop the thread count
  // actually selects.
  const std::uint64_t run_seed = util::mix_seed(spec.base_seed, 0);
  const std::uint64_t adversary_seed = util::mix_seed(run_seed, 0xAD7E25A27ull);

  obs::StateDigester digester({/*cadence=*/digest_cadence_});
  digester.start_capture();

  sim::EngineConfig config;
  config.n = spec.n;
  config.f = spec.f;
  config.seed = run_seed;
  config.max_steps = spec.max_steps;
  config.max_events = spec.max_events;
  config.intra_run_threads = spec.engine_threads;
  config.digester = &digester;

  const auto instance = adversary.create(adversary_seed);
  sim::Engine engine(config, protocol, instance.get());
  (void)engine.run();

  obs::TraceMeta meta;
  meta.protocol = protocol_name;
  meta.adversary = instance != nullptr ? instance->name() : "none";
  meta.n = spec.n;
  meta.f = spec.f;
  meta.seed = run_seed;
  if (!digester.write_file(digest_path_, meta))
    throw std::runtime_error("cannot write digest stream: " + digest_path_);
  note_artifact("digest", digest_path_);
  out << "digest: " << digest_path_ << " ("
      << digester.stats().samples << " samples, "
      << digester.stats().records << " records, cadence " << digest_cadence_
      << ", engine-threads " << spec.engine_threads << ")\n";
  if (registry_enabled_) {
    auto samples = registry_.counter("digest.samples");
    auto records = registry_.counter("digest.records");
    auto fold_ns = registry_.counter("digest.fold_ns");
    samples.add(digester.stats().samples);
    records.add(digester.stats().records);
    fold_ns.add(digester.stats().total_ns);
  }
}

runner::ProgressFn CampaignScope::progress_fn() {
  return [this](const std::string& label, std::size_t done,
                std::size_t total) {
    if (progress_.enabled())
      progress_.note_batch(label, done, total);
    else
      std::fprintf(stderr, "  [%s] %zu/%zu grid points (%.1fs)\n",
                   label.c_str(), done, total, watch_.seconds());
  };
}

void CampaignScope::finish(std::ostream& out) {
  if (finished_) return;
  finished_ = true;
  progress_.finish();
  manifest_.wall_time_seconds = watch_.seconds();
  if (registry_enabled_) manifest_.metrics = registry_.snapshot();
  bool wrote = false;
  if (!metrics_path_.empty()) {
    obs::write_metrics_json_file(metrics_path_, manifest_.metrics);
    note_artifact("metrics", metrics_path_);
    out << "metrics: " << metrics_path_ << "  ";
    wrote = true;
  }
  if (!prom_path_.empty()) {
    obs::write_prometheus_text_file(prom_path_, manifest_.metrics);
    note_artifact("prom", prom_path_);
    out << "prom: " << prom_path_ << "  ";
    wrote = true;
  }
  if (!manifest_path_.empty()) {
    // Registered before writing so the manifest lists itself too.
    note_artifact("manifest", manifest_path_);
    obs::write_manifest_file(manifest_path_, manifest_);
    out << "manifest: " << manifest_path_;
    wrote = true;
  }
  if (wrote) out << "\n";
}

}  // namespace ugf::bench
