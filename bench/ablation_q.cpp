// Ablation over the probability parameters (q1, q2) of the
// randomization scheme. §III-B claims disruption for *any* q1, q2 in
// (0,1) — the choice only shifts probability between the strategy
// families. This bench sweeps a (q1, q2) grid at fixed N and reports
// the attacked medians and upper quartiles of both metrics; every cell
// should stay well above the benign baseline in at least one metric.
//
// Flags: --n=100 --fraction=0.3 --runs=24
//        --q1s=0.1,0.333,0.6,0.9 --q2s=0.1,0.5,0.9 --csv=ablation_q.csv

#include <iomanip>
#include <iostream>

#include "bench/campaign.hpp"
#include "core/ugf.hpp"
#include "adversary/factory.hpp"
#include "protocols/registry.hpp"
#include "runner/monte_carlo.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace ugf;
  const util::CliArgs args(argc, argv);
  const auto n = args.get_process_count("n", 100);
  const double fraction = args.get_double("fraction", 0.3);
  const auto runs = static_cast<std::uint32_t>(args.get_uint("runs", 24));
  const auto q1s = args.get_double_list("q1s", {0.1, 1.0 / 3.0, 0.6, 0.9});
  const auto q2s = args.get_double_list("q2s", {0.1, 0.5, 0.9});
  const auto csv_path = args.out_path("csv", "ablation_q.csv");

  runner::RunSpec spec;
  spec.n = n;
  spec.f = static_cast<std::uint32_t>(fraction * n);
  spec.runs = runs;
  spec.base_seed = 0xAB1A;
  spec.engine_threads = args.get_thread_count("engine-threads", 1);

  bench::CampaignScope campaign(args, "ablation_q");
  campaign.set_protocol("push-pull,ears");
  campaign.add_adversary(bench::describe_adversary("baseline", "none"));
  for (const double q1 : q1s) {
    for (const double q2 : q2s) {
      core::AdversaryParams params;
      params.ugf.q1 = q1;
      params.ugf.q2 = q2;
      campaign.add_adversary(bench::describe_adversary(
          "q1=" + bench::format_param(q1) + " q2=" + bench::format_param(q2),
          "ugf", params));
    }
  }
  campaign.add_param("n", bench::format_param(std::uint64_t{n}));
  campaign.add_param("fraction", bench::format_param(fraction));
  campaign.add_param("runs", bench::format_param(std::uint64_t{runs}));
  campaign.add_param("seed", bench::format_param(spec.base_seed));
  campaign.attach(spec, 2 * (1 + q1s.size() * q2s.size()));

  util::CsvWriter csv(csv_path, {"protocol", "q1", "q2", "messages_median",
                                 "messages_q3", "time_median", "time_q3"});
  runner::MonteCarloRunner runner;

  for (const char* protocol_name : {"push-pull", "ears"}) {
    const auto protocol = protocols::make_protocol(protocol_name);
    const adversary::NoAdversaryFactory none;
    const auto baseline = runner.run_batch(spec, *protocol, none);
    std::cout << "== " << protocol_name << " at N=" << n << ", F=" << spec.f
              << " — baseline messages="
              << static_cast<std::uint64_t>(baseline.messages.median)
              << ", time=" << std::fixed << std::setprecision(1)
              << baseline.time.median << " ==\n";
    std::cout << std::left << std::setw(8) << "q1" << std::setw(8) << "q2"
              << std::setw(24) << "messages med (q3)" << std::setw(20)
              << "time med (q3)" << "\n";
    for (const double q1 : q1s) {
      for (const double q2 : q2s) {
        core::UgfConfig config;
        config.q1 = q1;
        config.q2 = q2;
        const core::UgfFactory factory(config);
        const auto batch = runner.run_batch(spec, *protocol, factory);
        std::cout << std::setw(8) << q1 << std::setw(8) << q2;
        std::ostringstream m, t;
        m << static_cast<std::uint64_t>(batch.messages.median) << " ("
          << static_cast<std::uint64_t>(batch.messages.q3) << ")";
        t << std::fixed << std::setprecision(1) << batch.time.median << " ("
          << batch.time.q3 << ")";
        std::cout << std::setw(24) << m.str() << std::setw(20) << t.str()
                  << "\n";
        csv.row_values(std::string(protocol_name), q1, q2,
                       batch.messages.median, batch.messages.q3,
                       batch.time.median, batch.time.q3);
      }
    }
    std::cout << "\n";
  }
  if (campaign.lineage_enabled()) {
    const auto protocol = protocols::make_protocol("push-pull");
    const core::UgfFactory factory(core::UgfConfig{});
    campaign.export_lineage(spec, *protocol, factory, "push-pull", std::cout);
  }
  if (campaign.digest_enabled()) {
    const auto protocol = protocols::make_protocol("push-pull");
    const auto none = core::make_adversary("none");
    campaign.export_digest(spec, *protocol, *none, "push-pull", std::cout);
  }
  campaign.note_artifact("csv", csv_path);
  campaign.finish(std::cout);
  std::cout << "csv: " << csv_path << "\n"
            << "Expected: every (q1, q2) cell dominates the baseline in "
               "messages and/or time; extreme q values merely tilt which "
               "strategy family (and hence which metric) takes the hit.\n";
  return 0;
}
