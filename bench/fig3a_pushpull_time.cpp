// Figure 3a: time complexity of Push-Pull — no adversary vs UGF vs the
// most damaging fixed strategy for Push-Pull time, which the paper
// reports to be Strategy 1 (crash C). Expected shape: logarithmic
// baseline, ~linear under UGF / Strategy 1.

#include "bench/figure_common.hpp"

int main(int argc, char** argv) {
  ugf::bench::PanelSpec spec;
  spec.figure_id = "fig3a";
  spec.title = "Fig. 3a - Push-Pull time complexity";
  spec.protocol = "push-pull";
  spec.metric = ugf::runner::Metric::kTime;
  spec.max_label = "max UGF (strategy 1)";
  spec.max_adversary = "strategy-1";
  return ugf::bench::run_panel(argc, argv, spec);
}
