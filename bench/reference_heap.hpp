#pragma once

/// \file reference_heap.hpp
/// The engine's pre-wheel scheduler — a binary min-heap on (step, seq)
/// — kept verbatim as the comparison baseline for the timing-wheel
/// benches. Lives in bench/ because the lint pass bans heap primitives
/// inside src/sim; here they are the point.

#include <algorithm>
#include <vector>

#include "sim/timing_wheel.hpp"

namespace ugf::bench {

class ReferenceEventHeap {
 public:
  void push(const sim::ScheduledEvent& ev) {
    heap_.push_back(ev);
    std::push_heap(heap_.begin(), heap_.end(), After{});
  }
  sim::ScheduledEvent pop() {
    std::pop_heap(heap_.begin(), heap_.end(), After{});
    const sim::ScheduledEvent ev = heap_.back();
    heap_.pop_back();
    return ev;
  }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

 private:
  struct After {
    bool operator()(const sim::ScheduledEvent& a,
                    const sim::ScheduledEvent& b) const noexcept {
      if (a.step != b.step) return a.step > b.step;
      return a.seq > b.seq;
    }
  };
  std::vector<sim::ScheduledEvent> heap_;
};

}  // namespace ugf::bench
