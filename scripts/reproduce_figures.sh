#!/usr/bin/env bash
# Regenerates every paper figure/table artifact into --out-dir
# (default results/). Pass --quick for the reduced CI-sized grids; any
# extra flags are forwarded to every binary (e.g. --runs=10,
# --out-dir=/tmp/figs). Expects a built tree in build/ (or $BUILD_DIR).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
BENCH="${BUILD_DIR}/bench"
if [ ! -d "${BENCH}" ]; then
  echo "reproduce_figures.sh: ${BENCH} not found; build first" >&2
  exit 1
fi

FIGURES=(
  fig3a_pushpull_time fig3b_ears_time fig3c_pushpull_msgs
  fig3d_ears_msgs fig3e_sears_msgs
  fsweep tradeoff_alpha strategy_breakdown
  ablation_q ablation_tau omission_vs_delay informed_vs_ugf
)

for figure in "${FIGURES[@]}"; do
  printf '\n== %s ==\n' "${figure}"
  "${BENCH}/${figure}" "$@"
done
