#!/usr/bin/env bash
# The correctness gauntlet. See docs/TOOLING.md.
#
#   check.sh           static gates, then build + ctest under the
#                      asan-ubsan and tsan sanitizer presets
#   check.sh --static  static gates only: lint_ugf, clang-format,
#                      clang-tidy, ugf_analyzer — one output contract,
#                      one exit code (tools/static_checks.py)
#
# Environment:
#   UGF_BUILD_DIR        build tree with compile_commands.json (default:
#                        build, falling back to the first sanitizer
#                        build tree that has one)
#   UGF_STATIC_REQUIRE   comma-separated checks that must not be
#                        skipped (CI sets ugf_analyzer)
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=full
if [ "${1:-}" = "--static" ]; then
  MODE=static
  shift
fi
if [ "$#" -ne 0 ]; then
  echo "usage: check.sh [--static]" >&2
  exit 2
fi

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
FAILED=0

note() { printf '\n== %s ==\n' "$*"; }

# Pick a build dir that actually has a compilation database so the
# tidy/analyzer gates see one without a manual configure.
BUILD_DIR="${UGF_BUILD_DIR:-build}"
if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  for candidate in build build-asan-ubsan build-tsan; do
    if [ -f "${candidate}/compile_commands.json" ]; then
      BUILD_DIR="${candidate}"
      break
    fi
  done
fi

note "static checks (build dir: ${BUILD_DIR})"
python3 tools/static_checks.py --build-dir "${BUILD_DIR}"

if [ "${MODE}" = "static" ]; then
  echo "check.sh: static gates passed"
  exit 0
fi

for preset in asan-ubsan tsan; do
  note "preset: ${preset}"
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${JOBS}"
  if ! ctest --preset "${preset}" -j "${JOBS}"; then
    FAILED=1
  fi
done

if [ "${FAILED}" -ne 0 ]; then
  echo "check.sh: FAILED" >&2
  exit 1
fi
echo "check.sh: all gates passed"
