#!/usr/bin/env bash
# The full correctness gauntlet: lint, format check, then build + ctest
# under the asan-ubsan and tsan sanitizer presets. See docs/TOOLING.md.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
FAILED=0

note() { printf '\n== %s ==\n' "$*"; }

note "lint_ugf"
python3 tools/lint_ugf.py .

note "clang-format"
if command -v clang-format >/dev/null 2>&1; then
  git ls-files '*.cpp' '*.hpp' | xargs clang-format --dry-run --Werror
else
  echo "clang-format not installed; skipping format check"
fi

for preset in asan-ubsan tsan; do
  note "preset: ${preset}"
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${JOBS}"
  if ! ctest --preset "${preset}" -j "${JOBS}"; then
    FAILED=1
  fi
done

if [ "${FAILED}" -ne 0 ]; then
  echo "check.sh: FAILED" >&2
  exit 1
fi
echo "check.sh: all gates passed"
