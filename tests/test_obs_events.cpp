// Event-stream contract tests: the engine's emitted TraceEvents must
// agree with the Outcome counters (conservation), arrive in
// non-decreasing step order, and the stock sinks (recorder ring,
// counting, tee) must behave as documented.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/ugf.hpp"
#include "obs/event.hpp"
#include "protocols/registry.hpp"
#include "sim/engine.hpp"

namespace {

using namespace ugf;
using obs::EventType;
using obs::TraceEvent;

/// Runs `protocol_name` at size n under `adversary` (may be null) with
/// a recorder attached; returns the events and the outcome.
struct RecordedRun {
  std::vector<TraceEvent> events;
  sim::Outcome outcome;
};

RecordedRun record_run(const char* protocol_name, std::uint32_t n,
                       std::uint64_t seed, sim::Adversary* adversary) {
  const auto proto = protocols::make_protocol(protocol_name);
  obs::EventRecorder recorder;
  sim::EngineConfig cfg;
  cfg.n = n;
  cfg.f = n * 3 / 10;
  cfg.seed = seed;
  cfg.sink = &recorder;
  sim::Engine engine(cfg, *proto, adversary);
  RecordedRun run;
  run.outcome = engine.run();
  run.events = recorder.raw();
  return run;
}

std::uint64_t count_of(const std::vector<TraceEvent>& events, EventType type) {
  std::uint64_t total = 0;
  for (const TraceEvent& ev : events)
    if (ev.type == type) ++total;
  return total;
}

std::uint64_t sum_v0(const std::vector<TraceEvent>& events, EventType type) {
  std::uint64_t total = 0;
  for (const TraceEvent& ev : events)
    if (ev.type == type) total += ev.v0;
  return total;
}

TEST(ObsEvents, CountsMatchOutcomeAcrossSeedsAndAdversaries) {
  for (const std::uint64_t seed : {1ull, 42ull, 0xDEADull}) {
    for (const bool with_ugf : {false, true}) {
      core::UniversalGossipFighter ugf(seed ^ 0xADull);
      RecordedRun run =
          record_run("push-pull", 24, seed, with_ugf ? &ugf : nullptr);
      const auto& ev = run.events;
      const auto& out = run.outcome;
      EXPECT_EQ(count_of(ev, EventType::kEmission), out.total_messages);
      EXPECT_EQ(count_of(ev, EventType::kDelivery), out.delivered_messages);
      EXPECT_EQ(count_of(ev, EventType::kOmission), out.omitted_messages);
      EXPECT_EQ(count_of(ev, EventType::kCrash), out.crashed);
      EXPECT_EQ(sum_v0(ev, EventType::kDrop), out.dropped_messages);
    }
  }
}

TEST(ObsEvents, ConservationEmissionsEqualDeliveriesPlusLosses) {
  // Every emission is eventually delivered, dropped (receiver crashed
  // at emission, or wiped from an inbox at a crash) or omitted. On a
  // non-truncated run nothing stays in flight at termination.
  for (const std::uint64_t seed : {7ull, 99ull, 12345ull}) {
    core::UniversalGossipFighter ugf(seed);
    RecordedRun run = record_run("push-pull", 30, seed, &ugf);
    ASSERT_FALSE(run.outcome.truncated);
    const std::uint64_t emissions = count_of(run.events, EventType::kEmission);
    const std::uint64_t deliveries =
        count_of(run.events, EventType::kDelivery);
    const std::uint64_t omissions = count_of(run.events, EventType::kOmission);
    const std::uint64_t drops = sum_v0(run.events, EventType::kDrop);
    EXPECT_EQ(emissions, deliveries + omissions + drops);
  }
}

TEST(ObsEvents, StepsAreNonDecreasing) {
  core::UniversalGossipFighter ugf(5);
  RecordedRun run = record_run("ears", 16, 5, &ugf);
  ASSERT_FALSE(run.events.empty());
  for (std::size_t i = 1; i < run.events.size(); ++i)
    ASSERT_GE(run.events[i].step, run.events[i - 1].step) << "at index " << i;
}

TEST(ObsEvents, DetachedRunMatchesAttachedRunOutcome) {
  // The sink is observation only: attaching one must not change the
  // simulated outcome.
  const auto proto = protocols::make_protocol("push-pull");
  sim::EngineConfig cfg;
  cfg.n = 20;
  cfg.f = 6;
  cfg.seed = 77;
  sim::Engine detached(cfg, *proto, nullptr);
  const auto base = detached.run();

  obs::EventRecorder recorder;
  cfg.sink = &recorder;
  sim::Engine attached(cfg, *proto, nullptr);
  const auto observed = attached.run();

  EXPECT_EQ(base.total_messages, observed.total_messages);
  EXPECT_EQ(base.t_end, observed.t_end);
  EXPECT_EQ(base.delivered_messages, observed.delivered_messages);
  EXPECT_EQ(base.local_steps_executed, observed.local_steps_executed);
}

TEST(ObsEvents, InfectionEventsCountEveryProcessOnceOnBenignRuns) {
  RecordedRun run = record_run("push-pull", 25, 3, nullptr);
  std::vector<int> seen(25, 0);
  std::uint64_t last_count = 0;
  for (const TraceEvent& ev : run.events) {
    if (ev.type != EventType::kInfection) continue;
    ASSERT_LT(ev.a, 25u);
    EXPECT_EQ(seen[ev.a], 0) << "process " << ev.a << " counted twice";
    seen[ev.a] = 1;
    EXPECT_EQ(ev.v0, last_count + 1);  // v0 is the inclusive running count
    last_count = ev.v0;
  }
  EXPECT_EQ(last_count, 25u);  // benign push-pull reaches everyone
}

TEST(ObsEvents, RecorderRingKeepsMostRecentAndCountsDropped) {
  obs::EventRecorder ring(4);
  for (std::uint64_t i = 0; i < 10; ++i)
    ring.on_event(TraceEvent{i, i, 0, 0, 0, EventType::kSleep});
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped_events(), 6u);
  const auto ordered = ring.events();
  ASSERT_EQ(ordered.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(ordered[i].step, 6u + i);  // oldest retained first

  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.dropped_events(), 0u);
}

TEST(ObsEvents, RecorderRingExactMultipleWrapKeepsEmissionOrder) {
  // Pushing exactly 2x capacity leaves head_ back at slot 0: the
  // buffer is physically in order again, so events() must take its
  // no-rotation path and still return the latest `capacity` events.
  obs::EventRecorder ring(4);
  for (std::uint64_t i = 0; i < 8; ++i)
    ring.on_event(TraceEvent{i, i, 0, 0, 0, EventType::kSleep});
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped_events(), 4u);
  const auto ordered = ring.events();
  ASSERT_EQ(ordered.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(ordered[i].step, 4u + i);  // steps 4..7, oldest first

  // One more event wraps the head off slot 0 again; order must hold.
  ring.on_event(TraceEvent{8, 8, 0, 0, 0, EventType::kSleep});
  const auto rotated = ring.events();
  ASSERT_EQ(rotated.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(rotated[i].step, 5u + i);  // steps 5..8
  EXPECT_EQ(ring.dropped_events(), 5u);
}

TEST(ObsEvents, UnboundedRecorderNeverDrops) {
  obs::EventRecorder recorder;
  for (std::uint64_t i = 0; i < 1000; ++i)
    recorder.on_event(TraceEvent{i, 0, 0, 0, 0, EventType::kStepBegin});
  EXPECT_EQ(recorder.size(), 1000u);
  EXPECT_EQ(recorder.dropped_events(), 0u);
  EXPECT_EQ(recorder.events(), recorder.raw());
}

TEST(ObsEvents, CountingSinkTalliesPerType) {
  obs::CountingSink sink;
  sink.on_event(TraceEvent{0, 0, 0, 0, 1, EventType::kEmission});
  sink.on_event(TraceEvent{1, 0, 0, 1, 0, EventType::kDelivery});
  sink.on_event(TraceEvent{1, 0, 0, 1, 0, EventType::kDelivery});
  EXPECT_EQ(sink.count(EventType::kEmission), 1u);
  EXPECT_EQ(sink.count(EventType::kDelivery), 2u);
  EXPECT_EQ(sink.count(EventType::kCrash), 0u);
  EXPECT_EQ(sink.total(), 3u);
  sink.clear();
  EXPECT_EQ(sink.total(), 0u);
  EXPECT_EQ(sink.count(EventType::kDelivery), 0u);
}

TEST(ObsEvents, TeeSinkForwardsToBothAndToleratesNull) {
  obs::CountingSink left;
  obs::EventRecorder right;
  obs::TeeSink tee(&left, &right);
  tee.on_event(TraceEvent{3, 9, 0, 2, 5, EventType::kEmission});
  EXPECT_EQ(left.total(), 1u);
  ASSERT_EQ(right.size(), 1u);
  EXPECT_EQ(right.raw()[0].v0, 9u);

  obs::TeeSink half(nullptr, &left);
  half.on_event(TraceEvent{4, 0, 0, 0, 0, EventType::kSleep});
  EXPECT_EQ(left.total(), 2u);

  // Null in the *second* slot takes the other early-out branch.
  obs::TeeSink other_half(&left, nullptr);
  other_half.on_event(TraceEvent{5, 0, 0, 0, 0, EventType::kSleep});
  EXPECT_EQ(left.total(), 3u);

  // Both null: a degenerate but legal tee that must simply do nothing.
  obs::TeeSink none(nullptr, nullptr);
  none.on_event(TraceEvent{6, 0, 0, 0, 0, EventType::kSleep});
}

}  // namespace
