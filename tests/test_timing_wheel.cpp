// Unit and property tests for the engine's hierarchical timing wheel.
//
// The referee for ordering is a reference binary heap using the exact
// (step, seq) comparator the engine shipped before the wheel: every
// test that cares about order replays the same pushes through both and
// demands identical pop sequences. (Heap primitives are banned in
// src/sim by the lint pass, not in tests.)

#include "sim/timing_wheel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"
#include "util/rng.hpp"

namespace {

using ugf::sim::GlobalStep;
using ugf::sim::ScheduledEvent;
using ugf::sim::TimingWheel;

constexpr GlobalStep kL0Width = TimingWheel::kBuckets;          // 2^10
constexpr GlobalStep kL1Width = kL0Width * kL0Width;            // 2^20
constexpr GlobalStep kL2Width = kL1Width * kL0Width;            // 2^30

/// The pre-wheel engine scheduler, verbatim: min-heap on (step, seq).
class ReferenceHeap {
 public:
  void push(const ScheduledEvent& ev) {
    heap_.push_back(ev);
    std::push_heap(heap_.begin(), heap_.end(), After{});
  }
  ScheduledEvent pop() {
    std::pop_heap(heap_.begin(), heap_.end(), After{});
    const ScheduledEvent ev = heap_.back();
    heap_.pop_back();
    return ev;
  }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

 private:
  struct After {
    bool operator()(const ScheduledEvent& a,
                    const ScheduledEvent& b) const noexcept {
      if (a.step != b.step) return a.step > b.step;
      return a.seq > b.seq;
    }
  };
  std::vector<ScheduledEvent> heap_;
};

ScheduledEvent make(GlobalStep step, std::uint64_t seq) {
  // Payload fields derived from seq so round-tripping is checkable.
  return ScheduledEvent{step, seq, /*token=*/seq * 3 + 1,
                        static_cast<ugf::sim::ProcessId>(seq % 97),
                        static_cast<std::uint8_t>(seq % 3)};
}

void expect_same(const ScheduledEvent& got, const ScheduledEvent& want) {
  EXPECT_EQ(got.step, want.step);
  EXPECT_EQ(got.seq, want.seq);
  EXPECT_EQ(got.token, want.token);
  EXPECT_EQ(got.pid, want.pid);
  EXPECT_EQ(got.kind, want.kind);
}

/// Drains both schedulers completely, asserting identical sequences.
void drain_and_compare(TimingWheel& wheel, ReferenceHeap& heap) {
  ASSERT_EQ(wheel.size(), heap.size());
  while (!heap.empty()) {
    ASSERT_FALSE(wheel.empty());
    const ScheduledEvent want = heap.pop();
    const ScheduledEvent got = wheel.pop();
    ASSERT_EQ(got.step, want.step);
    ASSERT_EQ(got.seq, want.seq);
  }
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimingWheel, PopsSameStepEventsInPushOrder) {
  TimingWheel wheel;
  for (std::uint64_t seq = 0; seq < 1000; ++seq)
    wheel.push(make(/*step=*/7, seq));
  for (std::uint64_t seq = 0; seq < 1000; ++seq) {
    const ScheduledEvent got = wheel.pop();
    expect_same(got, make(7, seq));
  }
  EXPECT_TRUE(wheel.empty());
}

TEST(TimingWheel, OrdersAcrossLevelZeroBucketBoundary) {
  // Steps straddling the first level-0 window edge (1023 | 1024) pushed
  // interleaved: ties must break by seq, steps by value, regardless of
  // which side of the bucket boundary they land on.
  TimingWheel wheel;
  ReferenceHeap heap;
  std::uint64_t seq = 0;
  for (int round = 0; round < 8; ++round) {
    for (const GlobalStep step :
         {kL0Width, kL0Width - 1, kL0Width + 1, kL0Width - 1, kL0Width}) {
      const ScheduledEvent ev = make(step, seq++);
      wheel.push(ev);
      heap.push(ev);
    }
  }
  drain_and_compare(wheel, heap);
}

TEST(TimingWheel, OrdersAcrossUpperLevelBoundaries) {
  // Events just below / at / above the level-1 and level-2 window edges,
  // plus near-future ones, pushed in a scrambled but seq-increasing
  // order.
  TimingWheel wheel;
  ReferenceHeap heap;
  const GlobalStep steps[] = {
      5,         kL1Width - 1, kL1Width,     kL1Width + 5, 5,
      kL2Width,  kL2Width - 1, kL2Width + 9, kL0Width + 2, kL1Width,
      kL2Width,  3,            kL0Width - 1, kL2Width - 1, kL1Width + 5,
  };
  std::uint64_t seq = 0;
  for (const GlobalStep step : steps) {
    const ScheduledEvent ev = make(step, seq++);
    wheel.push(ev);
    heap.push(ev);
  }
  drain_and_compare(wheel, heap);
}

TEST(TimingWheel, SameStepTiesSurviveCascades) {
  // Events parked at one far step via level 1, then — after pops have
  // advanced the window so the far bucket cascaded down — more events
  // pushed directly to the *same* step. Direct pushes carry later seqs
  // than everything cascaded, so pop order must interleave them last.
  TimingWheel wheel;
  std::uint64_t seq = 0;
  const GlobalStep far = 5000;
  for (int i = 0; i < 3; ++i) wheel.push(make(far, seq++));
  wheel.push(make(1, seq++));
  const ScheduledEvent near = wheel.pop();  // advances nothing past 1
  EXPECT_EQ(near.step, 1u);
  const ScheduledEvent first_far = wheel.pop();  // cascade happened here
  expect_same(first_far, make(far, 0));
  for (int i = 0; i < 3; ++i) wheel.push(make(far, seq++));
  for (const std::uint64_t want_seq : {1u, 2u, 4u, 5u, 6u}) {
    const ScheduledEvent got = wheel.pop();
    expect_same(got, make(far, want_seq));
  }
  EXPECT_TRUE(wheel.empty());
}

TEST(TimingWheel, HandlesStrategyScaleFarFutureDelays) {
  // UGF Strategy 2.k.l parks messages tau^(k+l) = F^2 steps ahead. With
  // F in the thousands that is millions of steps (level 2); F ~ 40k
  // pushes past the 2^30 wheel horizon into the spill list. Interleave
  // near-future traffic so every level participates.
  constexpr GlobalStep kF2Small = 2000ull * 2000ull;      // 4e6: level 2
  constexpr GlobalStep kF2Large = 40000ull * 40000ull;    // 1.6e9: spill
  static_assert(kF2Large > kL2Width);
  TimingWheel wheel;
  ReferenceHeap heap;
  std::uint64_t seq = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    for (const GlobalStep step :
         {GlobalStep{2} + i, kF2Small + i % 7, kF2Large + i % 5}) {
      const ScheduledEvent ev = make(step, seq++);
      wheel.push(ev);
      heap.push(ev);
    }
  }
  const TimingWheel::Stats before = wheel.stats();
  EXPECT_EQ(before.pending, wheel.size());
  EXPECT_GT(before.spill_pending, 0u);
  EXPECT_EQ(before.max_horizon, kF2Large + 4);
  drain_and_compare(wheel, heap);
  const TimingWheel::Stats after = wheel.stats();
  EXPECT_EQ(after.pending, 0u);
  EXPECT_EQ(after.spill_pending, 0u);
  EXPECT_GT(after.cascades, 0u);       // far events cascaded down
  EXPECT_GT(after.spill_refiles, 0u);  // and were refiled off the spill
  EXPECT_EQ(after.max_spill, 200u);
}

TEST(TimingWheel, ClearRewindsAndRetainsReusableStorage) {
  // Two identical fill/drain cycles around a mid-flight clear(): the
  // second cycle must behave exactly like the first (cursor rewound to
  // step 0, stats gauges restarted), with the grown bucket/spill
  // storage reused rather than reallocated.
  const auto fill = [](TimingWheel& wheel) {
    std::uint64_t seq = 0;
    for (std::uint64_t i = 0; i < 500; ++i) {
      wheel.push(make(i % 50, seq++));
      wheel.push(make(kL1Width + i, seq++));
      wheel.push(make(kL2Width * 2 + i, seq++));  // spill
    }
  };
  const auto drain_record = [](TimingWheel& wheel) {
    std::vector<ScheduledEvent> out;
    while (!wheel.empty()) out.push_back(wheel.pop());
    return out;
  };

  TimingWheel wheel;
  fill(wheel);
  for (int i = 0; i < 100; ++i) (void)wheel.pop();  // clear mid-drain
  wheel.clear();
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.size(), 0u);
  const TimingWheel::Stats cleared = wheel.stats();
  EXPECT_EQ(cleared.pending, 0u);
  EXPECT_EQ(cleared.spill_pending, 0u);
  EXPECT_EQ(cleared.max_spill, 0u);
  EXPECT_EQ(cleared.max_buckets, 0u);
  EXPECT_EQ(cleared.max_horizon, 0u);
  EXPECT_EQ(cleared.cascades, 0u);
  EXPECT_EQ(cleared.spill_refiles, 0u);

  // Cursor is back at step 0: near-past steps are schedulable again and
  // the run behaves exactly like a fresh wheel's.
  fill(wheel);
  const std::vector<ScheduledEvent> first = drain_record(wheel);

  wheel.clear();  // rewind once more (this time from an empty wheel)
  fill(wheel);
  const std::vector<ScheduledEvent> second = drain_record(wheel);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i].step, second[i].step);
    ASSERT_EQ(first[i].seq, second[i].seq);
  }
}

TEST(TimingWheel, PropertyRandomSchedulesMatchReferenceHeap) {
  // Replays random push/pop schedules through the wheel and the
  // reference heap. Delays are drawn from a mixed distribution covering
  // every level and the spill list; pushes always target a step at or
  // after the last popped step (the engine's monotonicity contract).
  for (const std::uint64_t seed : {1ull, 42ull, 0xB0D1E5ull, 91ull}) {
    ugf::util::Rng rng(seed);
    TimingWheel wheel;
    ReferenceHeap heap;
    std::uint64_t seq = 0;
    GlobalStep cursor = 0;
    for (int op = 0; op < 20000; ++op) {
      if (wheel.empty() || rng.below(100) < 55) {
        GlobalStep delay = 0;
        switch (rng.below(5)) {
          case 0: delay = rng.below(4); break;                   // same bucket
          case 1: delay = rng.below(kL0Width); break;            // level 0
          case 2: delay = rng.below(kL1Width); break;            // level 1
          case 3: delay = rng.below(kL2Width); break;            // level 2
          default: delay = kL2Width + rng.below(kL2Width * 4); break;  // spill
        }
        const ScheduledEvent ev = make(cursor + delay, seq++);
        wheel.push(ev);
        heap.push(ev);
      } else {
        const ScheduledEvent want = heap.pop();
        const ScheduledEvent got = wheel.pop();
        ASSERT_EQ(got.step, want.step) << "seed " << seed << " op " << op;
        ASSERT_EQ(got.seq, want.seq) << "seed " << seed << " op " << op;
        ASSERT_EQ(got.token, want.token);
        cursor = got.step;
      }
      ASSERT_EQ(wheel.size(), heap.size());
    }
    drain_and_compare(wheel, heap);
  }
}

}  // namespace
