// Unit tests for SEARS (§V-A.2c): the c * N^eps * log N fan-out and its
// interaction with the shared EARS machinery.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "fake_context.hpp"
#include "protocols/ears.hpp"
#include "sim/engine.hpp"

namespace {

using namespace ugf;
using protocols::SearsConfig;
using protocols::SearsFactory;
using testsupport::FakeContext;

TEST(Sears, FanoutFormula) {
  // ceil(c * n^eps * ln n), clamped to [1, n-1].
  EXPECT_EQ(SearsFactory::fanout_for(100, 1.0, 0.5),
            static_cast<std::uint32_t>(
                std::ceil(std::sqrt(100.0) * std::log(100.0))));
  EXPECT_EQ(SearsFactory::fanout_for(10, 1.0, 0.5),
            static_cast<std::uint32_t>(
                std::ceil(std::sqrt(10.0) * std::log(10.0))));
  // eps = 0 degenerates to ~log n.
  EXPECT_EQ(SearsFactory::fanout_for(100, 1.0, 0.0),
            static_cast<std::uint32_t>(std::ceil(std::log(100.0))));
}

TEST(Sears, FanoutIsClamped) {
  // Tiny n: the formula exceeds n-1 and must clamp.
  EXPECT_EQ(SearsFactory::fanout_for(3, 10.0, 1.0), 2u);
  EXPECT_EQ(SearsFactory::fanout_for(2, 0.0001, 0.5), 1u);
}

class FanoutParamTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, double>> {};

TEST_P(FanoutParamTest, SendsFanoutDistinctNonSelfTargetsPerStep) {
  const auto [n, eps] = GetParam();
  SearsConfig config;
  config.eps = eps;
  SearsFactory factory(config);
  const sim::SystemInfo info{n, n / 4};
  const auto proto = factory.create(0, info);
  const auto fanout = SearsFactory::fanout_for(n, config.c, config.eps);
  // Contexts own the payload arenas; keep every step's context alive so
  // the protocol's cached snapshot ref never outlives its arena.
  std::vector<std::unique_ptr<FakeContext>> contexts;
  for (int step = 0; step < 3; ++step) {
    contexts.push_back(std::make_unique<FakeContext>(
        0, info, 55 + static_cast<std::uint64_t>(step)));
    FakeContext& fresh = *contexts.back();
    proto->on_local_step(fresh);
    ASSERT_EQ(fresh.sends().size(), fanout);
    std::set<sim::ProcessId> targets;
    for (const auto& [to, payload] : fresh.sends()) {
      EXPECT_NE(to, 0u);
      EXPECT_LT(to, n);
      EXPECT_TRUE(targets.insert(to).second) << "duplicate target " << to;
      // The whole fan-out shares one payload allocation.
      EXPECT_EQ(payload.get(), fresh.sends()[0].second.get());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndExponents, FanoutParamTest,
    ::testing::Values(std::make_tuple(10u, 0.5), std::make_tuple(50u, 0.5),
                      std::make_tuple(100u, 0.5), std::make_tuple(100u, 0.0),
                      std::make_tuple(30u, 1.0)));

TEST(Sears, BaselineMessageComplexityIsOmegaNSquared) {
  // §V-B.3: SEARS reaches the trivial quadratic limit without any
  // adversary — the fan-out alone costs ~N^1.5 log N per round and the
  // dissemination needs >= 1 round from each process.
  SearsFactory factory;
  sim::EngineConfig cfg;
  cfg.n = 60;
  cfg.f = 18;
  cfg.seed = 3;
  sim::Engine engine(cfg, factory, nullptr);
  const auto out = engine.run();
  EXPECT_TRUE(out.rumor_gathering_ok);
  EXPECT_FALSE(out.truncated);
  EXPECT_GT(out.total_messages, 60ull * 59ull / 2);
}

TEST(Sears, EngineRunQuiescesUnderCrashes) {
  SearsFactory factory;
  sim::EngineConfig cfg;
  cfg.n = 24;
  cfg.f = 8;
  cfg.seed = 10;
  sim::Engine engine(cfg, factory, nullptr);
  const auto out = engine.run();
  EXPECT_TRUE(out.rumor_gathering_ok);
  EXPECT_FALSE(out.truncated);
}

}  // namespace
