// Phase-profiler tests: scoped accumulation, nullptr fast path,
// concurrent adds from many threads, reset, and the report rendering.

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "obs/profile.hpp"

namespace {

using namespace ugf;
using obs::Phase;

TEST(ObsProfile, ScopedPhaseAccumulatesTimeAndCalls) {
  obs::PhaseProfiler profiler;
  for (int i = 0; i < 3; ++i) {
    obs::ScopedPhase scope(&profiler, Phase::kProtocol);
    // Do a little work so the scope has nonzero duration even on
    // coarse clocks.
    volatile int sink = 0;
    for (int j = 0; j < 1000; ++j) sink = sink + j;
  }
  const auto totals = profiler.totals();
  EXPECT_EQ(totals.calls_of(Phase::kProtocol), 3u);
  EXPECT_EQ(totals.calls_of(Phase::kAdversary), 0u);
  EXPECT_GE(totals.threads, 1u);
}

TEST(ObsProfile, NullProfilerIsANoOp) {
  // The disabled-observability contract: a ScopedPhase on nullptr must
  // be safe (and is the branch the engine takes on every plain run).
  obs::ScopedPhase scope(nullptr, Phase::kEngineRun);
  SUCCEED();
}

TEST(ObsProfile, ExplicitAddAndReset) {
  obs::PhaseProfiler profiler;
  profiler.add(Phase::kExport, 1500, 2);
  profiler.add(Phase::kExport, 500);
  auto totals = profiler.totals();
  EXPECT_EQ(totals.ns_of(Phase::kExport), 2000u);
  EXPECT_EQ(totals.calls_of(Phase::kExport), 3u);

  profiler.reset();
  totals = profiler.totals();
  EXPECT_EQ(totals.ns_of(Phase::kExport), 0u);
  EXPECT_EQ(totals.calls_of(Phase::kExport), 0u);
  EXPECT_EQ(totals.threads, 0u);
}

TEST(ObsProfile, ConcurrentAddsFromManyThreadsSumExactly) {
  obs::PhaseProfiler profiler;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&profiler] {
      for (int i = 0; i < kAddsPerThread; ++i)
        profiler.add(Phase::kStatsReduction, 7);
    });
  }
  for (std::thread& worker : workers) worker.join();

  const auto totals = profiler.totals();
  EXPECT_EQ(totals.calls_of(Phase::kStatsReduction),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(totals.ns_of(Phase::kStatsReduction),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread * 7u);
}

TEST(ObsProfile, PhaseTableListsEveryUsedPhase) {
  obs::PhaseProfiler profiler;
  profiler.add(Phase::kEngineRun, 10'000'000);
  profiler.add(Phase::kProtocol, 4'000'000);
  profiler.add(Phase::kAdversary, 1'000'000);
  profiler.add(Phase::kTimeseries, 500'000);

  std::ostringstream out;
  obs::print_phase_table(out, profiler);
  const std::string table = out.str();
  EXPECT_NE(table.find("engine run loop"), std::string::npos);
  EXPECT_NE(table.find("protocol callbacks"), std::string::npos);
  EXPECT_NE(table.find("adversary callbacks"), std::string::npos);
  EXPECT_NE(table.find("time-series derivation"), std::string::npos);
}

TEST(ObsProfile, EmptyProfilerStillRenders) {
  obs::PhaseProfiler profiler;
  std::ostringstream out;
  obs::print_phase_table(out, profiler);
  EXPECT_FALSE(out.str().empty());
}

}  // namespace
