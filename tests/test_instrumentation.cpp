// Tests for the measurement wrappers (sim/instrumentation.hpp).

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "adversary/fixed_strategies.hpp"
#include "obs/event.hpp"
#include "protocols/registry.hpp"
#include "sim/engine.hpp"
#include "sim/instrumentation.hpp"

namespace {

using namespace ugf;

sim::EngineConfig config(std::uint32_t n, std::uint32_t f,
                         std::uint64_t seed = 3) {
  sim::EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.seed = seed;
  return cfg;
}

TEST(TracingAdversary, RecordsEveryEmissionInOrder) {
  const auto proto = protocols::make_protocol("push-pull");
  sim::TracingAdversary trace;  // no inner adversary
  sim::Engine engine(config(16, 4), *proto, &trace);
  const auto out = engine.run();
  EXPECT_EQ(trace.records().size(), out.total_messages);
  sim::GlobalStep prev = 0;
  for (const auto& record : trace.records()) {
    EXPECT_EQ(record.type, obs::EventType::kEmission);
    EXPECT_GE(record.step, prev);  // emissions observed in time order
    prev = record.step;
    EXPECT_LT(record.a, 16u);  // sender
    EXPECT_LT(record.b, 16u);  // receiver
    EXPECT_NE(record.a, record.b);
  }
}

TEST(TracingAdversary, DelegatesToInnerAdversary) {
  const auto proto = protocols::make_protocol("push-pull");
  adversary::Strategy1Adversary inner(5);
  sim::TracingAdversary trace(&inner);
  sim::Engine engine(config(20, 6), *proto, &trace);
  const auto out = engine.run();
  EXPECT_EQ(out.crashed, 3u);  // the inner Strategy 1 still acted
  EXPECT_STREQ(trace.name(), inner.name());
  EXPECT_EQ(trace.strategy_descriptor(), inner.strategy_descriptor());
}

TEST(DeliveryRecording, RecordsEveryDeliveryConsistently) {
  const auto proto = protocols::make_protocol("ears");
  obs::EventRecorder deliveries;
  sim::DeliveryRecordingFactory recording(*proto, &deliveries);
  sim::Engine engine(config(16, 4), recording, nullptr);
  const auto out = engine.run();
  EXPECT_EQ(deliveries.size(), out.delivered_messages);
  for (const auto& d : deliveries.raw()) {
    EXPECT_EQ(d.type, obs::EventType::kDelivery);
    EXPECT_GT(d.v1, d.v0);  // arrives_at > sent_at
    EXPECT_NE(d.a, d.b);    // receiver != sender
  }
  EXPECT_STREQ(recording.name(), proto->name());
}

TEST(DeliveryRecording, TransparencyOfOutcome) {
  // Wrapping must not change the run at all (same seed, same results).
  const auto proto = protocols::make_protocol("push-pull");
  sim::Engine plain_engine(config(18, 5, 77), *proto, nullptr);
  const auto plain = plain_engine.run();

  obs::EventRecorder deliveries;
  sim::DeliveryRecordingFactory recording(*proto, &deliveries);
  sim::Engine wrapped_engine(config(18, 5, 77), recording, nullptr);
  const auto wrapped = wrapped_engine.run();

  EXPECT_EQ(plain.total_messages, wrapped.total_messages);
  EXPECT_EQ(plain.t_end, wrapped.t_end);
  EXPECT_EQ(plain.per_process_sent, wrapped.per_process_sent);
}

TEST(DeliveryRecording, AgreesWithEngineSinkDeliveryStream) {
  // The protocol-side wrapper and the engine's own sink must describe
  // the same deliveries (sender, receiver, sent_at) — one vocabulary,
  // two observation points.
  const auto proto = protocols::make_protocol("push-pull");
  obs::EventRecorder wrapper_log;
  sim::DeliveryRecordingFactory recording(*proto, &wrapper_log);
  obs::EventRecorder engine_log;
  auto cfg = config(16, 4, 9);
  cfg.sink = &engine_log;
  sim::Engine engine(cfg, recording, nullptr);
  (void)engine.run();

  std::vector<std::tuple<sim::ProcessId, sim::ProcessId, sim::GlobalStep>> a;
  for (const auto& ev : wrapper_log.raw())
    a.emplace_back(ev.a, ev.b, ev.v0);
  std::vector<std::tuple<sim::ProcessId, sim::ProcessId, sim::GlobalStep>> b;
  for (const auto& ev : engine_log.raw())
    if (ev.type == obs::EventType::kDelivery)
      b.emplace_back(ev.a, ev.b, ev.v0);
  EXPECT_EQ(a, b);
}

}  // namespace
