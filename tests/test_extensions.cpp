// Tests for the §VII / Remark-1 extensions: omission adversaries, the
// informed (protocol-classifying) fighter and benign network jitter.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "adversary/informed.hpp"
#include "adversary/jitter.hpp"
#include "adversary/omission.hpp"
#include "core/adversary_registry.hpp"
#include "core/ugf.hpp"
#include "protocols/ears.hpp"
#include "protocols/push_pull.hpp"
#include "protocols/registry.hpp"
#include "protocols/sequential.hpp"
#include "sim/engine.hpp"

namespace {

using namespace ugf;

sim::EngineConfig config(std::uint32_t n, std::uint32_t f,
                         std::uint64_t seed = 77) {
  sim::EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.seed = seed;
  return cfg;
}

TEST(Omission, SuppressedMessagesCountAsSentButNotDelivered) {
  protocols::EarsFactory proto;
  adversary::OmissionAdversary adv(3, /*tau=*/0, 1, 1);
  sim::Engine engine(config(30, 10), proto, &adv);
  const auto out = engine.run();
  EXPECT_GT(out.omitted_messages, 0u);
  EXPECT_EQ(out.omitted_messages, adv.omitted());
  EXPECT_EQ(out.delivered_messages + out.dropped_messages +
                out.omitted_messages,
            out.total_messages);
  EXPECT_EQ(out.crashed, 0u);  // omission never crashes
  EXPECT_FALSE(out.truncated);
  // EARS retries, so rumor gathering survives omission.
  EXPECT_TRUE(out.rumor_gathering_ok);
}

TEST(Omission, QuotaBoundsTheDamage) {
  protocols::EarsFactory proto;
  adversary::OmissionAdversary adv(3, /*tau=*/0, 1, 1, /*quota=*/4);
  sim::Engine engine(config(30, 10), proto, &adv);
  const auto out = engine.run();
  EXPECT_EQ(adv.quota(), 4u);
  // At most quota omissions per member of C.
  EXPECT_LE(out.omitted_messages, 4u * adv.control_set().size());
  EXPECT_TRUE(out.rumor_gathering_ok);
}

TEST(Omission, BreaksOneShotProtocols) {
  // Sequential sends each gossip exactly once per destination: omitted
  // copies are gone for good, so with a meaningful quota some correct
  // process must miss some gossip — the §VII answer ("omission harms
  // even more") in its starkest form.
  protocols::SequentialFactory proto;
  adversary::OmissionAdversary adv(5, /*tau=*/0, 1, 1);
  sim::Engine engine(config(30, 10), proto, &adv);
  const auto out = engine.run();
  EXPECT_GT(out.omitted_messages, 0u);
  EXPECT_FALSE(out.rumor_gathering_ok);
  EXPECT_FALSE(out.truncated);  // quiescence still holds
}

TEST(Omission, UgfOmissionModeSuppressesInsteadOfDelaying) {
  protocols::EarsFactory proto;
  core::UgfConfig ugf_config;
  ugf_config.q1 = 0.0;
  ugf_config.q2 = 0.0;  // force the (now omission-flavoured) 2.k.l branch
  ugf_config.omission_mode = true;
  core::UniversalGossipFighter ugf(9, ugf_config);
  sim::Engine engine(config(30, 10), proto, &ugf);
  const auto out = engine.run();
  EXPECT_EQ(out.d_max, 1u) << "omission mode must not touch delivery times";
  EXPECT_EQ(out.delta_max, 10u) << "the tau^k slowdown of C remains";
  EXPECT_GT(out.omitted_messages, 0u);
  EXPECT_TRUE(out.rumor_gathering_ok);
}

TEST(Informed, ClassifiesPushPullAndCrashesC) {
  protocols::PushPullFactory proto;
  adversary::InformedFighter informed(11);
  sim::Engine engine(config(40, 12), proto, &informed);
  const auto out = engine.run();
  // Push-Pull emits ~2 messages per process-step: between the two
  // thresholds -> Strategy 1 (crash C).
  EXPECT_GT(informed.observed_rate(), 1.05);
  EXPECT_LE(informed.observed_rate(), 3.0);
  EXPECT_EQ(informed.chosen_strategy().kind,
            adversary::StrategyKind::kCrashC);
  EXPECT_EQ(out.crashed, 6u);  // floor(F/2)
  EXPECT_EQ(informed.strategy_descriptor(), "informed+strategy-1");
}

TEST(Informed, ClassifiesEarsAndIsolates) {
  protocols::EarsFactory proto;
  adversary::InformedFighter informed(11);
  sim::Engine engine(config(40, 12), proto, &informed);
  const auto out = engine.run();
  EXPECT_LE(informed.observed_rate(), 1.05);
  EXPECT_EQ(informed.chosen_strategy().kind,
            adversary::StrategyKind::kIsolate);
  EXPECT_GT(out.crashed, 0u);
  EXPECT_EQ(out.delta_max, 12u);  // tau = F slowdown of C
}

TEST(Informed, ClassifiesSearsAndDelays) {
  const auto proto = protocols::make_protocol("sears");
  adversary::InformedFighter informed(11);
  sim::Engine engine(config(40, 12), *proto, &informed);
  const auto out = engine.run();
  EXPECT_GT(informed.observed_rate(), 3.0);
  EXPECT_EQ(informed.chosen_strategy().kind, adversary::StrategyKind::kDelay);
  EXPECT_EQ(out.crashed, 0u);
  EXPECT_EQ(out.d_max, 144u);  // tau^2
}

TEST(Informed, MatchesOrBeatsUgfMedianOnItsGuess) {
  // On EARS, the informed fighter always plays isolation; UGF only draws
  // it a third of the time — the informed time complexity must dominate
  // UGF's median (this is the §VII "does information help" answer).
  protocols::EarsFactory proto;
  std::vector<double> informed_times, ugf_times;
  for (std::uint64_t seed = 1; seed <= 9; ++seed) {
    adversary::InformedFighter informed(seed);
    const auto a = sim::Engine(config(40, 12, seed), proto, &informed).run();
    informed_times.push_back(a.time_complexity);
    core::UniversalGossipFighter ugf(seed);
    const auto b = sim::Engine(config(40, 12, seed), proto, &ugf).run();
    ugf_times.push_back(b.time_complexity);
  }
  std::sort(informed_times.begin(), informed_times.end());
  std::sort(ugf_times.begin(), ugf_times.end());
  EXPECT_GE(informed_times[4], ugf_times[4]);  // medians of 9
}

TEST(Jitter, BoundedJitterPreservesCorrectnessAndShape) {
  for (const auto& name : protocols::protocol_names()) {
    const auto proto = protocols::make_protocol(name);
    adversary::JitterAdversary jitter(21);
    sim::Engine engine(config(30, 9, 5), *proto, &jitter);
    const auto out = engine.run();
    EXPECT_TRUE(out.rumor_gathering_ok) << name;
    EXPECT_FALSE(out.truncated) << name;
    EXPECT_EQ(out.crashed, 0u) << name;
    EXPECT_LE(out.delta_max, 4u) << name;  // default amplitude
    EXPECT_LE(out.d_max, 4u) << name;
  }
}

TEST(Jitter, ChangingDeliveryTimesMidRunKeepsEngineConsistent) {
  // Regression guard for the per-d inbox lanes: jitter produces several
  // distinct d values per receiver, interleaved, and the engine must
  // still deliver everything exactly once.
  protocols::EarsFactory proto;
  adversary::JitterConfig jcfg;
  jcfg.amplitude = 7;
  jcfg.period = 2;
  jcfg.churn = 0.9;
  adversary::JitterAdversary jitter(33, jcfg);
  sim::Engine engine(config(24, 7, 8), proto, &jitter);
  const auto out = engine.run();
  EXPECT_EQ(out.delivered_messages + out.dropped_messages +
                out.omitted_messages,
            out.total_messages);
  EXPECT_TRUE(out.rumor_gathering_ok);
}

TEST(Extensions, RegistryNamesWork) {
  for (const char* name : {"omission", "ugf-omission", "informed", "jitter"}) {
    const auto factory = core::make_adversary(name);
    ASSERT_NE(factory, nullptr) << name;
    EXPECT_NE(factory->create(1), nullptr) << name;
  }
}

}  // namespace
