// Property-based sweep: the system invariants of DESIGN.md §7, enforced
// over the full (protocol x adversary x N) grid. Every combination must
// quiesce, respect the crash budget, conserve messages, gather rumors
// among correct processes, and keep the metric identities.

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <tuple>

#include "core/adversary_registry.hpp"
#include "protocols/registry.hpp"
#include "runner/monte_carlo.hpp"

namespace {

using namespace ugf;

using Combo = std::tuple<const char*, const char*, std::uint32_t>;

class PropertySweepTest : public ::testing::TestWithParam<Combo> {};

TEST_P(PropertySweepTest, InvariantsHold) {
  const auto [protocol_name, adversary_name, n] = GetParam();
  const auto protocol = protocols::make_protocol(protocol_name);
  const auto adversary = core::make_adversary(adversary_name);

  runner::RunSpec spec;
  spec.n = n;
  spec.f = n * 3 / 10;  // the paper's F = 0.3 N working point
  spec.runs = 3;
  spec.base_seed = 0xBEEF + n;

  runner::MonteCarloRunner runner(2);
  const auto batch = runner.run_batch(spec, *protocol, *adversary);

  for (const auto& record : batch.runs) {
    const auto& out = record.outcome;
    SCOPED_TRACE(std::string(protocol_name) + " / " + adversary_name +
                 " / n=" + std::to_string(n) + " seed=" +
                 std::to_string(record.seed));

    // Quiescence (Def II.2): every run terminates by itself.
    EXPECT_FALSE(out.truncated);

    // Rumor gathering (Def II.1) among correct processes. Delaying and
    // crashing adversaries never destroy content, so gathering must
    // hold. Omission-capable adversaries (the §VII extension) CAN
    // destroy content for good; protocols without an acknowledgment
    // mechanism (Push-Pull, Sequential, BroadcastAll send once;
    // push-average sends a fixed floor) may legitimately fail to
    // gather, whereas the acknowledgment-driven EARS family must still
    // succeed.
    const bool omission_capable =
        std::string_view(adversary_name) == "omission" ||
        std::string_view(adversary_name) == "ugf-omission";
    const bool retrying = std::string_view(protocol_name) == "ears" ||
                          std::string_view(protocol_name) == "sears";
    if (!omission_capable || retrying) {
      EXPECT_TRUE(out.rumor_gathering_ok);
    }

    // Crash budget: never more than F crashes.
    EXPECT_LE(out.crashed, spec.f);
    std::uint32_t crashed_states = 0;
    for (const auto state : out.final_state)
      crashed_states += (state == sim::ProcessState::kCrashed);
    EXPECT_EQ(crashed_states, out.crashed);

    // Message conservation: at quiescence every sent message was either
    // delivered, dropped at/after a crash, or omitted by the adversary.
    EXPECT_EQ(out.delivered_messages + out.dropped_messages +
                  out.omitted_messages,
              out.total_messages);

    // Per-process counts sum to the total; crashed processes may have
    // sent before crashing but completion is undefined for them.
    std::uint64_t sum = 0;
    for (std::uint32_t p = 0; p < n; ++p) {
      sum += out.per_process_sent[p];
      if (out.final_state[p] == sim::ProcessState::kCrashed)
        EXPECT_EQ(out.completion_step[p], sim::kNeverStep);
      else
        EXPECT_NE(out.completion_step[p], sim::kNeverStep);
    }
    EXPECT_EQ(sum, out.total_messages);

    // Metric identities (Defs II.3 / II.4).
    sim::GlobalStep max_completion = 0;
    for (std::uint32_t p = 0; p < n; ++p)
      if (out.completion_step[p] != sim::kNeverStep)
        max_completion = std::max(max_completion, out.completion_step[p]);
    EXPECT_EQ(out.t_end, max_completion);
    EXPECT_DOUBLE_EQ(out.time_complexity,
                     static_cast<double>(out.t_end) /
                         static_cast<double>(out.delta_max + out.d_max));
    EXPECT_GE(out.delta_max, 1u);
    EXPECT_GE(out.d_max, 1u);
    EXPECT_GE(out.last_send_step, 1u);
    EXPECT_GT(out.total_messages, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PropertySweepTest,
    ::testing::Combine(
        ::testing::Values("push-pull", "ears", "sears", "sequential",
                          "broadcast-all", "push-average"),
        ::testing::Values("none", "ugf", "ugf-sampled", "strategy-1",
                          "strategy-2.k.0", "strategy-2.k.l", "oblivious",
                          "omission", "ugf-omission", "informed", "jitter"),
        ::testing::Values(10u, 25u, 60u)),
    [](const ::testing::TestParamInfo<Combo>& param_info) {
      std::string name = std::get<0>(param_info.param);
      name += "_";
      name += std::get<1>(param_info.param);
      name += "_n";
      name += std::to_string(std::get<2>(param_info.param));
      for (auto& c : name)
        if (c == '-' || c == '.') c = '_';
      return name;
    });

}  // namespace
