// Time-series derivation tests: infection curves are monotone and end
// at n on benign runs, derived counters agree with the outcome, and
// aggregation resamples many runs onto a shared quartile grid.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/ugf.hpp"
#include "obs/event.hpp"
#include "obs/timeseries.hpp"
#include "protocols/registry.hpp"
#include "sim/engine.hpp"

namespace {

using namespace ugf;
using obs::EventType;
using obs::TimeSeries;
using obs::TraceEvent;

TimeSeries run_and_build(const char* protocol_name, std::uint32_t n,
                         std::uint64_t seed, sim::Adversary* adversary,
                         sim::Outcome* outcome = nullptr) {
  const auto proto = protocols::make_protocol(protocol_name);
  obs::EventRecorder recorder;
  sim::EngineConfig cfg;
  cfg.n = n;
  cfg.f = n * 3 / 10;
  cfg.seed = seed;
  cfg.sink = &recorder;
  sim::Engine engine(cfg, *proto, adversary);
  const auto out = engine.run();
  if (outcome != nullptr) *outcome = out;
  return obs::build_timeseries(recorder.raw());
}

TEST(ObsTimeseries, InfectionIsMonotoneAndEndsAtNOnBenignRuns) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 17ull, 1000003ull}) {
    const std::uint32_t n = 30;
    const TimeSeries series = run_and_build("push-pull", n, seed, nullptr);
    ASSERT_FALSE(series.empty());
    for (std::size_t i = 1; i < series.size(); ++i) {
      ASSERT_LT(series.steps[i - 1], series.steps[i]);  // strictly increasing
      ASSERT_GE(series.infected[i], series.infected[i - 1]) << "seed " << seed;
      ASSERT_GE(series.cumulative_messages[i],
                series.cumulative_messages[i - 1]);
    }
    EXPECT_EQ(series.infected.back(), n) << "seed " << seed;
    EXPECT_EQ(series.in_flight.back(), 0u);  // quiesced run
  }
}

TEST(ObsTimeseries, InfectionStaysMonotoneUnderUgf) {
  for (const std::uint64_t seed : {5ull, 6ull, 7ull}) {
    core::UniversalGossipFighter ugf(seed);
    const TimeSeries series = run_and_build("push-pull", 24, seed, &ugf);
    ASSERT_FALSE(series.empty());
    for (std::size_t i = 1; i < series.size(); ++i)
      ASSERT_GE(series.infected[i], series.infected[i - 1]) << "seed " << seed;
    // An adversary can crash processes but never un-spreads the rumor:
    // the curve still starts at the source's self-infection.
    EXPECT_GE(series.infected.front(), 1u);
  }
}

TEST(ObsTimeseries, FinalCountersMatchOutcome) {
  sim::Outcome out;
  core::UniversalGossipFighter ugf(11);
  const TimeSeries series = run_and_build("push-pull", 20, 11, &ugf, &out);
  ASSERT_FALSE(series.empty());
  EXPECT_EQ(series.cumulative_messages.back(), out.total_messages);
  EXPECT_EQ(series.crashes.back(), out.crashed);
  EXPECT_EQ(series.omitted.back(), out.omitted_messages);
  EXPECT_EQ(series.dropped.back(), out.dropped_messages);
}

TEST(ObsTimeseries, BuildFromSyntheticEvents) {
  // Two emissions at step 1, one delivered at step 3, one dropped at 4.
  std::vector<TraceEvent> events;
  events.push_back({0, 1, 0, 0, sim::kNoProcess, EventType::kInfection});
  events.push_back({1, 1, 2, 0, 1, EventType::kEmission});
  events.push_back({1, 2, 2, 0, 2, EventType::kEmission});
  events.push_back({3, 1, 3, 1, 0, EventType::kDelivery});
  events.push_back({3, 2, 0, 1, sim::kNoProcess, EventType::kInfection});
  events.push_back({4, 1, 0, 2, 0, EventType::kDrop});

  const TimeSeries series = obs::build_timeseries(events);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series.steps, (std::vector<sim::GlobalStep>{0, 1, 3, 4}));
  EXPECT_EQ(series.infected, (std::vector<std::uint32_t>{1, 1, 2, 2}));
  EXPECT_EQ(series.in_flight, (std::vector<std::uint64_t>{0, 2, 1, 0}));
  EXPECT_EQ(series.cumulative_messages,
            (std::vector<std::uint64_t>{0, 2, 2, 2}));
  EXPECT_EQ(series.dropped, (std::vector<std::uint64_t>{0, 0, 0, 1}));
}

TEST(ObsTimeseries, EmptyEventsYieldEmptySeries) {
  EXPECT_TRUE(obs::build_timeseries({}).empty());
}

TEST(ObsTimeseries, ValueAtIsAStepFunction) {
  TimeSeries series;
  series.steps = {2, 5, 9};
  series.infected = {1, 4, 7};
  EXPECT_EQ(obs::timeseries_value_at(series, series.infected, 0), 0.0);
  EXPECT_EQ(obs::timeseries_value_at(series, series.infected, 2), 1.0);
  EXPECT_EQ(obs::timeseries_value_at(series, series.infected, 4), 1.0);
  EXPECT_EQ(obs::timeseries_value_at(series, series.infected, 5), 4.0);
  EXPECT_EQ(obs::timeseries_value_at(series, series.infected, 100), 7.0);
}

TEST(ObsTimeseries, AggregateQuartilesOverManyRuns) {
  std::vector<TimeSeries> runs;
  for (std::uint64_t seed = 0; seed < 9; ++seed)
    runs.push_back(run_and_build("push-pull", 20, seed, nullptr));

  const auto agg = obs::aggregate_timeseries(runs, 33);
  // Short runs dedup grid samples that round to the same step, so the
  // grid is at most `samples` long but always spans [0, t_max].
  ASSERT_GE(agg.t.size(), 2u);
  ASSERT_LE(agg.t.size(), 33u);
  EXPECT_EQ(agg.runs, 9u);
  for (std::size_t i = 0; i < agg.t.size(); ++i) {
    if (i > 0) {
      ASSERT_LT(agg.t[i - 1], agg.t[i]);
      ASSERT_GE(agg.infected_median[i], agg.infected_median[i - 1]);
    }
    ASSERT_LE(agg.infected_q1[i], agg.infected_median[i]);
    ASSERT_LE(agg.infected_median[i], agg.infected_q3[i]);
  }
  // Every benign run ends fully infected, so the grid's last sample
  // (max final step over the runs) sees 20 everywhere.
  EXPECT_DOUBLE_EQ(agg.infected_q1.back(), 20.0);
  EXPECT_DOUBLE_EQ(agg.infected_median.back(), 20.0);
  EXPECT_DOUBLE_EQ(agg.infected_q3.back(), 20.0);
}

TEST(ObsTimeseries, AggregateOfNothingIsEmpty) {
  EXPECT_TRUE(obs::aggregate_timeseries({}, 65).empty());
}

}  // namespace
