// Tests for util::Bitset2D — the EARS/SEARS receipt relation I.

#include <gtest/gtest.h>

#include "util/bitset2d.hpp"
#include "util/dynamic_bitset.hpp"

namespace {

using ugf::util::Bitset2D;
using ugf::util::DynamicBitset;

TEST(Bitset2D, StartsClear) {
  Bitset2D m(5, 7);
  EXPECT_EQ(m.rows(), 5u);
  EXPECT_EQ(m.cols(), 7u);
  EXPECT_EQ(m.count(), 0u);
  EXPECT_FALSE(m.all());
}

TEST(Bitset2D, SetResetTest) {
  Bitset2D m(4, 100);
  m.set(2, 99);
  m.set(0, 0);
  EXPECT_TRUE(m.test(2, 99));
  EXPECT_TRUE(m.test(0, 0));
  EXPECT_FALSE(m.test(2, 98));
  EXPECT_FALSE(m.test(1, 99));
  EXPECT_EQ(m.count(), 2u);
  m.reset(2, 99);
  EXPECT_FALSE(m.test(2, 99));
}

TEST(Bitset2D, RowsAreIndependent) {
  Bitset2D m(3, 70);  // two words per row, word-aligned rows
  m.set(1, 69);
  EXPECT_FALSE(m.test(0, 69));
  EXPECT_FALSE(m.test(2, 69));
  m.set_row(0);
  EXPECT_TRUE(m.row_all(0));
  EXPECT_FALSE(m.row_all(1));
  EXPECT_EQ(m.row_count(0), 70u);
  EXPECT_EQ(m.row_count(1), 1u);
}

class Bitset2DColsTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Bitset2DColsTest, RowAllRespectsTailMask) {
  const std::size_t cols = GetParam();
  Bitset2D m(2, cols);
  for (std::size_t c = 0; c < cols; ++c) {
    EXPECT_FALSE(m.row_all(0));
    m.set(0, c);
  }
  EXPECT_TRUE(m.row_all(0));
  EXPECT_FALSE(m.row_all(1));
  EXPECT_FALSE(m.all());
  m.set_row(1);
  EXPECT_TRUE(m.all());
}

INSTANTIATE_TEST_SUITE_P(WordBoundaries, Bitset2DColsTest,
                         ::testing::Values(1, 63, 64, 65, 128, 500));

TEST(Bitset2D, OrWithReportsChange) {
  Bitset2D a(3, 80), b(3, 80);
  a.set(0, 1);
  b.set(0, 1);
  EXPECT_FALSE(a.or_with(b));
  b.set(2, 79);
  EXPECT_TRUE(a.or_with(b));
  EXPECT_TRUE(a.test(2, 79));
}

TEST(Bitset2D, RowContains) {
  Bitset2D m(2, 100);
  DynamicBitset bits(100);
  bits.set(3);
  bits.set(90);
  EXPECT_FALSE(m.row_contains(0, bits));
  m.set(0, 3);
  EXPECT_FALSE(m.row_contains(0, bits));
  m.set(0, 90);
  EXPECT_TRUE(m.row_contains(0, bits));
  EXPECT_FALSE(m.row_contains(1, bits));
  EXPECT_TRUE(m.row_contains(1, DynamicBitset(100)));  // empty subset
}

TEST(Bitset2D, OrRowWith) {
  Bitset2D m(3, 70);
  DynamicBitset bits(70);
  bits.set(0);
  bits.set(69);
  EXPECT_TRUE(m.or_row_with(1, bits));
  EXPECT_TRUE(m.test(1, 0));
  EXPECT_TRUE(m.test(1, 69));
  EXPECT_FALSE(m.test(0, 0));
  EXPECT_FALSE(m.or_row_with(1, bits));  // no change the second time
}

TEST(Bitset2D, RowAny) {
  Bitset2D m(2, 70);
  EXPECT_FALSE(m.row_any(0));
  m.set(0, 65);
  EXPECT_TRUE(m.row_any(0));
  EXPECT_FALSE(m.row_any(1));
}

TEST(Bitset2D, Equality) {
  Bitset2D a(2, 10), b(2, 10);
  EXPECT_EQ(a, b);
  a.set(1, 5);
  EXPECT_NE(a, b);
  b.set(1, 5);
  EXPECT_EQ(a, b);
}

}  // namespace
