// Run-manifest provenance tests: field-level write/read round-trip of
// the `ugf-manifest-v1` record, the bench-layer conversions between
// runner/core types and their manifest mirrors, and the acceptance
// round-trip — a figure CSV regenerated from nothing but its parsed
// manifest must match the original byte for byte.

#include "obs/manifest.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>

#include "bench/campaign.hpp"
#include "core/adversary_registry.hpp"
#include "protocols/registry.hpp"
#include "runner/report.hpp"
#include "runner/sweep.hpp"

namespace {

using namespace ugf;

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

obs::RunManifest sample_manifest() {
  obs::RunManifest m;
  m.figure = "figX";
  m.protocol = "push-pull";
  obs::ManifestAdversary adv;
  adv.label = "UGF, q1=1/3";
  adv.factory = "ugf";
  adv.params = {{"k", "2"}, {"ugf.q1", "0.33333333333333331"}};
  m.adversaries.push_back(adv);
  m.has_sweep = true;
  m.sweep.grid = {8, 12, 16};
  m.sweep.f_fraction = 0.25;
  m.sweep.runs = 4;
  m.sweep.base_seed = 18446744073709551615ull;  // u64 max: must stay exact
  m.sweep.threads = 3;
  m.sweep.max_steps = 1'000'000'000'000ull;
  m.sweep.max_events = 50'000'000ull;
  m.sweep.collect_timeseries = true;
  m.sweep.timeseries_samples = 33;
  m.params = {{"metric", "time"}, {"n", "150"}};
  m.artifacts = {{"csv", "results/figX.csv"},
                 {"manifest", "results/figX.manifest.json"}};
  m.build = obs::current_build_info();
  m.host = obs::current_host_info();
  m.wall_time_seconds = 1.5;
  obs::MetricsRegistry registry;
  registry.counter("engine.runs").add(48);
  registry.gauge("engine.wheel.max_buckets").note_max(64);
  registry.histogram("runner.run_steps").record(1234);
  m.metrics = registry.snapshot();
  return m;
}

TEST(Manifest, FieldLevelRoundTrip) {
  const auto original = sample_manifest();
  const auto path = temp_path("ugf_manifest_roundtrip.json");
  obs::write_manifest_file(path, original);
  const auto parsed = obs::read_manifest_file(path);
  std::remove(path.c_str());

  EXPECT_EQ(parsed.figure, original.figure);
  EXPECT_EQ(parsed.protocol, original.protocol);
  ASSERT_EQ(parsed.adversaries.size(), 1u);
  EXPECT_EQ(parsed.adversaries[0].label, original.adversaries[0].label);
  EXPECT_EQ(parsed.adversaries[0].factory, original.adversaries[0].factory);
  EXPECT_EQ(parsed.adversaries[0].params, original.adversaries[0].params);
  ASSERT_TRUE(parsed.has_sweep);
  EXPECT_EQ(parsed.sweep.grid, original.sweep.grid);
  EXPECT_DOUBLE_EQ(parsed.sweep.f_fraction, original.sweep.f_fraction);
  EXPECT_EQ(parsed.sweep.runs, original.sweep.runs);
  EXPECT_EQ(parsed.sweep.base_seed, original.sweep.base_seed);
  EXPECT_EQ(parsed.sweep.threads, original.sweep.threads);
  EXPECT_EQ(parsed.sweep.max_steps, original.sweep.max_steps);
  EXPECT_EQ(parsed.sweep.max_events, original.sweep.max_events);
  EXPECT_EQ(parsed.sweep.collect_timeseries,
            original.sweep.collect_timeseries);
  EXPECT_EQ(parsed.sweep.timeseries_samples,
            original.sweep.timeseries_samples);
  EXPECT_EQ(parsed.params, original.params);
  EXPECT_EQ(parsed.artifacts, original.artifacts);
  EXPECT_EQ(parsed.build.git_describe, original.build.git_describe);
  EXPECT_EQ(parsed.build.build_type, original.build.build_type);
  EXPECT_EQ(parsed.build.audit_level, original.build.audit_level);
  EXPECT_EQ(parsed.host.hostname, original.host.hostname);
  EXPECT_DOUBLE_EQ(parsed.wall_time_seconds, original.wall_time_seconds);
  // Metrics snapshot travels along (scalar values; histogram moments).
  ASSERT_NE(parsed.metrics.find_counter("engine.runs"), nullptr);
  EXPECT_EQ(parsed.metrics.find_counter("engine.runs")->value, 48u);
  ASSERT_NE(parsed.metrics.find_gauge("engine.wheel.max_buckets"), nullptr);
  EXPECT_EQ(parsed.metrics.find_gauge("engine.wheel.max_buckets")->value,
            64u);
  ASSERT_NE(parsed.metrics.find_histogram("runner.run_steps"), nullptr);
  EXPECT_EQ(parsed.metrics.find_histogram("runner.run_steps")->count, 1u);
}

TEST(Manifest, SchemaMismatchThrows) {
  const auto path = temp_path("ugf_manifest_bad_schema.json");
  {
    std::ofstream out(path);
    out << R"({"schema": "ugf-manifest-v999", "figure": "x"})";
  }
  EXPECT_THROW((void)obs::read_manifest_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CampaignConversions, FormatParamRoundTripsDoubles) {
  for (const double v : {1.0 / 3.0, 0.1, 0.25, 2.5e-17, 1e300, -0.0, 3.0}) {
    const std::string s = bench::format_param(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
  EXPECT_EQ(bench::format_param(std::uint64_t{0}), "0");
  EXPECT_EQ(bench::format_param(std::uint64_t{18446744073709551615ull}),
            "18446744073709551615");
}

TEST(CampaignConversions, SweepRoundTrip) {
  runner::SweepConfig config;
  config.grid = {8, 24};
  config.f_fraction = 0.4;
  config.runs = 7;
  config.base_seed = 0xDEADBEEFCAFEull;
  config.threads = 5;
  config.max_steps = 123456789ull;
  config.max_events = 42ull;
  config.collect_timeseries = true;
  config.timeseries_samples = 17;
  const auto rebuilt =
      bench::sweep_from_manifest(bench::to_manifest_sweep(config));
  EXPECT_EQ(rebuilt.grid, config.grid);
  EXPECT_DOUBLE_EQ(rebuilt.f_fraction, config.f_fraction);
  EXPECT_EQ(rebuilt.runs, config.runs);
  EXPECT_EQ(rebuilt.base_seed, config.base_seed);
  EXPECT_EQ(rebuilt.threads, config.threads);
  EXPECT_EQ(rebuilt.max_steps, config.max_steps);
  EXPECT_EQ(rebuilt.max_events, config.max_events);
  EXPECT_EQ(rebuilt.collect_timeseries, config.collect_timeseries);
  EXPECT_EQ(rebuilt.timeseries_samples, config.timeseries_samples);
  // Observability pointers are presentation, never serialized.
  EXPECT_EQ(rebuilt.profiler, nullptr);
  EXPECT_EQ(rebuilt.metrics, nullptr);
  EXPECT_EQ(rebuilt.progress, nullptr);
}

TEST(CampaignConversions, AdversaryParamsRoundTrip) {
  core::AdversaryParams params;
  params.tau = 99;
  params.k = 3;
  params.l = 2;
  params.ugf.q1 = 0.2;
  params.ugf.q2 = 0.7;
  params.ugf.tau = 11;
  params.ugf.sample_exponents = true;
  params.ugf.fixed_k = 4;
  params.ugf.fixed_l = 5;
  params.ugf.exponent_cap = 6;
  params.ugf.omission_mode = true;
  const auto described = bench::describe_adversary("label", "ugf", params);
  EXPECT_EQ(described.label, "label");
  EXPECT_EQ(described.factory, "ugf");
  const auto rebuilt = bench::adversary_params_from(described);
  EXPECT_EQ(rebuilt.tau, params.tau);
  EXPECT_EQ(rebuilt.k, params.k);
  EXPECT_EQ(rebuilt.l, params.l);
  EXPECT_DOUBLE_EQ(rebuilt.ugf.q1, params.ugf.q1);
  EXPECT_DOUBLE_EQ(rebuilt.ugf.q2, params.ugf.q2);
  EXPECT_EQ(rebuilt.ugf.tau, params.ugf.tau);
  EXPECT_EQ(rebuilt.ugf.sample_exponents, params.ugf.sample_exponents);
  EXPECT_EQ(rebuilt.ugf.fixed_k, params.ugf.fixed_k);
  EXPECT_EQ(rebuilt.ugf.fixed_l, params.ugf.fixed_l);
  EXPECT_EQ(rebuilt.ugf.exponent_cap, params.ugf.exponent_cap);
  EXPECT_EQ(rebuilt.ugf.omission_mode, params.ugf.omission_mode);
}

TEST(CampaignConversions, UnknownAdversaryParamKeyThrows) {
  obs::ManifestAdversary adversary;
  adversary.factory = "ugf";
  adversary.params = {{"future.knob", "1"}};
  EXPECT_THROW((void)bench::adversary_params_from(adversary),
               std::runtime_error);
}

// The acceptance criterion: run a small figure sweep, write its CSV and
// manifest, then forget everything and rebuild the sweep purely from
// the parsed manifest — the regenerated CSV must be identical byte for
// byte (even with a different thread count; results are thread-count
// invariant).
TEST(Manifest, CsvReproducibleFromManifestAlone) {
  runner::SweepConfig config;
  config.grid = {8, 12, 16};
  config.f_fraction = 0.25;
  config.runs = 4;
  config.base_seed = 0xF16BA5Eull;
  config.threads = 2;

  const auto protocol = protocols::make_protocol("push-pull");
  core::AdversaryParams ugf_params;
  ugf_params.ugf.q1 = 0.25;  // non-default: must survive the manifest
  const auto benign = core::make_adversary("none");
  const auto fighter = core::make_adversary("ugf", ugf_params);

  const auto original = runner::sweep_figure(
      config, *protocol,
      {{"no adversary", benign.get()}, {"UGF", fighter.get()}});
  const auto csv_a = temp_path("ugf_manifest_run_a.csv");
  runner::write_figure_csv(csv_a, "figT", original);

  // Record the campaign exactly as the bench binaries do.
  obs::RunManifest manifest;
  manifest.figure = "figT";
  manifest.protocol = "push-pull";
  manifest.adversaries.push_back(
      bench::describe_adversary("no adversary", "none"));
  manifest.adversaries.push_back(
      bench::describe_adversary("UGF", "ugf", ugf_params));
  manifest.has_sweep = true;
  manifest.sweep = bench::to_manifest_sweep(config);
  manifest.build = obs::current_build_info();
  manifest.host = obs::current_host_info();
  const auto manifest_path = temp_path("ugf_manifest_run.manifest.json");
  obs::write_manifest_file(manifest_path, manifest);

  // Replay from the parsed manifest alone.
  const auto parsed = obs::read_manifest_file(manifest_path);
  ASSERT_TRUE(parsed.has_sweep);
  auto replay_config = bench::sweep_from_manifest(parsed.sweep);
  replay_config.threads = 4;  // thread-count invariance is part of the claim
  const auto replay_protocol = protocols::make_protocol(parsed.protocol);
  std::vector<std::unique_ptr<adversary::AdversaryFactory>> factories;
  std::vector<runner::LabelledAdversary> labelled;
  for (const auto& adversary : parsed.adversaries) {
    factories.push_back(core::make_adversary(
        adversary.factory, bench::adversary_params_from(adversary)));
    labelled.push_back({adversary.label, factories.back().get()});
  }
  const auto replayed =
      runner::sweep_figure(replay_config, *replay_protocol, labelled);
  const auto csv_b = temp_path("ugf_manifest_run_b.csv");
  runner::write_figure_csv(csv_b, parsed.figure, replayed);

  EXPECT_EQ(slurp(csv_a), slurp(csv_b));
  std::remove(csv_a.c_str());
  std::remove(csv_b.c_str());
  std::remove(manifest_path.c_str());
}

}  // namespace
