// Tests for util::DynamicBitset, including the word-boundary sizes the
// tail mask must get right.

#include <gtest/gtest.h>

#include <vector>

#include "util/dynamic_bitset.hpp"

namespace {

using ugf::util::DynamicBitset;

TEST(DynamicBitset, StartsClear) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
  EXPECT_FALSE(b.all());
}

TEST(DynamicBitset, ValueConstructorSetsAll) {
  DynamicBitset b(70, true);
  EXPECT_TRUE(b.all());
  EXPECT_EQ(b.count(), 70u);
}

TEST(DynamicBitset, SetResetTest) {
  DynamicBitset b(130);
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
  b.assign(5, true);
  EXPECT_TRUE(b.test(5));
  b.assign(5, false);
  EXPECT_FALSE(b.test(5));
}

class DynamicBitsetSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DynamicBitsetSizeTest, AllAndTailMaskBehave) {
  const std::size_t n = GetParam();
  DynamicBitset b(n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_FALSE(b.all()) << "i=" << i;
    b.set(i);
  }
  EXPECT_TRUE(b.all());
  EXPECT_EQ(b.count(), n);
  EXPECT_EQ(b.find_first_clear(), n);
  b.reset_all();
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.find_first_set(), n);
  b.set_all();
  EXPECT_TRUE(b.all());
}

INSTANTIATE_TEST_SUITE_P(WordBoundaries, DynamicBitsetSizeTest,
                         ::testing::Values(1, 2, 63, 64, 65, 127, 128, 129,
                                           500));

TEST(DynamicBitset, OrWithReportsChange) {
  DynamicBitset a(80), b(80);
  a.set(3);
  b.set(3);
  EXPECT_FALSE(a.or_with(b));
  b.set(77);
  EXPECT_TRUE(a.or_with(b));
  EXPECT_TRUE(a.test(77));
  EXPECT_FALSE(a.or_with(b));
}

TEST(DynamicBitset, AndWith) {
  DynamicBitset a(10), b(10);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  a.and_with(b);
  EXPECT_FALSE(a.test(1));
  EXPECT_TRUE(a.test(2));
  EXPECT_FALSE(a.test(3));
}

TEST(DynamicBitset, Contains) {
  DynamicBitset a(100), b(100);
  a.set(10);
  a.set(70);
  b.set(10);
  EXPECT_TRUE(a.contains(b));
  b.set(71);
  EXPECT_FALSE(a.contains(b));
  EXPECT_TRUE(a.contains(DynamicBitset(100)));  // empty subset
}

TEST(DynamicBitset, UnionAll) {
  DynamicBitset a(65), b(65);
  for (std::size_t i = 0; i < 65; i += 2) a.set(i);
  for (std::size_t i = 1; i < 65; i += 2) b.set(i);
  EXPECT_TRUE(DynamicBitset::union_all(a, b));
  b.reset(63);
  EXPECT_FALSE(DynamicBitset::union_all(a, b));
}

TEST(DynamicBitset, FindFirst) {
  DynamicBitset b(130);
  EXPECT_EQ(b.find_first_set(), 130u);
  EXPECT_EQ(b.find_first_clear(), 0u);
  b.set(65);
  EXPECT_EQ(b.find_first_set(), 65u);
  b.set_all();
  b.reset(100);
  EXPECT_EQ(b.find_first_clear(), 100u);
}

TEST(DynamicBitset, ToIndicesAndClearIndices) {
  DynamicBitset b(10);
  b.set(2);
  b.set(7);
  b.set(9);
  EXPECT_EQ(b.to_indices(), (std::vector<std::uint32_t>{2, 7, 9}));
  EXPECT_EQ(b.clear_indices(), (std::vector<std::uint32_t>{0, 1, 3, 4, 5, 6, 8}));
}

TEST(DynamicBitset, ForEachSetVisitsAscending) {
  DynamicBitset b(200);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(199);
  std::vector<std::uint32_t> seen;
  b.for_each_set([&seen](std::uint32_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{0, 63, 64, 199}));
}

TEST(DynamicBitset, Equality) {
  DynamicBitset a(50), b(50);
  EXPECT_EQ(a, b);
  a.set(25);
  EXPECT_NE(a, b);
  b.set(25);
  EXPECT_EQ(a, b);
}

TEST(DynamicBitset, EmptyBitset) {
  DynamicBitset b;
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(b.all());  // vacuous
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.count(), 0u);
}

}  // namespace
