// Engine edge cases: minimal system sizes, multi-lane inbox ordering,
// omission-hook misuse, and zero crash budgets.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "obs/event.hpp"
#include "protocols/registry.hpp"
#include "sim/engine.hpp"
#include "sim/instrumentation.hpp"

namespace {

using namespace ugf;
using sim::GlobalStep;
using sim::ProcessId;

class NotePayload final : public sim::Payload {
 public:
  static constexpr std::uint32_t kKind = 0x4E4F5445;  // 'NOTE'
  explicit NotePayload(int tag) noexcept : Payload(kKind), tag_(tag) {}
  [[nodiscard]] int tag() const noexcept { return tag_; }

 private:
  int tag_;
};

/// Sends `bursts` tagged messages to process 0 in its first step, then
/// sleeps; process 0 records the tags in delivery order.
class LaneProtocol final : public sim::Protocol {
 public:
  LaneProtocol(ProcessId self, std::vector<int>* order, int bursts)
      : self_(self), order_(order), bursts_(bursts) {}

  void on_message(sim::ProcessContext&, const sim::Message& msg) override {
    if (const auto* note = sim::payload_as<NotePayload>(msg))
      order_->push_back(note->tag());
  }
  void on_local_step(sim::ProcessContext& ctx) override {
    if (self_ != 0 && !sent_) {
      for (int b = 0; b < bursts_; ++b)
        ctx.send(0, ctx.make_payload<NotePayload>(
                        static_cast<int>(self_) * 100 + b));
      sent_ = true;
    }
  }
  [[nodiscard]] bool wants_sleep() const noexcept override {
    return self_ == 0 || sent_;
  }
  [[nodiscard]] bool completed() const noexcept override {
    return wants_sleep();
  }
  [[nodiscard]] bool has_gossip_of(ProcessId) const noexcept override {
    return true;
  }

 private:
  ProcessId self_;
  std::vector<int>* order_;
  int bursts_;
  bool sent_ = false;
};

class LaneFactory final : public sim::ProtocolFactory {
 public:
  LaneFactory(std::vector<int>* order, int bursts)
      : order_(order), bursts_(bursts) {}
  [[nodiscard]] const char* name() const noexcept override { return "lane"; }
  [[nodiscard]] std::unique_ptr<sim::Protocol> create(
      ProcessId self, const sim::SystemInfo&) const override {
    return std::make_unique<LaneProtocol>(self, order_, bursts_);
  }

 private:
  std::vector<int>* order_;
  int bursts_;
};

/// Adversary that sets distinct delivery times per sender at start.
class PerSenderDelay final : public sim::Adversary {
 public:
  explicit PerSenderDelay(std::vector<std::uint64_t> delays)
      : delays_(std::move(delays)) {}
  [[nodiscard]] const char* name() const noexcept override { return "psd"; }
  void on_run_start(sim::AdversaryControl& ctl) override {
    for (ProcessId p = 0; p < delays_.size() && p < ctl.num_processes(); ++p)
      ctl.set_delivery_time(p, delays_[p]);
  }

 private:
  std::vector<std::uint64_t> delays_;
};

TEST(EngineEdges, MultiLaneDeliveriesMergeByArrivalThenAcceptance) {
  // Senders 1..3 emit at step 1 with d = 5, 3, 5: arrivals at 6, 4, 6.
  // Expected delivery order at process 0: sender 2 first (arrival 4),
  // then senders 1 and 3 in acceptance order (same arrival 6).
  std::vector<int> order;
  LaneFactory factory(&order, /*bursts=*/2);
  PerSenderDelay adversary({1, 5, 3, 5});
  sim::EngineConfig cfg;
  cfg.n = 4;
  cfg.f = 0;
  cfg.seed = 1;
  sim::Engine engine(cfg, factory, &adversary);
  const auto out = engine.run();
  EXPECT_EQ(out.delivered_messages, 6u);
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order[0], 200);
  EXPECT_EQ(order[1], 201);
  // Same arrival step: acceptance (emission) order wins; emissions are
  // processed in process-id order at the same step.
  EXPECT_EQ(order[2], 100);
  EXPECT_EQ(order[3], 101);
  EXPECT_EQ(order[4], 300);
  EXPECT_EQ(order[5], 301);
}

TEST(EngineEdges, SleepingReceiverWakesAtEarliestLane) {
  std::vector<int> order;
  LaneFactory factory(&order, 1);
  PerSenderDelay adversary({1, 9, 2, 30});
  sim::EngineConfig cfg;
  cfg.n = 4;
  cfg.f = 0;
  cfg.seed = 1;
  sim::Engine engine(cfg, factory, &adversary);
  const auto out = engine.run();
  // Last arrival at 1 + 30 = 31; the wake step [31, 32) defines T_end.
  EXPECT_EQ(out.t_end, 32u);
  EXPECT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 200);  // d = 2 first
  EXPECT_EQ(order[1], 100);  // then d = 9
  EXPECT_EQ(order[2], 300);  // then d = 30
}

TEST(EngineEdges, MinimalSystemOfTwo) {
  for (const auto& name : protocols::protocol_names()) {
    const auto proto = protocols::make_protocol(name);
    sim::EngineConfig cfg;
    cfg.n = 2;
    cfg.f = 0;
    cfg.seed = 9;
    sim::Engine engine(cfg, *proto, nullptr);
    const auto out = engine.run();
    EXPECT_TRUE(out.rumor_gathering_ok) << name;
    EXPECT_FALSE(out.truncated) << name;
  }
}

TEST(EngineEdges, SuppressOutsideEmissionHookThrows) {
  class BadAdversary final : public sim::Adversary {
   public:
    [[nodiscard]] const char* name() const noexcept override { return "bad"; }
    void on_run_start(sim::AdversaryControl& ctl) override {
      EXPECT_THROW(ctl.suppress_message(), std::logic_error);
    }
    void on_timer(sim::AdversaryControl& ctl, GlobalStep) override {
      EXPECT_THROW(ctl.suppress_message(), std::logic_error);
    }
  } adversary;
  const auto proto = protocols::make_protocol("push-pull");
  sim::EngineConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = 2;
  sim::Engine engine(cfg, *proto, &adversary);
  (void)engine.run();
}

TEST(EngineEdges, ZeroCrashBudgetNeutralizesCrashStrategies) {
  const auto proto = protocols::make_protocol("push-pull");
  class CrashHungry final : public sim::Adversary {
   public:
    [[nodiscard]] const char* name() const noexcept override {
      return "hungry";
    }
    void on_run_start(sim::AdversaryControl& ctl) override {
      for (ProcessId p = 0; p < ctl.num_processes(); ++p)
        EXPECT_FALSE(ctl.crash(p));
    }
  } adversary;
  sim::EngineConfig cfg;
  cfg.n = 8;
  cfg.f = 0;
  cfg.seed = 3;
  sim::Engine engine(cfg, *proto, &adversary);
  const auto out = engine.run();
  EXPECT_EQ(out.crashed, 0u);
  EXPECT_TRUE(out.rumor_gathering_ok);
}

TEST(EngineEdges, SenderCrashInsideEmissionHookIsSafe) {
  // Regression: crashing the *sender* from on_message_emitted clears
  // its outgoing queue while the engine is fanning it out. The fan-out
  // loop must tolerate that (it indexes and moves each entry out before
  // the hook runs) — earlier iterator-based versions were UB here.
  class CrashTheSender final : public sim::Adversary {
   public:
    [[nodiscard]] const char* name() const noexcept override {
      return "crash-sender";
    }
    void on_message_emitted(sim::AdversaryControl& ctl,
                            const sim::SendEvent& event) override {
      if (!done_ && event.from != 0) done_ = ctl.crash(event.from);
    }

   private:
    bool done_ = false;
  } adversary;

  const auto proto = protocols::make_protocol("push-pull");
  obs::EventRecorder recorder;
  sim::EngineConfig cfg;
  cfg.n = 8;
  cfg.f = 2;
  cfg.seed = 6;
  cfg.sink = &recorder;
  sim::Engine engine(cfg, *proto, &adversary);
  const auto out = engine.run();
  EXPECT_EQ(out.crashed, 1u);
  EXPECT_FALSE(out.truncated);
  // The current message (the one that triggered the crash) is still
  // accepted if its receiver is alive; later queued messages from the
  // wiped queue never materialize. Conservation must still hold.
  std::uint64_t emissions = 0, deliveries = 0, omissions = 0, drops = 0;
  for (const auto& ev : recorder.raw()) {
    switch (ev.type) {
      case obs::EventType::kEmission: ++emissions; break;
      case obs::EventType::kDelivery: ++deliveries; break;
      case obs::EventType::kOmission: ++omissions; break;
      case obs::EventType::kDrop: drops += ev.v0; break;
      default: break;
    }
  }
  EXPECT_EQ(emissions, out.total_messages);
  EXPECT_EQ(emissions, deliveries + omissions + drops);
}

// ---- Inbox unit tests (Engine::Inbox is public for exactly this) -------

sim::Message inbox_msg(ProcessId from, GlobalStep sent_at,
                       GlobalStep arrives_at) {
  return sim::Message{from, 0, sent_at, arrives_at, sim::PayloadRef{}};
}

TEST(InboxUnit, EqualArrivalAcrossLanesFollowsAcceptanceSeq) {
  sim::Engine::Inbox inbox;
  // Three lanes, one arrival step 10 each, accepted in seq order that
  // does NOT match lane creation order: the merge must follow seq.
  inbox.push(2, inbox_msg(1, 8, 10), /*seq=*/5);
  inbox.push(7, inbox_msg(2, 3, 10), /*seq=*/6);
  inbox.push(4, inbox_msg(3, 6, 10), /*seq=*/7);
  EXPECT_EQ(inbox.size(), 3u);
  EXPECT_EQ(inbox.lane_count(), 3u);
  EXPECT_EQ(inbox.earliest_arrival(), 10u);

  sim::Message out;
  ASSERT_TRUE(inbox.pop_due(10, out));
  EXPECT_EQ(out.from, 1u);
  ASSERT_TRUE(inbox.pop_due(10, out));
  EXPECT_EQ(out.from, 2u);
  ASSERT_TRUE(inbox.pop_due(10, out));
  EXPECT_EQ(out.from, 3u);
  EXPECT_FALSE(inbox.pop_due(10, out));
  EXPECT_TRUE(inbox.empty());
}

TEST(InboxUnit, PopDueRespectsTheStepBound) {
  sim::Engine::Inbox inbox;
  inbox.push(3, inbox_msg(1, 1, 4), 0);
  inbox.push(9, inbox_msg(2, 1, 10), 1);
  sim::Message out;
  EXPECT_FALSE(inbox.pop_due(3, out));  // nothing due yet
  ASSERT_TRUE(inbox.pop_due(4, out));
  EXPECT_EQ(out.from, 1u);
  EXPECT_FALSE(inbox.pop_due(9, out));  // the d=9 lane is still future
  EXPECT_EQ(inbox.earliest_arrival(), 10u);
  ASSERT_TRUE(inbox.pop_due(10, out));
  EXPECT_EQ(out.from, 2u);
}

TEST(InboxUnit, ClearOnNonEmptyLanesRetainsLaneStorage) {
  sim::Engine::Inbox inbox;
  for (std::uint64_t d = 1; d <= 3; ++d)
    for (std::uint64_t i = 0; i < 4; ++i)
      inbox.push(d, inbox_msg(static_cast<ProcessId>(d), i, i + d),
                 d * 10 + i);
  ASSERT_EQ(inbox.size(), 12u);
  ASSERT_EQ(inbox.lane_count(), 3u);

  inbox.clear();
  EXPECT_TRUE(inbox.empty());
  EXPECT_EQ(inbox.size(), 0u);
  EXPECT_EQ(inbox.lane_count(), 3u);  // lanes retained for reuse
  EXPECT_EQ(inbox.earliest_arrival(), sim::kNeverStep);
  sim::Message out;
  EXPECT_FALSE(inbox.pop_due(sim::kNeverStep - 1, out));

  // The retained (empty) lanes are invisible: a fresh push works and no
  // stale entry resurfaces.
  inbox.push(2, inbox_msg(9, 5, 7), 99);
  EXPECT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox.lane_count(), 3u);  // d=2 lane was reused
  ASSERT_TRUE(inbox.pop_due(7, out));
  EXPECT_EQ(out.from, 9u);
  EXPECT_TRUE(inbox.empty());
}

TEST(InboxUnit, ManyDistinctDeliveryTimesOneLaneEach) {
  sim::Engine::Inbox inbox;
  constexpr std::uint64_t kLanes = 64;
  // Accept in emission order with d descending: arrivals interleave
  // across every lane.
  for (std::uint64_t i = 0; i < kLanes; ++i)
    inbox.push(kLanes - i, inbox_msg(static_cast<ProcessId>(i), i,
                                     i + (kLanes - i)),
               i);
  EXPECT_EQ(inbox.lane_count(), kLanes);
  EXPECT_EQ(inbox.size(), kLanes);

  // All arrivals equal (i + kLanes - i): drain follows seq.
  sim::Message out;
  for (std::uint64_t i = 0; i < kLanes; ++i) {
    ASSERT_TRUE(inbox.pop_due(kLanes, out)) << i;
    EXPECT_EQ(out.from, i);
  }
  EXPECT_TRUE(inbox.empty());
  EXPECT_EQ(inbox.lane_count(), kLanes);
}

TEST(InboxUnit, LaneChurnAcrossDeliveryTimeFlipsStaysCorrect) {
  // Regression for the last-hit lane cache in Inbox::push: the sender's
  // d flips on every accept (worst case for the cache — a miss plus a
  // fallback scan each time), then hammers one lane (all hits), then
  // revisits earlier lanes. Routing, ordering and the earliest-arrival
  // cache must be oblivious to the churn.
  sim::Engine::Inbox inbox;
  std::uint64_t seq = 0;
  // Phase 1: alternate d in {3, 5, 9} per accept — every push misses
  // the cached lane.
  const std::uint64_t churn_d[] = {3, 5, 9, 3, 5, 9, 3, 5, 9};
  GlobalStep sent = 0;
  for (const std::uint64_t d : churn_d) {
    inbox.push(d, inbox_msg(static_cast<ProcessId>(d), sent, sent + d), seq++);
    ++sent;
  }
  EXPECT_EQ(inbox.lane_count(), 3u);
  EXPECT_EQ(inbox.size(), 9u);
  EXPECT_EQ(inbox.earliest_arrival(), 3u);  // first d=3 accept

  // Phase 2: the same d repeatedly — all cache hits land in one lane.
  for (int i = 0; i < 50; ++i) {
    inbox.push(5, inbox_msg(42, sent, sent + 5), seq++);
    ++sent;
  }
  EXPECT_EQ(inbox.lane_count(), 3u);  // no spurious new lane
  EXPECT_EQ(inbox.size(), 59u);
  EXPECT_EQ(inbox.earliest_arrival(), 3u);  // unchanged by later accepts

  // Phase 3: revisit the first lane after the cache moved away.
  inbox.push(3, inbox_msg(7, sent, sent + 3), seq++);
  EXPECT_EQ(inbox.lane_count(), 3u);
  EXPECT_EQ(inbox.size(), 60u);

  // Drain everything; arrival order (ties by seq) must hold and the
  // earliest-arrival cache must track every pop.
  sim::Message out;
  GlobalStep last_arrival = 0;
  std::uint64_t drained = 0;
  while (!inbox.empty()) {
    const GlobalStep expect_next = inbox.earliest_arrival();
    ASSERT_TRUE(inbox.pop_due(sim::kNeverStep - 1, out));
    EXPECT_EQ(out.arrives_at, expect_next);
    EXPECT_GE(out.arrives_at, last_arrival);
    last_arrival = out.arrives_at;
    ++drained;
  }
  EXPECT_EQ(drained, 60u);
  EXPECT_EQ(inbox.earliest_arrival(), sim::kNeverStep);
}

TEST(EngineEdges, CrashWithMultiLaneInboxDropsEveryPendingMessage) {
  // Receiver 0 accumulates pending messages in three distinct delivery
  // lanes, then crashes before any arrival: the crash clears the inbox
  // (all lanes) and every pending message counts as dropped.
  class DelayThenCrash final : public sim::Adversary {
   public:
    [[nodiscard]] const char* name() const noexcept override {
      return "delay-then-crash";
    }
    void on_run_start(sim::AdversaryControl& ctl) override {
      ctl.set_delivery_time(1, 10);
      ctl.set_delivery_time(2, 20);
      ctl.set_delivery_time(3, 30);
      ctl.request_timer(5);  // after emission (step 2), before arrival 11
    }
    void on_timer(sim::AdversaryControl& ctl, GlobalStep) override {
      EXPECT_TRUE(ctl.crash(0));
    }
  } adversary;

  std::vector<int> order;
  LaneFactory factory(&order, /*bursts=*/2);
  sim::EngineConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = 1;
  sim::Engine engine(cfg, factory, &adversary);
  const auto out = engine.run();
  EXPECT_EQ(out.crashed, 1u);
  EXPECT_EQ(out.total_messages, 6u);
  EXPECT_EQ(out.delivered_messages, 0u);
  EXPECT_EQ(out.dropped_messages, 6u);
  EXPECT_TRUE(order.empty());
}

TEST(EngineEdges, ManyDistinctPerSenderDelaysDeliverInArrivalOrder) {
  // Every sender gets its own delivery time: one inbox lane per sender
  // at process 0, merged into a single arrival-ordered stream.
  std::vector<int> order;
  constexpr std::uint32_t kN = 12;
  LaneFactory factory(&order, /*bursts=*/1);
  std::vector<std::uint64_t> delays(kN);
  delays[0] = 1;
  for (std::uint32_t p = 1; p < kN; ++p)
    delays[p] = 40 - 3 * p;  // distinct, decreasing with sender id
  PerSenderDelay adversary(delays);
  sim::EngineConfig cfg;
  cfg.n = kN;
  cfg.f = 0;
  cfg.seed = 1;
  sim::Engine engine(cfg, factory, &adversary);
  const auto out = engine.run();
  EXPECT_EQ(out.delivered_messages, kN - 1);
  ASSERT_EQ(order.size(), kN - 1);
  // All emitted at step 1: arrival order is exactly reverse sender id.
  for (std::uint32_t i = 0; i < kN - 1; ++i)
    EXPECT_EQ(order[i], static_cast<int>((kN - 1 - i) * 100)) << i;
}

TEST(EngineEdges, DeltaOneIsContiguousSteps) {
  // A process with delta = 1 that never sleeps executes steps back to
  // back: local_steps_executed ~ t_end for a 2-process sequential run.
  const auto proto = protocols::make_protocol("sequential");
  sim::EngineConfig cfg;
  cfg.n = 2;
  cfg.f = 0;
  cfg.seed = 4;
  sim::Engine engine(cfg, *proto, nullptr);
  const auto out = engine.run();
  EXPECT_EQ(out.total_messages, 2u);  // each sends its gossip once
  EXPECT_LE(out.t_end, 4u);
}

}  // namespace
